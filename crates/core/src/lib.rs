//! The HACC framework driver: force composition and time stepping.
//!
//! Assembles the substrates into the full code of the paper:
//!
//! * long/medium-range forces from the spectrally filtered PM solver
//!   (`hacc-pm`), common to all "architectures";
//! * short/close-range forces from an architecture-tunable local solver
//!   (`hacc-short`): RCB tree ("PPTreePM", the BG/Q path) or direct
//!   particle–particle ("P3M", the Roadrunner path) — or PM-only for
//!   smooth-field tests;
//! * the 2nd-order split-operator symplectic stepper of paper Eq. 6,
//!   `M_full = M_lr(t/2) (M_sr(t/nc))^nc M_lr(t/2)`, sub-cycling the
//!   short-range SKS (stream–kick–stream) maps inside long-range kicks
//!   while the slowly varying long-range force stays frozen;
//! * mixed precision exactly as in the paper: particles and short-range
//!   arithmetic in f32, the spectral path in f64.
//!
//! Units: positions in Mpc/h; momenta `p = a²·dx/dt` with time in `1/H0`;
//! `∇²φ̂ = δ` solved by the PM layer, kicks scaled by `(3/2)·Ωm` and the
//! exact expansion-history integrals from `hacc-cosmo`.
//!
//! Long runs get fault tolerance from two layers on top of the stepper:
//! [`checkpoint`] (per-rank restart records through the CRC-validated
//! snapshot format) and [`resilient`] (a recovery driver that checkpoints
//! every K steps and restarts failed attempts from the last good set).
//! [`elastic`] builds planned world resizing on those same primitives:
//! the run can grow into reserve ranks or shrink out of retiring ones
//! at scheduled step boundaries, with every handover epoch-fenced,
//! count-certified, and abortable back to a pre-resize checkpoint.

pub mod checkpoint;
pub mod config;
pub mod dist;
pub mod elastic;
pub mod invariant;
pub mod resilient;
pub mod sim;
pub mod stats;

pub use checkpoint::{config_fingerprint, CheckpointError};
pub use config::{SimConfig, SolverKind};
pub use dist::DistSimulation;
pub use elastic::{run_attempt_elastic, run_elastic, ScalePlan, ScaleSchedule, WorldMeta};
pub use invariant::{InvariantConfig, InvariantMonitor, InvariantSample, InvariantVerdict};
pub use resilient::{
    run_attempt_online, run_resilient, write_timeline_json, AttemptOutput, RecoveryEvent,
    ResilienceConfig, ResilienceError, ResilientRun, TimelineHeader,
};
pub use sim::Simulation;
pub use stats::{RunStats, StepBreakdown};
