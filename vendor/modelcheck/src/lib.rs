//! Explicit-state model checker for protocol state machines.
//!
//! This is the process-level sibling of `vendor/loom`: where loom
//! exhaustively explores *thread interleavings* of the in-process
//! backend, this crate exhaustively explores *event schedules* (deliver,
//! drop, duplicate, reorder, tear, kill, reconnect, …) of a pure
//! protocol model, in the tradition of `stateright`.
//!
//! A [`Model`] describes a nondeterministic transition system: initial
//! states, the actions enabled in each state, and the successor each
//! action produces. [`check`] walks the reachable state space (BFS by
//! default, so counterexamples are shortest-possible; DFS available for
//! deep-and-narrow spaces), deduplicating states by hash, and evaluates
//! three kinds of [`Property`]:
//!
//! - **Always** (safety): must hold in *every* reachable state. A
//!   violation yields the action trace from an initial state.
//! - **Eventually** (terminal liveness): must hold in every *terminal*
//!   state (no enabled actions). Catches protocols that stop in a bad
//!   place without deadlocking.
//! - **Sometimes** (coverage): must hold in *at least one* reachable
//!   state. Guards the other properties against vacuity — an invariant
//!   over states that are never reached proves nothing.
//!
//! Deadlocks are first-class: a state with no enabled actions that the
//! model does not bless via [`Model::is_terminal_ok`] is reported with
//! its trace, exactly like a safety violation.
//!
//! Every search is deterministic (iteration order depends only on the
//! model's own action ordering), so a reported [`Trace`] can be written
//! down, committed as a fixture, and re-run later with [`replay`] — the
//! counterexample-replay workflow the comm protocol suite uses for its
//! regression-guard fixtures.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::fmt::Debug;
use std::hash::Hash;

/// A nondeterministic transition system to explore.
pub trait Model {
    /// Global state of the system. Cheap to clone and hash; keep it
    /// small — the checker stores every unique state it has seen.
    type State: Clone + Eq + Hash + Debug;
    /// One schedulable event.
    type Action: Clone + Debug;

    /// The initial state(s).
    fn init_states(&self) -> Vec<Self::State>;

    /// Append every action enabled in `state` to `out`. The order is
    /// the tie-break order of counterexamples, so keep it stable.
    fn actions(&self, state: &Self::State, out: &mut Vec<Self::Action>);

    /// The successor of `state` under `action`, or `None` if the action
    /// turns out to be a no-op/disabled (the checker just skips it).
    fn next_state(&self, state: &Self::State, action: &Self::Action) -> Option<Self::State>;

    /// Is a state with no enabled actions an acceptable end state?
    /// Return `false` for states that should count as deadlocks.
    fn is_terminal_ok(&self, _state: &Self::State) -> bool {
        true
    }

    /// Short human name for the model (used in reports).
    fn name(&self) -> &'static str {
        "model"
    }
}

/// What a property claims about the reachable state space.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Expectation {
    /// Holds in every reachable state.
    Always,
    /// Holds in every terminal (no enabled action) state.
    Eventually,
    /// Holds in at least one reachable state (anti-vacuity coverage).
    Sometimes,
}

/// A named claim evaluated over reachable states.
pub struct Property<M: Model + ?Sized> {
    pub name: &'static str,
    pub expect: Expectation,
    pub check: fn(&M, &M::State) -> bool,
}

impl<M: Model + ?Sized> Property<M> {
    pub fn always(name: &'static str, check: fn(&M, &M::State) -> bool) -> Self {
        Property {
            name,
            expect: Expectation::Always,
            check,
        }
    }

    pub fn eventually(name: &'static str, check: fn(&M, &M::State) -> bool) -> Self {
        Property {
            name,
            expect: Expectation::Eventually,
            check,
        }
    }

    pub fn sometimes(name: &'static str, check: fn(&M, &M::State) -> bool) -> Self {
        Property {
            name,
            expect: Expectation::Sometimes,
            check,
        }
    }
}

/// Search order. BFS reports shortest counterexamples and is the
/// default; DFS uses less frontier memory on deep, narrow spaces.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Search {
    #[default]
    Bfs,
    Dfs,
}

/// Exploration bounds. The checker *proves* a property only when the
/// report says `complete == true`: every reachable state (within
/// `max_depth`, if set) was visited without hitting `max_states`.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Hard cap on unique states stored. Exceeding it aborts the search
    /// with `complete = false`.
    pub max_states: usize,
    /// Optional cap on schedule length (`None` = unbounded).
    pub max_depth: Option<usize>,
    pub search: Search,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_states: 1_000_000,
            max_depth: None,
            search: Search::Bfs,
        }
    }
}

/// A reproducible path: the initial state plus the actions (and the
/// states they produced) leading to the final state.
#[derive(Clone, Debug)]
pub struct Trace<M: Model + ?Sized> {
    pub init: M::State,
    pub steps: Vec<(M::Action, M::State)>,
}

impl<M: Model + ?Sized> Trace<M> {
    /// The state at the end of the trace.
    pub fn last_state(&self) -> &M::State {
        self.steps.last().map_or(&self.init, |(_, s)| s)
    }

    /// Render the trace as numbered lines — the format written into
    /// counterexample artifacts and fixtures.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("init: {:?}\n", self.init));
        for (i, (action, state)) in self.steps.iter().enumerate() {
            out.push_str(&format!("{i:3}. {action:?}\n     => {state:?}\n"));
        }
        out
    }

    /// Just the action schedule, one `Debug` line per action — the
    /// machine-readable half of a fixture (re-parsed by the replay
    /// tests via the model's own action parser).
    pub fn action_lines(&self) -> String {
        let mut out = String::new();
        for (action, _) in &self.steps {
            out.push_str(&format!("{action:?}\n"));
        }
        out
    }
}

/// One discovered defect: which property failed and the trace to the
/// offending state. Deadlocks use the reserved property name
/// `"no-deadlock"`.
pub struct Violation<M: Model + ?Sized> {
    pub property: &'static str,
    pub trace: Trace<M>,
}

/// Outcome of one [`check`] run.
pub struct Report<M: Model + ?Sized> {
    pub model: &'static str,
    /// Unique states visited (== stored).
    pub states: usize,
    /// State→state transitions evaluated.
    pub transitions: usize,
    /// Longest schedule expanded.
    pub max_depth_seen: usize,
    /// Did the search exhaust the reachable space within bounds? Only a
    /// complete search is a proof for Always/Eventually properties.
    pub complete: bool,
    /// First violation found for each failed property (incl. deadlock).
    pub violations: Vec<Violation<M>>,
    /// `Sometimes` properties that no reachable state satisfied.
    pub unreached: Vec<&'static str>,
}

impl<M: Model + ?Sized> Report<M> {
    /// Did every property hold (and the search complete)?
    pub fn proven(&self) -> bool {
        self.complete && self.violations.is_empty() && self.unreached.is_empty()
    }

    /// Violation for `property`, if one was found.
    pub fn violation(&self, property: &str) -> Option<&Violation<M>> {
        self.violations.iter().find(|v| v.property == property)
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} states, {} transitions, depth {}, complete={}, violations={}, unreached={}",
            self.model,
            self.states,
            self.transitions,
            self.max_depth_seen,
            self.complete,
            self.violations.len(),
            self.unreached.len(),
        )
    }
}

/// Node bookkeeping for trace reconstruction: how each state was first
/// reached.
struct Node<M: Model> {
    state: M::State,
    /// `usize::MAX` for initial states.
    parent: usize,
    /// Action that led here from `parent` (`None` for initial states).
    action: Option<M::Action>,
    depth: usize,
}

/// Rebuild the action trace from the node table.
fn trace_to<M: Model>(nodes: &[Node<M>], mut idx: usize) -> Trace<M> {
    let mut rev: Vec<(M::Action, M::State)> = Vec::new();
    while nodes[idx].parent != usize::MAX {
        let node = &nodes[idx];
        rev.push((
            node.action.clone().expect("non-root node has an action"),
            node.state.clone(),
        ));
        idx = node.parent;
    }
    rev.reverse();
    Trace {
        init: nodes[idx].state.clone(),
        steps: rev,
    }
}

/// Exhaustively explore `model` and evaluate `properties`.
///
/// For each failed property the report carries the *first* trace found
/// (shortest, under BFS). `Sometimes` properties are satisfied by any
/// reachable state; the ones never satisfied are listed in
/// [`Report::unreached`].
pub fn check<M: Model>(model: &M, properties: &[Property<M>], opts: &Options) -> Report<M> {
    let mut nodes: Vec<Node<M>> = Vec::new();
    let mut seen: HashMap<M::State, usize> = HashMap::new();
    // BFS queue / DFS stack of node indices still to expand.
    let mut frontier: VecDeque<usize> = VecDeque::new();

    let mut violated: Vec<Violation<M>> = Vec::new();
    let mut violated_names: Vec<&'static str> = Vec::new();
    let mut sometimes_hit: Vec<bool> = properties
        .iter()
        .map(|p| p.expect != Expectation::Sometimes)
        .collect();

    let mut complete = true;
    let mut transitions = 0usize;
    let mut max_depth_seen = 0usize;

    let visit = |nodes: &[Node<M>],
                     idx: usize,
                     terminal: bool,
                     violated: &mut Vec<Violation<M>>,
                     violated_names: &mut Vec<&'static str>,
                     sometimes_hit: &mut Vec<bool>| {
        let state = &nodes[idx].state;
        for (pi, prop) in properties.iter().enumerate() {
            match prop.expect {
                Expectation::Always => {
                    if !violated_names.contains(&prop.name) && !(prop.check)(model, state) {
                        violated_names.push(prop.name);
                        violated.push(Violation {
                            property: prop.name,
                            trace: trace_to(nodes, idx),
                        });
                    }
                }
                Expectation::Eventually => {
                    if terminal
                        && !violated_names.contains(&prop.name)
                        && !(prop.check)(model, state)
                    {
                        violated_names.push(prop.name);
                        violated.push(Violation {
                            property: prop.name,
                            trace: trace_to(nodes, idx),
                        });
                    }
                }
                Expectation::Sometimes => {
                    if !sometimes_hit[pi] && (prop.check)(model, state) {
                        sometimes_hit[pi] = true;
                    }
                }
            }
        }
    };

    for init in model.init_states() {
        if let Entry::Vacant(e) = seen.entry(init.clone()) {
            let idx = nodes.len();
            e.insert(idx);
            nodes.push(Node {
                state: init,
                parent: usize::MAX,
                action: None,
                depth: 0,
            });
            frontier.push_back(idx);
        }
    }

    let mut action_buf: Vec<M::Action> = Vec::new();
    while let Some(idx) = match opts.search {
        Search::Bfs => frontier.pop_front(),
        Search::Dfs => frontier.pop_back(),
    } {
        let depth = nodes[idx].depth;
        max_depth_seen = max_depth_seen.max(depth);

        action_buf.clear();
        model.actions(&nodes[idx].state, &mut action_buf);
        let depth_capped = opts.max_depth.is_some_and(|cap| depth >= cap);
        if depth_capped && !action_buf.is_empty() {
            // Actions exist past the depth bound: the search is no
            // longer a full proof.
            complete = false;
        }

        let mut successors = 0usize;
        if !depth_capped {
            let enabled = std::mem::take(&mut action_buf);
            for action in &enabled {
                let Some(next) = model.next_state(&nodes[idx].state, action) else {
                    continue;
                };
                transitions += 1;
                successors += 1;
                match seen.entry(next) {
                    Entry::Occupied(_) => {}
                    Entry::Vacant(e) => {
                        if nodes.len() >= opts.max_states {
                            complete = false;
                            continue;
                        }
                        let nidx = nodes.len();
                        let state = e.key().clone();
                        e.insert(nidx);
                        nodes.push(Node {
                            state,
                            parent: idx,
                            action: Some(action.clone()),
                            depth: depth + 1,
                        });
                        frontier.push_back(nidx);
                        visit(
                            &nodes,
                            nidx,
                            false,
                            &mut violated,
                            &mut violated_names,
                            &mut sometimes_hit,
                        );
                    }
                }
            }
            action_buf = enabled;
        }

        let terminal = successors == 0 && !depth_capped;
        if idx < nodes.len() {
            // (Re-)visit for terminal-only checks; Always/Sometimes on
            // this state already ran when it was discovered (or below
            // for initial states).
            if nodes[idx].parent == usize::MAX {
                visit(
                    &nodes,
                    idx,
                    terminal,
                    &mut violated,
                    &mut violated_names,
                    &mut sometimes_hit,
                );
            } else if terminal {
                visit(
                    &nodes,
                    idx,
                    true,
                    &mut violated,
                    &mut violated_names,
                    &mut sometimes_hit,
                );
            }
        }
        if terminal && !model.is_terminal_ok(&nodes[idx].state) {
            // Deadlock: quiescent state the model does not accept.
            if !violated_names.contains(&DEADLOCK) {
                violated_names.push(DEADLOCK);
                violated.push(Violation {
                    property: DEADLOCK,
                    trace: trace_to(&nodes, idx),
                });
            }
        }
    }

    let unreached = properties
        .iter()
        .zip(&sometimes_hit)
        .filter(|(p, &hit)| p.expect == Expectation::Sometimes && !hit)
        .map(|(p, _)| p.name)
        .collect();

    Report {
        model: model.name(),
        states: nodes.len(),
        transitions,
        max_depth_seen,
        complete,
        violations: violated,
        unreached,
    }
}

/// Reserved property name under which deadlocks are reported.
pub const DEADLOCK: &str = "no-deadlock";

/// Re-run a recorded action schedule from the model's `init_index`-th
/// initial state. Returns every intermediate state (initial state
/// first). Panics with a diagnostic if an action is not applicable at
/// its position — a fixture that drifted from the model fails loudly,
/// not silently.
pub fn replay<M: Model>(model: &M, init_index: usize, actions: &[M::Action]) -> Vec<M::State> {
    let inits = model.init_states();
    let mut state = inits
        .get(init_index)
        .unwrap_or_else(|| panic!("replay: no initial state #{init_index}"))
        .clone();
    let mut states = vec![state.clone()];
    for (i, action) in actions.iter().enumerate() {
        state = model.next_state(&state, action).unwrap_or_else(|| {
            panic!("replay: step {i} ({action:?}) not applicable in {state:?}")
        });
        states.push(state.clone());
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two counters, each incremented to 2; exercises interleaving
    /// dedup: 9 unique states, diamond-shaped space.
    struct TwoCounters;

    impl Model for TwoCounters {
        type State = (u8, u8);
        type Action = usize;

        fn init_states(&self) -> Vec<Self::State> {
            vec![(0, 0)]
        }

        fn actions(&self, s: &Self::State, out: &mut Vec<usize>) {
            if s.0 < 2 {
                out.push(0);
            }
            if s.1 < 2 {
                out.push(1);
            }
        }

        fn next_state(&self, s: &Self::State, a: &usize) -> Option<Self::State> {
            let mut n = *s;
            if *a == 0 {
                n.0 += 1;
            } else {
                n.1 += 1;
            }
            Some(n)
        }

        fn name(&self) -> &'static str {
            "two-counters"
        }
    }

    #[test]
    fn dedups_interleavings() {
        let report = check(&TwoCounters, &[], &Options::default());
        assert_eq!(report.states, 9);
        assert!(report.complete);
        assert_eq!(report.max_depth_seen, 4);
    }

    #[test]
    fn always_violation_has_shortest_trace() {
        let props = [Property::<TwoCounters>::always("sum<3", |_, s| {
            s.0 + s.1 < 3
        })];
        let report = check(&TwoCounters, &props, &Options::default());
        let v = report.violation("sum<3").expect("must be violated");
        // BFS: the first sum==3 state is exactly 3 actions deep.
        assert_eq!(v.trace.steps.len(), 3);
        let last = v.trace.last_state();
        assert_eq!(last.0 + last.1, 3);
    }

    #[test]
    fn eventually_checks_terminal_states_only() {
        // Terminal state is (2,2); sum==4 holds there but nowhere else.
        let props = [Property::<TwoCounters>::eventually("ends-at-4", |_, s| {
            s.0 + s.1 == 4
        })];
        let report = check(&TwoCounters, &props, &Options::default());
        assert!(report.proven(), "{}", report.summary());
    }

    #[test]
    fn sometimes_guards_vacuity() {
        let props = [
            Property::<TwoCounters>::sometimes("reaches-diag", |_, s| s.0 == 2 && s.1 == 2),
            Property::<TwoCounters>::sometimes("never-happens", |_, s| s.0 > 2),
        ];
        let report = check(&TwoCounters, &props, &Options::default());
        assert!(report.violations.is_empty());
        assert_eq!(report.unreached, vec!["never-happens"]);
    }

    #[test]
    fn state_budget_marks_incomplete() {
        let report = check(
            &TwoCounters,
            &[],
            &Options {
                max_states: 4,
                ..Options::default()
            },
        );
        assert!(!report.complete);
        assert!(report.states <= 4);
    }

    #[test]
    fn depth_bound_marks_incomplete() {
        let report = check(
            &TwoCounters,
            &[],
            &Options {
                max_depth: Some(2),
                ..Options::default()
            },
        );
        assert!(!report.complete);
        assert_eq!(report.max_depth_seen, 2);
    }

    /// Classic two-lock deadlock: thread A takes lock 0 then 1, thread
    /// B takes 1 then 0.
    #[derive(Clone, PartialEq, Eq, Hash, Debug)]
    struct LockState {
        pc: [u8; 2],
        holder: [Option<u8>; 2],
    }

    struct DeadlockModel;

    impl DeadlockModel {
        /// Acquisition order per thread: thread 0 wants lock 0 then 1;
        /// thread 1 wants lock 1 then 0.
        fn wants(thread: usize, pc: u8) -> Option<usize> {
            match (thread, pc) {
                (0, 0) => Some(0),
                (0, 1) => Some(1),
                (1, 0) => Some(1),
                (1, 1) => Some(0),
                _ => None,
            }
        }
    }

    impl Model for DeadlockModel {
        type State = LockState;
        type Action = usize; // which thread steps

        fn init_states(&self) -> Vec<LockState> {
            vec![LockState {
                pc: [0, 0],
                holder: [None, None],
            }]
        }

        fn actions(&self, s: &LockState, out: &mut Vec<usize>) {
            for t in 0..2 {
                match Self::wants(t, s.pc[t]) {
                    Some(lock) if s.holder[lock].is_none() => out.push(t),
                    Some(_) => {} // blocked
                    None if s.pc[t] < 4 => out.push(t), // releasing
                    None => {}
                }
            }
        }

        fn next_state(&self, s: &LockState, t: &usize) -> Option<LockState> {
            let mut n = s.clone();
            let t = *t;
            match s.pc[t] {
                0 | 1 => {
                    let lock = Self::wants(t, s.pc[t]).unwrap();
                    if s.holder[lock].is_some() {
                        return None;
                    }
                    n.holder[lock] = Some(t as u8);
                }
                2 | 3 => {
                    // Release in reverse order.
                    let lock = Self::wants(t, 3 - s.pc[t]).unwrap();
                    n.holder[lock] = None;
                }
                _ => return None,
            }
            n.pc[t] += 1;
            Some(n)
        }

        fn is_terminal_ok(&self, s: &LockState) -> bool {
            s.pc == [4, 4]
        }

        fn name(&self) -> &'static str {
            "two-lock-deadlock"
        }
    }

    #[test]
    fn finds_deadlock_with_trace() {
        let report = check(&DeadlockModel, &[], &Options::default());
        let v = report.violation(DEADLOCK).expect("deadlock must be found");
        // Shortest deadlock: each thread takes its first lock.
        assert_eq!(v.trace.steps.len(), 2);
        let end = v.trace.last_state();
        assert_eq!(end.holder, [Some(0), Some(1)]);
        // And the trace replays to the same state.
        let actions: Vec<usize> = v.trace.steps.iter().map(|(a, _)| *a).collect();
        let states = replay(&DeadlockModel, 0, &actions);
        assert_eq!(states.last().unwrap(), end);
    }

    #[test]
    fn dfs_finds_same_violations() {
        let report = check(
            &DeadlockModel,
            &[],
            &Options {
                search: Search::Dfs,
                ..Options::default()
            },
        );
        assert!(report.violation(DEADLOCK).is_some());
    }

    #[test]
    fn replay_rejects_stale_fixture() {
        let result = std::panic::catch_unwind(|| {
            // Thread 0 stepping 5 times walks past its program.
            replay(&DeadlockModel, 0, &[0, 0, 0, 0, 0]);
        });
        assert!(result.is_err());
    }

    #[test]
    fn trace_render_is_stable() {
        let props = [Property::<TwoCounters>::always("sum<1", |_, s| s.0 + s.1 < 1)];
        let report = check(&TwoCounters, &props, &Options::default());
        let text = report.violation("sum<1").unwrap().trace.render();
        assert!(text.starts_with("init: (0, 0)"));
        assert!(text.contains("=> (1, 0)"));
    }
}
