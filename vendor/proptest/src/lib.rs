//! Stand-in for `proptest` (offline builds; see `vendor/README.md`).
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!` macro with `arg in strategy` bindings, range / `any` /
//! tuple / `prop::collection::vec` strategies, `ProptestConfig`, and the
//! `prop_assert*` macros. Cases are generated from a deterministic RNG
//! seeded per test (name hash), so failures reproduce across runs. No
//! shrinking — a failing case panics with the generated inputs printed.

use std::ops::Range;

/// Deterministic xorshift* generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed | 1,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. `sample` must be total for every rng state.
pub trait Strategy {
    type Value: std::fmt::Debug;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                ((rng.next_u64() as u128 % span) as i128 + self.start as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

/// `any::<T>()` — uniform over the full domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: AnySample>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub trait AnySample: Sized + std::fmt::Debug {
    fn sample_any(rng: &mut TestRng) -> Self;
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl AnySample for $t {
            fn sample_any(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl AnySample for bool {
    fn sample_any(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl AnySample for f64 {
    fn sample_any(rng: &mut TestRng) -> f64 {
        // Finite floats only (proptest's default also avoids NaN/inf).
        f64::from_bits(rng.next_u64() & 0x7FEF_FFFF_FFFF_FFFF)
            * if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 }
    }
}

impl AnySample for f32 {
    fn sample_any(rng: &mut TestRng) -> f32 {
        f32::from_bits((rng.next_u64() as u32) & 0x7F7F_FFFF)
            * if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 }
    }
}

impl<T: AnySample> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_any(rng)
    }
}

/// Collection size specification: a fixed length or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end.max(r.start + 1),
        }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let n = self.size.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Run configuration: number of generated cases per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a over the test name: per-test deterministic seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub mod prelude {
    pub use crate::collection as prop_collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestRng,
    };

    /// `prop::` namespace as the real crate exposes it.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Marker payload used by [`prop_assume!`] to reject a case; the
/// `proptest!` runner catches it and skips the sample instead of
/// failing the test.
#[derive(Debug)]
pub struct AssumeRejected;

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            ::std::panic::panic_any($crate::AssumeRejected);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            ::std::panic::panic_any($crate::AssumeRejected);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::sample(&($strat), &mut rng);
                    )*
                    // Describe the case before the body runs: the body may
                    // move the inputs into closures.
                    let mut case_desc = String::new();
                    $(
                        case_desc.push_str(&format!(
                            "  {} = {:?}\n",
                            stringify!($arg),
                            $arg
                        ));
                    )*
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(payload) = result {
                        if payload.downcast_ref::<$crate::AssumeRejected>().is_some() {
                            // prop_assume! rejected this sample — skip it.
                            continue;
                        }
                        eprintln!(
                            "proptest case {} of {} failed for inputs:\n{}",
                            case + 1,
                            stringify!($name),
                            case_desc
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name ( $($arg in $strat),* ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(n in 3usize..9, x in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u32..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in v {
                prop_assert!(x < 100);
            }
        }

        #[test]
        fn fixed_len_vec(v in prop::collection::vec(any::<u8>(), 9)) {
            prop_assert_eq!(v.len(), 9);
        }

        #[test]
        fn tuples_sample(t in (1usize..4, 1usize..4, 1usize..3)) {
            prop_assert!(t.0 < 4 && t.1 < 4 && t.2 < 3);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::new(seed_from_name_test());
        let mut b = TestRng::new(seed_from_name_test());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    fn seed_from_name_test() -> u64 {
        crate::seed_from_name("some_test")
    }
}
