//! Serial stand-in for `rayon`, used when the real crate cannot be
//! fetched (hermetic/offline builds). Wired in through the workspace's
//! `[patch.crates-io]` table — see `vendor/README.md`.
//!
//! Every `par_*` entry point returns a [`SerIter`] wrapper around the
//! corresponding sequential iterator. `SerIter` exposes the rayon-only
//! combinators the codebase uses (`for_each_init`, `map_init`,
//! rayon-style `reduce`) as inherent methods and forwards everything
//! else through its `Iterator` impl, so call sites compile unchanged.
//! Results are bit-identical to the parallel version wherever the
//! parallel code was written to be deterministic (which this codebase
//! requires for checkpoint/restart bit-exactness anyway).

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelSlice, ParallelSliceMut,
    };
}

/// Serial replacement for rayon's parallel iterators.
pub struct SerIter<I>(pub I);

impl<I: Iterator> Iterator for SerIter<I> {
    type Item = I::Item;
    #[inline]
    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }
    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<I: Iterator> SerIter<I> {
    /// rayon adapter: map (kept inherent so chained rayon-only calls
    /// still see a `SerIter`).
    #[inline]
    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> SerIter<std::iter::Map<I, F>> {
        SerIter(self.0.map(f))
    }

    #[inline]
    pub fn enumerate(self) -> SerIter<std::iter::Enumerate<I>> {
        SerIter(self.0.enumerate())
    }

    #[inline]
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> SerIter<std::iter::Filter<I, F>> {
        SerIter(self.0.filter(f))
    }

    /// rayon's `zip` accepts anything that parallelizes; serially any
    /// `IntoIterator` works.
    #[inline]
    pub fn zip<Z: IntoIterator>(self, other: Z) -> SerIter<std::iter::Zip<I, Z::IntoIter>> {
        SerIter(self.0.zip(other))
    }

    #[inline]
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// rayon: per-worker state; serially one state for the whole loop.
    #[inline]
    pub fn for_each_init<T, INIT, F>(self, init: INIT, mut f: F)
    where
        INIT: FnMut() -> T,
        F: FnMut(&mut T, I::Item),
    {
        let mut init = init;
        let mut state = init();
        for item in self.0 {
            f(&mut state, item);
        }
    }

    /// rayon: `map` with per-worker state.
    #[inline]
    pub fn map_init<T, B, INIT, F>(self, init: INIT, f: F) -> SerIter<MapInit<I, T, F>>
    where
        INIT: FnMut() -> T,
        F: FnMut(&mut T, I::Item) -> B,
    {
        let mut init = init;
        SerIter(MapInit {
            iter: self.0,
            state: init(),
            f,
        })
    }

    /// rayon-style reduce: identity + associative op.
    #[inline]
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// rayon tuning knob — a no-op serially.
    #[inline]
    pub fn with_min_len(self, _len: usize) -> Self {
        self
    }

    #[inline]
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    #[inline]
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }
}

/// Iterator produced by [`SerIter::map_init`].
pub struct MapInit<I, T, F> {
    iter: I,
    state: T,
    f: F,
}

impl<I: Iterator, T, B, F: FnMut(&mut T, I::Item) -> B> Iterator for MapInit<I, T, F> {
    type Item = B;
    #[inline]
    fn next(&mut self) -> Option<B> {
        let item = self.iter.next()?;
        Some((self.f)(&mut self.state, item))
    }
}

/// `.par_iter()` on shared references.
pub trait IntoParallelRefIterator<'a> {
    type SerialIter: Iterator;
    fn par_iter(&'a self) -> SerIter<Self::SerialIter>;
}

impl<'a, T: 'a, C: ?Sized + 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator<Item = &'a T>,
{
    type SerialIter = <&'a C as IntoIterator>::IntoIter;
    fn par_iter(&'a self) -> SerIter<Self::SerialIter> {
        SerIter(self.into_iter())
    }
}

/// `.par_iter_mut()` on unique references.
pub trait IntoParallelRefMutIterator<'a> {
    type SerialIter: Iterator;
    fn par_iter_mut(&'a mut self) -> SerIter<Self::SerialIter>;
}

impl<'a, T: 'a, C: ?Sized + 'a> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator<Item = &'a mut T>,
{
    type SerialIter = <&'a mut C as IntoIterator>::IntoIter;
    fn par_iter_mut(&'a mut self) -> SerIter<Self::SerialIter> {
        SerIter(self.into_iter())
    }
}

/// `.into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    type SerialIter: Iterator;
    fn into_par_iter(self) -> SerIter<Self::SerialIter>;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type SerialIter = C::IntoIter;
    fn into_par_iter(self) -> SerIter<C::IntoIter> {
        SerIter(self.into_iter())
    }
}

/// `.par_chunks{,_mut}()` on slices.
pub trait ParallelSlice<T> {
    fn par_chunks(&self, size: usize) -> SerIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> SerIter<std::slice::Chunks<'_, T>> {
        SerIter(self.chunks(size))
    }
}

pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, size: usize) -> SerIter<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> SerIter<std::slice::ChunksMut<'_, T>> {
        SerIter(self.chunks_mut(size))
    }
}

/// Serial thread-pool stand-ins: `install` just runs the closure.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.max(1),
        })
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serial rayon stub cannot fail to build")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Number of "worker threads" — serially always 1.
pub fn current_num_threads() -> usize {
    1
}

/// rayon::join — serially: run both in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_serial() {
        let v = vec![1, 2, 3, 4];
        let s: i32 = v.par_iter().map(|&x| x * 2).sum();
        assert_eq!(s, 20);
    }

    #[test]
    fn for_each_init_runs_all() {
        let mut out = vec![0usize; 4];
        out.par_chunks_mut(2).for_each_init(
            || 7usize,
            |state, chunk| {
                for v in chunk {
                    *v = *state;
                }
            },
        );
        assert_eq!(out, vec![7, 7, 7, 7]);
    }

    #[test]
    fn map_init_and_reduce() {
        let total = (0..5usize)
            .into_par_iter()
            .map_init(|| 10usize, |base, i| *base + i)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 60);
    }
}
