//! Stand-in for `rand` 0.9 (offline builds; see `vendor/README.md`).
//!
//! Provides `rngs::StdRng` — **bit-compatible** with the real crate's
//! `StdRng` (ChaCha12, seeded through `rand_core`'s PCG32-based
//! `seed_from_u64`, words consumed with `BlockRng` semantics), so
//! seed-sensitive results (initial conditions, test realizations,
//! checkpoint fingerprints) are identical whether this stub or the real
//! crate is linked. Also the `SeedableRng` / `RngCore` / `Rng` traits
//! and uniform `random::<T>()` / `random_range` sampling for the
//! primitive types in use.

/// Core RNG interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let b = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "standard" domain (`[0,1)` for
/// floats, full range for integers).
pub trait StandardSample {
    fn sample_standard(rng: &mut dyn FnMut() -> u64) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard(rng: &mut dyn FnMut() -> u64) -> f64 {
        (rng() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard(rng: &mut dyn FnMut() -> u64) -> f32 {
        (rng() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard(rng: &mut dyn FnMut() -> u64) -> u64 {
        rng()
    }
}

impl StandardSample for u32 {
    fn sample_standard(rng: &mut dyn FnMut() -> u64) -> u32 {
        (rng() >> 32) as u32
    }
}

impl StandardSample for usize {
    fn sample_standard(rng: &mut dyn FnMut() -> u64) -> usize {
        rng() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard(rng: &mut dyn FnMut() -> u64) -> bool {
        rng() & 1 == 1
    }
}

/// User-facing sampling methods (auto-implemented for every `RngCore`).
pub trait Rng: RngCore {
    fn random<T: StandardSample>(&mut self) -> T {
        let mut f = || self.next_u64();
        T::sample_standard(&mut f)
    }

    /// Uniform sample from a half-open integer-or-float range.
    fn random_range<T: RangeSample>(&mut self, range: std::ops::Range<T>) -> T {
        let mut f = || self.next_u64();
        T::sample_range(&range, &mut f)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Range sampling for `random_range`.
pub trait RangeSample: Sized {
    fn sample_range(range: &std::ops::Range<Self>, rng: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! int_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_range(range: &std::ops::Range<Self>, rng: &mut dyn FnMut() -> u64) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = ((rng() as u128) % span) as i128 + range.start as i128;
                v as $t
            }
        }
    )*};
}

int_range_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RangeSample for f64 {
    fn sample_range(range: &std::ops::Range<Self>, rng: &mut dyn FnMut() -> u64) -> f64 {
        let u = f64::sample_standard(rng);
        range.start + (range.end - range.start) * u
    }
}

impl RangeSample for f32 {
    fn sample_range(range: &std::ops::Range<Self>, rng: &mut dyn FnMut() -> u64) -> f32 {
        let u = f32::sample_standard(rng);
        range.start + (range.end - range.start) * u
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// ChaCha12 rounds, matching rand 0.9's `StdRng`.
    const ROUNDS: usize = 12;
    /// `rand_chacha` generates four 16-word blocks per refill; the
    /// `BlockRng` index walks this 64-word buffer.
    const BUF_WORDS: usize = 64;

    /// Bit-compatible reimplementation of rand 0.9's `StdRng`
    /// (`ChaCha12Rng` with stream 0), including `seed_from_u64`'s PCG32
    /// seed expansion and `BlockRng`'s u32/u64 extraction order.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        key: [u32; 8],
        /// Block counter of the *next* block to generate.
        counter: u64,
        buf: [u32; BUF_WORDS],
        index: usize,
    }

    #[inline(always)]
    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    /// One ChaCha block (djb variant: 64-bit counter in words 12–13,
    /// 64-bit stream id — always 0 for `StdRng` — in words 14–15).
    fn chacha_block(key: &[u32; 8], counter: u64, rounds: usize) -> [u32; 16] {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(key);
        state[12] = counter as u32;
        state[13] = (counter >> 32) as u32;
        let mut w = state;
        for _ in 0..rounds / 2 {
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (wi, si) in w.iter_mut().zip(state.iter()) {
            *wi = wi.wrapping_add(*si);
        }
        w
    }

    impl StdRng {
        /// Real-crate `SeedableRng::from_seed`: the 32 seed bytes become
        /// the key as little-endian words.
        pub fn from_seed(seed: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            }
            StdRng {
                key,
                counter: 0,
                buf: [0; BUF_WORDS],
                index: BUF_WORDS,
            }
        }

        fn refill(&mut self) {
            for blk in 0..BUF_WORDS / 16 {
                let words = chacha_block(&self.key, self.counter, ROUNDS);
                self.buf[blk * 16..blk * 16 + 16].copy_from_slice(&words);
                self.counter = self.counter.wrapping_add(1);
            }
            self.index = 0;
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // rand_core's seed_from_u64: a PCG32 stream fills the seed
            // four bytes at a time (state advanced before each output).
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(4) {
                state = state.wrapping_mul(MUL).wrapping_add(INC);
                let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
                let rot = (state >> 59) as u32;
                chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
            }
            StdRng::from_seed(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= BUF_WORDS {
                self.refill();
            }
            let w = self.buf[self.index];
            self.index += 1;
            w
        }

        // BlockRng::next_u64: two consecutive u32 words, low half first,
        // with the real crate's buffer-boundary behavior.
        fn next_u64(&mut self) -> u64 {
            if self.index < BUF_WORDS - 1 {
                let lo = self.buf[self.index] as u64;
                let hi = self.buf[self.index + 1] as u64;
                self.index += 2;
                lo | (hi << 32)
            } else if self.index >= BUF_WORDS {
                self.refill();
                self.index = 2;
                self.buf[0] as u64 | ((self.buf[1] as u64) << 32)
            } else {
                let lo = self.buf[BUF_WORDS - 1] as u64;
                self.refill();
                self.index = 1;
                lo | ((self.buf[0] as u64) << 32)
            }
        }
    }

    #[cfg(test)]
    mod chacha_tests {
        use super::*;

        /// The ChaCha core against the classic 20-round known-answer
        /// vector (zero key, zero nonce, block 0): keystream starts
        /// `76 b8 e0 ad a0 f1 3d 90 40 5d 6a e5 53 86 bd 28`.
        #[test]
        fn chacha20_known_answer() {
            let words = chacha_block(&[0u32; 8], 0, 20);
            assert_eq!(words[0], 0xade0_b876);
            assert_eq!(words[1], 0x903d_f1a0);
            assert_eq!(words[2], 0xe56a_5d40);
            assert_eq!(words[3], 0x28bd_8653);
        }

        /// u64 extraction is little-word-first and block-sequential.
        #[test]
        fn next_u64_word_order() {
            let mut a = StdRng::from_seed([1u8; 32]);
            let mut b = StdRng::from_seed([1u8; 32]);
            let x = a.next_u64();
            let lo = b.next_u32() as u64;
            let hi = b.next_u32() as u64;
            assert_eq!(x, lo | (hi << 32));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            let w: f32 = rng.random();
            assert!((0.0..1.0).contains(&w));
        }
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }
}
