//! Host peak-flops calibration.
//!
//! Fig. 5 reports the force kernel as a *percentage of node peak*. To frame
//! our measurements the same way we need the host's achievable peak; this
//! module measures it with a saturating chain of independent FMAs — the
//! same kind of upper bound the paper derives from QPX issue rates.

use std::time::Instant;

/// Measure achievable single-precision flops/s using `threads` OS threads,
/// each running independent FMA chains for roughly `millis` milliseconds.
///
/// Returns flops per second (an FMA counts as 2 flops).
#[must_use] 
pub fn calibrate_peak_flops(threads: usize, millis: u64) -> f64 {
    assert!(threads > 0);
    let iters_guess: u64 = 4_000_000;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            std::thread::spawn(move || {
                let mut total_flops = 0.0f64;
                let mut elapsed = 0.0f64;
                let mut iters = iters_guess;
                while elapsed * 1e3 < millis as f64 {
                    let start = Instant::now();
                    let acc = fma_burst(iters, 1.0 + t as f32 * 1e-7);
                    elapsed += start.elapsed().as_secs_f64();
                    // 8 lanes × 4 chains × 2 flops per FMA per iteration.
                    total_flops += iters as f64 * 8.0 * 4.0 * 2.0;
                    std::hint::black_box(acc);
                    iters = iters.saturating_mul(2);
                }
                total_flops / elapsed
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("calibration thread"))
        .sum()
}

/// A burst of `iters` iterations over four interleaved 8-lane FMA
/// chains (32 independent accumulators — enough to hide FMA latency and
/// keep the auto-vectorizer on wide registers, matching what the force
/// kernel's inner loop achieves).
#[inline(never)]
fn fma_burst(iters: u64, seed: f32) -> f32 {
    let mut a = [seed; 8];
    let mut b = [seed * 0.5 + 0.1; 8];
    let mut e = [seed * 0.25 + 0.2; 8];
    let mut g = [seed * 0.125 + 0.3; 8];
    let c = [0.999_9f32; 8];
    let d = [1.000_1f32; 8];
    for _ in 0..iters {
        for i in 0..8 {
            a[i] = a[i].mul_add(c[i], 1e-9);
        }
        for i in 0..8 {
            b[i] = b[i].mul_add(d[i], -1e-9);
        }
        for i in 0..8 {
            e[i] = e[i].mul_add(c[i], 2e-9);
        }
        for i in 0..8 {
            g[i] = g[i].mul_add(d[i], -2e-9);
        }
    }
    a.iter().sum::<f32>() + b.iter().sum::<f32>() + e.iter().sum::<f32>() + g.iter().sum::<f32>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_returns_plausible_rate() {
        let f = calibrate_peak_flops(1, 30);
        // Any machine this runs on does between 100 MFlops and 1 TFlops
        // per core with this scalar-fallback kernel.
        assert!(f > 1e8 && f < 1e12, "calibrated {f} flops/s");
    }

    #[test]
    fn more_threads_not_slower() {
        let f1 = calibrate_peak_flops(1, 30);
        let f2 = calibrate_peak_flops(2, 30);
        assert!(f2 > 0.8 * f1, "1t {f1}, 2t {f2}");
    }
}
