//! Self-checks for the vendored loom: the explorer must (a) pass
//! correct code, (b) find seeded concurrency bugs, (c) explore *both*
//! sides of notify/timeout and store-order races, and (d) detect
//! deadlocks.

use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;
use std::collections::BTreeSet;
use std::sync::Mutex as OsMutex;
use std::time::Duration;

#[test]
fn mutex_counter_is_race_free() {
    loom::model(|| {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    let mut g = m.lock();
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 2);
    });
}

#[test]
#[should_panic(expected = "loom model failed")]
fn finds_lost_update_on_unsynchronized_rmw() {
    // Classic racy read-modify-write through separate load/store: some
    // schedule loses an increment, and the explorer must find it.
    loom::model(|| {
        let a = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let a = Arc::clone(&a);
                thread::spawn(move || {
                    let v = a.load(Ordering::SeqCst);
                    a.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(a.load(Ordering::SeqCst), 2);
    });
}

#[test]
fn fetch_add_has_no_lost_update() {
    loom::model(|| {
        let a = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let a = Arc::clone(&a);
                thread::spawn(move || {
                    a.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(a.load(Ordering::SeqCst), 2);
    });
}

#[test]
fn explores_all_store_orders() {
    // Two racing stores: across the run both final values must be seen.
    let seen = std::sync::Arc::new(OsMutex::new(BTreeSet::new()));
    let seen2 = std::sync::Arc::clone(&seen);
    loom::model(move || {
        let a = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = [1u64, 2]
            .into_iter()
            .map(|v| {
                let a = Arc::clone(&a);
                thread::spawn(move || a.store(v, Ordering::SeqCst))
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        seen2.lock().unwrap().insert(a.load(Ordering::SeqCst));
    });
    assert_eq!(*seen.lock().unwrap(), BTreeSet::from([1, 2]));
}

#[test]
fn condvar_handoff_no_lost_wakeup() {
    // Predicate-guarded wait: correct under every schedule, including
    // notify-before-wait (the waiter re-checks before blocking).
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn detects_lost_wakeup_as_deadlock() {
    // Buggy wait: flag checked *before* taking the lock, so a notify
    // can slip between check and wait — the waiter then blocks forever.
    loom::model(|| {
        let pair = Arc::new((Mutex::new(()), Condvar::new(), AtomicBool::new(false)));
        let p2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (m, cv, flag) = &*p2;
            if !flag.load(Ordering::SeqCst) {
                let mut g = m.lock();
                cv.wait(&mut g);
            }
        });
        let (m, cv, flag) = &*pair;
        flag.store(true, Ordering::SeqCst);
        let _g = m.lock();
        cv.notify_all();
        drop(_g);
        waiter.join().unwrap();
    });
}

#[test]
fn wait_for_explores_both_timeout_and_notify() {
    let outcomes = std::sync::Arc::new(OsMutex::new(BTreeSet::new()));
    let o2 = std::sync::Arc::clone(&outcomes);
    loom::model(move || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let notifier = thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        let mut timed_out = false;
        while !*ready {
            if cv.wait_for(&mut ready, Duration::from_millis(10)).timed_out() {
                timed_out = true;
                break;
            }
        }
        drop(ready);
        notifier.join().unwrap();
        o2.lock().unwrap().insert(timed_out);
    });
    assert_eq!(
        *outcomes.lock().unwrap(),
        BTreeSet::from([false, true]),
        "both the notified and the timed-out branch must be explored"
    );
}

#[test]
fn modeled_clock_advances_past_deadline_on_timeout() {
    loom::model(|| {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let start = loom::time::Instant::now();
        let timeout = Duration::from_millis(25);
        let deadline = start + timeout;
        let mut g = m.lock();
        // Sole thread: the only way out of the wait is the timeout.
        let res = cv.wait_for(&mut g, timeout);
        assert!(res.timed_out());
        assert!(loom::time::Instant::now() >= deadline);
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn detects_two_lock_deadlock() {
    loom::model(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop((_ga, _gb));
        t.join().unwrap();
    });
}

#[test]
fn join_returns_thread_value() {
    loom::model(|| {
        let t = thread::spawn(|| 41u32 + 1);
        assert_eq!(t.join().unwrap(), 42);
    });
}

#[test]
#[should_panic(expected = "loom model failed")]
fn bounded_search_still_finds_one_preemption_bug() {
    // The unsynchronized read-modify-write race needs exactly one
    // preemption (between load and store), so a bound of 1 must find
    // it.
    let b = loom::model::Builder {
        preemption_bound: Some(1),
        ..loom::model::Builder::new()
    };
    b.check(|| {
        let v = Arc::new(AtomicU64::new(0));
        let v2 = Arc::clone(&v);
        let t = thread::spawn(move || {
            let x = v2.load(Ordering::SeqCst);
            v2.store(x + 1, Ordering::SeqCst);
        });
        let x = v.load(Ordering::SeqCst);
        v.store(x + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(v.load(Ordering::SeqCst), 2);
    });
}

#[test]
fn bounded_search_shrinks_the_schedule_space() {
    // With zero preemptions allowed, only natural switch points remain:
    // the two writer threads each run to completion once started, so
    // the final interleaving is one of the two serial orders and the
    // counter is always consistent.
    let b = loom::model::Builder {
        preemption_bound: Some(0),
        ..loom::model::Builder::new()
    };
    b.check(|| {
        let v = Arc::new(AtomicU64::new(0));
        let v2 = Arc::clone(&v);
        let t = thread::spawn(move || {
            v2.fetch_add(1, Ordering::SeqCst);
            v2.fetch_add(1, Ordering::SeqCst);
        });
        v.fetch_add(10, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(v.load(Ordering::SeqCst), 12);
    });
}
