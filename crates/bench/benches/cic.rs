//! Criterion benchmarks of CIC deposit (serial vs colored-parallel) and
//! interpolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hacc_pm::{deposit_cic, deposit_cic_par, interpolate_cic};

fn particles(np: usize, n: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut s = 99u64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s as f64 / u64::MAX as f64) as f32 * n as f32
    };
    let xs: Vec<f32> = (0..np).map(|_| next()).collect();
    let ys: Vec<f32> = (0..np).map(|_| next()).collect();
    let zs: Vec<f32> = (0..np).map(|_| next()).collect();
    (xs, ys, zs)
}

fn bench_cic(c: &mut Criterion) {
    let n = 64usize;
    let np = 100_000usize;
    let (xs, ys, zs) = particles(np, n);
    let mut group = c.benchmark_group("cic");
    group.throughput(Throughput::Elements(np as u64));
    group.bench_function(BenchmarkId::new("deposit_serial", np), |b| {
        b.iter(|| {
            let mut grid = vec![0.0f64; n * n * n];
            deposit_cic(&mut grid, n, &xs, &ys, &zs, 1.0);
            std::hint::black_box(grid)
        });
    });
    group.bench_function(BenchmarkId::new("deposit_parallel", np), |b| {
        b.iter(|| {
            let mut grid = vec![0.0f64; n * n * n];
            deposit_cic_par(&mut grid, n, &xs, &ys, &zs, 1.0);
            std::hint::black_box(grid)
        });
    });
    let grid = vec![1.0f64; n * n * n];
    group.bench_function(BenchmarkId::new("interpolate", np), |b| {
        b.iter(|| std::hint::black_box(interpolate_cic(&grid, n, &xs, &ys, &zs)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_cic
}
criterion_main!(benches);
