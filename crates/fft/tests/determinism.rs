//! Cross-dispatch determinism: the AVX2+FMA kernels and the portable
//! fallback must produce **bitwise identical** spectra, so a simulation
//! gives the same answer on any node of a heterogeneous fleet (and a
//! forced-portable rerun reproduces a vectorized run exactly).
//!
//! Uses the process-global dispatch override, so every test that flips
//! it serializes on one mutex. The override panics when AVX2 hardware is
//! absent; those comparisons degrade to portable-vs-portable (trivially
//! equal) rather than failing on non-x86 or pre-AVX2 machines.

use hacc_fft::{Complex64, Fft1d, Fft3, FftSimdLevel, RealFft3};

use std::sync::Mutex;

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Run `f` under a forced dispatch level, restoring auto-detect after.
fn with_level<T>(level: FftSimdLevel, f: impl FnOnce() -> T) -> T {
    hacc_fft::kernels::set_dispatch_override(Some(level));
    let out = f();
    hacc_fft::kernels::set_dispatch_override(None);
    out
}

fn rand_reals(len: usize, seed: u64) -> Vec<f64> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) - 0.5
        })
        .collect()
}

fn rand_grid(len: usize, seed: u64) -> Vec<Complex64> {
    let re = rand_reals(len, seed);
    let im = rand_reals(len, seed ^ 0xdead_beef);
    re.into_iter()
        .zip(im)
        .map(|(a, b)| Complex64::new(a, b))
        .collect()
}

fn assert_bits_eq(a: &[Complex64], b: &[Complex64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{what}: bin {i} differs: {x:?} vs {y:?}"
        );
    }
}

/// Forced-portable and AVX2 3-D r2c spectra are bitwise identical at the
/// production grid sizes (64³, 96³, 128³ — pure radix-4/2 and mixed
/// 2^a·3 schedules).
#[test]
fn real_3d_spectra_bitwise_identical_across_dispatch() {
    let _guard = OVERRIDE_LOCK.lock().expect("override lock");
    if !avx2_available() {
        eprintln!("AVX2 unavailable; skipping cross-dispatch comparison");
        return;
    }
    for n in [64usize, 96, 128] {
        let nzh = n / 2 + 1;
        let data = rand_reals(n * n * n, 42 + n as u64);
        let run = |level| {
            with_level(level, || {
                let plan = RealFft3::new_cubic(n);
                let mut spec = vec![Complex64::ZERO; n * n * nzh];
                plan.forward(&data, &mut spec);
                spec
            })
        };
        let portable = run(FftSimdLevel::Portable);
        let vector = run(FftSimdLevel::Avx2Fma);
        assert_bits_eq(&portable, &vector, &format!("r2c n={n}"));
    }
}

/// Same for the c2c 3-D transform, forward and (normalized) backward.
#[test]
fn complex_3d_spectra_bitwise_identical_across_dispatch() {
    let _guard = OVERRIDE_LOCK.lock().expect("override lock");
    if !avx2_available() {
        eprintln!("AVX2 unavailable; skipping cross-dispatch comparison");
        return;
    }
    for n in [64usize, 96] {
        let data = rand_grid(n * n * n, 7 + n as u64);
        let run = |level| {
            with_level(level, || {
                let plan = Fft3::new_cubic(n);
                let mut fwd = data.clone();
                plan.forward(&mut fwd);
                let mut back = fwd.clone();
                plan.backward(&mut back);
                (fwd, back)
            })
        };
        let (pf, pb) = run(FftSimdLevel::Portable);
        let (vf, vb) = run(FftSimdLevel::Avx2Fma);
        assert_bits_eq(&pf, &vf, &format!("c2c fwd n={n}"));
        assert_bits_eq(&pb, &vb, &format!("c2c back n={n}"));
    }
}

/// Prime/odd line sizes (5 hits the radix-5 Stockham stage; 7 and 33
/// fall back to the generic mixed-radix path) stay level-independent
/// and roundtrip through the batched entry point.
#[test]
fn odd_and_prime_line_sizes_deterministic_and_roundtrip() {
    let _guard = OVERRIDE_LOCK.lock().expect("override lock");
    for n in [5usize, 7, 33] {
        let plan = Fft1d::new(n);
        for batch in 1..=Fft1d::MAX_BATCH {
            let sig = rand_grid(n * batch, 1000 + (n * batch) as u64);
            let run = |level| {
                with_level(level, || {
                    let mut data = sig.clone();
                    let mut scratch = vec![Complex64::ZERO; plan.scratch_len_batch(batch)];
                    plan.transform_batch(&mut data, batch, &mut scratch, false);
                    data
                })
            };
            let portable = run(FftSimdLevel::Portable);
            if avx2_available() {
                let vector = run(FftSimdLevel::Avx2Fma);
                assert_bits_eq(&portable, &vector, &format!("n={n} batch={batch}"));
            }
            // Unnormalized inverse of the forward result recovers n × input.
            let mut back = portable;
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len_batch(batch)];
            plan.transform_batch(&mut back, batch, &mut scratch, true);
            for (a, b) in back.iter().zip(&sig) {
                let want = b.scale(n as f64);
                assert!(
                    (*a - want).abs() < 1e-9 * n as f64,
                    "roundtrip n={n} batch={batch}: {a:?} vs {want:?}"
                );
            }
        }
    }
}

/// A single Fourier mode lands in exactly its own bin with amplitude n,
/// through the batched split-radix path, independent of dispatch level.
#[test]
fn known_mode_lands_in_single_bin_all_levels() {
    let _guard = OVERRIDE_LOCK.lock().expect("override lock");
    let levels: &[FftSimdLevel] = if avx2_available() {
        &[FftSimdLevel::Portable, FftSimdLevel::Avx2Fma]
    } else {
        &[FftSimdLevel::Portable]
    };
    for &level in levels {
        with_level(level, || {
            for n in [16usize, 20, 24, 60] {
                let plan = Fft1d::new(n);
                let mode = 3 % n;
                let batch = 2;
                // Lane 0 carries the mode; lane 1 is zero.
                let mut data = vec![Complex64::ZERO; n * batch];
                for j in 0..n {
                    let phase = 2.0 * std::f64::consts::PI * (mode * j % n) as f64 / n as f64;
                    data[j * batch] = Complex64::cis(phase);
                }
                let mut scratch = vec![Complex64::ZERO; plan.scratch_len_batch(batch)];
                plan.transform_batch(&mut data, batch, &mut scratch, false);
                for k in 0..n {
                    let got = data[k * batch];
                    let want = if k == mode { n as f64 } else { 0.0 };
                    assert!(
                        (got.re - want).abs() < 1e-9 && got.im.abs() < 1e-9,
                        "{level:?} n={n} bin {k}: {got:?}"
                    );
                    let lane1 = data[k * batch + 1];
                    assert!(lane1.abs() < 1e-12, "{level:?} n={n} lane1 bin {k}");
                }
            }
        });
    }
}
