//! Slab-decomposed distributed 3-D FFT.
//!
//! The first version of HACC used a slab (1-D) decomposition, subject to
//! the limit `ranks ≤ N` (Section IV.A); we reproduce it both as the
//! Roadrunner-era baseline of Fig. 6 and as a simpler correctness
//! cross-check for the pencil transform.
//!
//! Each rank owns `lx` contiguous x-planes of the global `n³` grid. The
//! forward transform performs local y/z FFTs, a global x↔y transpose
//! (`alltoallv`), local x FFTs, and a transpose back, so both real and
//! k-space data live in the same x-slab layout.

use hacc_comm::Comm;

use crate::complex::Complex64;
use crate::dim3::BATCH;
use crate::layout::{block_ranges, DistFft3, Layout3};
use crate::plan::Fft1d;
use crate::scratch::BufPool;

/// Slab FFT bound to a communicator.
pub struct SlabFft<'a> {
    comm: &'a Comm,
    n: usize,
    ranges: Vec<(usize, usize)>,
    plan: Fft1d,
    pool: BufPool,
}

impl<'a> SlabFft<'a> {
    /// Create a slab FFT of global side `n` over `comm`.
    /// Requires `comm.size() ≤ n`.
    #[must_use]
    pub fn new(comm: &'a Comm, n: usize) -> Self {
        assert!(
            comm.size() <= n,
            "slab decomposition requires ranks ({}) <= N ({n})",
            comm.size()
        );
        SlabFft {
            comm,
            n,
            ranges: block_ranges(n, comm.size()),
            plan: Fft1d::new(n),
            pool: BufPool::new(),
        }
    }

    fn my_range(&self) -> (usize, usize) {
        self.ranges[self.comm.rank()]
    }

    /// Local y/z (or inverse) FFTs on the x-slab `[lx][n][n]`, batched
    /// `BATCH` lines at a time through pooled tiles (alloc-free once the
    /// pool is warm).
    fn fft_yz(&self, data: &mut [Complex64], inverse: bool) {
        let n = self.n;
        let (_, lx) = self.my_range();
        let mut tile = self.pool.lease(BATCH * n);
        let mut scratch = self.pool.lease(self.plan.scratch_len_batch(BATCH));
        for ixl in 0..lx {
            let plane = &mut data[ixl * n * n..(ixl + 1) * n * n];
            // z lines (contiguous rows, packed batch-major).
            let mut iy0 = 0;
            while iy0 < n {
                let b = BATCH.min(n - iy0);
                let block = &mut plane[iy0 * n..(iy0 + b) * n];
                for (r, row) in block.chunks(n).enumerate() {
                    for (j, &v) in row.iter().enumerate() {
                        tile[j * b + r] = v;
                    }
                }
                self.plan
                    .transform_batch(&mut tile[..n * b], b, &mut scratch, inverse);
                for (r, row) in block.chunks_mut(n).enumerate() {
                    for (j, v) in row.iter_mut().enumerate() {
                        *v = tile[j * b + r];
                    }
                }
                iy0 += b;
            }
            // y lines (stride n): gather BATCH adjacent z columns.
            let mut iz0 = 0;
            while iz0 < n {
                let b = BATCH.min(n - iz0);
                for iy in 0..n {
                    let row = iy * n + iz0;
                    tile[iy * b..(iy + 1) * b].copy_from_slice(&plane[row..row + b]);
                }
                self.plan
                    .transform_batch(&mut tile[..n * b], b, &mut scratch, inverse);
                for iy in 0..n {
                    let row = iy * n + iz0;
                    plane[row..row + b].copy_from_slice(&tile[iy * b..(iy + 1) * b]);
                }
                iz0 += b;
            }
        }
    }

    /// x-line FFTs in the y-slab layout `[n][ly][n]`, batched over
    /// adjacent z columns.
    fn fft_x(&self, data: &mut [Complex64], inverse: bool) {
        let n = self.n;
        let (_, ly) = self.my_range();
        let stride = ly * n;
        let mut tile = self.pool.lease(BATCH * n);
        let mut scratch = self.pool.lease(self.plan.scratch_len_batch(BATCH));
        for iyl in 0..ly {
            let mut iz0 = 0;
            while iz0 < n {
                let b = BATCH.min(n - iz0);
                let off = iyl * n + iz0;
                for ix in 0..n {
                    let s = ix * stride + off;
                    tile[ix * b..(ix + 1) * b].copy_from_slice(&data[s..s + b]);
                }
                self.plan
                    .transform_batch(&mut tile[..n * b], b, &mut scratch, inverse);
                for ix in 0..n {
                    let s = ix * stride + off;
                    data[s..s + b].copy_from_slice(&tile[ix * b..(ix + 1) * b]);
                }
                iz0 += b;
            }
        }
    }

    /// Transpose x-slab `[lx][n][n]` → y-slab `[n][ly][n]`.
    fn to_y_slab(&self, data: &[Complex64]) -> Vec<Complex64> {
        let n = self.n;
        let (_, lx) = self.my_range();
        let sends: Vec<Vec<Complex64>> = self
            .ranges
            .iter()
            .map(|&(y0, lyr)| {
                let mut buf = Vec::with_capacity(lx * lyr * n);
                for ixl in 0..lx {
                    for iyl in 0..lyr {
                        let row = (ixl * n + y0 + iyl) * n;
                        buf.extend_from_slice(&data[row..row + n]);
                    }
                }
                buf
            })
            .collect();
        let recvs = self.comm.alltoallv(sends);
        let (_, ly) = self.my_range();
        let mut out = vec![Complex64::ZERO; n * ly * n];
        for (r, buf) in recvs.iter().enumerate() {
            let (x0, lxr) = self.ranges[r];
            let mut it = buf.iter();
            for ixl in 0..lxr {
                for iyl in 0..ly {
                    let dst = ((x0 + ixl) * ly + iyl) * n;
                    for v in out[dst..dst + n].iter_mut() {
                        *v = *it.next().expect("transpose payload size");
                    }
                }
            }
        }
        out
    }

    /// Transpose y-slab `[n][ly][n]` → x-slab `[lx][n][n]`.
    fn to_x_slab(&self, data: &[Complex64]) -> Vec<Complex64> {
        let n = self.n;
        let (_, ly) = self.my_range();
        let sends: Vec<Vec<Complex64>> = self
            .ranges
            .iter()
            .map(|&(x0, lxr)| {
                let mut buf = Vec::with_capacity(lxr * ly * n);
                for ixl in 0..lxr {
                    for iyl in 0..ly {
                        let row = ((x0 + ixl) * ly + iyl) * n;
                        buf.extend_from_slice(&data[row..row + n]);
                    }
                }
                buf
            })
            .collect();
        let recvs = self.comm.alltoallv(sends);
        let (_, lx) = self.my_range();
        let mut out = vec![Complex64::ZERO; lx * n * n];
        for (r, buf) in recvs.iter().enumerate() {
            let (y0, lyr) = self.ranges[r];
            let mut it = buf.iter();
            for ixl in 0..lx {
                for iyl in 0..lyr {
                    let dst = (ixl * n + y0 + iyl) * n;
                    for v in out[dst..dst + n].iter_mut() {
                        *v = *it.next().expect("transpose payload size");
                    }
                }
            }
        }
        out
    }
}

impl DistFft3 for SlabFft<'_> {
    fn n(&self) -> usize {
        self.n
    }

    fn real_layout(&self) -> Layout3 {
        let (x0, lx) = self.my_range();
        Layout3 {
            n: self.n,
            origin: [x0, 0, 0],
            size: [lx, self.n, self.n],
        }
    }

    fn k_layout(&self) -> Layout3 {
        self.real_layout()
    }

    fn forward(&self, mut data: Vec<Complex64>) -> Vec<Complex64> {
        assert_eq!(data.len(), self.real_layout().len());
        self.fft_yz(&mut data, false);
        let mut y = self.to_y_slab(&data);
        self.fft_x(&mut y, false);
        self.to_x_slab(&y)
    }

    fn backward(&self, data: Vec<Complex64>) -> Vec<Complex64> {
        let mut y = self.to_y_slab(&data);
        self.fft_x(&mut y, true);
        let mut out = self.to_x_slab(&y);
        self.fft_yz(&mut out, true);
        let inv = 1.0 / (self.n * self.n * self.n) as f64;
        for v in out.iter_mut() {
            *v = v.scale(inv);
        }
        out
    }

    fn comm(&self) -> &Comm {
        self.comm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim3::Fft3;
    use hacc_comm::Machine;

    fn rand_grid(len: usize, seed: u64) -> Vec<Complex64> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) - 0.5
        };
        (0..len).map(|_| Complex64::new(next(), next())).collect()
    }

    /// Run the slab FFT on `ranks` ranks and compare with the serial 3-D FFT.
    fn check(n: usize, ranks: usize) {
        let global = rand_grid(n * n * n, 42 + n as u64);
        let mut want = global.clone();
        Fft3::new_cubic(n).forward(&mut want);

        let globals = global.clone();
        let (results, _) = Machine::new(ranks).run(move |comm| {
            let fft = SlabFft::new(&comm, n);
            let lay = fft.real_layout();
            let mut local = vec![Complex64::ZERO; lay.len()];
            for (i, v) in local.iter_mut().enumerate() {
                let g = lay.global_coords(i);
                *v = globals[(g[0] * n + g[1]) * n + g[2]];
            }
            let k = fft.forward(local);
            (lay, k)
        });
        for (lay, k) in &results {
            for (i, v) in k.iter().enumerate() {
                let g = lay.global_coords(i);
                let w = want[(g[0] * n + g[1]) * n + g[2]];
                assert!((*v - w).abs() < 1e-8, "n={n} p={ranks} at {g:?}");
            }
        }
    }

    #[test]
    fn matches_serial_one_rank() {
        check(8, 1);
    }

    #[test]
    fn matches_serial_multi_rank() {
        check(8, 2);
        check(8, 4);
        check(12, 3);
    }

    #[test]
    fn uneven_split() {
        check(10, 3);
        check(9, 4);
    }

    #[test]
    fn roundtrip_distributed() {
        let n = 8;
        let (ok, _) = Machine::new(4).run(|comm| {
            let fft = SlabFft::new(&comm, n);
            let lay = fft.real_layout();
            let orig = rand_grid(lay.len(), 7 + comm.rank() as u64);
            let k = fft.forward(orig.clone());
            let back = fft.backward(k);
            back.iter()
                .zip(&orig)
                .all(|(a, b)| (*a - *b).abs() < 1e-10)
        });
        assert!(ok.iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn too_many_ranks_rejected() {
        let (_, _) = Machine::new(4).run(|comm| {
            let _ = SlabFft::new(&comm, 2);
        });
    }
}
