//! Pure, I/O-free protocol state machines for the multi-process
//! transport ([`crate::socket`]) and its launcher ([`crate::hub`]).
//!
//! Every *decision* the socket backend makes — whether a frame is
//! accepted or condemns its link, what a reconnect purges, whether a
//! blocked receive fails with `RankFailed` or `CorruptDetected`, how a
//! hub broadcast mutates the local failure-detector mirror, which
//! control line the hub emits for a beat — lives here as a pure
//! function or small state machine over plain data. `socket.rs` and
//! `hub.rs` are rewritten to *drive* these machines: they own the
//! sockets, threads, and locks, but never re-implement the logic. The
//! model-checking suite (`tests/protocol_models.rs`, built on
//! `vendor/modelcheck`) explores exactly the same machines over
//! adversarial event schedules, so the checked model and the shipping
//! implementation cannot drift apart.
//!
//! The [`Mutations`] struct reintroduces the two bugs a human review
//! caught in the original socket transport (lock-order inversion in the
//! timeout diagnosis; condemnation outranking a hub death declaration)
//! behind test-only flags. The live transport always passes
//! [`Mutations::NONE`]; the model suite flips each flag and asserts the
//! checker produces a counterexample — regression proof that the
//! verification layer actually detects the bug class it was built for.
//!
//! Machine ↔ implementation map:
//!
//! | here | drives |
//! |---|---|
//! | [`LinkSession`] | `socket::LinkState` seq/incarnation handling (`register_link`, `write_frame`, `reader_loop`) |
//! | [`recv_gate`] | the verdict loop in `SocketTransport::recv` |
//! | [`send_route`] | the self-send / dead-drop / link split in `SocketTransport::send` |
//! | [`apply_control`] + [`PeerView`] | `SocketTransport::control_loop`'s mirror updates |
//! | [`epoch_gate`], [`rebirth_gate`], [`dead_set`] | `epoch_sync`, `await_rebirth`, `dead_set` |
//! | [`ControlLine`], [`ClientLine`] | both wire directions of the control-line protocol (hub renders, child parses, and vice versa) |
//! | [`hub_beat_outcome`], [`hub_declare`], [`hub_recover`] | the hub's ledger FSM in `serve_client` and the failure monitor |
//! | [`locks`] | the lock-acquisition scripts checked by the lock-order model |

use crate::RankStatus;

/// Test-only mutation hooks: each flag reintroduces one historical bug
/// so the model checker can demonstrate it finds that bug class. The
/// live transport always uses [`Mutations::NONE`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Mutations {
    /// Bug #1 (precedence): a condemned link reports
    /// `CorruptDetected` even after the hub declared the peer dead,
    /// and a `DECLARED` broadcast no longer lifts the condemnation —
    /// survivors probing a corpse whose death tore a frame see
    /// corruption instead of `RankFailed`.
    pub corrupt_outranks_declared: bool,
    /// Bug #2 (silent skip): sequence counters reset on *every*
    /// reconnect instead of only for a replacement incarnation, so
    /// frames lost in a dead connection's buffers vanish without a
    /// sequence gap.
    pub reset_seq_on_reconnect: bool,
    /// Bug #3 (lock order): the receive-timeout diagnosis takes the
    /// link lock while still holding the mailbox lock, inverting the
    /// `Link → Mail` order `register_link` relies on.
    pub diagnose_under_mailbox: bool,
    /// Bug #4 (elasticity): a deliberate retire (`PARKED`) is applied
    /// to the mirror as if it were a failure declaration — the retired
    /// rank enters the dead set, survivors treat an administrative
    /// shrink as a casualty, and recovery machinery fires for a rank
    /// that was never lost.
    pub retire_marks_failed: bool,
}

impl Mutations {
    /// The shipping configuration: no bugs.
    pub const NONE: Mutations = Mutations {
        corrupt_outranks_declared: false,
        reset_seq_on_reconnect: false,
        diagnose_under_mailbox: false,
        retire_marks_failed: false,
    };
}

// ---------------------------------------------------------------------
// Link session: sequence numbers across reconnects and incarnations
// ---------------------------------------------------------------------

/// Per-peer sequence/incarnation state machine — the pure core of
/// `socket::LinkState`. One lives on each side of a link; both sides
/// advance it the same way, which is exactly what the frame-stream
/// model exploits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct LinkSession {
    /// Incarnation of the peer process this session is speaking to.
    pub peer_incarnation: u64,
    /// Next sequence number to stamp on an outbound frame. Monotonic
    /// across reconnects of the same peer incarnation; reset only for
    /// a replacement.
    pub send_seq: u64,
    /// Next sequence number expected inbound (same reset rule), so a
    /// reconnect cannot silently swallow frames the dead connection
    /// accepted but never delivered.
    pub recv_seq: u64,
}

/// What a (re)registration must do besides installing the new stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegisterPlan {
    /// A different incarnation took over: purge the dead incarnation's
    /// outbound backlog and every inbound frame already queued from
    /// this peer — none of it may leak into the replacement.
    pub replacement: bool,
    /// Clear the per-source condemnation flag. Always true: if frames
    /// were really lost across the disconnect, the sequence check
    /// re-condemns on the very next frame, so this can only heal a
    /// link whose stream state is actually intact.
    pub lift_condemnation: bool,
}

/// Verdict on one inbound frame.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum FrameVerdict {
    /// In-order frame from the right peer: deliver it.
    Accept,
    /// Structural failure: condemn the link, trust nothing after it.
    Condemn(CondemnReason),
}

/// Why a frame condemned its link.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CondemnReason {
    /// The frame's self-declared source does not match the link it
    /// arrived on.
    BadSource { claimed: u32, link: usize },
    /// Sequence gap: frames were lost (or reordered) in between.
    SeqGap { expected: u64, got: u64 },
}

impl std::fmt::Display for CondemnReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CondemnReason::BadSource { claimed, link } => {
                write!(f, "frame claims src {claimed} on the link from {link}")
            }
            CondemnReason::SeqGap { expected, got } => {
                write!(f, "torn frame stream: expected seq #{expected}, got #{got}")
            }
        }
    }
}

impl LinkSession {
    /// A (re)connection for peer incarnation `incoming` is being
    /// installed. Updates the sequence state and says what to purge.
    pub fn register(&mut self, incoming: u64, m: &Mutations) -> RegisterPlan {
        let replacement = incoming != self.peer_incarnation;
        if replacement || m.reset_seq_on_reconnect {
            // Mutated: resetting on a same-incarnation reconnect is
            // bug #2 — any frame the dead connection lost is skipped
            // without a gap, silently.
            self.send_seq = 0;
            self.recv_seq = 0;
        }
        self.peer_incarnation = incoming;
        RegisterPlan {
            replacement,
            lift_condemnation: true,
        }
    }

    /// Sequence number the next outbound frame must carry.
    #[must_use]
    pub fn next_send_seq(&self) -> u64 {
        self.send_seq
    }

    /// The frame stamped [`next_send_seq`](Self::next_send_seq) made it
    /// onto the wire (a failed write requeues without consuming a
    /// number, so the retry after reconnect reuses it).
    pub fn commit_send(&mut self) {
        self.send_seq += 1;
    }

    /// Judge one inbound frame: source identity, then the sequence
    /// check against the persistent counter.
    pub fn accept_frame(&mut self, claimed_src: u32, link_src: usize, seq: u64) -> FrameVerdict {
        if claimed_src as usize != link_src {
            return FrameVerdict::Condemn(CondemnReason::BadSource {
                claimed: claimed_src,
                link: link_src,
            });
        }
        if seq != self.recv_seq {
            return FrameVerdict::Condemn(CondemnReason::SeqGap {
                expected: self.recv_seq,
                got: seq,
            });
        }
        self.recv_seq += 1;
        FrameVerdict::Accept
    }
}

// ---------------------------------------------------------------------
// Receive gate: the precedence order of everything recv can return
// ---------------------------------------------------------------------

/// What a blocked receive should do, in decided precedence order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RecvVerdict {
    /// A matching payload is queued: deliver it (beats every error —
    /// data that arrived intact before a failure is still good data).
    Deliver,
    /// The machine is poisoned (hub lost): fail everything.
    Poisoned,
    /// The hub declared the source dead. Outranks link-level
    /// condemnation: a death that tore a frame still reads as a death.
    RankFailed {
        /// Last epoch the dead incarnation completed.
        epoch: u64,
    },
    /// The source's link delivered a structurally bad frame and no
    /// declaration explains it: fail loudly, never resync silently.
    Corrupt,
    /// Nothing decides yet: block (or time out).
    Wait,
}

/// The single decision point of `SocketTransport::recv`: given what is
/// known about the source, what does this receive do *right now*?
///
/// Precedence (the documented contract, checked by the precedence
/// model): queued payload → poison → hub declaration → condemnation →
/// wait. A self-probe (`probing_self`) skips the failure checks — a
/// rank is never dead to itself.
#[must_use]
pub fn recv_gate(
    queued: bool,
    poisoned: bool,
    probing_self: bool,
    peer_status: RankStatus,
    peer_failed_epoch: u64,
    condemned: bool,
    m: &Mutations,
) -> RecvVerdict {
    if queued {
        return RecvVerdict::Deliver;
    }
    if poisoned {
        return RecvVerdict::Poisoned;
    }
    if !probing_self {
        if m.corrupt_outranks_declared {
            // Mutated: bug #1 — checking the condemnation before the
            // mirror lets a death that tore a frame masquerade as
            // corruption forever.
            if condemned {
                return RecvVerdict::Corrupt;
            }
        }
        if peer_status == RankStatus::Failed {
            return RecvVerdict::RankFailed {
                epoch: peer_failed_epoch,
            };
        }
        if condemned {
            return RecvVerdict::Corrupt;
        }
    }
    RecvVerdict::Wait
}

/// Where an outbound message goes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SendRoute {
    /// Self-send: straight into the local mailbox, no wire.
    SelfDeliver,
    /// The detector declared the destination dead: drop, so the
    /// backlog cannot leak into a replacement. `Rebuilding` is NOT
    /// dead — recovery collectives must reach the replacement.
    DropDead,
    /// Normal path: the peer link (write now or queue while down).
    Link,
}

/// The routing decision at the top of `SocketTransport::send`.
#[must_use]
pub fn send_route(src: usize, dst: usize, dst_status: RankStatus) -> SendRoute {
    if dst == src {
        SendRoute::SelfDeliver
    } else if dst_status == RankStatus::Failed {
        SendRoute::DropDead
    } else {
        SendRoute::Link
    }
}

// ---------------------------------------------------------------------
// Detector mirror: hub broadcasts → local failure view
// ---------------------------------------------------------------------

/// One rank's entry in the child-side replica of the hub's detector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PeerView {
    pub status: RankStatus,
    /// Highest epoch this rank is known to have completed.
    pub epoch: u64,
    /// Last epoch completed before its (latest) declared death.
    pub failed_epoch: u64,
}

impl PeerView {
    /// A healthy rank that has completed nothing yet.
    pub const INITIAL: PeerView = PeerView {
        status: RankStatus::Healthy,
        epoch: 0,
        failed_epoch: 0,
    };
}

/// A hub state broadcast (the mirror-mutating subset of
/// [`ControlLine`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ControlEvent {
    /// `EPOCH r e`: rank `r` completed epoch `e` (healthy beat).
    Epoch { rank: usize, epoch: u64 },
    /// `DECLARED r e`: the detector declared `r` dead; `e` is the last
    /// epoch its dead incarnation completed.
    Declared { rank: usize, failed_epoch: u64 },
    /// `REBUILDING r`: `r`'s replacement started recovery.
    Rebuilding { rank: usize },
    /// `RECOVERED r e`: `r` rejoined at epoch `e`.
    Recovered { rank: usize, epoch: u64 },
    /// `PARKED r`: `r` was deliberately retired from the active world
    /// (elastic shrink, or held-in-reserve capacity). NOT a failure.
    Parked { rank: usize },
    /// `ACTIVATED r e`: parked rank `r` was admitted to the active
    /// world at epoch `e` (elastic grow).
    Activated { rank: usize, epoch: u64 },
}

/// Side effect a mirror update demands outside the mirror itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MirrorEffect {
    None,
    /// The hub's declaration outranks any condemnation the death's
    /// torn streams caused: clear the per-source corrupt flag so
    /// survivors probing the corpse get `RankFailed`, and the
    /// replacement does not inherit the flag.
    LiftCondemnation { rank: usize },
}

/// Apply one hub broadcast to the local mirror. Pure: the caller owns
/// the locking and performs the returned [`MirrorEffect`].
pub fn apply_control(view: &mut [PeerView], ev: ControlEvent, m: &Mutations) -> MirrorEffect {
    match ev {
        ControlEvent::Epoch { rank, epoch } => {
            if let Some(p) = view.get_mut(rank) {
                if epoch > p.epoch {
                    p.epoch = epoch;
                }
            }
            MirrorEffect::None
        }
        ControlEvent::Declared { rank, failed_epoch } => {
            let Some(p) = view.get_mut(rank) else {
                return MirrorEffect::None;
            };
            p.status = RankStatus::Failed;
            p.failed_epoch = failed_epoch;
            if m.corrupt_outranks_declared {
                // Mutated: bug #1's second half — the declaration no
                // longer heals the condemnation.
                MirrorEffect::None
            } else {
                MirrorEffect::LiftCondemnation { rank }
            }
        }
        ControlEvent::Rebuilding { rank } => {
            if let Some(p) = view.get_mut(rank) {
                if p.status == RankStatus::Failed {
                    p.status = RankStatus::Rebuilding;
                }
            }
            MirrorEffect::None
        }
        ControlEvent::Recovered { rank, epoch } => {
            if let Some(p) = view.get_mut(rank) {
                p.status = RankStatus::Healthy;
                if epoch > p.epoch {
                    p.epoch = epoch;
                }
            }
            MirrorEffect::None
        }
        ControlEvent::Parked { rank } => {
            if let Some(p) = view.get_mut(rank) {
                if m.retire_marks_failed {
                    // Mutated: bug #4 — a deliberate retire lands in
                    // the mirror as a death. The retired rank joins the
                    // dead set and survivors launch recovery for a rank
                    // that was never lost.
                    p.status = RankStatus::Failed;
                    p.failed_epoch = p.epoch;
                } else {
                    p.status = RankStatus::Parked;
                }
            }
            MirrorEffect::None
        }
        ControlEvent::Activated { rank, epoch } => {
            if let Some(p) = view.get_mut(rank) {
                // Activation only admits parked capacity; it must not
                // resurrect a failed rank (that is `RECOVERED`'s job,
                // after certified reconstruction).
                if p.status == RankStatus::Parked {
                    if epoch == u64::MAX {
                        // Run-over release sentinel: wake the parked
                        // waiter but keep the rank parked (it exits
                        // instead of joining a world).
                        p.epoch = u64::MAX;
                    } else {
                        p.status = RankStatus::Healthy;
                        if epoch > p.epoch {
                            p.epoch = epoch;
                        }
                    }
                }
            }
            MirrorEffect::None
        }
    }
}

/// The dead set a transport reports: every rank currently `Failed` or
/// `Rebuilding`, with the last epoch its dead incarnation completed.
#[must_use]
pub fn dead_set(view: &[PeerView]) -> Vec<(usize, u64)> {
    view.iter()
        .enumerate()
        .filter(|(_, p)| matches!(p.status, RankStatus::Failed | RankStatus::Rebuilding))
        .map(|(r, p)| (r, p.failed_epoch))
        .collect()
}

/// Outcome of one `epoch_sync` poll of the mirror.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EpochGate {
    /// Every rank has either reached `epoch` or been declared:
    /// proceed, reporting the casualties.
    Ready { failed: Vec<(usize, u64)> },
    /// `rank` has neither beaten `epoch` nor been declared — keep
    /// waiting on the mirror.
    Waiting { rank: usize },
}

/// Decide whether epoch `epoch` is globally complete from `me`'s
/// mirror. A rank's own healthy entry passes even if its `EPOCH` echo
/// is still in flight — its beat-ack already proved it.
#[must_use]
pub fn epoch_gate(view: &[PeerView], me: usize, epoch: u64) -> EpochGate {
    let mut failed = Vec::new();
    for (rank, p) in view.iter().enumerate() {
        if p.epoch >= epoch || rank == me && p.status == RankStatus::Healthy {
            continue;
        }
        match p.status {
            RankStatus::Failed | RankStatus::Rebuilding => {
                failed.push((rank, p.failed_epoch));
            }
            // Parked ranks are outside the world: never waited on,
            // never reported failed.
            RankStatus::Parked => {}
            RankStatus::Healthy | RankStatus::Suspected => {
                return EpochGate::Waiting { rank };
            }
        }
    }
    EpochGate::Ready { failed }
}

/// Which of `failed` is still `Failed` (not yet `Rebuilding` or
/// better)? `await_rebirth` blocks while this returns `Some`.
#[must_use]
pub fn rebirth_gate(view: &[PeerView], failed: &[usize]) -> Option<usize> {
    failed
        .iter()
        .copied()
        .find(|&r| view.get(r).is_some_and(|p| p.status == RankStatus::Failed))
}

/// `Some(epoch)` once parked `rank` has been admitted to the active
/// world (its mirror entry left `Parked`); `None` while
/// `await_activation` must keep waiting.
#[must_use]
pub fn activation_gate(view: &[PeerView], rank: usize) -> Option<u64> {
    view.get(rank).and_then(|p| {
        if p.status != RankStatus::Parked || p.epoch == u64::MAX {
            // Either readmitted, or released at end of run while still
            // parked (the `u64::MAX` sentinel the hub broadcasts).
            Some(p.epoch)
        } else {
            None
        }
    })
}

// ---------------------------------------------------------------------
// Wire control lines: one renderer/parser pair per direction
// ---------------------------------------------------------------------

/// Human-readable status token used on the control wire.
#[must_use]
pub fn status_name(s: RankStatus) -> &'static str {
    match s {
        RankStatus::Healthy => "healthy",
        RankStatus::Suspected => "suspected",
        RankStatus::Failed => "failed",
        RankStatus::Rebuilding => "rebuilding",
        RankStatus::Parked => "parked",
    }
}

/// Inverse of [`status_name`]; unknown tokens read as healthy (the
/// conservative default for a line the hub never sends).
#[must_use]
pub fn parse_status(s: &str) -> RankStatus {
    match s {
        "suspected" => RankStatus::Suspected,
        "failed" => RankStatus::Failed,
        "rebuilding" => RankStatus::Rebuilding,
        "parked" => RankStatus::Parked,
        _ => RankStatus::Healthy,
    }
}

fn parse_arg(v: Option<&str>) -> Option<u64> {
    v.and_then(|s| s.parse().ok())
}

/// Hub → child control line. The hub renders these; the child's
/// control loop parses them — one definition, zero format drift.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ControlLine {
    /// Reply to `BEAT`: the beating rank's own status.
    BeatAck(RankStatus),
    /// Reply to `AWAITFAILED`: last epoch the dead incarnation finished.
    FailedEpoch(u64),
    /// A broadcast state change every child mirrors.
    Event(ControlEvent),
    /// The world is over; fail every blocked wait.
    Poison,
}

impl ControlLine {
    /// Render the wire form (no trailing newline).
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            ControlLine::BeatAck(status) => format!("BEATACK {}", status_name(*status)),
            ControlLine::FailedEpoch(epoch) => format!("FAILEDEPOCH {epoch}"),
            ControlLine::Event(ControlEvent::Epoch { rank, epoch }) => {
                format!("EPOCH {rank} {epoch}")
            }
            ControlLine::Event(ControlEvent::Declared { rank, failed_epoch }) => {
                format!("DECLARED {rank} {failed_epoch}")
            }
            ControlLine::Event(ControlEvent::Rebuilding { rank }) => format!("REBUILDING {rank}"),
            ControlLine::Event(ControlEvent::Recovered { rank, epoch }) => {
                format!("RECOVERED {rank} {epoch}")
            }
            ControlLine::Event(ControlEvent::Parked { rank }) => format!("PARKED {rank}"),
            ControlLine::Event(ControlEvent::Activated { rank, epoch }) => {
                format!("ACTIVATED {rank} {epoch}")
            }
            ControlLine::Poison => "POISON".to_string(),
        }
    }

    /// Parse one line off the control stream; `None` for anything
    /// unrecognized (ignored, per the line protocol's forward-compat
    /// rule).
    #[must_use]
    pub fn parse(line: &str) -> Option<ControlLine> {
        let mut it = line.split_whitespace();
        match it.next()? {
            "BEATACK" => Some(ControlLine::BeatAck(parse_status(it.next().unwrap_or("")))),
            "FAILEDEPOCH" => Some(ControlLine::FailedEpoch(
                parse_arg(it.next()).unwrap_or(0),
            )),
            "EPOCH" => {
                let (rank, epoch) = (parse_arg(it.next())?, parse_arg(it.next())?);
                Some(ControlLine::Event(ControlEvent::Epoch {
                    rank: rank as usize,
                    epoch,
                }))
            }
            "DECLARED" => {
                let (rank, failed_epoch) = (parse_arg(it.next())?, parse_arg(it.next())?);
                Some(ControlLine::Event(ControlEvent::Declared {
                    rank: rank as usize,
                    failed_epoch,
                }))
            }
            "REBUILDING" => {
                let rank = parse_arg(it.next())?;
                Some(ControlLine::Event(ControlEvent::Rebuilding {
                    rank: rank as usize,
                }))
            }
            "RECOVERED" => {
                let (rank, epoch) = (parse_arg(it.next())?, parse_arg(it.next())?);
                Some(ControlLine::Event(ControlEvent::Recovered {
                    rank: rank as usize,
                    epoch,
                }))
            }
            "PARKED" => {
                let rank = parse_arg(it.next())?;
                Some(ControlLine::Event(ControlEvent::Parked {
                    rank: rank as usize,
                }))
            }
            "ACTIVATED" => {
                let (rank, epoch) = (parse_arg(it.next())?, parse_arg(it.next())?);
                Some(ControlLine::Event(ControlEvent::Activated {
                    rank: rank as usize,
                    epoch,
                }))
            }
            "POISON" => Some(ControlLine::Poison),
            _ => None,
        }
    }
}

/// Child → hub control line (everything after the `HELLO` handshake).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientLine {
    /// `BEAT e`: about to enter epoch `e` (the detector heartbeat).
    Beat { epoch: u64 },
    /// Idle keep-alive proving the process is scheduled.
    Tick,
    /// A replacement asks for its predecessor's last epoch.
    AwaitFailed,
    /// Recovery collectives finished; rejoin at `epoch`.
    Recovered { epoch: u64 },
    /// The child panicked; poison the world.
    Poisoned,
    /// Clean shutdown.
    Goodbye,
    /// `RETIRE`: this rank is deliberately leaving the active world
    /// (elastic shrink). The hub must *park* it — never declare it
    /// failed — and keep its process alive for a later grow.
    Retire,
    /// `ACTIVATE r e`: admit parked rank `r` to the active world at
    /// epoch `e` (sent by the rank driving an elastic grow).
    Activate { rank: usize, epoch: u64 },
}

impl ClientLine {
    /// Render the wire form (no trailing newline).
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            ClientLine::Beat { epoch } => format!("BEAT {epoch}"),
            ClientLine::Tick => "TICK".to_string(),
            ClientLine::AwaitFailed => "AWAITFAILED".to_string(),
            ClientLine::Recovered { epoch } => format!("RECOVERED {epoch}"),
            ClientLine::Poisoned => "POISONED".to_string(),
            ClientLine::Goodbye => "GOODBYE".to_string(),
            ClientLine::Retire => "RETIRE".to_string(),
            ClientLine::Activate { rank, epoch } => format!("ACTIVATE {rank} {epoch}"),
        }
    }

    /// Parse one line off a child's control stream.
    #[must_use]
    pub fn parse(line: &str) -> Option<ClientLine> {
        let mut it = line.split_whitespace();
        match it.next()? {
            "BEAT" => Some(ClientLine::Beat {
                epoch: parse_arg(it.next()).unwrap_or(0),
            }),
            "TICK" => Some(ClientLine::Tick),
            "AWAITFAILED" => Some(ClientLine::AwaitFailed),
            "RECOVERED" => Some(ClientLine::Recovered {
                epoch: parse_arg(it.next()).unwrap_or(0),
            }),
            "POISONED" => Some(ClientLine::Poisoned),
            "GOODBYE" => Some(ClientLine::Goodbye),
            "RETIRE" => Some(ClientLine::Retire),
            "ACTIVATE" => {
                let (rank, epoch) = (parse_arg(it.next())?, parse_arg(it.next())?);
                Some(ClientLine::Activate {
                    rank: rank as usize,
                    epoch,
                })
            }
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Hub ledger FSM: which broadcasts a hub event produces
// ---------------------------------------------------------------------

/// The hub's reaction to a `BEAT e` it did *not* answer with a kill:
/// the ack line, plus the `EPOCH` broadcast iff the detector judged
/// the rank healthy (only healthy beats advance the world's ledger).
#[must_use]
pub fn hub_beat_outcome(
    ledger: &mut [(u64, u64)],
    rank: usize,
    epoch: u64,
    status: RankStatus,
) -> (ControlLine, Option<ControlEvent>) {
    let announce = (status == RankStatus::Healthy).then(|| {
        ledger[rank].0 = epoch;
        ControlEvent::Epoch { rank, epoch }
    });
    (ControlLine::BeatAck(status), announce)
}

/// The hub's detector declared `rank` dead: record the last completed
/// epoch and produce the `DECLARED` broadcast.
#[must_use]
pub fn hub_declare(ledger: &mut [(u64, u64)], rank: usize, failed_epoch: u64) -> ControlEvent {
    ledger[rank].1 = failed_epoch;
    ControlEvent::Declared { rank, failed_epoch }
}

/// `rank` finished its recovery collectives at `epoch`: record it and
/// produce the `RECOVERED` broadcast.
#[must_use]
pub fn hub_recover(ledger: &mut [(u64, u64)], rank: usize, epoch: u64) -> ControlEvent {
    ledger[rank].0 = epoch;
    ControlEvent::Recovered { rank, epoch }
}

/// `rank` deliberately retired (or was allocated as reserve capacity):
/// produce the `PARKED` broadcast. Deliberately does NOT touch the
/// failed-epoch column — parking is not a death, and the ledger must
/// never let the two be confused.
#[must_use]
pub fn hub_park(rank: usize) -> ControlEvent {
    ControlEvent::Parked { rank }
}

/// Parked `rank` was admitted to the world at `epoch`: record the
/// epoch (it joins at the frontier) and produce the `ACTIVATED`
/// broadcast.
#[must_use]
pub fn hub_activate(ledger: &mut [(u64, u64)], rank: usize, epoch: u64) -> ControlEvent {
    ledger[rank].0 = epoch;
    ControlEvent::Activated { rank, epoch }
}

// ---------------------------------------------------------------------
// Lock-acquisition scripts: the shapes the lock-order model checks
// ---------------------------------------------------------------------

/// The nested lock-acquisition sequences the transport's threads
/// actually perform, as data. The lock-order model in
/// `tests/protocol_models.rs` interleaves these scripts exhaustively
/// and proves the rank discipline admits no deadlock — and that the
/// [`Mutations::diagnose_under_mailbox`] inversion reintroduces one.
///
/// Keep these in sync with the implementations they describe (each
/// function names its subject); the runtime rank checker in
/// [`crate::sync`] enforces the same order on the real code paths, so
/// a drift here fails the model while the real path still panics.
pub mod locks {
    use super::Mutations;
    use crate::sync::LockRank;

    /// One step of a lock script.
    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    pub enum LockOp {
        Acquire(LockRank),
        Release(LockRank),
    }

    use LockOp::{Acquire, Release};

    /// `SocketTransport::register_link`: purges the mailbox while
    /// holding the link lock (`Link → Mail`).
    #[must_use]
    pub fn register_link() -> Vec<LockOp> {
        vec![
            Acquire(LockRank::Link),
            Acquire(LockRank::Mail),
            Release(LockRank::Mail),
            Release(LockRank::Link),
        ]
    }

    /// `SocketTransport::recv` hitting its deadline: snapshot under
    /// the mailbox, release it, *then* diagnose under the link lock.
    /// The mutation performs the diagnosis while still holding the
    /// mailbox — the historical inversion.
    #[must_use]
    pub fn recv_timeout_diagnosis(m: &Mutations) -> Vec<LockOp> {
        if m.diagnose_under_mailbox {
            vec![
                Acquire(LockRank::Mail),
                Acquire(LockRank::Link),
                Release(LockRank::Link),
                Release(LockRank::Mail),
            ]
        } else {
            vec![
                Acquire(LockRank::Mail),
                Release(LockRank::Mail),
                Acquire(LockRank::Link),
                Release(LockRank::Link),
            ]
        }
    }

    /// `SocketTransport::recv`'s precedence check: consults the mirror
    /// while holding the mailbox (`Mail → Mirror`).
    #[must_use]
    pub fn recv_precedence() -> Vec<LockOp> {
        vec![
            Acquire(LockRank::Mail),
            Acquire(LockRank::Mirror),
            Release(LockRank::Mirror),
            Release(LockRank::Mail),
        ]
    }

    /// `SocketTransport::apply_control_event` on a `DECLARED`: mirror
    /// update, then (sequentially — never nested) the condemnation
    /// lift under the mailbox lock.
    #[must_use]
    pub fn control_declared() -> Vec<LockOp> {
        vec![
            Acquire(LockRank::Mirror),
            Release(LockRank::Mirror),
            Acquire(LockRank::Mail),
            Release(LockRank::Mail),
        ]
    }

    /// `SocketTransport::condemn`: link down, then the mailbox flag —
    /// sequential, in rank order anyway.
    #[must_use]
    pub fn condemn() -> Vec<LockOp> {
        vec![
            Acquire(LockRank::Link),
            Release(LockRank::Link),
            Acquire(LockRank::Mail),
            Release(LockRank::Mail),
        ]
    }

    /// `SocketTransport::hub_rpc`: sends on the control writer while
    /// holding the RPC slot (`ControlRpc → ControlWriter`).
    #[must_use]
    pub fn hub_rpc() -> Vec<LockOp> {
        vec![
            Acquire(LockRank::ControlRpc),
            Acquire(LockRank::ControlWriter),
            Release(LockRank::ControlWriter),
            Release(LockRank::ControlRpc),
        ]
    }

    /// `hub::HubState::welcome_block`: snapshot lines under
    /// `HubLedger → HubClients → Health`.
    #[must_use]
    pub fn hub_welcome_block() -> Vec<LockOp> {
        vec![
            Acquire(LockRank::HubLedger),
            Acquire(LockRank::HubClients),
            Acquire(LockRank::Health),
            Release(LockRank::Health),
            Release(LockRank::HubClients),
            Release(LockRank::HubLedger),
        ]
    }

    /// The concurrent transport-side scripts the lock-order model
    /// interleaves (named for counterexample readability).
    #[must_use]
    pub fn transport_threads(m: &Mutations) -> Vec<(&'static str, Vec<LockOp>)> {
        vec![
            ("register_link", register_link()),
            ("recv_timeout", recv_timeout_diagnosis(m)),
            ("recv_precedence", recv_precedence()),
            ("control_declared", control_declared()),
        ]
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn reconnect_keeps_seqs_replacement_resets() {
        let mut s = LinkSession::default();
        s.commit_send();
        s.commit_send();
        assert_eq!(
            s.accept_frame(3, 3, 0),
            FrameVerdict::Accept,
            "first inbound frame"
        );
        let plan = s.register(0, &Mutations::NONE); // same incarnation
        assert!(!plan.replacement);
        assert_eq!((s.send_seq, s.recv_seq), (2, 1), "seqs survive reconnect");
        let plan = s.register(1, &Mutations::NONE); // replacement
        assert!(plan.replacement);
        assert_eq!((s.send_seq, s.recv_seq), (0, 0), "replacement resets");
    }

    #[test]
    fn mutated_register_resets_on_reconnect() {
        let mut s = LinkSession::default();
        s.commit_send();
        let m = Mutations {
            reset_seq_on_reconnect: true,
            ..Mutations::NONE
        };
        let plan = s.register(0, &m);
        assert!(!plan.replacement);
        assert_eq!(s.send_seq, 0, "bug #2: reconnect wiped the counter");
    }

    #[test]
    fn seq_gap_condemns_with_stable_message() {
        let mut s = LinkSession::default();
        assert_eq!(s.accept_frame(2, 2, 0), FrameVerdict::Accept);
        let v = s.accept_frame(2, 2, 2);
        let FrameVerdict::Condemn(reason) = v else {
            panic!("gap must condemn")
        };
        assert_eq!(
            reason.to_string(),
            "torn frame stream: expected seq #1, got #2"
        );
    }

    #[test]
    fn declared_outranks_condemnation() {
        let v = recv_gate(
            false,
            false,
            false,
            RankStatus::Failed,
            7,
            true,
            &Mutations::NONE,
        );
        assert_eq!(v, RecvVerdict::RankFailed { epoch: 7 });
        let m = Mutations {
            corrupt_outranks_declared: true,
            ..Mutations::NONE
        };
        assert_eq!(
            recv_gate(false, false, false, RankStatus::Failed, 7, true, &m),
            RecvVerdict::Corrupt,
            "bug #1 reverses the precedence"
        );
    }

    #[test]
    fn queued_data_beats_every_error() {
        for status in [RankStatus::Failed, RankStatus::Healthy] {
            let v = recv_gate(true, true, false, status, 0, true, &Mutations::NONE);
            assert_eq!(v, RecvVerdict::Deliver);
        }
    }

    #[test]
    fn declaration_lifts_condemnation() {
        let mut view = [PeerView::INITIAL; 3];
        let fx = apply_control(
            &mut view,
            ControlEvent::Declared {
                rank: 1,
                failed_epoch: 4,
            },
            &Mutations::NONE,
        );
        assert_eq!(fx, MirrorEffect::LiftCondemnation { rank: 1 });
        assert_eq!(view[1].status, RankStatus::Failed);
        assert_eq!(dead_set(&view), vec![(1, 4)]);
    }

    #[test]
    fn control_lines_round_trip() {
        let lines = [
            ControlLine::BeatAck(RankStatus::Suspected),
            ControlLine::FailedEpoch(9),
            ControlLine::Event(ControlEvent::Epoch { rank: 2, epoch: 5 }),
            ControlLine::Event(ControlEvent::Declared {
                rank: 1,
                failed_epoch: 3,
            }),
            ControlLine::Event(ControlEvent::Rebuilding { rank: 1 }),
            ControlLine::Event(ControlEvent::Recovered { rank: 1, epoch: 6 }),
            ControlLine::Event(ControlEvent::Parked { rank: 4 }),
            ControlLine::Event(ControlEvent::Activated { rank: 4, epoch: 8 }),
            ControlLine::BeatAck(RankStatus::Parked),
            ControlLine::Poison,
        ];
        for line in lines {
            assert_eq!(ControlLine::parse(&line.render()), Some(line));
        }
    }

    #[test]
    fn client_lines_round_trip() {
        let lines = [
            ClientLine::Beat { epoch: 11 },
            ClientLine::Tick,
            ClientLine::AwaitFailed,
            ClientLine::Recovered { epoch: 12 },
            ClientLine::Poisoned,
            ClientLine::Goodbye,
            ClientLine::Retire,
            ClientLine::Activate { rank: 5, epoch: 3 },
        ];
        for line in lines {
            assert_eq!(ClientLine::parse(&line.render()), Some(line));
        }
    }

    #[test]
    fn retire_is_never_confused_with_failure() {
        let mut view = [PeerView::INITIAL; 3];
        view[2].epoch = 6;
        apply_control(&mut view, ControlEvent::Parked { rank: 2 }, &Mutations::NONE);
        assert_eq!(view[2].status, RankStatus::Parked);
        assert!(dead_set(&view).is_empty(), "retired is not dead");
        // Nobody waits on a parked rank at an epoch barrier, and it is
        // not reported as a casualty either.
        let mut active = [PeerView::INITIAL; 3];
        active[0].epoch = 9;
        active[1].epoch = 9;
        apply_control(&mut active, ControlEvent::Parked { rank: 2 }, &Mutations::NONE);
        assert_eq!(epoch_gate(&active, 0, 9), EpochGate::Ready { failed: vec![] });
        // The mutated protocol (bug #4) turns the retire into a death:
        // the model run's counterexample.
        let m = Mutations {
            retire_marks_failed: true,
            ..Mutations::NONE
        };
        let mut bad = [PeerView::INITIAL; 3];
        bad[2].epoch = 6;
        apply_control(&mut bad, ControlEvent::Parked { rank: 2 }, &m);
        assert_eq!(bad[2].status, RankStatus::Failed);
        assert_eq!(dead_set(&bad), vec![(2, 6)], "bug #4: retiree in the dead set");
    }

    #[test]
    fn activation_admits_only_parked_ranks() {
        let mut view = [PeerView::INITIAL; 2];
        apply_control(&mut view, ControlEvent::Parked { rank: 1 }, &Mutations::NONE);
        assert_eq!(activation_gate(&view, 1), None, "parked: keep waiting");
        apply_control(
            &mut view,
            ControlEvent::Activated { rank: 1, epoch: 4 },
            &Mutations::NONE,
        );
        assert_eq!(view[1].status, RankStatus::Healthy);
        assert_eq!(activation_gate(&view, 1), Some(4));
        // Activation must not resurrect a failed rank.
        apply_control(
            &mut view,
            ControlEvent::Declared {
                rank: 1,
                failed_epoch: 4,
            },
            &Mutations::NONE,
        );
        apply_control(
            &mut view,
            ControlEvent::Activated { rank: 1, epoch: 9 },
            &Mutations::NONE,
        );
        assert_eq!(view[1].status, RankStatus::Failed, "ACTIVATED cannot heal a death");
    }

    #[test]
    fn hub_beat_announces_only_healthy() {
        let mut ledger = vec![(0, 0); 2];
        let (ack, ev) = hub_beat_outcome(&mut ledger, 1, 5, RankStatus::Healthy);
        assert_eq!(ack, ControlLine::BeatAck(RankStatus::Healthy));
        assert_eq!(ev, Some(ControlEvent::Epoch { rank: 1, epoch: 5 }));
        assert_eq!(ledger[1].0, 5);
        let (_, ev) = hub_beat_outcome(&mut ledger, 1, 6, RankStatus::Suspected);
        assert_eq!(ev, None, "suspected beat must not advance the world");
        assert_eq!(ledger[1].0, 5);
    }

    #[test]
    fn epoch_gate_mirrors_sync_loop() {
        let mut view = vec![PeerView::INITIAL; 3];
        view[0].epoch = 2;
        assert_eq!(epoch_gate(&view, 0, 2), EpochGate::Waiting { rank: 1 });
        view[1].status = RankStatus::Failed;
        view[1].failed_epoch = 1;
        view[2].epoch = 2;
        assert_eq!(
            epoch_gate(&view, 0, 2),
            EpochGate::Ready {
                failed: vec![(1, 1)]
            }
        );
    }
}
