//! Proof that a steady-state `Simulation::step` performs zero heap
//! allocations: every buffer a timestep needs — density and force grids,
//! CIC counting-sort bins, FFT line scratch and half-spectrum workspaces,
//! per-particle force arrays — is sized during warm-up and reused
//! thereafter.
//!
//! This lives in its own integration-test binary because it installs a
//! process-wide `#[global_allocator]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Wraps the system allocator and counts allocation events while armed.
/// Deallocations are free to happen (dropping a warm-up buffer is not a
/// steady-state cost); `alloc`/`alloc_zeroed`/`realloc` are what we gate.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the wrapper adds only atomic
// counter updates, never changes layouts or pointers, so the GlobalAlloc
// contract is exactly the system allocator's.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: caller upholds `layout` validity (delegated contract).
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: caller upholds `layout` validity (delegated contract).
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `ptr`/`layout`/`new_size` come from our own `alloc`,
        // which is `System`'s (delegated contract).
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was allocated by `System` with this `layout`
        // (delegated contract).
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The two tests share `ARMED`/`ALLOCS`; serialize them so the counter
/// is never armed by one while the other steps.
static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Warm a simulation with the given solver, then assert two further
/// steps allocate nothing. `warm` extra steps run after the (counted)
/// cold step, so capacity-sizing growth is never charged to steady state.
fn assert_steady_state_alloc_free(solver: &str, warm: usize) {
    use hacc::core::{SimConfig, Simulation, SolverKind};
    use hacc::cosmo::{Cosmology, LinearPower, Transfer};

    let _guard = TEST_LOCK.lock().expect("test lock");
    let (solver, two_level) = match solver {
        "pm" => (SolverKind::PmOnly, None),
        "pm2" => (SolverKind::PmOnly, Some(hacc::pm::PmLevelConfig::default())),
        "p3m" => (SolverKind::P3m, None),
        other => panic!("unknown solver {other}"),
    };
    let power = LinearPower::new(&Cosmology::lcdm(), Transfer::EisensteinHuNoWiggle);
    let a0 = 0.2;
    let ics = hacc::ics::zeldovich(16, 64.0, &power, a0, 11);
    let cfg = SimConfig {
        ng: 16,
        box_len: 64.0,
        a_init: a0,
        steps: 8,
        subcycles: 2,
        solver,
        two_level,
        ..SimConfig::small_lcdm()
    };
    let mut sim = Simulation::from_ics(cfg, &ics);

    // Recording a step pushes one `StepBreakdown`; give the stats vector
    // room up front so bookkeeping is not charged to the solvers.
    sim.stats.steps.reserve(16);

    // Warm-up: the first steps size every scratch buffer and fill the
    // FFT buffer pools. Count these too — a cold step MUST allocate, which
    // proves the counter is actually wired up.
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let mut a = 0.21;
    sim.step(a);
    ARMED.store(false, Ordering::SeqCst);
    assert!(
        ALLOCS.load(Ordering::SeqCst) > 0,
        "warm-up step should allocate; the counter appears dead"
    );
    for _ in 0..warm {
        a += 0.01;
        sim.step(a);
    }

    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    sim.step(a + 0.01);
    sim.step(a + 0.02);
    ARMED.store(false, Ordering::SeqCst);

    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        n, 0,
        "steady-state Simulation::step made {n} heap allocations"
    );
}

#[test]
fn steady_state_step_allocates_nothing() {
    assert_steady_state_alloc_free("pm", 1);
}

/// The serial FFT stack underneath the PM solve — split-radix twiddle
/// tables, batch-major tile panels and batched line scratch — must also
/// be alloc-free once warm: tables are built by `Fft1d::new` at plan
/// time and every pass buffer comes from the plan's `BufPool`. Checked
/// at a power-of-two and a mixed-radix (2·3·5) grid so the radix-4,
/// radix-2, radix-3 and radix-5 stage paths all run.
#[test]
fn steady_state_serial_fft_allocates_nothing() {
    use hacc::fft::{Complex64, Fft3, RealFft3};

    let _guard = TEST_LOCK.lock().expect("test lock");
    for n in [16usize, 30] {
        let c2c = Fft3::new_cubic(n);
        let r2c = RealFft3::new_cubic(n);
        let nzh = n / 2 + 1;
        let mut grid: Vec<Complex64> = (0..n * n * n)
            .map(|i| Complex64::new(i as f64, (i % 7) as f64))
            .collect();
        let real: Vec<f64> = (0..n * n * n).map(|i| (i % 13) as f64).collect();
        let mut spec = vec![Complex64::ZERO; n * n * nzh];
        let mut back = vec![0.0f64; n * n * n];

        // Warm-up fills the buffer pools.
        c2c.forward(&mut grid);
        c2c.backward(&mut grid);
        r2c.forward(&real, &mut spec);
        r2c.backward(&mut spec, &mut back);

        ALLOCS.store(0, Ordering::SeqCst);
        ARMED.store(true, Ordering::SeqCst);
        c2c.forward(&mut grid);
        c2c.backward(&mut grid);
        r2c.forward(&real, &mut spec);
        r2c.backward(&mut spec, &mut back);
        ARMED.store(false, Ordering::SeqCst);

        let made = ALLOCS.load(Ordering::SeqCst);
        assert_eq!(made, 0, "warm n={n} serial FFTs made {made} allocations");
    }
}

/// The chaining-mesh (P³M) short-range path: counting-sort bins, leased
/// gather buffers and the force accumulators all live in `StepScratch`
/// / `P3mScratch`, so sub-cycled short-range steps are also free.
/// Extra warm steps let the per-cell gather buffers reach their
/// high-water capacity before the counter arms.
#[test]
fn steady_state_p3m_step_allocates_nothing() {
    assert_steady_state_alloc_free("p3m", 3);
}

/// The two-level PM path: both levels' density/force grids, the coarse
/// CIC scratch and the coarse-position staging buffers all live in
/// `StepScratch` / `PmWorkspace`, so a steady-state two-level step is
/// as alloc-free as the single-level one.
#[test]
fn steady_state_two_level_step_allocates_nothing() {
    assert_steady_state_alloc_free("pm2", 1);
}

/// The `TwoLevelPmSolver` itself, off the simulation loop: after one
/// warm solve both spectrum workspaces and every FFT pool buffer are
/// sized, and further solves must not touch the heap. Checked at a
/// power-of-two grid and at 30³ (odd 15³ coarse grid), so the
/// mixed-radix fine lines and the odd-Nyquist coarse path both run.
#[test]
fn steady_state_two_level_solver_allocates_nothing() {
    use hacc::pm::{PmLevelConfig, SpectralParams, TwoLevelPmSolver};

    let _guard = TEST_LOCK.lock().expect("test lock");
    for n in [16usize, 30] {
        let solver = TwoLevelPmSolver::new(n, 64.0, SpectralParams::default(), PmLevelConfig::default());
        let nc = n / 2;
        let fine: Vec<f64> = (0..n * n * n).map(|i| (i % 11) as f64 - 5.0).collect();
        let coarse: Vec<f64> = (0..nc * nc * nc).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut fine_out: [Vec<f64>; 3] = Default::default();
        let mut coarse_out: [Vec<f64>; 3] = Default::default();

        // Warm-up sizes the workspaces and fills the FFT pools.
        solver.solve_forces_into(&fine, &coarse, &mut fine_out, &mut coarse_out);

        ALLOCS.store(0, Ordering::SeqCst);
        ARMED.store(true, Ordering::SeqCst);
        solver.solve_forces_into(&fine, &coarse, &mut fine_out, &mut coarse_out);
        ARMED.store(false, Ordering::SeqCst);

        let made = ALLOCS.load(Ordering::SeqCst);
        assert_eq!(made, 0, "warm n={n} two-level solve made {made} allocations");
    }
}
