//! Stand-in for `criterion` (offline builds; see `vendor/README.md`).
//!
//! Runs each benchmark `sample_size` times and prints min/mean wall
//! times — no statistics machinery, but `cargo bench` compiles and
//! produces usable relative numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
        }
    }

    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        run_bench(&id.to_string(), self.sample_size, f);
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_bench(label: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: samples.max(1),
        times: Vec::new(),
    };
    f(&mut b);
    if b.times.is_empty() {
        println!("bench {label}: no samples recorded");
        return;
    }
    let min = b.times.iter().min().copied().unwrap_or_default();
    let total: Duration = b.times.iter().sum();
    let mean = total / b.times.len() as u32;
    println!(
        "bench {label}: min {:?}, mean {:?} over {} samples",
        min,
        mean,
        b.times.len()
    );
}

pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.times.push(t0.elapsed());
        }
    }

    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.times.push(t0.elapsed());
        }
    }

    pub fn iter_batched_ref<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> R,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let mut input = setup();
            let t0 = Instant::now();
            black_box(routine(&mut input));
            self.times.push(t0.elapsed());
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: `name/parameter`.
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            param: param.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.name.is_empty() {
            write!(f, "{}", self.param)
        } else {
            write!(f, "{}/{}", self.name, self.param)
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $(
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut count = 0;
        c.bench_function("counting", |b| b.iter(|| count += 1));
        assert_eq!(count, 3);
    }

    #[test]
    fn iter_batched_reruns_setup() {
        let mut c = Criterion::default().sample_size(4);
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        let mut setups = 0;
        group.bench_function(BenchmarkId::new("b", 1), |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(setups, 4);
    }
}
