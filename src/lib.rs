//! Facade crate re-exporting the HACC reproduction public API.
pub use hacc_analysis as analysis;
pub use hacc_comm as comm;
pub use hacc_core as core;
pub use hacc_cosmo as cosmo;
pub use hacc_domain as domain;
pub use hacc_fft as fft;
pub use hacc_genio as genio;
pub use hacc_ics as ics;
pub use hacc_machine as machine;
pub use hacc_pm as pm;
pub use hacc_short as short;
