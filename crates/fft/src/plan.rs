//! Plan-based 1-D complex FFT.
//!
//! Mixed-radix recursive Cooley–Tukey over the full factorization of `N`
//! (any factors; small primes handled by a generic butterfly, large primes
//! by Bluestein's chirp-z algorithm so prime sizes stay O(N log N)).
//! The paper's pencil FFT is explicitly *non-power-of-two* capable — grid
//! sizes like 6400³ and 9216³ in Table I factor as 2^a·3^b·5^c — so the
//! mixed-radix path is exercised by the Table I reproduction.

use crate::complex::Complex64;
use crate::kernels::{StockhamPlan, MAX_BATCH};

/// Direction of a transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Backward,
}

/// A reusable 1-D FFT plan for a fixed length.
///
/// Plans are immutable after construction and safe to share across threads;
/// callers supply per-thread scratch via [`Fft1d::make_scratch`].
#[derive(Debug, Clone)]
pub struct Fft1d {
    n: usize,
    /// Factorization of `n`, smallest factors first.
    factors: Vec<usize>,
    /// Forward twiddles `exp(-2πi j/n)` for `j in 0..n`.
    twiddles: Vec<Complex64>,
    /// Bluestein machinery for lengths with a prime factor > 31.
    bluestein: Option<Box<Bluestein>>,
    /// Iterative SIMD stage schedule for `n = 2^a·3^b·5^c` (the hot
    /// path); `None` falls back to the recursive reference.
    stockham: Option<StockhamPlan>,
}

/// Precomputed state for Bluestein's algorithm.
#[derive(Debug, Clone)]
struct Bluestein {
    /// Chirp `c[j] = exp(-iπ j²/n)`.
    chirp: Vec<Complex64>,
    /// FFT (size m) of the symmetric extension of `conj(chirp)`.
    b_hat: Vec<Complex64>,
    /// Inner power-of-two plan of size `m ≥ 2n-1`.
    inner: Fft1d,
}

impl Fft1d {
    /// Plan a transform of length `n` (> 0).
    #[must_use] 
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be positive");
        let factors = factorize(n);
        let needs_bluestein = factors.iter().any(|&f| f > 31);
        let twiddles = (0..n)
            .map(|j| Complex64::cis(-2.0 * std::f64::consts::PI * j as f64 / n as f64))
            .collect();
        let bluestein = if needs_bluestein {
            Some(Box::new(Bluestein::new(n)))
        } else {
            None
        };
        Fft1d {
            n,
            factors,
            twiddles,
            bluestein,
            stockham: StockhamPlan::try_new(n),
        }
    }

    /// Maximum `batch` accepted by [`Fft1d::transform_batch`].
    pub const MAX_BATCH: usize = MAX_BATCH;

    /// Transform length.
    #[must_use] 
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate length-1 plan.
    #[must_use] 
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Allocate a scratch buffer suitable for [`Fft1d::forward`] /
    /// [`Fft1d::backward`] calls on this plan.
    #[must_use] 
    pub fn make_scratch(&self) -> Vec<Complex64> {
        vec![Complex64::ZERO; self.scratch_len()]
    }

    /// Required scratch length for this plan (lets callers lease from a
    /// [`crate::scratch::BufPool`] instead of allocating).
    #[must_use] 
    pub fn scratch_len(&self) -> usize {
        let inner = self
            .bluestein
            .as_ref()
            .map(|b| 3 * b.inner.n)
            .unwrap_or(0);
        self.n.max(inner)
    }

    /// Unnormalized forward transform, in place.
    pub fn forward(&self, data: &mut [Complex64], scratch: &mut [Complex64]) {
        self.process(data, scratch, Direction::Forward);
    }

    /// Normalized inverse transform (divides by `n`), in place.
    pub fn backward(&self, data: &mut [Complex64], scratch: &mut [Complex64]) {
        self.process(data, scratch, Direction::Backward);
        let inv = 1.0 / self.n as f64;
        for v in data.iter_mut() {
            *v = v.scale(inv);
        }
    }

    fn process(&self, data: &mut [Complex64], scratch: &mut [Complex64], dir: Direction) {
        assert_eq!(data.len(), self.n, "data length != plan length");
        if self.n == 1 {
            return;
        }
        if let Some(st) = &self.stockham {
            st.run(data, 1, scratch, dir == Direction::Backward);
            return;
        }
        if let Some(b) = &self.bluestein {
            b.process(data, scratch, dir, self.n);
            return;
        }
        let (copy, _) = scratch.split_at_mut(self.n);
        copy.copy_from_slice(data);
        self.recurse(copy, 1, data, self.n, 1, 0, dir);
    }

    /// Required scratch length for a `batch`-wide
    /// [`Fft1d::transform_batch`] call.
    #[must_use]
    pub fn scratch_len_batch(&self, batch: usize) -> usize {
        self.n * batch + self.scratch_len()
    }

    /// Transform `batch ≤ MAX_BATCH` interleaved lines at once, in place.
    ///
    /// `data` holds the lines **batch-major**: element `j` of line `b`
    /// lives at `data[j·batch + b]`, which keeps the innermost butterfly
    /// loop contiguous for the SIMD kernels. `inverse` applies the
    /// **unnormalized** inverse (via conjugation) — any `1/n` rescale is
    /// the caller's business, mirroring the serial pass convention.
    /// `scratch` needs [`Fft1d::scratch_len_batch`] elements.
    pub fn transform_batch(
        &self,
        data: &mut [Complex64],
        batch: usize,
        scratch: &mut [Complex64],
        inverse: bool,
    ) {
        assert!(
            (1..=Self::MAX_BATCH).contains(&batch),
            "batch out of range"
        );
        assert_eq!(data.len(), self.n * batch, "data length != n·batch");
        if self.n == 1 {
            return;
        }
        if let Some(st) = &self.stockham {
            st.run(data, batch, scratch, inverse);
            return;
        }
        // Generic lengths (large primes / Bluestein): de-interleave one
        // line at a time through the recursive path. Correct for any
        // length and trivially dispatch-level-independent.
        let (lines, rest) = scratch.split_at_mut(self.n * batch);
        let line = &mut lines[..self.n];
        for bi in 0..batch {
            for (j, v) in line.iter_mut().enumerate() {
                *v = data[j * batch + bi];
            }
            if inverse {
                for v in line.iter_mut() {
                    *v = v.conj();
                }
                self.forward(line, rest);
                for v in line.iter_mut() {
                    *v = v.conj();
                }
            } else {
                self.forward(line, rest);
            }
            for (j, &v) in line.iter().enumerate() {
                data[j * batch + bi] = v;
            }
        }
    }

    /// Recursive mixed-radix step: transform `x` (viewed with `stride`)
    /// into `out[0..n]`. `tw_mul = N/n` maps local twiddle exponents onto
    /// the root table; `depth` indexes into the factor list.
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        &self,
        x: &[Complex64],
        stride: usize,
        out: &mut [Complex64],
        n: usize,
        tw_mul: usize,
        depth: usize,
        dir: Direction,
    ) {
        if n == 1 {
            out[0] = x[0];
            return;
        }
        let r = self.factors[depth];
        let m = n / r;
        // r sub-transforms of length m over the decimated sequences.
        for p in 0..r {
            self.recurse(
                &x[p * stride..],
                stride * r,
                &mut out[p * m..(p + 1) * m],
                m,
                tw_mul * r,
                depth + 1,
                dir,
            );
        }
        // Combine: X[k1 + q·m] = Σ_p w_n^{p(k1+qm)} F_p[k1].
        // The outputs land exactly on the slots holding F_p[k1], so gather
        // into a small stack buffer first (r ≤ 31 by construction).
        let mut f = [Complex64::ZERO; 32];
        let nn = self.n;
        for k1 in 0..m {
            for p in 0..r {
                f[p] = out[p * m + k1];
            }
            for q in 0..r {
                let k = k1 + q * m;
                let mut acc = f[0];
                for (p, &fp) in f.iter().enumerate().take(r).skip(1) {
                    // exponent p·k mod n, mapped through tw_mul to root table
                    let e = (p * k) % n;
                    let mut w = self.twiddles[(e * tw_mul) % nn];
                    if dir == Direction::Backward {
                        w = w.conj();
                    }
                    acc += w * fp;
                }
                out[k] = acc;
            }
        }
    }
}

impl Bluestein {
    fn new(n: usize) -> Self {
        let m = (2 * n - 1).next_power_of_two();
        let inner = Fft1d::new(m);
        // Chirp with exponent j² mod 2n to avoid catastrophic angle growth.
        let chirp: Vec<Complex64> = (0..n)
            .map(|j| {
                let e = (j * j) % (2 * n);
                Complex64::cis(-std::f64::consts::PI * e as f64 / n as f64)
            })
            .collect();
        let mut b = vec![Complex64::ZERO; m];
        b[0] = chirp[0].conj();
        for j in 1..n {
            b[j] = chirp[j].conj();
            b[m - j] = chirp[j].conj();
        }
        let mut scratch = inner.make_scratch();
        inner.forward(&mut b, &mut scratch);
        Bluestein {
            chirp,
            b_hat: b,
            inner,
        }
    }

    fn process(&self, data: &mut [Complex64], scratch: &mut [Complex64], dir: Direction, n: usize) {
        // Backward via conjugation: ifft(x) = conj(fft(conj(x))).
        if dir == Direction::Backward {
            for v in data.iter_mut() {
                *v = v.conj();
            }
            self.process(data, scratch, Direction::Forward, n);
            for v in data.iter_mut() {
                *v = v.conj();
            }
            return;
        }
        let m = self.inner.n;
        let (a, rest) = scratch.split_at_mut(m);
        let inner_scratch = &mut rest[..2 * m];
        a.fill(Complex64::ZERO);
        for j in 0..n {
            a[j] = data[j] * self.chirp[j];
        }
        self.inner.forward(a, inner_scratch);
        for (av, bv) in a.iter_mut().zip(self.b_hat.iter()) {
            *av *= *bv;
        }
        self.inner.backward(a, inner_scratch);
        for k in 0..n {
            data[k] = a[k] * self.chirp[k];
        }
    }
}

/// Prime factorization, smallest factors first, preferring radix-4 splits
/// (pairs of 2s) for fewer recursion levels.
fn factorize(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    while n.is_multiple_of(4) {
        out.push(4);
        n /= 4;
    }
    for f in [2usize, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31] {
        while n.is_multiple_of(f) {
            out.push(f);
            n /= f;
        }
    }
    // Any remainder is a product of primes > 31; keep it as one factor and
    // let Bluestein handle the whole length.
    if n > 1 {
        out.push(n);
    }
    if out.is_empty() {
        out.push(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n²) reference DFT.
    fn dft(x: &[Complex64]) -> Vec<Complex64> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex64::ZERO;
                for (j, &v) in x.iter().enumerate() {
                    acc += v * Complex64::cis(-2.0 * std::f64::consts::PI * (j * k % n) as f64 / n as f64);
                }
                acc
            })
            .collect()
    }

    fn rand_signal(n: usize, seed: u64) -> Vec<Complex64> {
        // Tiny xorshift so this module needs no rand dependency.
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) - 0.5
        };
        (0..n).map(|_| Complex64::new(next(), next())).collect()
    }

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_reference_dft_many_sizes() {
        for n in [1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 20, 24, 25, 27, 30, 32, 48, 60, 64, 100] {
            let plan = Fft1d::new(n);
            let sig = rand_signal(n, n as u64);
            let mut data = sig.clone();
            let mut scratch = plan.make_scratch();
            plan.forward(&mut data, &mut scratch);
            let want = dft(&sig);
            assert!(max_err(&data, &want) < 1e-9 * n as f64, "n = {n}");
        }
    }

    #[test]
    fn bluestein_prime_sizes() {
        for n in [37, 41, 97, 101, 149] {
            let plan = Fft1d::new(n);
            assert!(plan.bluestein.is_some(), "n = {n} should use Bluestein");
            let sig = rand_signal(n, n as u64);
            let mut data = sig.clone();
            let mut scratch = plan.make_scratch();
            plan.forward(&mut data, &mut scratch);
            let want = dft(&sig);
            assert!(max_err(&data, &want) < 1e-8 * n as f64, "n = {n}");
        }
    }

    #[test]
    fn roundtrip_identity() {
        for n in [2, 7, 16, 35, 37, 128, 160, 200, 243] {
            let plan = Fft1d::new(n);
            let sig = rand_signal(n, 3 * n as u64 + 1);
            let mut data = sig.clone();
            let mut scratch = plan.make_scratch();
            plan.forward(&mut data, &mut scratch);
            plan.backward(&mut data, &mut scratch);
            assert!(max_err(&data, &sig) < 1e-10 * (n as f64), "n = {n}");
        }
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let n = 48;
        let plan = Fft1d::new(n);
        let mut data = vec![Complex64::ZERO; n];
        data[0] = Complex64::ONE;
        let mut scratch = plan.make_scratch();
        plan.forward(&mut data, &mut scratch);
        for v in &data {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn single_mode_lands_in_single_bin() {
        let n = 60;
        let plan = Fft1d::new(n);
        let kk = 7;
        let mut data: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(2.0 * std::f64::consts::PI * (kk * j) as f64 / n as f64))
            .collect();
        let mut scratch = plan.make_scratch();
        plan.forward(&mut data, &mut scratch);
        for (k, v) in data.iter().enumerate() {
            let expect = if k == kk { n as f64 } else { 0.0 };
            assert!((v.re - expect).abs() < 1e-9 && v.im.abs() < 1e-9, "k = {k}");
        }
    }

    #[test]
    fn parseval_theorem() {
        let n = 90;
        let plan = Fft1d::new(n);
        let sig = rand_signal(n, 11);
        let mut data = sig.clone();
        let mut scratch = plan.make_scratch();
        plan.forward(&mut data, &mut scratch);
        let time: f64 = sig.iter().map(|v| v.norm_sqr()).sum();
        let freq: f64 = data.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time - freq).abs() < 1e-9 * time.max(1.0));
    }

    #[test]
    fn linearity() {
        let n = 36;
        let plan = Fft1d::new(n);
        let a = rand_signal(n, 5);
        let b = rand_signal(n, 9);
        let mut scratch = plan.make_scratch();
        let mut fa = a.clone();
        plan.forward(&mut fa, &mut scratch);
        let mut fb = b.clone();
        plan.forward(&mut fb, &mut scratch);
        let mut fab: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        plan.forward(&mut fab, &mut scratch);
        let sum: Vec<Complex64> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(max_err(&fab, &sum) < 1e-10 * n as f64);
    }

    #[test]
    fn factorize_prefers_radix4() {
        assert_eq!(factorize(16), vec![4, 4]);
        assert_eq!(factorize(8), vec![4, 2]);
        assert_eq!(factorize(60), vec![4, 3, 5]);
        assert_eq!(factorize(1), vec![1]);
        assert_eq!(factorize(37), vec![37]);
    }
}
