//! Survive a mid-run node failure: a small ΛCDM run on a simulated
//! 4-rank machine where fault injection kills a rank partway through,
//! and the recovery driver restores from the last checkpoint set and
//! finishes. Prints the recovery timeline and verifies the final state
//! is bit-identical to a failure-free run.
//!
//! ```text
//! cargo run --release --example resilient_run
//! ```

use hacc::comm::FaultPlan;
use hacc::core::{run_resilient, ResilienceConfig, SimConfig, SolverKind};
use hacc::cosmo::{Cosmology, LinearPower, Transfer};
use hacc::machine::{BgqPartition, CheckpointModel};

fn main() {
    let ranks = 4;
    // ng/ranks must leave slabs wider than the overload shell (rcut+2.5).
    let cfg = SimConfig {
        ng: 24,
        box_len: 64.0,
        a_init: 0.2,
        a_final: 0.3,
        steps: 6,
        subcycles: 2,
        solver: SolverKind::TreePm,
        ..SimConfig::small_lcdm()
    };
    let power = LinearPower::new(&Cosmology::lcdm(), Transfer::EisensteinHuNoWiggle);
    let ics = hacc::ics::zeldovich(8, cfg.box_len, &power, cfg.a_init, 2012);

    let scratch = std::env::temp_dir().join("hacc_resilient_example");
    let _ = std::fs::remove_dir_all(&scratch);

    // Reference: the same schedule with no faults.
    let clean_dir = scratch.join("clean");
    let clean = run_resilient(
        cfg,
        &ics,
        &ResilienceConfig::new(ranks, &clean_dir),
        &FaultPlan::none(),
    )
    .expect("clean run");

    // The real thing: rank 2 dies the first time it begins step 4.
    println!(
        "running {} steps on {ranks} ranks; rank 2 will be killed at step 4...\n",
        cfg.steps
    );
    let faulty_dir = scratch.join("faulty");
    let run = run_resilient(
        cfg,
        &ics,
        &ResilienceConfig::new(ranks, &faulty_dir),
        &FaultPlan::seeded(42).kill_rank_at_step(2, 4),
    )
    .expect("recovered run");

    println!("recovery timeline:");
    for event in &run.timeline {
        println!("  {event}");
    }
    println!(
        "\nfinished step {} after {} attempt(s), {} particles",
        run.final_step,
        run.attempts,
        run.positions.len()
    );

    let bit_exact = clean.positions.len() == run.positions.len()
        && clean
            .positions
            .iter()
            .zip(&run.positions)
            .all(|(c, f)| c.0 == f.0 && (0..3).all(|k| c.1[k].to_bits() == f.1[k].to_bits()));
    println!(
        "final state vs uninterrupted run: {}",
        if bit_exact {
            "bit-exact"
        } else {
            "DIVERGED (bug!)"
        }
    );
    assert!(bit_exact);

    // What this machinery costs at paper scale (Young/Daly model).
    let part = BgqPartition::racks(96);
    let node_mtbf_years = 20.0;
    let model = CheckpointModel::for_partition(
        &part,
        node_mtbf_years * 365.25 * 86_400.0,
        60.0,
        180.0,
    );
    println!(
        "\nat 96 racks ({} nodes, {node_mtbf_years}-year node MTBF): \
         system MTBF {:.1} h,",
        part.nodes,
        model.system_mtbf / 3600.0
    );
    println!(
        "optimal checkpoint interval {:.0} s (Young) / {:.0} s (Daly), \
         ~{:.0}% overhead",
        model.young_interval(),
        model.daly_interval(),
        100.0 * model.optimal_overhead()
    );

    let _ = std::fs::remove_dir_all(&scratch);
}
