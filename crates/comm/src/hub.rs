//! The launcher-side rendezvous and failure authority for a
//! multi-process ([`crate::socket`]) world.
//!
//! The hub is **not a rank**. It is the parent process that:
//!
//! - spawns one OS child per rank and barriers their `HELLO`s (rank-zero
//!   rendezvous: no child proceeds until every data address is known),
//! - owns the *authoritative* [`HealthState`] — children tick it over
//!   their control streams and mirror its verdicts from broadcasts, so
//!   every survivor observes the same failure declarations in the same
//!   order,
//! - enforces the [`FaultPlan`]: a rank scheduled to die at step `s` is
//!   `SIGKILL`ed the moment its `BEAT s` arrives, *instead of* the ack —
//!   a real process death at exactly the same lifecycle point as the
//!   in-process backend's silent kill (the victim's recorded epoch stays
//!   `s - 1`),
//! - optionally respawns a declared-dead rank as a blank **replacement**
//!   process with a bumped incarnation number, which rejoins through the
//!   same `await_failed → reconstruct → mark_recovered` protocol the
//!   in-process recovery stack uses.

use crate::fault::FaultPlan;
use crate::health::{HealthState, HeartbeatConfig};
use crate::protocol::{
    self, status_name, ClientLine, ControlEvent, ControlLine,
};
use crate::sync::{LockRank, Mutex};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::Child;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Launcher configuration for one multi-process world.
pub struct HubOptions {
    /// Number of ranks (= child processes).
    pub ranks: usize,
    /// Detector tuning shared with every child.
    pub heartbeat: HeartbeatConfig,
    /// Fault schedule; only the kill target is meaningful here (message
    /// faults are physical on a real wire, not injected).
    pub plan: FaultPlan,
    /// Respawn a declared-dead rank as a blank replacement?
    pub respawn: bool,
    /// Receive deadline handed to every child (its transport watchdog).
    pub watchdog: Duration,
    /// Initially active world size (elastic runs): ranks `active..ranks`
    /// are pre-parked in the detector *before* rendezvous, so a reserve
    /// child's mirror is seeded `parked` by its WELCOME and it can never
    /// be suspected while waiting for a grow. `None` = all active.
    pub active: Option<usize>,
}

impl HubOptions {
    /// Defaults for `ranks` ranks: default heartbeat tuning, no faults,
    /// respawn on, 10 s watchdog, whole world active.
    #[must_use]
    pub fn new(ranks: usize) -> Self {
        HubOptions {
            ranks,
            heartbeat: HeartbeatConfig::default(),
            plan: FaultPlan::none(),
            respawn: true,
            watchdog: Duration::from_secs(10),
            active: None,
        }
    }
}

/// One timestamped lifecycle event, in hub order. Soak artifacts use
/// these to reconstruct what the world did; `tests/multiprocess.rs`
/// asserts a detection-latency bound from the `killed → declared` gap.
#[derive(Debug, Clone)]
pub struct HubEvent {
    /// `"killed"`, `"declared"`, `"respawned"`, `"parked"`, or
    /// `"activated"`.
    pub kind: &'static str,
    /// The rank the event happened to.
    pub rank: usize,
    /// Step/epoch the event is tied to (last completed epoch for
    /// `declared`; 0 where not applicable).
    pub step: u64,
    /// Wall-clock milliseconds since the hub started.
    pub wall_ms: u64,
}

/// What happened to the world, as the hub saw it.
#[derive(Debug, Default, Clone)]
pub struct HubReport {
    /// `(rank, step)` for every scheduled SIGKILL the hub delivered.
    pub killed: Vec<(usize, u64)>,
    /// `(rank, last completed epoch)` for every detector declaration.
    pub declared: Vec<(usize, u64)>,
    /// Ranks respawned as replacement processes.
    pub respawned: Vec<usize>,
    /// `(rank, exit code)` for children that exited nonzero *without*
    /// having been killed by the hub.
    pub exit_failures: Vec<(usize, i32)>,
    /// Timestamped lifecycle timeline (kills, declarations, respawns,
    /// parks, activations) in the order the hub saw them.
    pub timeline: Vec<HubEvent>,
}

impl HubReport {
    /// Did every surviving child exit cleanly?
    #[must_use]
    pub fn clean(&self) -> bool {
        self.exit_failures.is_empty()
    }
}

/// One child's control connection (line protocol both ways).
struct ClientConn {
    stream: TcpStream,
    incarnation: u64,
    data_addr: String,
}

struct ChildSlot {
    child: Option<Child>,
    incarnation: u64,
    /// `Some(code)` once reaped; signal deaths report code `-1`.
    exit: Option<i32>,
    /// The hub SIGKILLed this incarnation (so its exit is expected).
    hub_killed: bool,
}

/// Lock order (see [`crate::sync`]): `HubChildren` → `HubLedger` →
/// `HubClients` → `HubReport` → `HubSpawn`, with the shared-leaf
/// `Health` lock last. The deepest real nestings are `welcome_block`
/// (`HubLedger → HubClients → Health`) and the reaper
/// (`HubChildren → HubReport`).
struct HubState {
    opts: HubOptions,
    health: HealthState,
    clients: Vec<Mutex<Option<ClientConn>>>,
    children: Mutex<Vec<ChildSlot>>,
    /// Hub-side epoch/failure ledger (`HealthState` keeps its own copy
    /// private; the hub needs it for `STATE` snapshot lines). Mutated
    /// only through the pure FSM helpers in [`crate::protocol`]
    /// (`hub_beat_outcome`, `hub_declare`, `hub_recover`).
    ledger: Mutex<Vec<(u64, u64)>>, // (epoch, failed_epoch)
    report: Mutex<HubReport>,
    shutdown: AtomicBool,
    started: Instant,
}

impl HubState {
    /// Stamp one lifecycle event onto the report timeline.
    fn stamp(&self, kind: &'static str, rank: usize, step: u64) {
        let wall_ms = self.started.elapsed().as_millis() as u64;
        self.report.lock(LockRank::HubReport).timeline.push(HubEvent {
            kind,
            rank,
            step,
            wall_ms,
        });
    }
    /// Write one line to rank `dst`'s control stream (best effort — a
    /// dead child's stream just errors and is dropped).
    fn send_to(&self, dst: usize, line: &str) {
        let mut slot = self.clients[dst].lock(LockRank::HubClients);
        if let Some(conn) = slot.as_mut() {
            if writeln!(&mut conn.stream, "{line}").is_err() {
                *slot = None;
            }
        }
    }

    /// Broadcast one detector event to every child, via the shared
    /// renderer the children's parser round-trips with.
    fn broadcast_event(&self, ev: ControlEvent) {
        self.broadcast(&ControlLine::Event(ev).render());
    }

    fn broadcast(&self, line: &str) {
        for dst in 0..self.opts.ranks {
            self.send_to(dst, line);
        }
    }

    /// The `WELCOME … READY` block: world timing, every peer's data
    /// address, and a detector snapshot to seed the child's mirror.
    fn welcome_block(&self) -> String {
        let hb = &self.opts.heartbeat;
        let mut out = format!(
            "WELCOME {} {} {} {}\n",
            self.opts.ranks,
            self.opts.watchdog.as_millis(),
            hb.scan_interval.as_millis(),
            hb.sync_timeout.as_millis(),
        );
        // Lock order: HubLedger → HubClients → Health (see crate::sync).
        let ledger = self.ledger.lock(LockRank::HubLedger);
        for rank in 0..self.opts.ranks {
            let client = self.clients[rank].lock(LockRank::HubClients);
            if let Some(conn) = client.as_ref() {
                out.push_str(&format!(
                    "PEER {rank} {} {}\n",
                    conn.incarnation, conn.data_addr
                ));
            }
            let (epoch, failed_epoch) = ledger[rank];
            out.push_str(&format!(
                "STATE {rank} {} {epoch} {failed_epoch}\n",
                status_name(self.health.status(rank))
            ));
        }
        out.push_str("READY\n");
        out
    }

    /// SIGKILL rank `rank`'s current child (the fault plan fired).
    fn kill_child(&self, rank: usize, step: u64) {
        let mut children = self.children.lock(LockRank::HubChildren);
        let slot = &mut children[rank];
        if let Some(child) = slot.child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
            slot.exit = Some(-1);
            slot.hub_killed = true;
            slot.child = None;
        }
        drop(children);
        self.report.lock(LockRank::HubReport).killed.push((rank, step));
        self.stamp("killed", rank, step);
    }

    /// Serve one child's control stream until EOF. `incarnation` is the
    /// incarnation that opened this stream — a later replacement's
    /// stream supersedes it.
    fn serve_client(&self, rank: usize, incarnation: u64, reader: BufReader<TcpStream>) {
        for line in reader.lines() {
            let Ok(line) = line else { break };
            // Any control traffic is proof of life.
            self.health.tick(rank);
            match ClientLine::parse(&line) {
                Some(ClientLine::Beat { epoch }) => {
                    if self.opts.plan.should_kill(rank, epoch) {
                        // The scheduled death: a real SIGKILL in place
                        // of the ack. The victim never proceeds into
                        // this epoch, so its ledger stays at `epoch-1` —
                        // byte-for-byte the in-process kill semantics.
                        self.kill_child(rank, epoch);
                        return;
                    }
                    let status = self.health.beat(rank, epoch);
                    let (ack, announce) = {
                        let mut ledger = self.ledger.lock(LockRank::HubLedger);
                        protocol::hub_beat_outcome(&mut ledger, rank, epoch, status)
                    };
                    self.send_to(rank, &ack.render());
                    if let Some(ev) = announce {
                        self.broadcast_event(ev);
                    }
                }
                Some(ClientLine::Tick) => {}
                Some(ClientLine::AwaitFailed) => {
                    match self.health.await_failed(rank, &self.shutdown) {
                        Ok(epoch) => {
                            self.broadcast_event(ControlEvent::Rebuilding { rank });
                            self.send_to(rank, &ControlLine::FailedEpoch(epoch).render());
                        }
                        Err(_) => {
                            // Shutdown or a detector that never declared
                            // this rank: the replacement cannot proceed.
                            self.broadcast(&ControlLine::Poison.render());
                            return;
                        }
                    }
                }
                Some(ClientLine::Recovered { epoch }) => {
                    self.health.mark_recovered(rank, epoch);
                    let ev = {
                        let mut ledger = self.ledger.lock(LockRank::HubLedger);
                        protocol::hub_recover(&mut ledger, rank, epoch)
                    };
                    self.broadcast_event(ev);
                }
                Some(ClientLine::Poisoned) => {
                    // A child panicked: poison the world like the
                    // in-process machine does.
                    self.broadcast(&ControlLine::Poison.render());
                }
                Some(ClientLine::Retire) => {
                    // Deliberate shrink: park, never declare. The ledger
                    // is untouched — parking is not a failure and must
                    // not disturb the epoch record (protocol bug #4).
                    self.health.park(rank);
                    self.stamp("parked", rank, 0);
                    self.broadcast_event(protocol::hub_park(rank));
                }
                Some(ClientLine::Activate { rank: target, epoch }) => {
                    // Grow: readmit a parked rank at the current epoch
                    // frontier. `health.activate` refuses non-parked
                    // targets, so a failed rank cannot be resurrected.
                    self.health.activate(target, epoch);
                    let ev = {
                        let mut ledger = self.ledger.lock(LockRank::HubLedger);
                        protocol::hub_activate(&mut ledger, target, epoch)
                    };
                    self.stamp("activated", target, epoch);
                    self.broadcast_event(ev);
                }
                Some(ClientLine::Goodbye) => return,
                None => {}
            }
            // A replacement stream supersedes this reader.
            let current = self.clients[rank]
                .lock(LockRank::HubClients)
                .as_ref()
                .map(|c| c.incarnation);
            if current != Some(incarnation) {
                return;
            }
        }
    }
}

/// A parsed `HELLO`: `(rank, incarnation, data_addr)` plus the control
/// stream it arrived on and its buffered read half.
type Hello = (usize, u64, String, TcpStream, BufReader<TcpStream>);

/// How long a freshly accepted connection gets to complete its `HELLO`
/// line before the hub drops it. Accepted sockets do not inherit the
/// listener's nonblocking flag, so without this bound a client that
/// connects and then dies (or a stray dial) would wedge the rendezvous
/// or the late-joiner accept thread forever.
const HELLO_TIMEOUT: Duration = Duration::from_secs(2);

/// Accept one control connection and parse its `HELLO`.
fn accept_hello(
    listener: &TcpListener,
    deadline: Instant,
    shutdown: &AtomicBool,
) -> std::io::Result<Option<Hello>> {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nodelay(true).ok();
                if stream.set_read_timeout(Some(HELLO_TIMEOUT)).is_err() {
                    continue;
                }
                let mut reader = BufReader::new(stream.try_clone()?);
                let mut line = String::new();
                if reader.read_line(&mut line).is_err() {
                    continue; // handshake never completed; drop it
                }
                // After the handshake this stream serves the child with
                // blocking reads; the clone shares the socket, so lift
                // the timeout again before handing it on.
                if stream.set_read_timeout(None).is_err() {
                    continue;
                }
                let mut it = line.split_whitespace();
                if it.next() != Some("HELLO") {
                    continue; // stray connection; drop it
                }
                let Some(rank) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    continue;
                };
                let Some(inc) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    continue;
                };
                let Some(addr) = it.next().map(str::to_string) else {
                    continue;
                };
                return Ok(Some((rank, inc, addr, stream, reader)));
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if Instant::now() >= deadline {
                    return Err(std::io::Error::other(
                        "hub rendezvous: children never connected",
                    ));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Run one multi-process world to completion.
///
/// `spawn(rank, incarnation, hub_addr)` must start the child process for
/// `rank` (the launcher typically re-execs itself with `HACC_HUB`,
/// `HACC_RANK`, `HACC_RANKS`, `HACC_INCARNATION` in the environment).
/// Blocks until every child process — including respawned replacements —
/// has exited, then reports what happened.
pub fn run(
    opts: HubOptions,
    mut spawn: impl FnMut(usize, u64, &str) -> std::io::Result<Child> + Send,
) -> std::io::Result<HubReport> {
    let ranks = opts.ranks;
    assert!(ranks > 0, "hub needs at least one rank");
    let listener = TcpListener::bind("127.0.0.1:0")?;
    listener.set_nonblocking(true)?;
    let hub_addr = listener.local_addr()?.to_string();

    let state = HubState {
        health: HealthState::new(ranks, Some(opts.heartbeat)),
        clients: (0..ranks)
            .map(|_| Mutex::new(LockRank::HubClients, None))
            .collect(),
        children: Mutex::new(LockRank::HubChildren, Vec::new()),
        ledger: Mutex::new(LockRank::HubLedger, vec![(0, 0); ranks]),
        report: Mutex::new(LockRank::HubReport, HubReport::default()),
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
        opts,
    };

    // Elastic worlds: park the reserve before any child connects, so
    // the WELCOME snapshot seeds every mirror with the parked set and
    // the monitor can never suspect a rank that was never admitted.
    if let Some(active) = state.opts.active {
        assert!(
            active >= 1 && active <= ranks,
            "active world must be within [1, {ranks}]"
        );
        for rank in active..ranks {
            state.health.park(rank);
        }
    }

    {
        let mut children = state.children.lock(LockRank::HubChildren);
        for rank in 0..ranks {
            children.push(ChildSlot {
                child: Some(spawn(rank, 0, &hub_addr)?),
                incarnation: 0,
                exit: None,
                hub_killed: false,
            });
        }
    }
    let spawn = Mutex::new(LockRank::HubSpawn, spawn);

    std::thread::scope(|scope| -> std::io::Result<()> {
        // Rendezvous barrier: collect every rank's HELLO before a single
        // WELCOME goes out, so all data addresses are known to everyone.
        let deadline = Instant::now() + state.opts.heartbeat.sync_timeout;
        let mut pending = Vec::new();
        let mut joined = 0usize;
        while joined < ranks {
            let Some((rank, inc, addr, stream, reader)) =
                accept_hello(&listener, deadline, &state.shutdown)?
            else {
                return Ok(());
            };
            if rank >= ranks || inc != 0 {
                continue;
            }
            let fresh = state.clients[rank]
                .lock(LockRank::HubClients)
                .replace(ClientConn {
                    stream,
                    incarnation: inc,
                    data_addr: addr,
                })
                .is_none();
            if fresh {
                joined += 1;
            }
            pending.push((rank, inc, reader));
        }
        let block = state.welcome_block();
        for rank in 0..ranks {
            state.send_to(rank, block.trim_end());
        }
        for (rank, inc, reader) in pending {
            let st = &state;
            scope.spawn(move || st.serve_client(rank, inc, reader));
        }

        // Late joiners: replacement processes spawned by the monitor.
        let accept_state = &state;
        let accept_listener = &listener;
        scope.spawn(move || {
            while !accept_state.shutdown.load(Ordering::SeqCst) {
                let deadline = Instant::now() + Duration::from_millis(200);
                match accept_hello(accept_listener, deadline, &accept_state.shutdown) {
                    Ok(Some((rank, inc, addr, stream, reader))) => {
                        if rank >= accept_state.opts.ranks {
                            continue;
                        }
                        *accept_state.clients[rank].lock(LockRank::HubClients) =
                            Some(ClientConn {
                                stream,
                                incarnation: inc,
                                data_addr: addr.clone(),
                            });
                        // The replacement gets the current world picture;
                        // survivors learn its fresh data address.
                        let block = accept_state.welcome_block();
                        accept_state.send_to(rank, block.trim_end());
                        for peer in 0..accept_state.opts.ranks {
                            if peer != rank {
                                accept_state
                                    .send_to(peer, &format!("PEER {rank} {inc} {addr}"));
                            }
                        }
                        scope.spawn(move || accept_state.serve_client(rank, inc, reader));
                    }
                    Ok(None) => return,
                    Err(_) => {} // deadline tick; loop re-checks shutdown
                }
            }
        });

        // The failure monitor: scan, declare, respawn.
        let monitor_state = &state;
        let spawn_cell = &spawn;
        let hub_addr = hub_addr.clone();
        scope.spawn(move || {
            let interval = monitor_state.health.scan_interval();
            while !monitor_state.shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(interval);
                for (rank, failed_epoch) in monitor_state.health.scan() {
                    let ev = {
                        let mut ledger = monitor_state.ledger.lock(LockRank::HubLedger);
                        protocol::hub_declare(&mut ledger, rank, failed_epoch)
                    };
                    monitor_state
                        .report
                        .lock(LockRank::HubReport)
                        .declared
                        .push((rank, failed_epoch));
                    monitor_state.stamp("declared", rank, failed_epoch);
                    monitor_state.broadcast_event(ev);
                    if !monitor_state.opts.respawn {
                        continue;
                    }
                    let incarnation = {
                        let mut children =
                            monitor_state.children.lock(LockRank::HubChildren);
                        let slot = &mut children[rank];
                        // Reap a crash the hub didn't cause before the
                        // slot is reused.
                        if let Some(mut old) = slot.child.take() {
                            let _ = old.kill();
                            let _ = old.wait();
                            slot.exit = Some(-1);
                        }
                        slot.incarnation + 1
                    };
                    let child = spawn_cell.lock(LockRank::HubSpawn)(
                        rank,
                        incarnation,
                        &hub_addr,
                    );
                    match child {
                        Ok(child) => {
                            let mut children =
                                monitor_state.children.lock(LockRank::HubChildren);
                            children[rank] = ChildSlot {
                                child: Some(child),
                                incarnation,
                                exit: None,
                                hub_killed: false,
                            };
                            monitor_state
                                .report
                                .lock(LockRank::HubReport)
                                .respawned
                                .push(rank);
                            monitor_state.stamp("respawned", rank, failed_epoch);
                        }
                        Err(_) => monitor_state.broadcast(&ControlLine::Poison.render()),
                    }
                }
            }
        });

        // Reap children until the whole world (including replacements)
        // has exited.
        loop {
            let mut all_done = true;
            {
                // Lock order: HubChildren → HubReport (10 → 16).
                let mut children = state.children.lock(LockRank::HubChildren);
                for (rank, slot) in children.iter_mut().enumerate() {
                    if let Some(child) = slot.child.as_mut() {
                        match child.try_wait() {
                            Ok(Some(status)) => {
                                let code = status.code().unwrap_or(-1);
                                slot.exit = Some(code);
                                slot.child = None;
                                if code != 0 && !slot.hub_killed {
                                    state
                                        .report
                                        .lock(LockRank::HubReport)
                                        .exit_failures
                                        .push((rank, code));
                                }
                            }
                            Ok(None) => all_done = false,
                            Err(_) => {
                                slot.exit = Some(-1);
                                slot.child = None;
                            }
                        }
                    }
                }
            }
            if all_done {
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        state.shutdown.store(true, Ordering::SeqCst);
        state.health.wake();
        Ok(())
    })?;

    Ok(state.report.into_inner())
}
