//! Checkpoint/restart on top of the GenericIO-style snapshot format.
//!
//! The BG/Q runs behind the paper lasted many hours on up to 96 racks; at
//! that scale the machinery that matters as much as the solver is the one
//! that lets a run survive losing a node. HACC's answer is periodic
//! checkpointing through its own I/O library. This module reproduces that
//! layer: every rank serializes its state — positions, momenta, particle
//! ids, scale factor, step index, and a fingerprint of the driver
//! configuration — through the CRC-validated [`Snapshot`] byte format
//! ([`hacc_genio`]), one file per rank per checkpoint.
//!
//! Restart validates everything it can before trusting a file: the magic
//! and per-block CRCs (in `hacc-genio`), the config fingerprint, the rank
//! geometry, and the step index. Discovery walks checkpoint sets from
//! newest to oldest and collectively agrees on the newest set that every
//! rank can read — a half-written or corrupted set from the failed run is
//! skipped, not trusted.
//!
//! The headline guarantee (exercised in `tests/resilience.rs` at the
//! workspace root): a run killed mid-stream and resumed from its last
//! checkpoint reaches a **bit-exact** final state relative to an
//! uninterrupted run. Two properties make that possible:
//!
//! * the serial stepper's long-range force cache is a pure function of
//!   the (unchanged) positions, so dropping it across a restart changes
//!   nothing ([`Simulation::from_state`]);
//! * the distributed stepper begins every step with a domain refresh
//!   that reads only the active-particle prefix, so restoring that
//!   prefix — order and bits — restores the trajectory
//!   ([`DistSimulation::from_checkpoint_state`]).

use std::fmt;
use std::path::{Path, PathBuf};

use hacc_comm::Comm;
use hacc_domain::Particles;
use hacc_genio::{crc32, GenioError, Snapshot};

use crate::config::SimConfig;
use crate::dist::DistSimulation;
use crate::sim::Simulation;

/// Metadata key: number of completed long-range steps.
pub const META_STEP: &str = "step";
/// Metadata key: CRC-32 fingerprint of the driver configuration.
pub const META_CFG: &str = "cfg_crc";
/// Metadata key: writing rank.
pub const META_RANK: &str = "rank";
/// Metadata key: number of ranks in the writing run.
pub const META_NRANKS: &str = "nranks";

/// Errors arising while writing or restoring a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying snapshot I/O or format failure.
    Genio(GenioError),
    /// The checkpoint was written under a different configuration.
    ConfigMismatch {
        /// Fingerprint of the configuration the caller supplied.
        expected: u64,
        /// Fingerprint recorded in the checkpoint.
        found: u64,
    },
    /// Rank count or rank index in the file disagrees with the caller.
    Geometry(String),
    /// A required column or metadata entry is absent.
    Missing(String),
    /// No complete, valid checkpoint set exists in the directory.
    NoCheckpoint,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Genio(e) => write!(f, "checkpoint i/o: {e}"),
            CheckpointError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint written under a different config \
                 (fingerprint {found:#x}, expected {expected:#x})"
            ),
            CheckpointError::Geometry(m) => write!(f, "checkpoint geometry mismatch: {m}"),
            CheckpointError::Missing(m) => write!(f, "checkpoint missing {m}"),
            CheckpointError::NoCheckpoint => write!(f, "no valid checkpoint set found"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<GenioError> for CheckpointError {
    fn from(e: GenioError) -> Self {
        CheckpointError::Genio(e)
    }
}

/// CRC-32 fingerprint of a driver configuration. Two runs with the same
/// fingerprint step through identical physics, so a checkpoint from one
/// may seed the other.
#[must_use] 
pub fn config_fingerprint(cfg: &SimConfig) -> u64 {
    u64::from(crc32(format!("{cfg:?}").as_bytes()))
}

/// Path of rank `rank`'s file in the `step`-step checkpoint set.
#[must_use] 
pub fn checkpoint_path(dir: &Path, step: u64, rank: usize, nranks: usize) -> PathBuf {
    dir.join(format!("ckpt_step{step:06}_r{rank}of{nranks}.gio"))
}

/// Parse a file name produced by [`checkpoint_path`] back into
/// `(step, rank, nranks)`.
fn parse_name(name: &str) -> Option<(u64, usize, usize)> {
    let rest = name.strip_prefix("ckpt_step")?.strip_suffix(".gio")?;
    let (step, ranks) = rest.split_once("_r")?;
    let (rank, nranks) = ranks.split_once("of")?;
    Some((step.parse().ok()?, rank.parse().ok()?, nranks.parse().ok()?))
}

/// Step indices (ascending) for which `dir` holds a complete set: one
/// file per rank, all written for `nranks` ranks. Presence only — CRC
/// and config validation happen at read time.
pub fn complete_sets(dir: &Path, nranks: usize) -> Vec<u64> {
    let mut per_step: std::collections::BTreeMap<u64, Vec<bool>> = Default::default();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some((step, rank, p)) = name.to_str().and_then(parse_name) else {
            continue;
        };
        if p != nranks || rank >= nranks {
            continue;
        }
        per_step.entry(step).or_insert_with(|| vec![false; nranks])[rank] = true;
    }
    per_step
        .into_iter()
        .filter(|(_, seen)| seen.iter().all(|&s| s))
        .map(|(step, _)| step)
        .collect()
}

/// Delete every *complete* checkpoint set in `dir` except the newest
/// `keep`, returning the number of files removed. Incomplete sets (a
/// run may still be writing the newest one) and foreign files are left
/// alone, as are `.tmp` leftovers from interrupted atomic writes —
/// [`complete_sets`] never counts either, so they are inert. Call from
/// one rank only (the driver uses rank 0) after a set finishes; old
/// sets are dead weight, not write targets, so there is no race with
/// concurrent checkpoint writers.
#[must_use = "the removal count distinguishes a trimmed directory from a no-op"]
pub fn gc_checkpoints(dir: &Path, nranks: usize, keep: usize) -> usize {
    let sets = complete_sets(dir, nranks);
    let cut = sets.len().saturating_sub(keep);
    let mut removed = 0;
    for &step in &sets[..cut] {
        for rank in 0..nranks {
            if std::fs::remove_file(checkpoint_path(dir, step, rank, nranks)).is_ok() {
                removed += 1;
            }
        }
    }
    removed
}

/// Validate a loaded snapshot against the caller's configuration and
/// rank geometry, returning the recorded step index.
fn validate(
    snap: &Snapshot,
    cfg: &SimConfig,
    rank: usize,
    nranks: usize,
) -> Result<u64, CheckpointError> {
    let expected = config_fingerprint(cfg);
    let found = *snap
        .meta_u64
        .get(META_CFG)
        .ok_or_else(|| CheckpointError::Missing(format!("metadata '{META_CFG}'")))?;
    if found != expected {
        return Err(CheckpointError::ConfigMismatch { expected, found });
    }
    let file_rank = snap.meta_u64.get(META_RANK).copied();
    let file_nranks = snap.meta_u64.get(META_NRANKS).copied();
    if file_rank != Some(rank as u64) || file_nranks != Some(nranks as u64) {
        return Err(CheckpointError::Geometry(format!(
            "file is rank {file_rank:?} of {file_nranks:?}, \
             reader is rank {rank} of {nranks}"
        )));
    }
    if (snap.box_len - cfg.box_len).abs() > 1e-9 {
        return Err(CheckpointError::Geometry(format!(
            "box {} vs config {}",
            snap.box_len, cfg.box_len
        )));
    }
    snap.meta_u64
        .get(META_STEP)
        .copied()
        .ok_or_else(|| CheckpointError::Missing(format!("metadata '{META_STEP}'")))
}

/// Pull a named `f32` column out of a snapshot.
fn column(snap: &Snapshot, name: &str) -> Result<Vec<f32>, CheckpointError> {
    snap.f32_fields
        .get(name)
        .cloned()
        .ok_or_else(|| CheckpointError::Missing(format!("column '{name}'")))
}

fn stamp(snap: &mut Snapshot, cfg: &SimConfig, step: u64, rank: usize, nranks: usize) {
    snap.meta_u64.insert(META_STEP.into(), step);
    snap.meta_u64
        .insert(META_CFG.into(), config_fingerprint(cfg));
    snap.meta_u64.insert(META_RANK.into(), rank as u64);
    snap.meta_u64.insert(META_NRANKS.into(), nranks as u64);
}

impl Simulation {
    /// Capture the full restart state after `step_index` completed steps
    /// as a CRC-protected snapshot record.
    pub fn checkpoint(&self, step_index: u64) -> Snapshot {
        let (x, y, z) = self.positions();
        let (vx, vy, vz) = self.momenta();
        let mut snap =
            Snapshot::from_particles(self.config().box_len, self.a, x, y, z, vx, vy, vz, None);
        stamp(&mut snap, self.config(), step_index, 0, 1);
        snap
    }

    /// Rebuild a simulation from a checkpoint record, returning it with
    /// the number of steps already completed. Validates the config
    /// fingerprint and geometry; the per-block CRCs were already checked
    /// when `snap` was parsed.
    pub fn resume(cfg: SimConfig, snap: &Snapshot) -> Result<(Simulation, u64), CheckpointError> {
        let step = validate(snap, &cfg, 0, 1)?;
        let sim = Simulation::from_state(
            cfg,
            snap.a,
            column(snap, "x")?,
            column(snap, "y")?,
            column(snap, "z")?,
            column(snap, "vx")?,
            column(snap, "vy")?,
            column(snap, "vz")?,
        );
        Ok((sim, step))
    }
}

impl<'a> DistSimulation<'a> {
    /// This rank's restart record after `step_index` completed steps:
    /// the active-particle prefix (positions, momenta, ids) exactly as
    /// held, plus the step/config/geometry metadata.
    #[must_use] 
    pub fn checkpoint(&self, step_index: u64) -> Snapshot {
        let parts = self.particles();
        let n = parts.n_active;
        let mut snap = Snapshot::from_particles(
            self.config().box_len,
            self.a,
            &parts.x[..n],
            &parts.y[..n],
            &parts.z[..n],
            &parts.vx[..n],
            &parts.vy[..n],
            &parts.vz[..n],
            Some(&parts.id[..n]),
        );
        stamp(
            &mut snap,
            self.config(),
            step_index,
            self.comm().rank(),
            self.comm().size(),
        );
        snap
    }

    /// Write this rank's file of the `step_index` checkpoint set into
    /// `dir` (created if absent). Every rank calls this; the set is
    /// complete once all files exist.
    ///
    /// The file is written to a `.tmp` sibling and renamed into place,
    /// so a crash mid-write leaves either the previous version or no
    /// file — never a torn one that [`complete_sets`] would count and
    /// restart would then have to CRC-reject.
    pub fn checkpoint_to(&self, dir: &Path, step_index: u64) -> Result<PathBuf, CheckpointError> {
        std::fs::create_dir_all(dir).map_err(GenioError::Io)?;
        let path = checkpoint_path(dir, step_index, self.comm().rank(), self.comm().size());
        let tmp = path.with_extension("gio.tmp");
        self.checkpoint(step_index).write_file(&tmp)?;
        std::fs::rename(&tmp, &path).map_err(GenioError::Io)?;
        Ok(path)
    }

    /// Restore from the newest complete, valid checkpoint set in `dir`
    /// (collective). Rank 0 enumerates candidate sets and broadcasts the
    /// list; the ranks then walk it newest-first, each validating its own
    /// file (CRC, config fingerprint, geometry), and agree by allreduce
    /// on the first set every rank can read. Corrupted or half-written
    /// sets are skipped; a config mismatch aborts on every rank.
    ///
    /// Returns the rebuilt simulation and the number of completed steps,
    /// or [`CheckpointError::NoCheckpoint`] if nothing usable exists.
    pub fn resume_from(
        comm: &'a Comm,
        cfg: SimConfig,
        dir: &Path,
    ) -> Result<(Self, u64), CheckpointError> {
        let p = comm.size();
        let mine = (comm.rank() == 0).then(|| complete_sets(dir, p));
        let candidates = comm.broadcast(0, mine);
        for &step in candidates.iter().rev() {
            let path = checkpoint_path(dir, step, comm.rank(), p);
            let attempt = Snapshot::read_file(&path)
                .map_err(CheckpointError::from)
                .and_then(|snap| validate(&snap, &cfg, comm.rank(), p).map(|s| (snap, s)));
            // Collective verdict: 0 = readable, 1 = unreadable/corrupt
            // (fall back to an older set), 2 = config mismatch (abort).
            let verdict = match &attempt {
                Ok(_) => 0.0,
                Err(CheckpointError::ConfigMismatch { .. }) => 2.0,
                Err(_) => 1.0,
            };
            match comm.allreduce_max(verdict) as u32 {
                0 => {
                    let (snap, file_step) = attempt.expect("verdict 0 implies readable");
                    debug_assert_eq!(file_step, step);
                    let parts = Particles {
                        x: column(&snap, "x")?,
                        y: column(&snap, "y")?,
                        z: column(&snap, "z")?,
                        vx: column(&snap, "vx")?,
                        vy: column(&snap, "vy")?,
                        vz: column(&snap, "vz")?,
                        id: snap
                            .u64_fields
                            .get("id")
                            .cloned()
                            .ok_or_else(|| CheckpointError::Missing("column 'id'".into()))?,
                        n_active: snap.len(),
                    };
                    let sim = DistSimulation::from_checkpoint_state(comm, cfg, snap.a, parts);
                    return Ok((sim, file_step));
                }
                1 => continue,
                _ => {
                    return Err(match attempt {
                        Err(e @ CheckpointError::ConfigMismatch { .. }) => e,
                        // Another rank saw the mismatch; this rank's file
                        // may even be readable.
                        _ => CheckpointError::ConfigMismatch {
                            expected: config_fingerprint(&cfg),
                            found: 0,
                        },
                    });
                }
            }
        }
        Err(CheckpointError::NoCheckpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hacc_cosmo::{Cosmology, LinearPower, Transfer};

    fn cfg() -> SimConfig {
        SimConfig {
            ng: 16,
            box_len: 64.0,
            a_init: 0.25,
            steps: 4,
            subcycles: 2,
            solver: crate::config::SolverKind::TreePm,
            ..SimConfig::small_lcdm()
        }
    }

    fn ics() -> hacc_ics::IcsRealization {
        let power = LinearPower::new(&Cosmology::lcdm(), Transfer::EisensteinHuNoWiggle);
        hacc_ics::zeldovich(8, 64.0, &power, 0.25, 4242)
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = cfg();
        let mut b = cfg();
        b.subcycles += 1;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
        assert_eq!(config_fingerprint(&a), config_fingerprint(&cfg()));
    }

    #[test]
    fn path_names_roundtrip() {
        let p = checkpoint_path(Path::new("/tmp/x"), 17, 3, 8);
        let name = p.file_name().unwrap().to_str().unwrap();
        assert_eq!(parse_name(name), Some((17, 3, 8)));
        assert_eq!(parse_name("ckpt_step1_r0of2.txt"), None);
        assert_eq!(parse_name("snapshot.gio"), None);
    }

    #[test]
    fn serial_checkpoint_roundtrips_through_bytes() {
        let mut sim = Simulation::from_ics(cfg(), &ics());
        let edges = sim.config().step_edges();
        sim.step(edges[1]);
        let snap = sim.checkpoint(1);
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("parse");
        let (resumed, step) = Simulation::resume(cfg(), &back).expect("resume");
        assert_eq!(step, 1);
        assert_eq!(resumed.positions(), sim.positions());
        assert_eq!(resumed.momenta(), sim.momenta());
        assert_eq!(resumed.a, sim.a);
    }

    #[test]
    fn serial_resume_is_bit_exact() {
        let edges = cfg().step_edges();
        // Uninterrupted run.
        let mut whole = Simulation::from_ics(cfg(), &ics());
        for &a1 in &edges[1..] {
            whole.step(a1);
        }
        // Checkpoint after step 2, resume in a fresh object, finish.
        let mut first = Simulation::from_ics(cfg(), &ics());
        first.step(edges[1]);
        first.step(edges[2]);
        let snap = first.checkpoint(2);
        drop(first);
        let (mut resumed, step) = Simulation::resume(cfg(), &snap).expect("resume");
        for &a1 in &edges[step as usize + 1..] {
            resumed.step(a1);
        }
        assert_eq!(resumed.positions(), whole.positions(), "positions diverged");
        assert_eq!(resumed.momenta(), whole.momenta(), "momenta diverged");
        assert_eq!(resumed.a.to_bits(), whole.a.to_bits());
    }

    #[test]
    fn resume_rejects_wrong_config() {
        let sim = Simulation::from_ics(cfg(), &ics());
        let snap = sim.checkpoint(0);
        let mut other = cfg();
        other.rcut_cells = 2.0;
        match Simulation::resume(other, &snap) {
            Err(CheckpointError::ConfigMismatch { .. }) => {}
            Err(e) => panic!("expected config mismatch, got {e:?}"),
            Ok(_) => panic!("expected config mismatch, got Ok"),
        }
    }

    #[test]
    fn resume_rejects_missing_metadata() {
        let sim = Simulation::from_ics(cfg(), &ics());
        let mut snap = sim.checkpoint(0);
        snap.meta_u64.remove(META_STEP);
        assert!(matches!(
            Simulation::resume(cfg(), &snap),
            Err(CheckpointError::Missing(_))
        ));
    }

    #[test]
    fn complete_sets_requires_every_rank() {
        let dir = std::env::temp_dir().join(format!("hacc_ckpt_sets_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let touch = |step: u64, rank: usize| {
            std::fs::write(checkpoint_path(&dir, step, rank, 2), b"x").unwrap();
        };
        touch(2, 0);
        touch(2, 1);
        touch(4, 0); // rank 1's file missing: incomplete
        std::fs::write(dir.join("unrelated.dat"), b"x").unwrap();
        assert_eq!(complete_sets(&dir, 2), vec![2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_write_leaves_no_countable_file() {
        // A `.tmp` leftover must be invisible to set discovery.
        let p = checkpoint_path(Path::new("/tmp/x"), 3, 1, 4);
        let tmp = p.with_extension("gio.tmp");
        let name = tmp.file_name().unwrap().to_str().unwrap();
        assert_eq!(parse_name(name), None, "tmp file parsed as a checkpoint");
    }

    #[test]
    fn gc_retains_newest_sets_and_spares_strays() {
        let dir = std::env::temp_dir().join(format!("hacc_ckpt_gc_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let touch = |step: u64, rank: usize| {
            std::fs::write(checkpoint_path(&dir, step, rank, 2), b"x").unwrap();
        };
        for step in [2, 4, 6] {
            touch(step, 0);
            touch(step, 1);
        }
        touch(8, 0); // incomplete newest set: a run may still be writing it
        std::fs::write(dir.join("unrelated.dat"), b"x").unwrap();
        assert_eq!(gc_checkpoints(&dir, 2, 2), 2, "only set 2's files removed");
        assert_eq!(complete_sets(&dir, 2), vec![4, 6]);
        assert!(checkpoint_path(&dir, 8, 0, 2).exists(), "incomplete set touched");
        assert!(dir.join("unrelated.dat").exists(), "foreign file touched");
        // Already within budget: nothing further to remove.
        assert_eq!(gc_checkpoints(&dir, 2, 2), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
