//! Wire-framing torture tests: every typed payload must round-trip
//! bit-exactly through the frame codec, and every torn or bit-flipped
//! frame must fail *loudly* — a structured [`FrameError`], never silent
//! acceptance of corrupt data.

use hacc_comm::wire::{
    decode_frame, decode_vec, encode_frame, encode_vec, parse_header, type_hash, FrameError,
    FrameHeader, WireMsg, FRAME_HEADER, FRAME_TRAILER, MAX_PAYLOAD,
};
use proptest::prelude::*;

/// A representative composite message: the shape of a packed particle.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Probe {
    pos: [f32; 3],
    vel: [f32; 3],
    id: u64,
    flag: bool,
}

hacc_comm::impl_wire_msg!(Probe {
    pos: [f32; 3],
    vel: [f32; 3],
    id: u64,
    flag: bool,
});

fn frame_of(payload: &[u8], seq: u64) -> Vec<u8> {
    let h = FrameHeader {
        src: 3,
        context: 0xc0ffee,
        tag: 42,
        seq,
        type_hash: type_hash::<Probe>(),
        len: payload.len() as u64,
    };
    encode_frame(&h, payload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Typed payloads of arbitrary content and length — explicitly
    /// including empty — survive encode/frame/decode bit-exactly.
    #[test]
    fn typed_payload_roundtrips(
        msgs in prop::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()),
            0..48,
        ),
        src in any::<u32>(),
        context in any::<u64>(),
        tag in any::<u64>(),
        seq in any::<u64>(),
    ) {
        // Drive the float fields from raw bits so NaNs and subnormals
        // are exercised; compare by bit pattern for the same reason.
        let split = |w: u64| (f32::from_bits(w as u32), f32::from_bits((w >> 32) as u32));
        let msgs: Vec<Probe> = msgs
            .into_iter()
            .map(|(a, b, c, flag)| {
                let (p0, p1) = split(a);
                let (p2, v0) = split(b);
                let (v1, v2) = split(c);
                Probe {
                    pos: [p0, p1, p2],
                    vel: [v0, v1, v2],
                    id: a.wrapping_mul(31).wrapping_add(c.rotate_left(17)),
                    flag,
                }
            })
            .collect();
        let payload = encode_vec(&msgs);
        prop_assert_eq!(payload.len(), msgs.len() * Probe::WIRE_SIZE);
        let h = FrameHeader {
            src, context, tag, seq,
            type_hash: type_hash::<Probe>(),
            len: payload.len() as u64,
        };
        let frame = encode_frame(&h, &payload);
        prop_assert_eq!(frame.len(), FRAME_HEADER + payload.len() + FRAME_TRAILER);

        let (got_h, got_payload) = decode_frame(&frame).expect("clean frame decodes");
        prop_assert_eq!(got_h, h);
        let got: Vec<Probe> = decode_vec(got_payload);
        prop_assert_eq!(got.len(), msgs.len());
        for (g, w) in got.iter().zip(&msgs) {
            for c in 0..3 {
                prop_assert_eq!(g.pos[c].to_bits(), w.pos[c].to_bits());
                prop_assert_eq!(g.vel[c].to_bits(), w.vel[c].to_bits());
            }
            prop_assert_eq!(g.id, w.id);
            prop_assert_eq!(g.flag, w.flag);
        }
    }

    /// Any truncation point — mid-header, mid-payload, or inside the CRC
    /// trailer — is reported as `Truncated`, never decoded.
    #[test]
    fn truncation_anywhere_is_loud(
        n_msgs in 0usize..16,
        cut_frac in 0.0f64..1.0,
    ) {
        let msgs = vec![Probe { pos: [1.0; 3], vel: [2.0; 3], id: 7, flag: true }; n_msgs];
        let frame = frame_of(&encode_vec(&msgs), 0);
        let cut = ((frame.len() - 1) as f64 * cut_frac) as usize;
        match decode_frame(&frame[..cut]) {
            Err(FrameError::Truncated { need, have }) => {
                prop_assert_eq!(have, cut);
                prop_assert!(need > cut);
            }
            other => prop_assert!(false, "truncated frame at {cut} bytes decoded as {other:?}"),
        }
    }

    /// A single flipped bit anywhere in the frame is caught: the decode
    /// either fails the CRC, rejects the header structurally, or — for
    /// flips in the length field that shrink the frame — reports a torn
    /// frame. It never silently yields different bytes.
    #[test]
    fn bit_flip_anywhere_is_caught(
        n_msgs in 1usize..8,
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let msgs = vec![Probe { pos: [0.5; 3], vel: [-0.25; 3], id: 11, flag: false }; n_msgs];
        let payload = encode_vec(&msgs);
        let mut frame = frame_of(&payload, 5);
        let at = ((frame.len() - 1) as f64 * flip_frac) as usize;
        frame[at] ^= 1 << bit;
        match decode_frame(&frame) {
            Err(_) => {} // loud, structured — exactly what the link wants
            Ok((h, got)) => {
                // The only acceptable decode is one where the flip grew
                // the declared length and decode_frame saw a *larger*
                // frame than supplied — impossible, since that returns
                // Truncated. So any Ok must re-verify as bit-identical,
                // i.e. the flip landed outside the covered region. The
                // CRC covers everything after the magic, and a magic
                // flip fails BadMagic — so Ok is unreachable.
                prop_assert!(false, "corrupt frame accepted: header {h:?}, {} payload bytes", got.len());
            }
        }
    }
}

/// Zero-length payloads are legal frames, not edge-case crashes.
#[test]
fn zero_length_roundtrip() {
    let payload = encode_vec::<Probe>(&[]);
    assert!(payload.is_empty());
    let frame = frame_of(&payload, 9);
    assert_eq!(frame.len(), FRAME_HEADER + FRAME_TRAILER);
    let (h, body) = decode_frame(&frame).expect("empty frame decodes");
    assert_eq!(h.len, 0);
    assert_eq!(h.seq, 9);
    assert!(body.is_empty());
    assert!(decode_vec::<Probe>(body).is_empty());
}

/// Messages larger than 64 KiB — bigger than any single kernel-buffered
/// write — round-trip intact.
#[test]
fn large_payload_roundtrip() {
    let n = (96 * 1024) / Probe::WIRE_SIZE + 1; // > 96 KiB of payload
    let msgs: Vec<Probe> = (0..n)
        .map(|i| Probe {
            pos: [i as f32, (i * 2) as f32, (i * 3) as f32],
            vel: [-(i as f32), 0.125, 1e-30],
            id: i as u64,
            flag: i % 3 == 0,
        })
        .collect();
    let payload = encode_vec(&msgs);
    assert!(payload.len() > 64 * 1024, "payload must exceed 64 KiB");
    let frame = frame_of(&payload, 1);
    let (h, body) = decode_frame(&frame).expect("large frame decodes");
    assert_eq!(h.len as usize, payload.len());
    let got: Vec<Probe> = decode_vec(body);
    assert_eq!(got, msgs);
}

/// A length field pointing past [`MAX_PAYLOAD`] is an attack or a torn
/// stream, not an allocation request.
#[test]
fn oversize_length_is_rejected_before_allocation() {
    let mut frame = frame_of(&[], 0);
    // Scribble the length field (offset 40) to just past the cap.
    let bad = MAX_PAYLOAD + 1;
    frame[40..48].copy_from_slice(&bad.to_le_bytes());
    match parse_header(&frame) {
        Err(FrameError::Oversize(len)) => assert_eq!(len, bad),
        other => panic!("oversize frame parsed as {other:?}"),
    }
}

/// Wrong magic is structurally rejected before any CRC work.
#[test]
fn bad_magic_is_rejected() {
    let mut frame = frame_of(&encode_vec(&[Probe {
        pos: [0.0; 3],
        vel: [0.0; 3],
        id: 0,
        flag: false,
    }]), 0);
    frame[0] ^= 0xFF;
    match parse_header(&frame) {
        Err(FrameError::BadMagic(_)) => {}
        other => panic!("bad-magic frame parsed as {other:?}"),
    }
}

/// The error messages name the failure mode — the transport surfaces
/// these as `CorruptDetected` details, so they must be self-describing.
#[test]
fn frame_errors_are_descriptive() {
    let frame = frame_of(&encode_vec(&[Probe {
        pos: [1.0; 3],
        vel: [1.0; 3],
        id: 1,
        flag: true,
    }]), 0);
    let torn = decode_frame(&frame[..frame.len() - 2]).unwrap_err();
    assert!(format!("{torn}").contains("torn frame"), "{torn}");
    let mut crc = frame.clone();
    let mid = FRAME_HEADER + 4;
    crc[mid] ^= 0x10;
    let bad = decode_frame(&crc).unwrap_err();
    assert!(format!("{bad}").to_lowercase().contains("crc"), "{bad}");
}
