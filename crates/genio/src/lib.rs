//! Self-describing, checksummed particle snapshot I/O.
//!
//! HACC ships its own I/O library (GenericIO): self-describing blocks of
//! named SoA fields with per-block checksums, designed for writing
//! trillions of particles and sub-sampled science outputs ("we stored …
//! a subset of the particles and the mass fluctuation power spectrum at
//! 10 intermediate snapshots", Section V). This crate reproduces the
//! format's essentials at file scale:
//!
//! * a fixed little-endian header (magic, version, particle count, box
//!   size, scale factor);
//! * a CRC-protected metadata section of named `u64`/`f64` scalars
//!   (format v2) — checkpoint/restart stores the step index, rank
//!   geometry, and config fingerprint here;
//! * any number of named field blocks (`f32` or `u64` SoA columns), each
//!   protected by a CRC-32 so corruption is detected at read time;
//! * writer-side sub-sampling (every k-th particle) for cheap science
//!   snapshots.
//!
//! Readers accept both v1 (no metadata section) and v2 files. Parsing
//! never panics on malformed input: every length is bounds- and
//! overflow-checked and every failure is a [`GenioError`].

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"HGIO";
/// Current write version. v1 files (no metadata section) remain readable.
const VERSION: u32 = 2;

/// A particle snapshot: metadata plus named SoA columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Periodic box side.
    pub box_len: f64,
    /// Scale factor of the snapshot.
    pub a: f64,
    /// Named `f32` columns (positions, velocities, …); all must share one
    /// length.
    pub f32_fields: BTreeMap<String, Vec<f32>>,
    /// Named `u64` columns (ids, …).
    pub u64_fields: BTreeMap<String, Vec<u64>>,
    /// Named scalar metadata, integer-valued (step index, rank, …).
    /// Serialized in the v2 CRC-protected metadata section.
    pub meta_u64: BTreeMap<String, u64>,
    /// Named scalar metadata, real-valued.
    pub meta_f64: BTreeMap<String, f64>,
}

/// Errors arising while reading a snapshot.
#[derive(Debug)]
pub enum GenioError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Magic/version mismatch or malformed structure.
    Format(String),
    /// A block's checksum did not match its contents.
    Corrupt { field: String },
}

impl std::fmt::Display for GenioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenioError::Io(e) => write!(f, "i/o error: {e}"),
            GenioError::Format(m) => write!(f, "format error: {m}"),
            GenioError::Corrupt { field } => write!(f, "checksum mismatch in field '{field}'"),
        }
    }
}

impl std::error::Error for GenioError {}

impl From<std::io::Error> for GenioError {
    fn from(e: std::io::Error) -> Self {
        GenioError::Io(e)
    }
}

impl Snapshot {
    /// Build a snapshot from the canonical particle columns.
    #[allow(clippy::too_many_arguments)]
    #[must_use] 
    pub fn from_particles(
        box_len: f64,
        a: f64,
        x: &[f32],
        y: &[f32],
        z: &[f32],
        vx: &[f32],
        vy: &[f32],
        vz: &[f32],
        id: Option<&[u64]>,
    ) -> Self {
        let mut s = Snapshot {
            box_len,
            a,
            ..Default::default()
        };
        for (name, col) in [
            ("x", x),
            ("y", y),
            ("z", z),
            ("vx", vx),
            ("vy", vy),
            ("vz", vz),
        ] {
            s.f32_fields.insert(name.to_string(), col.to_vec());
        }
        if let Some(id) = id {
            s.u64_fields.insert("id".to_string(), id.to_vec());
        }
        s
    }

    /// Number of particles (length of the columns).
    pub fn len(&self) -> usize {
        self.f32_fields
            .values()
            .next()
            .map(Vec::len)
            .or_else(|| self.u64_fields.values().next().map(Vec::len))
            .unwrap_or(0)
    }

    /// True when the snapshot holds no particles.
    #[must_use] 
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keep only every `stride`-th particle — the cheap science-output
    /// sub-sampling HACC used when "only a small file system was
    /// available".
    #[must_use] 
    pub fn subsample(&self, stride: usize) -> Snapshot {
        assert!(stride >= 1);
        let pick = |n: usize| (0..n).step_by(stride);
        let mut out = Snapshot {
            box_len: self.box_len,
            a: self.a,
            ..Default::default()
        };
        for (k, v) in &self.f32_fields {
            out.f32_fields
                .insert(k.clone(), pick(v.len()).map(|i| v[i]).collect());
        }
        for (k, v) in &self.u64_fields {
            out.u64_fields
                .insert(k.clone(), pick(v.len()).map(|i| v[i]).collect());
        }
        out
    }

    /// Serialize to bytes.
    #[must_use] 
    pub fn to_bytes(&self) -> Bytes {
        let n = self.len();
        let mut buf = BytesMut::with_capacity(64 + n * (self.f32_fields.len() * 4 + 8));
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(n as u64);
        buf.put_f64_le(self.box_len);
        buf.put_f64_le(self.a);
        buf.put_u32_le((self.f32_fields.len() + self.u64_fields.len()) as u32);
        // v2 metadata section, CRC-protected as a unit.
        let meta_start = buf.len();
        buf.put_u32_le(self.meta_u64.len() as u32);
        for (name, &v) in &self.meta_u64 {
            buf.put_u16_le(name.len() as u16);
            buf.put_slice(name.as_bytes());
            buf.put_u64_le(v);
        }
        buf.put_u32_le(self.meta_f64.len() as u32);
        for (name, &v) in &self.meta_f64 {
            buf.put_u16_le(name.len() as u16);
            buf.put_slice(name.as_bytes());
            buf.put_f64_le(v);
        }
        let meta_crc = crc32(&buf[meta_start..]);
        buf.put_u32_le(meta_crc);
        for (name, col) in &self.f32_fields {
            put_block(&mut buf, name, 0, col.len(), |b| {
                for &v in col {
                    b.put_f32_le(v);
                }
            });
        }
        for (name, col) in &self.u64_fields {
            put_block(&mut buf, name, 1, col.len(), |b| {
                for &v in col {
                    b.put_u64_le(v);
                }
            });
        }
        buf.freeze()
    }

    /// Parse from bytes, verifying every block checksum. Never panics on
    /// malformed input: truncation, length overflow, and corruption all
    /// come back as [`GenioError`].
    pub fn from_bytes(mut data: &[u8]) -> Result<Snapshot, GenioError> {
        if data.len() < 4 || &data[..4] != MAGIC {
            return Err(GenioError::Format("bad magic".into()));
        }
        if data.len() < 36 {
            return Err(GenioError::Format("truncated header".into()));
        }
        data.advance(4);
        let version = data.get_u32_le();
        if version != 1 && version != VERSION {
            return Err(GenioError::Format(format!("unsupported version {version}")));
        }
        let n64 = data.get_u64_le();
        let n: usize = n64
            .try_into()
            .map_err(|_| GenioError::Format(format!("particle count {n64} overflows")))?;
        let box_len = data.get_f64_le();
        let a = data.get_f64_le();
        let nfields = data.get_u32_le();
        let mut out = Snapshot {
            box_len,
            a,
            ..Default::default()
        };
        if version >= 2 {
            read_metadata(&mut data, &mut out)?;
        }
        let expect_f32 = n.checked_mul(4);
        let expect_u64 = n.checked_mul(8);
        for _ in 0..nfields {
            let (name, dtype, payload) = get_block(&mut data)?;
            match dtype {
                0 => {
                    if Some(payload.len()) != expect_f32 {
                        return Err(GenioError::Format(format!(
                            "field '{name}': expected {n} f32 elements, got {} bytes",
                            payload.len()
                        )));
                    }
                    let mut col = Vec::with_capacity(n);
                    let mut p = payload;
                    while p.has_remaining() {
                        col.push(p.get_f32_le());
                    }
                    out.f32_fields.insert(name, col);
                }
                1 => {
                    if Some(payload.len()) != expect_u64 {
                        return Err(GenioError::Format(format!("field '{name}': bad length")));
                    }
                    let mut col = Vec::with_capacity(n);
                    let mut p = payload;
                    while p.has_remaining() {
                        col.push(p.get_u64_le());
                    }
                    out.u64_fields.insert(name, col);
                }
                t => return Err(GenioError::Format(format!("unknown dtype {t}"))),
            }
        }
        Ok(out)
    }

    /// Write to a file.
    pub fn write_file(&self, path: &Path) -> Result<(), GenioError> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_bytes())?;
        Ok(())
    }

    /// Read from a file with full validation.
    pub fn read_file(path: &Path) -> Result<Snapshot, GenioError> {
        let mut data = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut data)?;
        Snapshot::from_bytes(&data)
    }
}

fn put_block(buf: &mut BytesMut, name: &str, dtype: u8, count: usize, fill: impl FnOnce(&mut BytesMut)) {
    buf.put_u16_le(name.len() as u16);
    buf.put_slice(name.as_bytes());
    buf.put_u8(dtype);
    let elem = if dtype == 0 { 4 } else { 8 };
    buf.put_u64_le((count * elem) as u64);
    let start = buf.len();
    fill(buf);
    let crc = crc32(&buf[start..]);
    buf.put_u32_le(crc);
}

/// Read a length-prefixed name (u16 length + bytes), bounds-checked.
fn get_name(data: &mut &[u8]) -> Result<String, GenioError> {
    if data.remaining() < 2 {
        return Err(GenioError::Format("truncated name length".into()));
    }
    let name_len = data.get_u16_le() as usize;
    if data.remaining() < name_len {
        return Err(GenioError::Format("truncated name".into()));
    }
    let name = String::from_utf8(data[..name_len].to_vec())
        .map_err(|_| GenioError::Format("name not utf-8".into()))?;
    data.advance(name_len);
    Ok(name)
}

/// Parse the v2 metadata section into `out`, verifying its CRC.
fn read_metadata(data: &mut &[u8], out: &mut Snapshot) -> Result<(), GenioError> {
    let section = *data;
    if data.remaining() < 4 {
        return Err(GenioError::Format("truncated metadata".into()));
    }
    let n_u64 = data.get_u32_le();
    for _ in 0..n_u64 {
        let name = get_name(data)?;
        if data.remaining() < 8 {
            return Err(GenioError::Format("truncated metadata value".into()));
        }
        out.meta_u64.insert(name, data.get_u64_le());
    }
    if data.remaining() < 4 {
        return Err(GenioError::Format("truncated metadata".into()));
    }
    let n_f64 = data.get_u32_le();
    for _ in 0..n_f64 {
        let name = get_name(data)?;
        if data.remaining() < 8 {
            return Err(GenioError::Format("truncated metadata value".into()));
        }
        out.meta_f64.insert(name, data.get_f64_le());
    }
    let consumed = section.len() - data.len();
    if data.remaining() < 4 {
        return Err(GenioError::Format("truncated metadata crc".into()));
    }
    let crc_stored = data.get_u32_le();
    if crc32(&section[..consumed]) != crc_stored {
        return Err(GenioError::Corrupt {
            field: "<metadata>".into(),
        });
    }
    Ok(())
}

fn get_block<'a>(data: &mut &'a [u8]) -> Result<(String, u8, &'a [u8]), GenioError> {
    let name = get_name(data)?;
    if data.remaining() < 9 {
        return Err(GenioError::Format("truncated block header".into()));
    }
    let dtype = data.get_u8();
    let len64 = data.get_u64_le();
    let len: usize = len64
        .try_into()
        .map_err(|_| GenioError::Format(format!("block length {len64} overflows")))?;
    // `len + 4` (payload + CRC) must fit in what's left — checked so a
    // corrupted length can neither overflow nor over-read.
    let need = len
        .checked_add(4)
        .ok_or_else(|| GenioError::Format(format!("block length {len} overflows")))?;
    if data.remaining() < need {
        return Err(GenioError::Format("truncated payload".into()));
    }
    let payload = &data[..len];
    data.advance(len);
    let crc_stored = data.get_u32_le();
    if crc32(payload) != crc_stored {
        return Err(GenioError::Corrupt { field: name });
    }
    Ok((name, dtype, payload))
}

/// CRC-32 (IEEE 802.3 polynomial), bytewise table-driven.
#[must_use] 
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Snapshot {
        let f: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
        let ids: Vec<u64> = (0..n as u64).collect();
        Snapshot::from_particles(64.0, 0.5, &f, &f, &f, &f, &f, &f, Some(&ids))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let snap = sample(1000);
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("parse");
        assert_eq!(back, snap);
        assert_eq!(back.len(), 1000);
        assert_eq!(back.box_len, 64.0);
        assert_eq!(back.a, 0.5);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = sample(0);
        let back = Snapshot::from_bytes(&snap.to_bytes()).expect("parse");
        assert_eq!(back.len(), 0);
        assert!(back.is_empty());
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn corruption_detected() {
        let snap = sample(100);
        let mut bytes = snap.to_bytes().to_vec();
        // Flip a byte inside the first field payload.
        let idx = bytes.len() / 2;
        bytes[idx] ^= 0xFF;
        match Snapshot::from_bytes(&bytes) {
            Err(GenioError::Corrupt { .. }) | Err(GenioError::Format(_)) => {}
            other => panic!("corruption not detected: {other:?}"),
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let snap = sample(10);
        let mut bytes = snap.to_bytes().to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(GenioError::Format(_))
        ));
    }

    #[test]
    fn truncation_rejected() {
        let snap = sample(50);
        let bytes = snap.to_bytes();
        for cut in [10, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Snapshot::from_bytes(&bytes[..cut]).is_err(),
                "truncated at {cut} accepted"
            );
        }
    }

    #[test]
    fn subsample_strides() {
        let snap = sample(100);
        let sub = snap.subsample(10);
        assert_eq!(sub.len(), 10);
        assert_eq!(sub.u64_fields["id"], (0..100).step_by(10).collect::<Vec<u64>>());
        assert_eq!(sub.box_len, snap.box_len);
        // Stride 1 is the identity.
        assert_eq!(snap.subsample(1), snap);
    }

    #[test]
    fn metadata_roundtrips() {
        let mut snap = sample(20);
        snap.meta_u64.insert("step".into(), 17);
        snap.meta_u64.insert("rank".into(), 3);
        snap.meta_f64.insert("a_next".into(), 0.625);
        let back = Snapshot::from_bytes(&snap.to_bytes()).expect("parse");
        assert_eq!(back, snap);
        assert_eq!(back.meta_u64["step"], 17);
        assert_eq!(back.meta_f64["a_next"], 0.625);
    }

    #[test]
    fn v1_files_still_parse() {
        // Hand-build a v1 file: header + blocks, no metadata section.
        let snap = sample(8);
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(1); // v1
        buf.put_u64_le(8);
        buf.put_f64_le(snap.box_len);
        buf.put_f64_le(snap.a);
        buf.put_u32_le((snap.f32_fields.len() + snap.u64_fields.len()) as u32);
        for (name, col) in &snap.f32_fields {
            put_block(&mut buf, name, 0, col.len(), |b| {
                for &v in col {
                    b.put_f32_le(v);
                }
            });
        }
        for (name, col) in &snap.u64_fields {
            put_block(&mut buf, name, 1, col.len(), |b| {
                for &v in col {
                    b.put_u64_le(v);
                }
            });
        }
        let back = Snapshot::from_bytes(&buf).expect("v1 parse");
        assert_eq!(back, snap);
        assert!(back.meta_u64.is_empty());
    }

    #[test]
    fn metadata_corruption_detected() {
        let mut snap = sample(4);
        snap.meta_u64.insert("step".into(), 9);
        let mut bytes = snap.to_bytes().to_vec();
        // The metadata section starts right after the 36-byte header;
        // flip a byte of the stored step value.
        bytes[44] ^= 0x01;
        match Snapshot::from_bytes(&bytes) {
            Err(GenioError::Corrupt { field }) => assert_eq!(field, "<metadata>"),
            other => panic!("metadata corruption not detected: {other:?}"),
        }
    }

    #[test]
    fn absurd_lengths_rejected_not_panicking() {
        // Header claiming u64::MAX particles must error, not overflow.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(1);
        buf.put_u64_le(u64::MAX);
        buf.put_f64_le(1.0);
        buf.put_f64_le(0.5);
        buf.put_u32_le(1);
        // Block with an absurd length prefix.
        buf.put_u16_le(1);
        buf.put_slice(b"x");
        buf.put_u8(0);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_u32_le(0);
        assert!(Snapshot::from_bytes(&buf).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let snap = sample(256);
        let path = std::env::temp_dir().join("hacc_genio_test.gio");
        snap.write_file(&path).expect("write");
        let back = Snapshot::read_file(&path).expect("read");
        assert_eq!(back, snap);
        let _ = std::fs::remove_file(&path);
    }
}
