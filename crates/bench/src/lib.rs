//! Shared plumbing for the paper-reproduction harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index). This library holds the pieces
//! they share: reference simulation setup, table formatting, and the
//! measured-vs-modeled row printer.

use hacc_core::{SimConfig, Simulation, SolverKind};
use hacc_cosmo::{Cosmology, LinearPower, Transfer};

/// Default snapshot redshifts of the Fig. 9/10 science run.
pub const FIG10_REDSHIFTS: [f64; 6] = [5.5, 3.0, 1.9, 0.9, 0.4, 0.0];

/// Build the σ8-normalized ΛCDM linear power spectrum used everywhere.
#[must_use] 
pub fn reference_power() -> LinearPower {
    LinearPower::new(&Cosmology::lcdm(), Transfer::EisensteinHuNoWiggle)
}

/// Configuration of the laptop-scale "science run" behind Figs. 2/9/10/11:
/// `np³` particles in a `box_len` Mpc/h box with a `2·np` PM grid.
#[must_use] 
pub fn science_config(np: usize, box_len: f64, steps: usize, solver: SolverKind) -> SimConfig {
    SimConfig {
        cosmology: Cosmology::lcdm(),
        box_len,
        ng: 2 * np,
        a_init: 0.1,
        a_final: 1.0,
        steps,
        subcycles: 3,
        solver,
        spectral: hacc_pm::SpectralParams::default(),
        two_level: None,
        tree: hacc_short::TreeParams::default(),
        rcut_cells: 3.0,
        skin_cells: 0.25,
        max_retries: None,
        backoff_base_ms: None,
    }
}

/// Run the science configuration, invoking `snap` at (roughly) the
/// requested redshifts with the current state.
pub fn run_science_sim<F: FnMut(f64, &Simulation)>(
    np: usize,
    box_len: f64,
    steps: usize,
    solver: SolverKind,
    redshifts: &[f64],
    mut snap: F,
) -> Simulation {
    let cfg = science_config(np, box_len, steps, solver);
    let power = reference_power();
    let ics = hacc_ics::zeldovich(np, box_len, &power, cfg.a_init, 20120931);
    let mut sim = Simulation::from_ics(cfg, &ics);
    let mut pending: Vec<f64> = redshifts.iter().map(|&z| 1.0 / (1.0 + z)).collect();
    pending.sort_by(|a, b| a.total_cmp(b));
    sim.run(|a, s| {
        while let Some(&a_snap) = pending.first() {
            if a + 1e-9 >= a_snap {
                snap(1.0 / a - 1.0, s);
                pending.remove(0);
            } else {
                break;
            }
        }
    });
    sim
}

/// Print a formatted table: header row then aligned data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format seconds adaptively (s / ms / µs / ns).
#[must_use] 
pub fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.3} ns", secs * 1e9)
    }
}

/// Format a flop rate adaptively.
#[must_use] 
pub fn fmt_flops(rate: f64) -> String {
    if rate >= 1e15 {
        format!("{:.2} PF/s", rate / 1e15)
    } else if rate >= 1e12 {
        format!("{:.2} TF/s", rate / 1e12)
    } else if rate >= 1e9 {
        format!("{:.2} GF/s", rate / 1e9)
    } else {
        format!("{:.2} MF/s", rate / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn science_config_consistent() {
        let cfg = science_config(16, 64.0, 10, SolverKind::TreePm);
        assert_eq!(cfg.ng, 32);
        assert_eq!(cfg.step_edges().len(), 11);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_time(2.0), "2.000 s");
        assert_eq!(fmt_time(2e-3), "2.000 ms");
        assert_eq!(fmt_time(2e-9), "2.000 ns");
        assert!(fmt_flops(3e15).contains("PF"));
        assert!(fmt_flops(3e10).contains("GF"));
    }
}
