//! The execution runtime: a cooperative scheduler plus a depth-first
//! search over its scheduling decisions.
//!
//! One *execution* runs the model closure with every loom thread mapped
//! onto a real OS thread, but only one thread is ever allowed to
//! proceed; all others park on a condition variable until the scheduler
//! hands them the baton. Every synchronization operation (atomic
//! access, mutex acquisition, condvar wait/notify, spawn/join) calls
//! into [`yield_point`] / [`block_current`], each of which is a
//! *scheduling decision*: the scheduler picks the next thread to run
//! from the set of currently schedulable threads. Decisions with more
//! than one candidate are recorded on a path; [`model`] replays the
//! closure, advancing the last non-exhausted decision depth-first,
//! until every path has been explored.
//!
//! Because executions are fully deterministic given the decision path
//! (time is modeled, see [`crate::time`]), a failing schedule replays
//! bit-identically — the property that makes the reported schedule a
//! usable repro.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex};
use std::time::Duration;

/// One recorded scheduling decision: which of `num` schedulable threads
/// was chosen.
#[derive(Clone, Copy, Debug)]
struct Branch {
    chosen: usize,
    num: usize,
}

/// How a condvar waiter was released.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Wake {
    Notified,
    TimedOut,
}

/// Scheduling state of one loom thread.
#[derive(Debug)]
enum Run {
    /// May be scheduled.
    Runnable,
    /// Waiting to acquire lock `lock`; schedulable once it is free.
    BlockedMutex { lock: usize },
    /// Waiting on condvar `cv` with mutex `lock` released. With a
    /// deadline the thread stays schedulable (scheduling it fires the
    /// timeout branch); without one it runs only after a notify.
    BlockedCv {
        cv: usize,
        lock: usize,
        deadline: Option<Duration>,
    },
    /// Waiting for thread `target` to finish.
    BlockedJoin { target: usize },
    Finished,
}

struct ThreadState {
    run: Run,
    /// Set when a condvar waiter is released; read by the waiter on
    /// resume to report `timed_out()`.
    cv_wake: Option<Wake>,
}

struct Inner {
    threads: Vec<ThreadState>,
    /// Holder tid per registered mutex (`None` = free).
    locks: Vec<Option<usize>>,
    /// Number of registered condvars.
    n_cvs: usize,
    /// The one thread allowed to run (`ABORTED` after a failure).
    active: usize,
    /// Decision path: replayed prefix + extensions made this execution.
    path: Vec<Branch>,
    /// Next decision index to replay.
    pos: usize,
    /// Modeled clock (advances only on timeout branches).
    clock: Duration,
    /// First failure (panic message or deadlock report).
    failed: Option<String>,
    /// Preemptions spent this execution (switches away from a thread
    /// that could have continued running).
    preemptions: usize,
    /// Maximum preemptions per execution (`None` = fully exhaustive).
    /// Bounding keeps long protocols (e.g. a barrier round) tractable:
    /// the search is then exhaustive over all schedules with at most
    /// this many preemptions — the CHESS result that most concurrency
    /// bugs need only a couple of preemptions makes this a strong
    /// guarantee at polynomial cost.
    preemption_bound: Option<usize>,
}

const ABORTED: usize = usize::MAX;

pub(crate) struct Rt {
    inner: OsMutex<Inner>,
    cv: OsCondvar,
    /// OS handles of every loom thread of this execution, joined by
    /// [`model`] after the root returns.
    os_handles: OsMutex<Vec<std::thread::JoinHandle<()>>>,
}

struct Ctx {
    rt: Arc<Rt>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Run `f` with the current thread's loom context, panicking with a
/// clear message when called outside a model run.
fn with_ctx<R>(f: impl FnOnce(&Arc<Rt>, usize) -> R) -> R {
    CTX.with(|c| {
        let c = c.borrow();
        let ctx = c
            .as_ref()
            .expect("loom primitive used outside loom::model");
        f(&ctx.rt, ctx.tid)
    })
}

impl Inner {
    /// Threads that could be handed the baton right now.
    fn candidates(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| match t.run {
                Run::Runnable => true,
                Run::BlockedMutex { lock } => self.locks[lock].is_none(),
                Run::BlockedCv { deadline, lock, .. } => {
                    deadline.is_some() && self.locks[lock].is_none()
                }
                Run::BlockedJoin { target } => {
                    matches!(self.threads[target].run, Run::Finished)
                }
                Run::Finished => false,
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Pick the next thread via the DFS path (recording a new decision
    /// when beyond the replayed prefix).
    fn pick(&mut self, candidates: &[usize]) -> usize {
        if candidates.len() == 1 {
            return candidates[0];
        }
        let idx = if self.pos < self.path.len() {
            let b = self.path[self.pos];
            assert_eq!(
                b.num,
                candidates.len(),
                "loom internal error: nondeterministic replay \
                 (decision {} had {} candidates, now {})",
                self.pos,
                b.num,
                candidates.len()
            );
            b.chosen
        } else {
            self.path.push(Branch {
                chosen: 0,
                num: candidates.len(),
            });
            0
        };
        self.pos += 1;
        candidates[idx]
    }

    /// Make `tid` actually runnable (acquiring locks / firing timeouts
    /// on its behalf) and hand it the baton.
    fn activate(&mut self, tid: usize) {
        match self.threads[tid].run {
            Run::Runnable => {}
            Run::BlockedMutex { lock } => {
                debug_assert!(self.locks[lock].is_none());
                self.locks[lock] = Some(tid);
                self.threads[tid].run = Run::Runnable;
            }
            Run::BlockedCv { deadline, lock, .. } => {
                let d = deadline.expect("scheduled an untimed cv waiter");
                debug_assert!(self.locks[lock].is_none());
                // Firing the timeout advances the modeled clock to the
                // deadline, so the waiter observes its deadline as
                // expired when it re-checks the time.
                self.clock = self.clock.max(d);
                self.threads[tid].cv_wake = Some(Wake::TimedOut);
                self.locks[lock] = Some(tid);
                self.threads[tid].run = Run::Runnable;
            }
            Run::BlockedJoin { .. } => self.threads[tid].run = Run::Runnable,
            Run::Finished => unreachable!("scheduled a finished thread"),
        }
        self.active = tid;
    }

    fn fail(&mut self, msg: String) {
        if self.failed.is_none() {
            self.failed = Some(msg);
        }
        self.active = ABORTED;
    }

    fn describe_blockers(&self) -> String {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.run, Run::Finished))
            .map(|(i, t)| format!("thread {i}: {:?}", t.run))
            .collect::<Vec<_>>()
            .join("; ")
    }
}

/// Schedule the next thread. Caller must have already moved the current
/// thread into its new state (still `Runnable` for a plain yield,
/// blocked otherwise). Returns with the lock released; the caller then
/// waits for reactivation via [`wait_for_baton`].
fn schedule_next(rt: &Rt, inner: &mut Inner) {
    if inner.failed.is_some() {
        rt.cv.notify_all();
        return;
    }
    let mut candidates = inner.candidates();
    if candidates.is_empty() {
        if inner
            .threads
            .iter()
            .all(|t| matches!(t.run, Run::Finished))
        {
            // Execution complete.
            return;
        }
        let who = inner.describe_blockers();
        inner.fail(format!("deadlock: no schedulable thread ({who})"));
        rt.cv.notify_all();
        return;
    }
    // Preemption bounding (CHESS-style): switching away from a thread
    // that is still `Runnable` (i.e. it could have kept executing
    // straight-line code) is a preemption; once the budget is spent the
    // running thread must continue. Switches away from a *blocked*
    // thread (lock handoff, cv wait — including its timeout branch) are
    // natural and always free, so timeout exploration survives bounding.
    let cur = inner.active;
    let cur_runnable = cur != ABORTED
        && cur < inner.threads.len()
        && matches!(inner.threads[cur].run, Run::Runnable);
    if cur_runnable {
        if let Some(bound) = inner.preemption_bound {
            if inner.preemptions >= bound {
                candidates = vec![cur];
            }
        }
    }
    let next = inner.pick(&candidates);
    if cur_runnable && next != cur {
        inner.preemptions += 1;
    }
    inner.activate(next);
    rt.cv.notify_all();
}

/// Park until the scheduler hands this thread the baton (or the
/// execution aborts, in which case unwind out of the model closure).
fn wait_for_baton(rt: &Rt, mut inner: std::sync::MutexGuard<'_, Inner>, me: usize) {
    loop {
        if inner.active == me {
            return;
        }
        if inner.failed.is_some() {
            drop(inner);
            // Caught by the thread shell; the first failure is already
            // recorded.
            panic!("loom execution aborted");
        }
        inner = rt.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
    }
}

/// A plain scheduling decision: current thread stays runnable and
/// competes with every other schedulable thread.
pub(crate) fn yield_point() {
    with_ctx(|rt, me| {
        let mut inner = rt.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.failed.is_some() {
            drop(inner);
            panic!("loom execution aborted");
        }
        schedule_next(rt, &mut inner);
        wait_for_baton(rt, inner, me);
    });
}

/// Move the current thread into `blocked`, schedule someone else, and
/// return once this thread is scheduled again (lock reacquired / timer
/// fired / join target finished on its behalf). Returns the condvar
/// wake reason, if any.
pub(crate) fn block_current(blocked: Run2) -> Option<Wake> {
    with_ctx(|rt, me| {
        let mut inner = rt.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.failed.is_some() {
            drop(inner);
            panic!("loom execution aborted");
        }
        inner.threads[me].run = match blocked {
            Run2::Mutex { lock } => Run::BlockedMutex { lock },
            Run2::Cv { cv, lock, deadline } => Run::BlockedCv { cv, lock, deadline },
            Run2::Join { target } => Run::BlockedJoin { target },
        };
        inner.threads[me].cv_wake = None;
        schedule_next(rt, &mut inner);
        wait_for_baton(rt, inner, me);
        let mut inner = rt.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.threads[me].cv_wake.take()
    })
}

/// Public (crate-internal) blocked-state description — keeps [`Run`]
/// private to the scheduler.
pub(crate) enum Run2 {
    Mutex { lock: usize },
    Cv {
        cv: usize,
        lock: usize,
        deadline: Option<Duration>,
    },
    Join { target: usize },
}

// ---- primitive registration & operations (called by sync/) ----------

/// Register a new mutex, returning its id.
pub(crate) fn register_lock() -> usize {
    with_ctx(|rt, _| {
        let mut inner = rt.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.locks.push(None);
        inner.locks.len() - 1
    })
}

/// Register a new condvar, returning its id.
pub(crate) fn register_cv() -> usize {
    with_ctx(|rt, _| {
        let mut inner = rt.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.n_cvs += 1;
        inner.n_cvs - 1
    })
}

/// Acquire `lock` for the current thread (blocking schedule if held).
pub(crate) fn lock_acquire(lock: usize) {
    yield_point();
    let must_block = with_ctx(|rt, me| {
        let mut inner = rt.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner.locks[lock] {
            None => {
                inner.locks[lock] = Some(me);
                false
            }
            Some(holder) => {
                assert_ne!(holder, me, "loom: recursive lock of a Mutex");
                true
            }
        }
    });
    if must_block {
        block_current(Run2::Mutex { lock });
    }
}

/// Release `lock`. Waiters become schedulable at the next decision.
///
/// Called from `MutexGuard::drop`, including during the abort-unwind
/// out of a `Condvar` wait — where the lock was already handed back by
/// `cv_wait` — so a non-holder release is ignored while unwinding
/// rather than asserted (a panic here would be a panic-in-destructor
/// abort).
pub(crate) fn lock_release(lock: usize) {
    with_ctx(|rt, me| {
        let mut inner = rt.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.locks[lock] == Some(me) {
            inner.locks[lock] = None;
        } else {
            debug_assert!(
                std::thread::panicking() || inner.failed.is_some(),
                "unlock by non-holder"
            );
        }
    });
}

/// Block on `cv` (releasing `lock`), optionally with a timeout measured
/// on the modeled clock. Returns how the wait ended. The lock is held
/// again on return.
pub(crate) fn cv_wait(cv: usize, lock: usize, timeout: Option<Duration>) -> Wake {
    let deadline = timeout.map(|t| now() + t);
    with_ctx(|rt, me| {
        let mut inner = rt.inner.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert_eq!(inner.locks[lock], Some(me), "cv wait without the lock");
        inner.locks[lock] = None;
    });
    block_current(Run2::Cv { cv, lock, deadline })
        .expect("cv waiter resumed without a wake reason")
}

/// Wake every waiter of `cv`: each moves to blocked-on-its-mutex and
/// resumes (with `Notified`) once it reacquires.
pub(crate) fn cv_notify_all(cv: usize) {
    yield_point();
    with_ctx(|rt, _| {
        let mut inner = rt.inner.lock().unwrap_or_else(|e| e.into_inner());
        for t in inner.threads.iter_mut() {
            if let Run::BlockedCv { cv: c, lock, .. } = t.run {
                if c == cv {
                    t.run = Run::BlockedMutex { lock };
                    t.cv_wake = Some(Wake::Notified);
                }
            }
        }
    });
}

/// Wake one waiter of `cv` (lowest tid — deterministic).
pub(crate) fn cv_notify_one(cv: usize) {
    yield_point();
    with_ctx(|rt, _| {
        let mut inner = rt.inner.lock().unwrap_or_else(|e| e.into_inner());
        for t in inner.threads.iter_mut() {
            if let Run::BlockedCv { cv: c, lock, .. } = t.run {
                if c == cv {
                    t.run = Run::BlockedMutex { lock };
                    t.cv_wake = Some(Wake::Notified);
                    break;
                }
            }
        }
    });
}

/// Current modeled time.
pub(crate) fn now() -> Duration {
    with_ctx(|rt, _| {
        rt.inner.lock().unwrap_or_else(|e| e.into_inner()).clock
    })
}

// ---- threads --------------------------------------------------------

/// Spawn a loom thread running `f`; its OS thread parks until first
/// scheduled. Returns the new tid.
pub(crate) fn spawn_thread<F>(f: F) -> usize
where
    F: FnOnce() + Send + 'static,
{
    with_ctx(|rt, _| {
        let tid = {
            let mut inner = rt.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.threads.push(ThreadState {
                run: Run::Runnable,
                cv_wake: None,
            });
            inner.threads.len() - 1
        };
        let rt2 = Arc::clone(rt);
        let handle = std::thread::Builder::new()
            .name(format!("loom-{tid}"))
            .spawn(move || thread_shell(rt2, tid, f))
            .expect("spawn loom thread");
        rt.os_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
        tid
    })
}

/// Body shared by every loom OS thread: park until first scheduled, run
/// the closure under `catch_unwind`, then hand the baton onward.
fn thread_shell<F: FnOnce()>(rt: Arc<Rt>, tid: usize, f: F) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            rt: Arc::clone(&rt),
            tid,
        });
    });
    {
        let inner = rt.inner.lock().unwrap_or_else(|e| e.into_inner());
        // The abort-unwind from `wait_for_baton` must not escape the
        // shell; treat it like any other panic (first failure already
        // recorded).
        if catch_unwind(AssertUnwindSafe(|| wait_for_baton(&rt, inner, tid))).is_err() {
            finish_thread(&rt, tid, None);
            return;
        }
    }
    let result = catch_unwind(AssertUnwindSafe(f));
    finish_thread(&rt, tid, result.err().map(|p| panic_message(&*p)));
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Mark `tid` finished, record a failure if it panicked, and pass the
/// baton to the next schedulable thread.
fn finish_thread(rt: &Rt, tid: usize, panicked: Option<String>) {
    let mut inner = rt.inner.lock().unwrap_or_else(|e| e.into_inner());
    inner.threads[tid].run = Run::Finished;
    match panicked {
        // The abort-unwind sentinel carries no new information.
        Some(msg) if msg != "loom execution aborted" => {
            inner.fail(format!("thread {tid} panicked: {msg}"));
            rt.cv.notify_all();
        }
        _ if inner.failed.is_some() => rt.cv.notify_all(),
        _ => schedule_next(rt, &mut inner),
    }
}

/// Block until loom thread `target` finishes.
pub(crate) fn join_thread(target: usize) {
    let finished = with_ctx(|rt, _| {
        let inner = rt.inner.lock().unwrap_or_else(|e| e.into_inner());
        matches!(inner.threads[target].run, Run::Finished)
    });
    if !finished {
        block_current(Run2::Join { target });
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

// ---- the DFS driver -------------------------------------------------

/// Execute `f` once under the decision path `path` (extending it at new
/// decisions). Returns the extended path and the failure, if any.
fn execute<F>(
    f: Arc<F>,
    path: Vec<Branch>,
    preemption_bound: Option<usize>,
) -> (Vec<Branch>, Option<String>)
where
    F: Fn() + Send + Sync + 'static,
{
    let rt = Arc::new(Rt {
        inner: OsMutex::new(Inner {
            threads: Vec::new(),
            locks: Vec::new(),
            n_cvs: 0,
            active: 0,
            path,
            pos: 0,
            clock: Duration::ZERO,
            failed: None,
            preemptions: 0,
            preemption_bound,
        }),
        cv: OsCondvar::new(),
        os_handles: OsMutex::new(Vec::new()),
    });

    // Root thread (tid 0). `spawn_thread` needs a context; install a
    // temporary one for the driver thread.
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            rt: Arc::clone(&rt),
            tid: usize::MAX,
        });
    });
    let f2 = Arc::clone(&f);
    spawn_thread(move || f2());
    CTX.with(|c| *c.borrow_mut() = None);

    // Join every loom OS thread (threads may spawn more while we join).
    loop {
        let batch: Vec<_> = std::mem::take(
            &mut *rt.os_handles.lock().unwrap_or_else(|e| e.into_inner()),
        );
        if batch.is_empty() {
            break;
        }
        for h in batch {
            let _ = h.join();
        }
    }

    let inner = rt.inner.lock().unwrap_or_else(|e| e.into_inner());
    (inner.path.clone(), inner.failed.clone())
}

/// Advance `path` to the next unexplored schedule (depth-first).
/// Returns `false` when the space is exhausted.
fn advance(path: &mut Vec<Branch>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.chosen + 1 < last.num {
            last.chosen += 1;
            return true;
        }
        path.pop();
    }
    false
}

pub(crate) fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    run_model(f, None, None);
}

/// The search driver behind both [`model`] and
/// [`crate::model::Builder::check`].
pub(crate) fn run_model<F>(f: F, preemption_bound: Option<usize>, max_executions: Option<usize>)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let max: usize = max_executions.unwrap_or_else(|| {
        std::env::var("LOOM_MAX_EXECUTIONS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1_000_000)
    });
    let mut path: Vec<Branch> = Vec::new();
    let mut execs = 0usize;
    loop {
        execs += 1;
        assert!(
            execs <= max,
            "loom: exceeded {max} executions without exhausting the \
             schedule space; shrink the model, bound preemptions, or \
             raise LOOM_MAX_EXECUTIONS"
        );
        let (new_path, failed) = execute(Arc::clone(&f), path, preemption_bound);
        if let Some(msg) = failed {
            let schedule: Vec<usize> = new_path.iter().map(|b| b.chosen).collect();
            panic!(
                "loom model failed after {execs} execution(s): {msg}\n\
                 failing schedule (decision indices): {schedule:?}"
            );
        }
        path = new_path;
        if !advance(&mut path) {
            break;
        }
        // Truncation above leaves only the replayed prefix; decisions
        // beyond it are re-derived by the next execution.
    }
    if std::env::var_os("LOOM_LOG").is_some() {
        eprintln!("loom: explored {execs} executions");
    }
}
