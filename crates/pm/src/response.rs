//! Grid force response measurement and the poly5 fit of paper Eq. 7.
//!
//! "The filtered grid force was obtained numerically to high accuracy
//! using randomly sampled particle pairs and then fitted to an expression
//! with the correct large and small distance asymptotics. Because this
//! functional form is needed only over a small, compact region, it can be
//! simplified using a fifth-order polynomial expansion."
//!
//! We reproduce exactly that: deposit a unit source at random offsets on a
//! reference grid, solve with the PM solver, interpolate the force at
//! sampled separations, reduce to the radial response `g(s) = F_r/r`
//! (`s = r²`), and least-squares fit a 5th-degree polynomial in `s` over
//! the compact matching region `r ≤ r_cut` (nominally 3 grid cells).

use crate::cic::{deposit_cic, interpolate_cic};
use crate::solver::PmSolver;
use crate::spectral::SpectralParams;

/// Fitted grid-force response in grid units.
///
/// The short-range pair force factor is
/// `f_SR(s) = (s+ε)^{-3/2} − poly5(s)` for `s < r_cut²`, so that
/// `F_pair = r · f_SR(s)` complements the PM force to Newtonian
/// `r̂/r²` (in units where the pair normalization is 1).
#[derive(Debug, Clone)]
pub struct GridForceFit {
    /// Polynomial coefficients `c₀ + c₁s + … + c₅s⁵` for `g(s) = F_grid/r`.
    pub coeffs: [f64; 6],
    /// Matching radius in grid cells (force handoff; paper: 3).
    pub r_cut: f64,
    /// Short-distance softening ε (grid cells squared).
    pub epsilon: f64,
    /// Overall normalization of the measured response: the PM force for a
    /// unit source approaches `norm/r²` at large `r` (depends on the 4π
    /// convention); `coeffs` are stored *after* dividing by it so that
    /// `poly5(s) ≈ 1/r³ · F_grid/F_newton`… i.e. directly comparable to
    /// `s^{-3/2}`.
    pub norm: f64,
    /// RMS relative residual of the fit over the sampled region.
    pub rms_residual: f64,
}

impl GridForceFit {
    /// Measure the grid force response of `params` and fit it.
    ///
    /// `n` is the reference grid size (≥ 32 recommended); `r_cut` the
    /// matching radius in grid cells. Deterministic given `seed`.
    #[must_use] 
    pub fn measure(n: usize, params: SpectralParams, r_cut: f64, seed: u64) -> Self {
        let solver = PmSolver::new(n, n as f64, params);
        let samples = sample_response(&solver, r_cut, seed);
        Self::fit(&samples, r_cut)
    }

    /// Fit `g(s)` samples `(s, g)` (already normalized) with poly5.
    fn fit(samples: &[(f64, f64)], r_cut: f64) -> Self {
        // The response at large r approaches Newtonian: use the outermost
        // decade of samples to find the normalization so that
        // g(s) → s^{-3/2} at the matching radius.
        let s_max = r_cut * r_cut;
        let mut norm_num = 0.0;
        let mut norm_den = 0.0;
        for &(s, g) in samples {
            if s > 0.7 * s_max {
                norm_num += g;
                norm_den += (s).powf(-1.5);
            }
        }
        let norm = norm_num / norm_den;
        let pts: Vec<(f64, f64)> = samples.iter().map(|&(s, g)| (s, g / norm)).collect();

        // Weight each sample by s^{3/2}: the error that matters physically
        // is the *total force* error relative to Newtonian, and the total
        // force divides the poly residual by s^{-3/2}. Without this the
        // fit over-serves the (dense, tiny-g) small-s samples and can miss
        // the handoff region by tens of percent.
        let weighted: Vec<(f64, f64, f64)> =
            pts.iter().map(|&(s, g)| (s, g, s.powf(1.5))).collect();
        let coeffs = polyfit5_weighted(&weighted);
        // Residuals relative to the typical magnitude.
        let scale = pts.iter().map(|&(_, g)| g.abs()).fold(0.0, f64::max);
        let mut ss = 0.0;
        for &(s, g) in &pts {
            let p = eval_poly5(&coeffs, s);
            ss += ((p - g) / scale).powi(2);
        }
        let rms_residual = (ss / pts.len() as f64).sqrt();
        GridForceFit {
            coeffs,
            r_cut,
            epsilon: 1e-5,
            norm,
            rms_residual,
        }
    }

    /// The fitted grid response `g(s) = F_grid(r)/r` (normalized so that
    /// Newtonian is `s^{-3/2}`).
    #[inline]
    #[must_use] 
    pub fn fgrid(&self, s: f64) -> f64 {
        eval_poly5(&self.coeffs, s)
    }

    /// Short-range force factor `f_SR(s)` of paper Eq. 7 (zero beyond the
    /// cutoff).
    #[inline]
    #[must_use] 
    pub fn short_range(&self, s: f64) -> f64 {
        if s >= self.r_cut * self.r_cut {
            0.0
        } else {
            (s + self.epsilon).powf(-1.5) - self.fgrid(s)
        }
    }

    /// Coefficients in f32 for the single-precision kernel.
    #[must_use] 
    pub fn coeffs_f32(&self) -> [f32; 6] {
        let mut out = [0.0f32; 6];
        for (o, c) in out.iter_mut().zip(self.coeffs.iter()) {
            *o = *c as f32;
        }
        out
    }
}

/// Evaluate `c₀ + c₁s + … + c₅s⁵` by Horner's rule.
#[inline]
#[must_use] 
pub fn eval_poly5(c: &[f64; 6], s: f64) -> f64 {
    ((((c[5] * s + c[4]) * s + c[3]) * s + c[2]) * s + c[1]) * s + c[0]
}

/// Sample the radial grid-force response `g(s) = F·r̂/r` for a unit CIC
/// source, averaged over random source offsets and orientations.
/// Returns `(s, g)` pairs with `r ∈ (0.05, r_cut]` grid cells.
fn sample_response(solver: &PmSolver, r_cut: f64, seed: u64) -> Vec<(f64, f64)> {
    let n = solver.n();
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng as f64 / u64::MAX as f64
    };
    let n_sources = 6;
    let n_radii = 48;
    let n_dirs = 6;
    let mut acc: Vec<(f64, f64, f64)> = vec![(0.0, 0.0, 0.0); n_radii]; // (s, Σg, count)
    for _ in 0..n_sources {
        let sx = (n as f64 / 4.0 + next() * n as f64 / 2.0) as f32;
        let sy = (n as f64 / 4.0 + next() * n as f64 / 2.0) as f32;
        let sz = (n as f64 / 4.0 + next() * n as f64 / 2.0) as f32;
        let mut src = vec![0.0; n * n * n];
        deposit_cic(&mut src, n, &[sx], &[sy], &[sz], 1.0);
        let forces = solver.solve_forces(&src);
        for (ir, slot) in acc.iter_mut().enumerate() {
            let r = 0.05 + (ir as f64 + 0.5) / n_radii as f64 * (r_cut - 0.05);
            slot.0 = r * r;
            for _ in 0..n_dirs {
                // Random unit vector.
                let u = 2.0 * next() - 1.0;
                let phi = 2.0 * std::f64::consts::PI * next();
                let q = (1.0 - u * u).sqrt();
                let (dx, dy, dz) = (q * phi.cos(), q * phi.sin(), u);
                let px = sx + (r * dx) as f32;
                let py = sy + (r * dy) as f32;
                let pz = sz + (r * dz) as f32;
                let fx = f64::from(interpolate_cic(&forces[0], n, &[px], &[py], &[pz])[0]);
                let fy = f64::from(interpolate_cic(&forces[1], n, &[px], &[py], &[pz])[0]);
                let fz = f64::from(interpolate_cic(&forces[2], n, &[px], &[py], &[pz])[0]);
                // Radial (attractive ⇒ negative projection on r̂);
                // g = -F·r̂ / r so that Newtonian g = norm/r³ > 0.
                let fr = -(fx * dx + fy * dy + fz * dz);
                slot.1 += fr / r;
                slot.2 += 1.0;
            }
        }
    }
    acc.into_iter().map(|(s, g, c)| (s, g / c)).collect()
}

/// Unweighted least-squares poly5 fit (all weights one).
#[cfg_attr(not(test), allow(dead_code))]
fn polyfit5(pts: &[(f64, f64)]) -> [f64; 6] {
    let w: Vec<(f64, f64, f64)> = pts.iter().map(|&(s, g)| (s, g, 1.0)).collect();
    polyfit5_weighted(&w)
}

/// Weighted least-squares fit of a degree-5 polynomial through
/// `(s, g, weight)` samples via normal equations (6×6 Gaussian
/// elimination with partial pivoting).
fn polyfit5_weighted(pts: &[(f64, f64, f64)]) -> [f64; 6] {
    // Scale s to O(1) for conditioning, then unscale coefficients.
    let s_max = pts.iter().map(|&(s, _, _)| s).fold(0.0, f64::max);
    let scale = if s_max > 0.0 { s_max } else { 1.0 };
    let mut a = [[0.0f64; 7]; 6];
    for &(s, g, w) in pts {
        let t = s / scale;
        let mut pow = [1.0; 6];
        for i in 1..6 {
            pow[i] = pow[i - 1] * t;
        }
        for i in 0..6 {
            for j in 0..6 {
                a[i][j] += w * pow[i] * pow[j];
            }
            a[i][6] += w * pow[i] * g;
        }
    }
    // Gaussian elimination.
    for col in 0..6 {
        let piv = (col..6)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty");
        a.swap(col, piv);
        let d = a[col][col];
        assert!(d.abs() > 1e-30, "singular normal equations");
        for v in a[col][col..7].iter_mut() {
            *v /= d;
        }
        for row in 0..6 {
            if row != col {
                let f = a[row][col];
                let pivot = a[col];
                for (v, pv) in a[row][col..7].iter_mut().zip(&pivot[col..7]) {
                    *v -= f * pv;
                }
            }
        }
    }
    let mut c = [0.0; 6];
    let mut unscale = 1.0;
    for i in 0..6 {
        c[i] = a[i][6] / unscale;
        unscale *= scale;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polyfit_recovers_exact_polynomial() {
        let truth = [1.0, -2.0, 0.5, 0.1, -0.02, 0.003];
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let s = f64::from(i) * 0.2;
                (s, eval_poly5(&truth, s))
            })
            .collect();
        let fit = polyfit5(&pts);
        for (a, b) in fit.iter().zip(truth.iter()) {
            assert!((a - b).abs() < 1e-6, "{fit:?}");
        }
    }

    #[test]
    fn horner_matches_naive() {
        let c = [2.0, 1.0, -0.5, 0.25, 0.0, -0.125];
        let s: f64 = 1.7;
        let naive: f64 = (0..6).map(|i| c[i] * s.powi(i as i32)).sum();
        assert!((eval_poly5(&c, s) - naive).abs() < 1e-12);
    }

    #[test]
    #[cfg_attr(miri, ignore = "32-cubed force-response measurement; no unsafe code on this path")]
    fn measured_fit_is_tight_and_smooth() {
        let fit = GridForceFit::measure(32, SpectralParams::default(), 3.0, 12345);
        assert!(
            fit.rms_residual < 0.05,
            "rms residual {} too large",
            fit.rms_residual
        );
        assert!(fit.norm > 0.0, "norm {}", fit.norm);
    }

    #[test]
    #[cfg_attr(miri, ignore = "32-cubed force-response measurement; no unsafe code on this path")]
    fn short_range_restores_newtonian_asymptotics() {
        let fit = GridForceFit::measure(32, SpectralParams::default(), 3.0, 7);
        // Deep inside the matching region, the grid force is tiny so the
        // short-range factor approaches the bare Newtonian s^{-3/2}.
        let s_small = 0.25 * 0.25;
        let ratio = fit.short_range(s_small) / (s_small).powf(-1.5);
        assert!((ratio - 1.0).abs() < 0.2, "ratio {ratio}");
        // At the cutoff it hands over: |f_SR| ≪ Newtonian.
        let s_cut = 2.9 * 2.9;
        let frac = fit.short_range(s_cut).abs() / s_cut.powf(-1.5);
        assert!(frac < 0.35, "handoff fraction {frac}");
        // Beyond the cutoff exactly zero.
        assert_eq!(fit.short_range(9.5), 0.0);
    }

    #[test]
    #[cfg_attr(miri, ignore = "32-cubed force-response measurement; no unsafe code on this path")]
    fn grid_response_is_positive_and_monotone_in_core() {
        // g(s) (normalized) grows from ~0 at s→0 toward s^{-3/2} matching;
        // check positivity over the fitted range.
        let fit = GridForceFit::measure(32, SpectralParams::default(), 3.0, 99);
        let mut prev = -f64::INFINITY;
        let mut increasing_up_to_peak = true;
        let mut peaked = false;
        for i in 1..30 {
            let s = (f64::from(i) / 30.0 * 3.0).powi(2);
            let g = fit.fgrid(s);
            if !peaked && g < prev {
                peaked = true;
            } else if peaked && g > prev * 1.05 {
                increasing_up_to_peak = false;
            }
            prev = g;
        }
        assert!(increasing_up_to_peak, "response not single-peaked");
    }

    #[test]
    #[cfg_attr(miri, ignore = "32-cubed force-response measurement; no unsafe code on this path")]
    fn determinism() {
        let a = GridForceFit::measure(32, SpectralParams::default(), 3.0, 5);
        let b = GridForceFit::measure(32, SpectralParams::default(), 3.0, 5);
        assert_eq!(a.coeffs, b.coeffs);
    }
}
