//! Cosmology substrate for the HACC reproduction.
//!
//! Everything the N-body framework needs from background cosmology:
//! the FLRW expansion history (including `w0`–`wa` dark energy, matching the
//! paper's focus on dark-energy model space), linear growth factors, transfer
//! functions and linear power spectra for initial conditions, the exact
//! kick/drift time integrals used by the symplectic stepper, and analytic
//! halo mass functions (Press–Schechter, Sheth–Tormen) used as comparators
//! for the Fig. 11 / mass-function experiments.
//!
//! Units: `h⁻¹ Mpc` for lengths and `H0 = 100 h km/s/Mpc`; we work with the
//! dimensionless expansion rate `E(a) = H(a)/H0` throughout and the driver
//! chooses its time unit as `1/H0`.

pub mod background;
pub mod growth;
pub mod massfn;
pub mod power;
pub mod quad;
pub mod transfer;

pub use background::{Cosmology, DarkEnergy};
pub use growth::GrowthFactor;
pub use massfn::{press_schechter, sheth_tormen, MassFunction};
pub use power::LinearPower;
pub use transfer::Transfer;

/// Critical density today in units of `h² M_sun / Mpc³`.
pub const RHO_CRIT_H2_MSUN_MPC3: f64 = 2.775e11;
