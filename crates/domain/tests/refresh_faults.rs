//! Property tests: overload refresh under an adversarial message layer.
//!
//! `refresh` is a bulk alltoallv over the mini-MPI substrate, which
//! retires duplicated and delayed messages transparently (per-channel
//! sequence numbers and reordering), so any seeded dup/delay plan must
//! leave the refreshed particle state *bit-identical* to the fault-free
//! run. Dropped messages cannot be survived at this layer — there the
//! property is that the run fails loudly (the receiver's diagnostic
//! timeout poisons the machine) rather than completing with particles
//! silently missing.

use std::time::Duration;

use hacc_comm::{FaultPlan, Machine, MachineError};
use hacc_domain::{refresh, Decomposition, Packed, Particles};
use proptest::prelude::*;

/// One rank's refreshed actives: sorted (id, position-bits) records.
type RankActives = Vec<(u64, [u32; 3])>;

/// Seed `positions` round-robin over 4 ranks (so every rank pair
/// exchanges traffic), refresh twice (the second round exercises the
/// replica-rebuild paths with passives present), and return each rank's
/// sorted active (id, position-bits) records.
fn run_refresh(
    plan: FaultPlan,
    positions: &[(f32, f32, f32)],
    watchdog: Option<Duration>,
) -> Result<Vec<RankActives>, MachineError> {
    let positions = positions.to_vec();
    let mut machine = Machine::new(4).with_faults(plan);
    if let Some(t) = watchdog {
        machine = machine.with_watchdog(t);
    }
    machine
        .try_run(move |comm| {
            let d = Decomposition::new([4, 1, 1], 100.0, 6.0);
            let mut parts = Particles::default();
            for (i, &(x, y, z)) in positions.iter().enumerate() {
                if i % comm.size() == comm.rank() {
                    parts.push(Packed {
                        x,
                        y,
                        z,
                        vx: x,
                        vy: y,
                        vz: z,
                        id: i as u64,
                    });
                }
            }
            parts.n_active = parts.len();
            refresh(&comm, &d, &mut parts);
            refresh(&comm, &d, &mut parts);
            let mut active: RankActives = (0..parts.n_active)
                .map(|i| {
                    (
                        parts.id[i],
                        [
                            parts.x[i].to_bits(),
                            parts.y[i].to_bits(),
                            parts.z[i].to_bits(),
                        ],
                    )
                })
                .collect();
            active.sort_unstable();
            active
        })
        .map(|(res, _)| res)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Duplicated and delayed messages are absorbed by the transport:
    /// the refreshed state matches the fault-free run bit for bit.
    #[test]
    fn refresh_is_exact_under_dup_and_delay(
        seed in 0u64..1_000_000,
        dup in 0.0f64..1.0,
        delay in 0.0f64..1.0,
        pos in prop::collection::vec(
            (-20.0f32..120.0, -20.0f32..120.0, -20.0f32..120.0), 4..48),
    ) {
        let clean = run_refresh(FaultPlan::none(), &pos, None).expect("fault-free run");
        let plan = FaultPlan::seeded(seed).dup_prob(dup).delay_prob(delay);
        let faulty = run_refresh(plan, &pos, None).expect("dup/delay are absorbed");
        prop_assert_eq!(clean, faulty);
    }

    /// Message loss either misses every refresh-critical channel (the
    /// result is then exact, with every id owned exactly once) or aborts
    /// the machine with a diagnostic — never a silently shrunken
    /// particle population.
    #[test]
    fn refresh_never_loses_particles_silently_under_drops(
        seed in 0u64..1_000_000,
        drop in 0.0005f64..0.02,
        pos in prop::collection::vec(
            (-20.0f32..120.0, -20.0f32..120.0, -20.0f32..120.0), 4..48),
    ) {
        let clean = run_refresh(FaultPlan::none(), &pos, None).expect("fault-free run");
        let plan = FaultPlan::seeded(seed).drop_prob(drop);
        match run_refresh(plan, &pos, Some(Duration::from_millis(400))) {
            Ok(faulty) => {
                let mut ids: Vec<u64> =
                    faulty.iter().flatten().map(|&(id, _)| id).collect();
                ids.sort_unstable();
                prop_assert_eq!(ids, (0..pos.len() as u64).collect::<Vec<_>>());
                prop_assert_eq!(clean, faulty);
            }
            Err(MachineError::RankPanicked { message, .. }) => {
                prop_assert!(
                    message.contains("comm timeout") || message.contains("poisoned"),
                    "drop must surface as a diagnostic abort, got: {}", message
                );
            }
        }
    }
}
