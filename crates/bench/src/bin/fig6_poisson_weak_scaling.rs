//! Fig. 6 reproduction: weak scaling of the Poisson solver.
//!
//! The paper plots time (ns) per step per particle of the
//! long/medium-range solver against rank count on Roadrunner (slab FFT),
//! BG/P and BG/Q (pencil FFT), all essentially flat out to 131,072 ranks.
//! We measure the same quantity with simulated ranks at fixed grid volume
//! per rank for both decompositions, then print the BG/Q machine-model
//! series at the paper's rank counts.

use std::time::Instant;

use hacc_bench::print_table;
use hacc_comm::Machine;
use hacc_fft::{DistFft3, PencilFft, SlabFft};
use hacc_machine::FftModel;
use hacc_pm::{DistPoisson, SpectralParams};

fn main() {
    println!("Fig. 6: weak scaling of the Poisson solver (time per step per particle)");
    // Fixed per-rank volume of 32³ grid points; particle count per rank
    // taken equal to grid points (1 particle/cell loading).
    let configs: &[(usize, usize)] = &[(1, 32), (2, 40), (4, 50), (8, 64)];
    let mut rows = Vec::new();
    for &(ranks, n) in configs {
        let per_rank = n * n * n / ranks;
        let t_slab = measure(ranks, n, false);
        let t_pencil = measure(ranks, n, true);
        rows.push(vec![
            ranks.to_string(),
            format!("{n}^3"),
            per_rank.to_string(),
            format!("{:.2}", t_slab * 1e9 / (n * n * n) as f64),
            format!("{:.2}", t_pencil * 1e9 / (n * n * n) as f64),
        ]);
    }
    print_table(
        "Measured (simulated ranks, threads-as-ranks)",
        &["ranks", "grid", "points/rank", "slab ns/pt", "pencil ns/pt"],
        &rows,
    );

    // Machine-model series at paper scale: one Poisson solve = 4
    // transforms (1 forward + 3 gradient inverses).
    let model = FftModel::default();
    let mut mrows = Vec::new();
    for (ranks, n) in [
        (64usize, 512usize),
        (256, 812),
        (1024, 1290),
        (4096, 2048),
        (16384, 3250),
        (65536, 5160),
        (131072, 6502),
    ] {
        let row = model.transform_time(n, ranks, 8);
        let t_solve = 4.0 * row.time;
        mrows.push(vec![
            ranks.to_string(),
            format!("{n}^3"),
            format!("{:.2}", t_solve * 1e9 / (n as f64).powi(3)),
        ]);
    }
    print_table(
        "BG/Q model at paper scale (pencil, ~2M pts/rank; flat = ideal weak scaling)",
        &["ranks", "grid", "ns/pt/solve"],
        &mrows,
    );
    println!(
        "\npaper reference (Fig. 6): all three machines scale essentially ideally\n\
         (flat ns/step/particle) out to 131,072 ranks; BG/Q sits lowest, Roadrunner's\n\
         slab decomposition highest."
    );
}

/// One distributed Poisson force solve of size `n³` on `ranks` ranks;
/// returns wall-clock seconds (max over ranks).
fn measure(ranks: usize, n: usize, pencil: bool) -> f64 {
    let (times, _) = Machine::new(ranks).run(|comm| {
        let run = |fft: &dyn DistFft3, comm_size: usize| -> f64 {
            let _ = comm_size;
            let rl = fft.real_layout();
            // Deterministic synthetic density contrast.
            let src: Vec<f64> = (0..rl.len())
                .map(|i| ((i * 2_654_435_761) % 1000) as f64 / 500.0 - 1.0)
                .collect();
            let solver_start = Instant::now();
            let solver = DistPoisson::new(fft, rl.n as f64, SpectralParams::default());
            let f = solver.solve_forces(&src);
            std::hint::black_box(&f);
            solver_start.elapsed().as_secs_f64()
        };
        if pencil {
            let fft = PencilFft::new(&comm, n);
            run(&fft, comm.size())
        } else {
            let fft = SlabFft::new(&comm, n);
            run(&fft, comm.size())
        }
    });
    times.into_iter().fold(0.0, f64::max)
}
