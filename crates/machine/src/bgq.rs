//! Blue Gene/Q hardware parameters (Section III of the paper).

/// Per-node hardware description of the BG/Q Compute chip (BQC).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BgqNode {
    /// User-visible cores per node (the 17th core handles OS interrupts).
    pub cores: usize,
    /// Hardware threads per core.
    pub threads_per_core: usize,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// FMA issue width per cycle (QPX: 4 FMAs = 8 flops per cycle... the
    /// paper counts 4 FMAs/cycle ⇒ 12.8 GFlops/core at 1.6 GHz).
    pub fma_per_cycle: usize,
    /// DDR3 memory per node in bytes.
    pub memory_bytes: u64,
    /// Torus links per node.
    pub torus_links: usize,
    /// Peak network bandwidth per node, all links, bytes/s (40 GB/s).
    pub link_bandwidth_total: f64,
    /// Measured sustainable memory bandwidth in bytes/cycle (paper: 18).
    pub mem_bytes_per_cycle: f64,
}

/// The BQC node as described in Section III.
pub const BGQ_NODE: BgqNode = BgqNode {
    cores: 16,
    threads_per_core: 4,
    clock_hz: 1.6e9,
    fma_per_cycle: 4,
    memory_bytes: 16 * (1 << 30),
    torus_links: 10,
    link_bandwidth_total: 40.0e9,
    mem_bytes_per_cycle: 18.0,
};

impl BgqNode {
    /// Peak flops per core (FMA counts as 2 flops):
    /// 1.6 GHz · 4 FMA · 2 = 12.8 GFlops.
    #[must_use] 
    pub fn peak_flops_per_core(&self) -> f64 {
        self.clock_hz * self.fma_per_cycle as f64 * 2.0
    }

    /// Peak flops per node (204.8 GFlops).
    #[must_use] 
    pub fn peak_flops(&self) -> f64 {
        self.peak_flops_per_core() * self.cores as f64
    }
}

/// A BG/Q partition (some number of racks / nodes).
#[derive(Debug, Clone, Copy)]
pub struct BgqPartition {
    /// Number of compute nodes (1024 per rack).
    pub nodes: usize,
    /// MPI ranks per node (paper operating point: 16 ranks × 4 threads).
    pub ranks_per_node: usize,
}

impl BgqPartition {
    /// Partition with a whole number of racks at the paper's 16 ranks/node.
    #[must_use] 
    pub fn racks(racks: usize) -> Self {
        BgqPartition {
            nodes: racks * 1024,
            ranks_per_node: 16,
        }
    }

    /// Partition sized by total core count (16 cores/node).
    #[must_use] 
    pub fn with_cores(cores: usize) -> Self {
        assert!(cores.is_multiple_of(BGQ_NODE.cores), "cores must fill whole nodes");
        BgqPartition {
            nodes: cores / BGQ_NODE.cores,
            ranks_per_node: 16,
        }
    }

    /// Total user cores.
    #[must_use] 
    pub fn cores(&self) -> usize {
        self.nodes * BGQ_NODE.cores
    }

    /// Total MPI ranks.
    #[must_use] 
    pub fn ranks(&self) -> usize {
        self.nodes * self.ranks_per_node
    }

    /// Aggregate peak in flops/s.
    #[must_use] 
    pub fn peak_flops(&self) -> f64 {
        self.nodes as f64 * BGQ_NODE.peak_flops()
    }

    /// 5-D torus bisection bandwidth estimate in bytes/s.
    ///
    /// A 5-D torus of `N` nodes has a bisection of roughly
    /// `2 · N^(4/5)` links (two directions across the cut of the longest
    /// dimension); each node drives `link_bandwidth_total/torus_links`
    /// per link.
    #[must_use] 
    pub fn bisection_bandwidth(&self) -> f64 {
        let per_link = BGQ_NODE.link_bandwidth_total / BGQ_NODE.torus_links as f64;
        2.0 * (self.nodes as f64).powf(0.8) * per_link
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_and_node_peak_match_paper() {
        assert!((BGQ_NODE.peak_flops_per_core() - 12.8e9).abs() < 1e3);
        assert!((BGQ_NODE.peak_flops() - 204.8e9).abs() < 1e4);
    }

    #[test]
    fn sequoia_96_racks() {
        let p = BgqPartition::racks(96);
        assert_eq!(p.cores(), 1_572_864);
        assert_eq!(p.ranks(), 1_572_864);
        // 96 racks peak ≈ 20.1 PFlops (13.94 PF = 69.2% of it).
        let pf = p.peak_flops() / 1e15;
        assert!((pf - 20.13).abs() < 0.05, "{pf}");
        assert!((13.94 / pf - 0.692).abs() < 0.01);
    }

    #[test]
    fn with_cores_consistency() {
        let p = BgqPartition::with_cores(2048);
        assert_eq!(p.nodes, 128);
        assert_eq!(p.cores(), 2048);
    }

    #[test]
    fn bisection_grows_sublinearly() {
        let small = BgqPartition::racks(1).bisection_bandwidth();
        let big = BgqPartition::racks(16).bisection_bandwidth();
        let ratio = big / small;
        assert!(ratio > 8.0 && ratio < 16.0, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "whole nodes")]
    fn partial_node_rejected() {
        let _ = BgqPartition::with_cores(100);
    }
}
