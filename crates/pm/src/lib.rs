//! Spectrally filtered particle-mesh (PM) solver — HACC's long/medium-range
//! force component (Section II of the paper).
//!
//! Pipeline per "Poisson solve": Cloud-In-Cell deposit of the particles
//! onto the density grid → one forward 3-D FFT → multiplication by the
//! composed spectral kernel (isotropizing filter × 6th-order influence
//! function × 4th-order Super-Lanczos differencing per component) → one
//! inverse FFT per force component → CIC interpolation back to particles.
//!
//! The short-range solver (crates/short) subtracts the *grid force
//! response* measured from this solver (fitted to a 5th-order polynomial
//! in `s = r·r`, paper Eq. 7) so that short + long = Newtonian.

pub mod cic;
pub mod dist;
pub mod response;
pub mod solver;
pub mod spectral;
pub mod twolevel;

pub use cic::{
    deposit_cic, deposit_cic_par, deposit_cic_par_with, deposit_tsc, interpolate_cic,
    interpolate_cic_into, CicScratch,
};
pub use dist::{DistPoisson, DistRealPoisson};
pub use response::GridForceFit;
pub use solver::PmSolver;
pub use spectral::SpectralParams;
pub use twolevel::{
    coarse_solve_forces, ForceSplit, LocalComplementSolver, PmLevelConfig, TwoLevelPmSolver,
};
