//! A miniature version of the paper's Mira science run (Section V):
//! evolve a ΛCDM universe from z = 9 to z = 0, tracking the matter power
//! spectrum at intermediate snapshots and checking low-k growth against
//! linear theory.
//!
//! ```text
//! cargo run --release --example lcdm_universe
//! ```

use hacc::analysis::PowerSpectrum;
use hacc::core::{SimConfig, Simulation, SolverKind};
use hacc::cosmo::{Cosmology, LinearPower, Transfer};

fn main() {
    let cosmo = Cosmology::lcdm();
    let power = LinearPower::new(&cosmo, Transfer::EisensteinHuNoWiggle);
    let np = 24;
    let box_len = 96.0;
    let a_init = 0.1;

    let cfg = SimConfig {
        cosmology: cosmo,
        box_len,
        ng: 2 * np,
        a_init,
        a_final: 1.0,
        steps: 20,
        subcycles: 3,
        solver: SolverKind::TreePm,
        ..SimConfig::small_lcdm()
    };
    let ics = hacc::ics::zeldovich(np, box_len, &power, a_init, 2012);
    let mut sim = Simulation::from_ics(cfg, &ics);

    println!("evolving {} particles from z = 9 to z = 0...", sim.len());
    let snapshot_zs = [5.5, 3.0, 1.9, 0.9, 0.4, 0.0];
    let mut pending: Vec<f64> = snapshot_zs.iter().map(|z| 1.0 / (1.0 + z)).collect();
    let mut spectra: Vec<(f64, PowerSpectrum)> = Vec::new();
    sim.run(|a, s| {
        while let Some(&a_snap) = pending.first() {
            if a + 1e-9 >= a_snap {
                let (x, y, z) = s.positions();
                spectra.push((
                    1.0 / a - 1.0,
                    PowerSpectrum::measure(x, y, z, box_len, 48, 16),
                ));
                pending.remove(0);
            } else {
                break;
            }
        }
    });

    println!("\nz      k=0.2 P(k)   k=0.8 P(k)");
    for (z, ps) in &spectra {
        println!("{z:<5.1}  {:>10.2}  {:>10.3}", ps.at(0.2), ps.at(0.8));
    }

    // Two-point correlation function of the final state — the
    // configuration-space statistic Section V pairs with P(k).
    let (x, y, z) = sim.positions();
    let xi = hacc::analysis::CorrelationFunction::measure(x, y, z, box_len, 12.0, 8);
    println!("\ncorrelation function at z = 0:");
    for (r, v) in xi.r.iter().zip(&xi.xi) {
        println!("  ξ({r:>5.2} Mpc/h) = {v:>8.3}");
    }

    // Linear-theory growth check at the largest resolved scale.
    let g = power.growth();
    let (z0, first) = &spectra[0];
    let (z1, last) = &spectra[spectra.len() - 1];
    let k = first.k[1];
    let measured = last.at(k) / first.at(k);
    let linear = (g.d_of_a(1.0 / (1.0 + z1)) / g.d_of_a(1.0 / (1.0 + z0))).powi(2);
    println!(
        "\nlow-k growth from z={z0:.1} to z={z1:.1} at k={k:.3}: measured {measured:.2}, \
         linear theory {linear:.2}"
    );
    println!(
        "nonlinear growth at k=0.8: {:.1}x linear",
        (last.at(0.8) / first.at(0.8)) / linear
    );
}
