//! Analytic scaling models for the paper-scale extrapolation columns.

use crate::bgq::{BgqPartition, BGQ_NODE};

/// One row of a predicted scaling table.
#[derive(Debug, Clone, Copy)]
pub struct ScalingRow {
    /// Total cores used.
    pub cores: usize,
    /// Total particles (full-code tables) or grid points (FFT tables).
    pub problem_size: f64,
    /// Predicted wall-clock seconds per substep (or per transform).
    pub time: f64,
    /// Sustained flops/s.
    pub flops_rate: f64,
    /// Fraction of partition peak.
    pub peak_fraction: f64,
}

impl ScalingRow {
    /// Time per substep per particle in seconds.
    #[must_use] 
    pub fn time_per_particle(&self) -> f64 {
        self.time / self.problem_size
    }
}

/// α–β model for the distributed pencil FFT (Table I / Fig. 6).
///
/// One 3-D transform of size `n³` does `5·n³·log₂(n³)` flops of 1-D FFT
/// work plus two full-volume transposes (forward; the Poisson solve does
/// four transforms total). Parameters are calibrated so the 1024³ / 256
/// rank entry of Table I is matched within a factor ~2; the *scaling* with
/// ranks and grid size then follows from the model structure.
#[derive(Debug, Clone, Copy)]
pub struct FftModel {
    /// Fraction of peak the serial 1-D FFT passes sustain (FFTs are
    /// memory-bound; a few percent of peak is typical).
    pub fft_efficiency: f64,
    /// Per-message latency in seconds.
    pub alpha: f64,
    /// Effective per-node injection bandwidth during an all-to-all,
    /// bytes/s (well below the 40 GB/s link peak due to contention).
    pub beta_node: f64,
}

impl Default for FftModel {
    fn default() -> Self {
        FftModel {
            fft_efficiency: 0.04,
            alpha: 2.5e-6,
            beta_node: 1.8e9,
        }
    }
}

impl FftModel {
    /// Predict the wall-clock of one forward `n³` complex-f64 transform on
    /// `ranks` ranks of a BG/Q partition with `rpn` ranks per node.
    #[must_use] 
    pub fn transform_time(&self, n: usize, ranks: usize, rpn: usize) -> ScalingRow {
        let nodes = ranks.div_ceil(rpn);
        let n3 = (n as f64).powi(3);
        let flops = 5.0 * n3 * (n3.log2());
        let compute =
            flops / (nodes as f64 * BGQ_NODE.peak_flops() * self.fft_efficiency);
        // Two transpose rounds; each moves the full 16-byte-complex volume,
        // split across nodes. Messages: each rank exchanges with the ~√P
        // members of its row / column communicator.
        let bytes_per_node = 2.0 * n3 * 16.0 / nodes as f64;
        let sqrt_p = (ranks as f64).sqrt().max(1.0);
        let msgs = 2.0 * sqrt_p;
        let comm = self.alpha * msgs + bytes_per_node / self.beta_node;
        let time = compute + comm;
        ScalingRow {
            cores: nodes * BGQ_NODE.cores,
            problem_size: n3,
            time,
            flops_rate: flops / time,
            peak_fraction: flops / time / (nodes as f64 * BGQ_NODE.peak_flops()),
        }
    }

    /// Predict the wall-clock of one *two-level* `n³` solve: the globally
    /// transposed transform shrinks to `(n/c)³` (communication drops ~c³)
    /// while every rank additionally runs a serial FFT over its own
    /// `(n³/ranks)`-cell padded subdomain — compute-only, no transpose
    /// traffic. `ghost` is the fine-level ghost width in cells (from
    /// `ForceSplit::ghost_width`); it inflates the local volume.
    #[must_use]
    pub fn two_level_time(
        &self,
        n: usize,
        c: usize,
        ghost: usize,
        ranks: usize,
        rpn: usize,
    ) -> ScalingRow {
        assert!(c >= 2 && n.is_multiple_of(c), "coarsening must divide n");
        let nodes = ranks.div_ceil(rpn);
        let n3 = (n as f64).powi(3);
        // Coarse global transform: the only part that still pays the
        // alltoallv transposes.
        let coarse = self.transform_time(n / c, ranks, rpn);
        // Fine local complement: serial FFT per rank over the padded
        // slab, all ranks concurrently — charged at the same sustained
        // FFT efficiency, with the node running `rpn` of them at once.
        let lx = (n as f64 / ranks as f64) + 2.0 * ghost as f64;
        let local_cells = lx * (n as f64) * (n as f64);
        let local_flops = 5.0 * local_cells * local_cells.log2();
        let local =
            local_flops * rpn as f64 / (BGQ_NODE.peak_flops() * self.fft_efficiency);
        let time = coarse.time + local;
        // Useful work is still the full fine-resolution transform.
        let flops = 5.0 * n3 * n3.log2();
        ScalingRow {
            cores: nodes * BGQ_NODE.cores,
            problem_size: n3,
            time,
            flops_rate: flops / time,
            peak_fraction: flops / time / (nodes as f64 * BGQ_NODE.peak_flops()),
        }
    }
}

/// Full-code model (Tables II–III, Figs. 7–8).
///
/// The substep cost is dominated by the short-range force kernel (80% of
/// the time at the paper's operating point), plus tree walk/build, CIC and
/// FFT; communication enters through the spectral solve and overload
/// refresh. All algorithmic inputs are *measured* in the simulated runs
/// and passed in; the model maps them onto BG/Q partitions.
#[derive(Debug, Clone, Copy)]
pub struct FullCodeModel {
    /// Average flops per particle per substep (measured; depends on
    /// clustering and neighbor-list sizes).
    pub flops_per_particle: f64,
    /// Fraction of peak the force kernel sustains (paper: ~0.80 at 4
    /// threads/core with the fsel-vectorized kernel).
    pub kernel_efficiency: f64,
    /// Fraction of substep time spent in the kernel (paper: 0.80).
    pub kernel_time_fraction: f64,
    /// Overloading memory/compute overhead factor (≥ 1; grows when the
    /// per-rank volume shrinks toward the overload width — the strong
    /// scaling "abuse" penalty of Fig. 8).
    pub overload_factor: f64,
    /// Bytes communicated per particle per substep (spectral solve +
    /// refresh; measured from traffic counters).
    pub comm_bytes_per_particle: f64,
}

impl FullCodeModel {
    /// Reference inputs matching the paper's reported operating point.
    #[must_use] 
    pub fn paper_reference() -> Self {
        FullCodeModel {
            // Calibrated so 2M particles/core on 96 racks reproduces the
            // measured 13.94 PFlops at 0.0596 ns/particle/substep:
            // flops/particle = 13.94e15 * 5.96e-11 ≈ 8.3e5.
            flops_per_particle: 8.3e5,
            kernel_efficiency: 0.80,
            kernel_time_fraction: 0.80,
            overload_factor: 1.0,
            comm_bytes_per_particle: 20.0,
        }
    }

    /// Predict one substep on `part` with `particles` total tracer
    /// particles.
    #[must_use] 
    pub fn substep(&self, part: &BgqPartition, particles: f64) -> ScalingRow {
        let total_flops = self.flops_per_particle * particles * self.overload_factor;
        // Kernel time at kernel_efficiency of peak; everything else scales
        // with it through the measured time fraction.
        let kernel_time = total_flops / (part.peak_flops() * self.kernel_efficiency);
        let compute_time = kernel_time / self.kernel_time_fraction;
        // Communication: per-node volume against injection bandwidth, plus
        // a bisection term for the global transposes.
        let bytes = self.comm_bytes_per_particle * particles;
        let inj = bytes / part.nodes as f64 / 2.0e9;
        let bis = bytes / part.bisection_bandwidth();
        let time = compute_time + inj.max(bis);
        // Hardware counters count *all* executed flops — including the
        // redundant work in overloaded regions — which is why the paper's
        // strong-scaling %peak stays in the 60s even as time/substep
        // degrades at thin slabs.
        let sustained = total_flops / time;
        ScalingRow {
            cores: part.cores(),
            problem_size: particles,
            time,
            flops_rate: sustained,
            peak_fraction: sustained / part.peak_flops(),
        }
    }

    /// Strong-scaling overload penalty: when the per-rank box edge shrinks
    /// to a few overload widths, replicated volume grows as
    /// `(1 + 2·w/edge)³`.
    #[must_use] 
    pub fn overload_penalty(box_edge_cells: f64, overload_cells: f64) -> f64 {
        let f = 1.0 + 2.0 * overload_cells / box_edge_cells;
        f * f * f
    }

    /// Estimated memory per rank in bytes for `ppr` particles per rank at
    /// one particle per PM cell (the Table II "Memory [MB/rank]" column,
    /// ~350–420 MB at 2M particles/rank).
    ///
    /// Accounting per particle: SoA store (position + velocity f32 ×6,
    /// id u64 = 32 B) × overload replication; acceleration staging
    /// (3×f32); tree nodes + permutation (~24 B at fat-leaf sizes);
    /// gathered neighbor-list buffers (~16 B amortized); and the grid
    /// side at 1 particle/cell: density + 3 force components in f64
    /// (32 B) plus complex FFT working set with transpose staging
    /// (~64 B).
    #[must_use] 
    pub fn memory_per_rank(&self, ppr: f64) -> f64 {
        let particle = 32.0 * (1.0 + 0.10 * (self.overload_factor)).min(2.0);
        let accel = 12.0;
        let tree = 24.0;
        let lists = 16.0;
        let grids = 32.0 + 64.0;
        ppr * (particle + accel + tree + lists + grids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_weak_scaling_endpoint() {
        // 96 racks, 3.6 trillion particles: expect ~13.9 PFlops, ~69% peak,
        // ~0.06 ns per particle per substep.
        let m = FullCodeModel::paper_reference();
        let part = BgqPartition::racks(96);
        let row = m.substep(&part, 15360f64.powi(3));
        let pf = row.flops_rate / 1e15;
        assert!((pf - 13.94).abs() < 1.5, "PFlops {pf}");
        assert!(row.peak_fraction > 0.6 && row.peak_fraction < 0.75);
        let tpp = row.time_per_particle();
        assert!(tpp > 4e-11 && tpp < 8e-11, "tpp {tpp}");
    }

    #[test]
    fn weak_scaling_flat() {
        // Same particles/core ⇒ time per particle scales ~1/cores; time per
        // substep stays flat.
        let m = FullCodeModel::paper_reference();
        let per_core = 2.0e6;
        let mut prev_time = None;
        for racks in [1, 4, 16, 96] {
            let part = BgqPartition::racks(racks);
            let row = m.substep(&part, per_core * part.cores() as f64);
            if let Some(p) = prev_time {
                let ratio: f64 = row.time / p;
                assert!((ratio - 1.0f64).abs() < 0.1, "ratio {ratio}");
            }
            prev_time = Some(row.time);
        }
    }

    #[test]
    fn memory_per_rank_matches_table2_scale() {
        // Table II: ~350-420 MB/rank at 2M particles/rank.
        let m = FullCodeModel::paper_reference();
        let mb = m.memory_per_rank(2.0e6) / 1e6;
        assert!(mb > 300.0 && mb < 450.0, "memory/rank {mb} MB");
    }

    #[test]
    fn strong_scaling_overload_penalty_grows() {
        let p1 = FullCodeModel::overload_penalty(32.0, 4.0);
        let p2 = FullCodeModel::overload_penalty(8.0, 4.0);
        assert!(p2 > p1 && p1 > 1.0);
        assert!((FullCodeModel::overload_penalty(1e9, 4.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fft_model_strong_scaling_close_to_ideal() {
        // Table I top block: 1024³ from 256 to 8192 ranks speeds up by
        // ~28x (2.731s → 0.098s). Our model should show large speedup too.
        let m = FftModel::default();
        let t256 = m.transform_time(1024, 256, 8).time;
        let t8192 = m.transform_time(1024, 8192, 8).time;
        let speedup = t256 / t8192;
        assert!(speedup > 10.0 && speedup < 40.0, "speedup {speedup}");
        // Absolute scale within a factor ~3 of the paper's 2.731 s.
        assert!(t256 > 0.9 && t256 < 8.0, "t256 {t256}");
    }

    #[test]
    fn two_level_model_beats_single_level_when_comm_bound() {
        // With the default calibration the transposes are roughly half
        // of a transform, so the coarse-global + local-fine split wins
        // wherever the slab keeps `2·ghost` well under `lx` — and wins
        // more at higher coarsening (coarse transposes shrink by c³).
        // 1024³ over 16 ranks: lx = 64 vs ghost 14.
        let m = FftModel::default();
        let single = m.transform_time(1024, 16, 8).time;
        let two_c2 = m.two_level_time(1024, 2, 14, 16, 8).time;
        let two_c4 = m.two_level_time(1024, 4, 14, 16, 8).time;
        assert!(two_c2 < single, "two-level {two_c2} vs single {single}");
        assert!(two_c4 < two_c2, "c=4 {two_c4} vs c=2 {two_c2}");
        // Ghost padding is pure local compute: widening it must cost,
        // and at a deep decomposition (ghost volume ≫ owned planes) the
        // model must flip back to favoring the single-level transform —
        // the regime the dist-layer geometry asserts guard against.
        let wide = m.two_level_time(1024, 2, 60, 16, 8).time;
        assert!(wide > two_c2, "wider ghosts must cost more: {wide}");
        let deep_single = m.transform_time(1024, 8192, 8).time;
        let deep_two = m.two_level_time(1024, 2, 14, 8192, 8).time;
        assert!(deep_two > deep_single, "ghost-dominated slabs can't win");
    }

    #[test]
    fn fft_model_weak_scaling_stable() {
        // Table I middle block: ~160³ per rank, 16384 → 262144 ranks:
        // times stay within a small factor (5.2s → 7.2s in the paper).
        let m = FftModel::default();
        let t1 = m.transform_time(4096, 16384, 8).time;
        let t2 = m.transform_time(9216, 262144, 8).time;
        let ratio = t2 / t1;
        assert!(ratio > 0.5 && ratio < 3.0, "ratio {ratio}");
    }
}
