//! Property-based tests of the mini-MPI collectives.

use hacc_comm::Machine;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// alltoallv conserves every element exactly, for arbitrary rank
    /// counts and message sizes.
    #[test]
    fn alltoallv_is_a_permutation_of_payloads(
        ranks in 1usize..7,
        sizes in prop::collection::vec(0usize..20, 0..49),
    ) {
        let (res, _) = Machine::new(ranks).run(|c| {
            let me = c.rank();
            let sends: Vec<Vec<u64>> = (0..c.size())
                .map(|dst| {
                    let n = sizes.get(me * c.size() + dst).copied().unwrap_or(1);
                    (0..n).map(|i| (me * 1_000_000 + dst * 1_000 + i) as u64).collect()
                })
                .collect();
            let expected_from: Vec<Vec<u64>> = (0..c.size())
                .map(|src| {
                    let n = sizes.get(src * c.size() + me).copied().unwrap_or(1);
                    (0..n).map(|i| (src * 1_000_000 + me * 1_000 + i) as u64).collect()
                })
                .collect();
            let got = c.alltoallv(sends);
            got == expected_from
        });
        prop_assert!(res.iter().all(|&ok| ok));
    }

    /// allreduce(sum) equals the serial sum independent of rank count.
    #[test]
    fn allreduce_sum_correct(ranks in 1usize..9, values in prop::collection::vec(-100.0f64..100.0, 9)) {
        let vals = values.clone();
        let (res, _) = Machine::new(ranks).run(|c| {
            c.allreduce_sum(vals[c.rank() % vals.len()])
        });
        let want: f64 = (0..ranks).map(|r| values[r % values.len()]).sum();
        for r in res {
            prop_assert!((r - want).abs() < 1e-9);
        }
    }

    /// broadcast delivers identical payloads to every rank for any root.
    #[test]
    fn broadcast_delivers_everywhere(
        ranks in 1usize..9,
        root_seed in any::<usize>(),
        payload in prop::collection::vec(any::<u32>(), 0..64),
    ) {
        let root = root_seed % ranks;
        let data = payload.clone();
        let (res, _) = Machine::new(ranks).run(move |c| {
            let send = if c.rank() == root { Some(data.clone()) } else { None };
            c.broadcast(root, send)
        });
        for r in res {
            prop_assert_eq!(&r, &payload);
        }
    }

    /// split partitions ranks: sub-communicator sizes sum to the total
    /// and collectives inside each color behave.
    #[test]
    fn split_partitions(ranks in 2usize..9, colors in prop::collection::vec(0u64..3, 9)) {
        let cols = colors.clone();
        let (res, _) = Machine::new(ranks).run(move |c| {
            let color = cols[c.rank() % cols.len()];
            let sub = c.split(color, c.rank() as u64);
            let members = c
                .allgather(vec![color])
                .iter()
                .filter(|v| v[0] == color)
                .count();
            let sub_sum = sub.allreduce_sum(1.0) as usize;
            (members, sub.size(), sub_sum)
        });
        for (members, size, sum) in res {
            prop_assert_eq!(members, size);
            prop_assert_eq!(size, sum);
        }
    }
}
