//! Threads-as-ranks mini-MPI.
//!
//! The paper runs HACC with up to 1,572,864 MPI ranks on the BG/Q. No such
//! machine (nor mature Rust MPI bindings) is available here, so this crate
//! provides the substrate the rest of the reproduction runs on: a set of
//! *simulated ranks*, one OS thread each, exchanging typed messages through
//! shared in-process mailboxes.
//!
//! The API deliberately mirrors the small subset of MPI that HACC needs —
//! point-to-point send/recv, barrier, broadcast, (all)reduce, (all)gather,
//! `alltoallv`, and communicator `split` (used by the pencil FFT for its row
//! and column transposes). Every byte sent is accounted per rank so the
//! machine model (crates/machine) can translate measured traffic into
//! paper-scale network estimates.
//!
//! # Reliable transport and fault injection
//!
//! Every point-to-point message carries a per-`(context, src, tag)` sequence
//! number. The receiving mailbox delivers payloads strictly in sequence
//! order, buffering early arrivals and discarding retransmissions, so the
//! user-visible semantics are exactly the buffered-ordered channel the rest
//! of the code assumes — even when a [`FaultPlan`] injects duplicated or
//! delayed messages underneath. A *dropped* message leaves a permanent gap
//! in the sequence space; a receiver blocked on it fails with a diagnostic
//! [`CommError::Timeout`] naming the expected `(context, src, tag)` (via
//! [`Comm::recv_timeout`] or the machine-wide watchdog) instead of hanging.
//!
//! Messages are buffered: `send` never blocks, `recv` blocks until a
//! matching `(context, source, tag)` message arrives. Matching is exact
//! (no wildcards), which keeps the semantics deterministic.

pub mod fault;
pub mod health;
#[cfg(not(loom))]
pub mod hub;
pub mod protocol;
#[cfg(not(loom))]
pub mod socket;
pub mod stats;
pub mod sync;
pub mod topology;
pub mod transport;
pub mod wire;

pub use fault::{FaultAction, FaultPlan, FaultStats, SlowRank};
pub use health::{EpochReport, HealthState, HeartbeatConfig, RankStatus};
pub use stats::{ClassVolume, TagClassVolumes, TrafficStats, WireStats};
pub use topology::{dims_create, CartComm};
pub use transport::{Transport, WirePayload};
pub use wire::WireMsg;

use crate::sync::{Arc, AtomicBool, AtomicU64, Condvar, Instant, LockRank, Mutex, Ordering};
use std::any::Any;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::Duration;

/// Mailbox key: (communicator context, global source rank, user tag).
type Key = (u64, usize, u64);

/// A payload in flight. `None` marks an injected retransmission ghost:
/// it carries the duplicate's sequence number (so the receiver's dedup
/// path is exercised) without requiring `T: Clone`.
type Payload = Option<Box<dyn Any + Send>>;

/// Errors surfaced by the communication layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// No matching message arrived in time. Names the exact mailbox slot
    /// being waited on so a lost message is diagnosable, not a hang.
    Timeout {
        /// Communicator context id.
        context: u64,
        /// Source rank (communicator-local).
        src: usize,
        /// User tag.
        tag: u64,
        /// How long the receiver waited.
        waited: Duration,
        /// Transport-level detail (sequence gap, buffered count).
        detail: String,
    },
    /// Another rank panicked while this one was blocked.
    Poisoned,
    /// The awaited source rank was declared dead by the heartbeat
    /// monitor: its traffic will never arrive. Unlike [`Self::Poisoned`]
    /// this is survivable — the caller can run the recovery protocol.
    RankFailed {
        /// Global rank declared failed.
        rank: usize,
        /// Last epoch it completed before dying.
        epoch: u64,
    },
    /// The link carrying traffic from `rank` delivered a frame that
    /// failed its structural or CRC checks. The link is condemned —
    /// nothing after the torn frame can be trusted — so the receiver
    /// learns loudly instead of consuming garbage. Only byte-oriented
    /// backends produce this; the in-process backend degrades detected
    /// corruption to a sequence gap ([`Self::Timeout`]) instead.
    CorruptDetected {
        /// Global rank whose link produced the bad frame.
        rank: usize,
        /// What exactly failed (magic, CRC, sequence, length).
        detail: String,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout {
                context,
                src,
                tag,
                waited,
                detail,
            } => write!(
                f,
                "comm timeout after {waited:?}: no message for \
                 (context={context}, src={src}, tag={tag}); {detail}"
            ),
            CommError::Poisoned => write!(f, "machine poisoned: another rank panicked"),
            CommError::RankFailed { rank, epoch } => write!(
                f,
                "rank {rank} declared failed (last completed epoch {epoch}); \
                 its traffic will never arrive"
            ),
            CommError::CorruptDetected { rank, detail } => write!(
                f,
                "link from rank {rank} condemned after a corrupt frame: {detail}"
            ),
        }
    }
}

impl std::error::Error for CommError {}

/// Error from a whole-machine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A rank's closure panicked (including injected kills and watchdog
    /// timeouts); the machine was shut down.
    RankPanicked {
        /// Global rank that failed first.
        rank: usize,
        /// The panic payload, stringified.
        message: String,
    },
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} failed: {message}")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// The simulated on-the-wire image of one message: the frame header
/// words `(context, src, tag, seq, payload bytes)` protected by a
/// CRC-32. Payloads are typed in-process values (never byte-viewed —
/// that would be UB for padded generic `T`), so the CRC covers the
/// header frame; [`FaultPlan::corrupt_prob`] flips a bit of this image
/// in flight and the receiving transport must detect and discard it.
#[derive(Debug, Clone, Copy)]
struct Wire {
    words: [u64; 5],
    crc: u32,
}

impl Wire {
    fn new(context: u64, src: u64, tag: u64, seq: u64, bytes: u64) -> Self {
        let words = [context, src, tag, seq, bytes];
        Wire {
            words,
            crc: crc32_words(&words),
        }
    }

    /// Does the frame checksum?
    fn valid(&self) -> bool {
        crc32_words(&self.words) == self.crc
    }

    /// Flip one bit of the 352-bit transmitted image (header words then
    /// CRC), as a cosmic ray / link error would.
    fn flip_bit(mut self, bit: u64) -> Self {
        let b = (bit % 352) as usize;
        if b < 320 {
            self.words[b / 64] ^= 1u64 << (b % 64);
        } else {
            self.crc ^= 1u32 << (b - 320);
        }
        self
    }
}

/// Table-less CRC-32 (IEEE 802.3 reflected polynomial) over the
/// little-endian bytes of the header words. 40 bytes per frame — the
/// bitwise loop is plenty fast for a per-message check.
fn crc32_words(words: &[u64; 5]) -> u32 {
    let mut crc = !0u32;
    for w in words {
        for byte in w.to_le_bytes() {
            crc ^= u32::from(byte);
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xedb8_8320 & mask);
            }
        }
    }
    !crc
}

/// Transport-level state of one rank's incoming mailbox.
#[derive(Default)]
struct MailState {
    /// In-order payloads, ready for `recv`.
    ready: HashMap<Key, VecDeque<Box<dyn Any + Send>>>,
    /// Early arrivals parked until the sequence gap closes.
    reorder: HashMap<Key, BTreeMap<u64, Payload>>,
    /// Next sequence number a sender will stamp on this key (senders
    /// update it while holding this mailbox's lock).
    send_seq: HashMap<Key, u64>,
    /// Next sequence number the receiver will release for this key.
    recv_seq: HashMap<Key, u64>,
    /// Frames rejected by the CRC check, per key (for diagnosis).
    crc_rejected: HashMap<Key, u64>,
}

impl MailState {
    /// Transport delivery: validate the wire frame, then release
    /// in-sequence payloads, buffer early ones, discard retransmissions.
    /// Returns whether anything became ready.
    fn deliver(
        &mut self,
        ctrs: &FaultCounters,
        key: Key,
        seq: u64,
        wire: &Wire,
        payload: Payload,
    ) -> bool {
        if !wire.valid() {
            // CRC mismatch: the frame is discarded at the receiver. Its
            // sequence number was consumed by the sender, so the stream
            // has a diagnosable gap — detected corruption degrades to
            // exactly the injected-drop failure mode, never torn data.
            ctrs.corrupt_detected.fetch_add(1, Ordering::Relaxed);
            *self.crc_rejected.entry(key).or_insert(0) += 1;
            return false;
        }
        let expected = *self.recv_seq.entry(key).or_insert(0);
        if seq < expected {
            ctrs.dup_discarded.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        if seq > expected {
            ctrs.reordered.fetch_add(1, Ordering::Relaxed);
            // First arrival wins: a ghost must never displace a buffered
            // real payload with the same sequence number.
            self.reorder
                .entry(key)
                .or_default()
                .entry(seq)
                .or_insert(payload);
            return false;
        }
        let mut next = expected + 1;
        let mut any_ready = false;
        if let Some(p) = payload {
            self.ready.entry(key).or_default().push_back(p);
            any_ready = true;
        }
        if let Some(parked) = self.reorder.get_mut(&key) {
            while let Some(slot) = parked.remove(&next) {
                if let Some(p) = slot {
                    self.ready.entry(key).or_default().push_back(p);
                    any_ready = true;
                }
                next += 1;
            }
        }
        self.recv_seq.insert(key, next);
        any_ready
    }

    /// Human-readable transport diagnosis for a timed-out key.
    fn diagnose(&self, key: &Key) -> String {
        let expected = self.recv_seq.get(key).copied().unwrap_or(0);
        let parked = self.reorder.get(key).map(BTreeMap::len).unwrap_or(0);
        let rejected = self.crc_rejected.get(key).copied().unwrap_or(0);
        let mut msg = if parked > 0 {
            format!(
                "transport gap: waiting for seq #{expected}, {parked} later \
                 message(s) buffered behind it (a message was lost)"
            )
        } else {
            format!("no traffic pending (waiting for seq #{expected})")
        };
        if rejected > 0 {
            msg.push_str(&format!(
                "; {rejected} frame(s) on this slot failed CRC and were discarded \
                 (payload corrupted in flight)"
            ));
        }
        msg
    }
}

/// One rank's incoming mailbox.
struct Mailbox {
    state: Mutex<MailState>,
    signal: Condvar,
}

impl Default for Mailbox {
    fn default() -> Self {
        Mailbox {
            state: Mutex::new(LockRank::ChannelMail, MailState::default()),
            signal: Condvar::new(),
        }
    }
}

/// Fault-event counters (machine-wide).
///
/// Ordering audit (see DESIGN.md §"Concurrency model & unsafety
/// inventory"): every counter is an independent monotonic event tally —
/// no other data is published under it — so the increments use
/// `Relaxed`, which guarantees atomicity (no lost counts) but no
/// cross-thread ordering. Authoritative reads happen in
/// [`Machine::try_run`] *after* `std::thread::scope` joins every rank,
/// and thread join establishes the happens-before edge that makes the
/// totals exact. Mid-run reads ([`Comm::traffic_stats`]) are documented
/// as approximate for the same reason.
#[derive(Default)]
struct FaultCounters {
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
    dup_discarded: AtomicU64,
    reordered: AtomicU64,
    corrupted: AtomicU64,
    corrupt_detected: AtomicU64,
}

impl FaultCounters {
    fn snapshot(&self) -> FaultStats {
        // Relaxed: see the struct-level ordering audit. Exact after
        // join; approximate (never torn, possibly stale) mid-run.
        FaultStats {
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            dup_discarded: self.dup_discarded.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
            corrupted: self.corrupted.load(Ordering::Relaxed),
            corrupt_detected: self.corrupt_detected.load(Ordering::Relaxed),
        }
    }
}

/// A message held back by delay injection, waiting to be flushed after
/// later traffic.
struct Held {
    dst: usize,
    key: Key,
    seq: u64,
    wire: Wire,
    payload: Box<dyn Any + Send>,
}

/// State shared by every rank of a [`Machine`].
struct Shared {
    boxes: Vec<Mailbox>,
    bytes_sent: Vec<AtomicU64>,
    msgs_sent: Vec<AtomicU64>,
    /// Machine-wide per-tag-class volume tallies.
    class: ClassCounters,
    /// Set when any rank panics so ranks blocked in `recv` abort instead
    /// of waiting forever on messages that will never come.
    poisoned: AtomicBool,
    /// Fault-injection plan (inactive by default).
    plan: FaultPlan,
    /// Machine-wide recv watchdog: plain `recv` fails diagnostically
    /// after this long instead of blocking forever.
    watchdog: Option<Duration>,
    counters: FaultCounters,
    /// Per-global-rank delayed messages awaiting out-of-order delivery.
    holdback: Vec<Mutex<Vec<Held>>>,
    /// Failure detector (inert unless [`Machine::with_heartbeat`]).
    health: HealthState,
    /// Counter rank 0 draws fresh split/duplicate context bases from.
    next_context: AtomicU64,
}

impl Shared {
    /// Deliver every message the injector held back for `rank`. Called
    /// after newer traffic was enqueued (creating the reordering the
    /// injection wants), before the rank blocks, and when it finishes.
    fn flush_holdback(&self, rank: usize) {
        let held = std::mem::take(&mut *self.holdback[rank].lock(LockRank::Holdback));
        for m in held {
            let mbox = &self.boxes[m.dst];
            let mut st = mbox.state.lock(LockRank::ChannelMail);
            st.deliver(&self.counters, m.key, m.seq, &m.wire, Some(m.payload));
            drop(st);
            mbox.signal.notify_all();
        }
    }

    /// Wake every blocked receiver (taking each mailbox lock first so
    /// the wakeup cannot be lost) without poisoning. The heartbeat
    /// monitor uses this after declaring a rank failed so receivers
    /// blocked on the dead source re-check and fail with
    /// [`CommError::RankFailed`] instead of hanging.
    fn wake_all(&self) {
        for mbox in self.boxes.iter() {
            let _guard = mbox.state.lock(LockRank::ChannelMail);
            mbox.signal.notify_all();
        }
    }

    /// Poison the machine and wake every blocked receiver so it aborts
    /// with [`CommError::Poisoned`] instead of waiting forever.
    ///
    /// Ordering audit: the store is `SeqCst` and receivers re-check the
    /// flag with a `SeqCst` load *while holding their mailbox lock*
    /// before every wait; because this path also takes each mailbox
    /// lock before notifying, a receiver either sees the flag on its
    /// pre-wait check or is woken by the notify — there is no window
    /// for a lost wakeup. The loom model
    /// `poison_always_wakes_blocked_recv` proves this exhaustively.
    /// Detector waiters (`epoch_sync`, `await_failed`) use the same
    /// flag-under-lock pattern against the health condvar.
    fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        self.wake_all();
        self.health.wake();
    }
}

/// The in-process backend: typed mailboxes, injectable faults, the
/// loom-verified reference implementation of the transport contract.
impl Transport for Shared {
    fn world_size(&self) -> usize {
        self.boxes.len()
    }

    fn is_wire(&self) -> bool {
        false
    }

    fn watchdog(&self) -> Option<Duration> {
        self.watchdog
    }

    fn send(
        &self,
        src: usize,
        dst: usize,
        context: u64,
        tag: u64,
        payload: WirePayload,
        bytes: u64,
    ) {
        let data: Box<dyn Any + Send> = match payload {
            WirePayload::Boxed(b) => b,
            WirePayload::Bytes { .. } => unreachable!("in-process transport is typed"),
        };
        // Relaxed: monotonic accounting counters, no data published
        // under them; read exactly after join (FaultCounters audit).
        self.bytes_sent[src].fetch_add(bytes, Ordering::Relaxed);
        self.msgs_sent[src].fetch_add(1, Ordering::Relaxed);
        self.class.count(tag, bytes);
        // Every send doubles as a heartbeat (no-op without a monitor).
        self.health.tick(src);
        let plan = &self.plan;
        if let Some(slow) = plan.slow() {
            if slow.rank == src {
                std::thread::sleep(slow.per_send);
            }
        }
        let key = (context, src, tag);
        let mbox = &self.boxes[dst];
        let mut st = mbox.state.lock(LockRank::ChannelMail);
        let seq = {
            let s = st.send_seq.entry(key).or_insert(0);
            let seq = *s;
            *s += 1;
            seq
        };
        let action = if plan.is_active() {
            plan.action(context, src, dst, tag, seq)
        } else {
            FaultAction::None
        };
        let wire = Wire::new(context, src as u64, tag, seq, bytes);
        let ctrs = &self.counters;
        match action {
            FaultAction::None => {
                st.deliver(ctrs, key, seq, &wire, Some(data));
                drop(st);
                mbox.signal.notify_all();
            }
            FaultAction::Drop => {
                // The sequence number is consumed: the receiver sees a
                // permanent gap and its watchdog names this message.
                ctrs.dropped.fetch_add(1, Ordering::Relaxed);
                // Release before the holdback flush below — this arm
                // otherwise keeps the guard lexically alive across it,
                // nesting ChannelMail → Holdback against the rank order.
                drop(st);
            }
            FaultAction::Duplicate => {
                ctrs.duplicated.fetch_add(1, Ordering::Relaxed);
                // Retransmission re-sends the payload bytes.
                self.bytes_sent[src].fetch_add(bytes, Ordering::Relaxed);
                self.msgs_sent[src].fetch_add(1, Ordering::Relaxed);
                self.class.count(tag, bytes);
                st.deliver(ctrs, key, seq, &wire, Some(data));
                // The ghost carries only the duplicate sequence number;
                // the receiver's dedup discards it by seq alone.
                st.deliver(ctrs, key, seq, &wire, None);
                drop(st);
                mbox.signal.notify_all();
            }
            FaultAction::Delay => {
                ctrs.delayed.fetch_add(1, Ordering::Relaxed);
                drop(st);
                self.holdback[src].lock(LockRank::Holdback).push(Held {
                    dst,
                    key,
                    seq,
                    wire,
                    payload: data,
                });
                return; // flushed after later traffic
            }
            FaultAction::Corrupt => {
                ctrs.corrupted.fetch_add(1, Ordering::Relaxed);
                // Flip one bit of the transmitted image; the receiving
                // transport's CRC check rejects the frame (counted as
                // `corrupt_detected` in `deliver`).
                let bit = plan.corrupt_bit(context, src, dst, tag, seq);
                let torn = wire.flip_bit(bit);
                st.deliver(ctrs, key, seq, &torn, Some(data));
                drop(st);
                mbox.signal.notify_all();
            }
        }
        // Any message held back earlier is now "later" than the traffic
        // just enqueued — deliver it out of order.
        self.flush_holdback(src);
    }

    fn recv(
        &self,
        me: usize,
        src: usize,
        context: u64,
        tag: u64,
        timeout: Option<Duration>,
    ) -> Result<WirePayload, CommError> {
        let mbox = &self.boxes[me];
        let key = (context, src, tag);
        let start = Instant::now();
        let deadline = timeout.map(|t| start + t);
        let mut st = mbox.state.lock(LockRank::ChannelMail);
        loop {
            if let Some(q) = st.ready.get_mut(&key) {
                if let Some(boxed) = q.pop_front() {
                    return Ok(WirePayload::Boxed(boxed));
                }
            }
            // SeqCst, checked while holding the mailbox lock: pairs
            // with `Shared::poison`, which stores SeqCst and then takes
            // this lock before notifying — so either this check sees
            // the flag or the upcoming wait is woken by the notify (no
            // lost-wakeup window; model-checked in tests/loom.rs).
            if self.poisoned.load(Ordering::SeqCst) {
                return Err(CommError::Poisoned);
            }
            // With a heartbeat monitor attached, a wait on a source that
            // stands declared `Failed` can never be satisfied: surface
            // it as a survivable error. (The monitor wakes every mailbox
            // after a declaration, so a blocked receiver reaches this
            // check. Health state is a leaf lock — safe to take under
            // the mailbox lock; see `HealthState` docs.)
            if self.health.enabled() {
                if let Some(epoch) = self.health.failed_epoch_of(src) {
                    return Err(CommError::RankFailed { rank: src, epoch });
                }
            }
            match deadline {
                None => mbox.signal.wait(&mut st),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        let detail = st.diagnose(&key);
                        return Err(CommError::Timeout {
                            context,
                            src,
                            tag,
                            waited: now - start,
                            detail,
                        });
                    }
                    let _ = mbox.signal.wait_for(&mut st, d - now);
                }
            }
        }
    }

    fn flush_holdback(&self, me: usize) {
        Shared::flush_holdback(self, me);
    }

    fn shutdown(&self, me: usize) {
        // Nothing to close in-process; just release anything the fault
        // injector held back so peers are not starved.
        Shared::flush_holdback(self, me);
    }

    fn alloc_context_base(&self) -> u64 {
        // Relaxed: only uniqueness matters (the RMW is atomic); the
        // value is distributed to the other ranks by a broadcast above
        // this seam, whose mailbox locks provide the ordering.
        self.next_context.fetch_add(1, Ordering::Relaxed)
    }

    fn poison(&self) {
        Shared::poison(self);
    }

    fn traffic_stats(&self) -> TrafficStats {
        TrafficStats {
            bytes_sent: self
                .bytes_sent
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            msgs_sent: self
                .msgs_sent
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            by_class: self.class.snapshot(),
            faults: self.counters.snapshot(),
            wire: WireStats::default(),
        }
    }

    fn health_enabled(&self) -> bool {
        self.health.enabled()
    }

    fn should_kill(&self, rank: usize, step: u64) -> bool {
        self.plan.should_kill(rank, step)
    }

    fn beat(&self, me: usize, epoch: u64) -> RankStatus {
        self.health.beat(me, epoch)
    }

    fn epoch_sync(&self, _me: usize, epoch: u64) -> Result<EpochReport, CommError> {
        self.health.epoch_sync(epoch, &self.poisoned)
    }

    fn await_failed(&self, me: usize) -> Result<u64, CommError> {
        self.health.await_failed(me, &self.poisoned)
    }

    fn await_rebirth(&self, _me: usize, failed: &[usize]) -> Result<(), CommError> {
        self.health.await_rebirth(failed, &self.poisoned)
    }

    fn mark_recovered(&self, me: usize, epoch: u64) {
        self.health.mark_recovered(me, epoch);
    }

    fn dead_set(&self) -> Vec<(usize, u64)> {
        self.health.dead_set()
    }

    fn rank_status(&self, rank: usize) -> RankStatus {
        self.health.status(rank)
    }

    fn retire(&self, me: usize) {
        self.health.park(me);
    }

    fn activate(&self, _me: usize, rank: usize, epoch: u64) {
        self.health.activate(rank, epoch);
    }

    fn await_activation(&self, me: usize) -> Result<u64, CommError> {
        self.health.await_activation(me, &self.poisoned)
    }
}

/// A virtual parallel machine: `n` ranks running as threads in this process.
pub struct Machine {
    ranks: usize,
    plan: FaultPlan,
    watchdog: Option<Duration>,
    heartbeat: Option<HeartbeatConfig>,
    active: Option<usize>,
}

impl Machine {
    /// Create a machine with `ranks` simulated ranks.
    #[must_use]
    pub fn new(ranks: usize) -> Self {
        assert!(ranks > 0, "need at least one rank");
        Machine {
            ranks,
            plan: FaultPlan::none(),
            watchdog: None,
            heartbeat: None,
            active: None,
        }
    }

    /// Allocate the machine at full capacity but admit only the first
    /// `active` ranks to the initial world: the rest start `Parked`
    /// (elastic reserve, blocked in [`Comm::await_activation`]) until a
    /// grow activates them. Pre-parking happens before any rank thread
    /// runs, so a reserve rank can never be suspected by the monitor
    /// between startup and its own `retire` call. Requires
    /// [`Machine::with_heartbeat`].
    #[must_use]
    pub fn with_active(mut self, active: usize) -> Self {
        assert!(
            active >= 1 && active <= self.ranks,
            "active world must be within [1, {}]",
            self.ranks
        );
        self.active = Some(active);
        self
    }

    /// Inject faults according to `plan` (see [`FaultPlan`]).
    #[must_use] 
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Fail any `recv` that waits longer than `timeout` with a diagnostic
    /// [`CommError::Timeout`] panic (which poisons the machine) instead of
    /// blocking forever. Essential when drops are injected.
    #[must_use]
    pub fn with_watchdog(mut self, timeout: Duration) -> Self {
        self.watchdog = Some(timeout);
        self
    }

    /// Attach a heartbeat failure detector: [`Machine::try_run`] spawns
    /// a monitor thread that scans every `cfg.scan_interval` and
    /// declares silent, epoch-behind ranks `Failed` (see
    /// [`health`]). Step-structured drivers then use
    /// [`Comm::admit_step`] / [`Comm::rejoin_as_replacement`] to turn a
    /// killed rank into an online recovery instead of a poisoned run.
    #[must_use]
    pub fn with_heartbeat(mut self, cfg: HeartbeatConfig) -> Self {
        self.heartbeat = Some(cfg);
        self
    }

    /// Run `f` on every rank concurrently; returns the per-rank results in
    /// rank order together with the traffic statistics of the run.
    ///
    /// Panics if any rank panics (with the `rank thread panicked:` prefix);
    /// use [`Machine::try_run`] to handle failures as values.
    pub fn run<T, F>(&self, f: F) -> (Vec<T>, TrafficStats)
    where
        T: Send,
        F: Fn(Comm) -> T + Sync,
    {
        match self.try_run(f) {
            Ok(out) => out,
            Err(MachineError::RankPanicked { message, .. }) => {
                panic!("rank thread panicked: {message}")
            }
        }
    }

    /// Run `f` on every rank concurrently, reporting a rank failure as an
    /// error instead of panicking — the entry point recovery drivers use.
    pub fn try_run<T, F>(&self, f: F) -> Result<(Vec<T>, TrafficStats), MachineError>
    where
        T: Send,
        F: Fn(Comm) -> T + Sync,
    {
        let shared = self.make_shared();
        let first_failure: Mutex<Option<(usize, String)>> =
            Mutex::new(LockRank::FirstFailure, None);
        // Rank threads count themselves out so the heartbeat monitor
        // (which must not keep `thread::scope` alive forever) knows when
        // to exit. SeqCst: gates the monitor's shutdown control flow.
        let finished = Arc::new(AtomicU64::new(0));
        let mut results: Vec<Option<T>> = (0..self.ranks).map(|_| None).collect();
        std::thread::scope(|scope| {
            if self.heartbeat.is_some() {
                let shared = Arc::clone(&shared);
                let finished = Arc::clone(&finished);
                let ranks = self.ranks as u64;
                scope.spawn(move || {
                    let interval = shared.health.scan_interval();
                    while finished.load(Ordering::SeqCst) < ranks {
                        std::thread::sleep(interval);
                        if !shared.health.scan().is_empty() {
                            // A rank was just declared failed: wake every
                            // blocked receiver so waits on the dead source
                            // re-check and surface `RankFailed`.
                            shared.wake_all();
                        }
                    }
                });
            }
            for (rank, slot) in results.iter_mut().enumerate() {
                let shared = Arc::clone(&shared);
                let f = &f;
                let first_failure = &first_failure;
                let finished = Arc::clone(&finished);
                let ranks = self.ranks;
                scope.spawn(move || {
                    let shared_outer = Arc::clone(&shared);
                    let comm = Comm {
                        backend: Backend::InProc(shared),
                        context: 0,
                        rank,
                        group: (0..ranks).collect::<Vec<_>>().into(),
                    };
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(comm)));
                    match result {
                        Ok(v) => {
                            // Drain any delay-injected messages this rank
                            // still holds so peers are not starved.
                            shared_outer.flush_holdback(rank);
                            *slot = Some(v);
                        }
                        Err(payload) => {
                            // `&*payload`: deref past the Box so downcasts
                            // see the payload, not the Box (which is itself
                            // `Any` and would shadow it via unsize coercion).
                            first_failure
                                .lock(LockRank::FirstFailure)
                                .get_or_insert_with(|| (rank, panic_message(&*payload)));
                            // Wake every blocked receiver so the machine
                            // shuts down instead of deadlocking.
                            shared_outer.poison();
                        }
                    }
                    finished.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        if let Some((rank, message)) = first_failure.into_inner() {
            return Err(MachineError::RankPanicked { rank, message });
        }
        // Relaxed loads are exact here: `thread::scope` joined every
        // rank above, and join is a happens-before edge covering all of
        // their Relaxed increments (see the FaultCounters audit note).
        let stats = Transport::traffic_stats(&*shared);
        Ok((
            results
                .into_iter()
                .map(|r| r.expect("rank produced result"))
                .collect(),
            stats,
        ))
    }

    /// Number of ranks.
    #[must_use] 
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    fn make_shared(&self) -> Arc<Shared> {
        if self.active.is_some() {
            assert!(
                self.heartbeat.is_some(),
                "Machine::with_active requires with_heartbeat (parking lives in the detector)"
            );
        }
        let shared = Arc::new(Shared {
            boxes: (0..self.ranks).map(|_| Mailbox::default()).collect(),
            bytes_sent: (0..self.ranks).map(|_| AtomicU64::new(0)).collect(),
            msgs_sent: (0..self.ranks).map(|_| AtomicU64::new(0)).collect(),
            class: ClassCounters::default(),
            poisoned: AtomicBool::new(false),
            plan: self.plan.clone(),
            watchdog: self.watchdog,
            counters: FaultCounters::default(),
            holdback: (0..self.ranks)
                .map(|_| Mutex::new(LockRank::Holdback, Vec::new()))
                .collect(),
            health: HealthState::new(self.ranks, self.heartbeat),
            next_context: AtomicU64::new(1),
        });
        if let Some(active) = self.active {
            for rank in active..self.ranks {
                shared.health.park(rank);
            }
        }
        shared
    }

    /// Build the machine's shared state and one communicator handle per
    /// rank **without** spawning rank threads.
    ///
    /// This is the seam external drivers use to schedule ranks
    /// themselves — most importantly the loom model suite
    /// (`tests/loom.rs`), which hands each [`Comm`] to a model-checked
    /// thread and exhaustively explores the interleavings of the
    /// mailbox and collective protocols. Unlike [`Machine::run`], no
    /// watchdog thread, panic capture, or poisoning is installed; the
    /// caller owns rank lifecycles.
    #[must_use]
    pub fn handles(&self) -> Vec<Comm> {
        let shared = self.make_shared();
        (0..self.ranks)
            .map(|rank| Comm {
                backend: Backend::InProc(Arc::clone(&shared)),
                context: 0,
                rank,
                group: (0..self.ranks).collect::<Vec<_>>().into(),
            })
            .collect()
    }
}

/// Stringify a panic payload for diagnostics.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .or_else(|| {
            payload
                .downcast_ref::<CommError>()
                .map(|e| e.to_string())
        })
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

/// Outcome of [`Comm::admit_step`].
#[derive(Debug, Clone)]
pub enum StepAdmission {
    /// All live ranks reached this epoch; `failed` lists any ranks the
    /// monitor declared dead that recovery must now handle.
    Proceed(EpochReport),
    /// This rank is dead to the rest of the machine — killed by the
    /// fault plan here, or fenced after a late heartbeat. Drop all
    /// local state and call [`Comm::rejoin_as_replacement`].
    Dead,
}

/// The transport behind a [`Comm`]. A closed enum rather than a bare
/// `Arc<dyn Transport>` so cloning communicators stays loom-compatible
/// (the loom `Arc` shim and unsized trait objects do not mix) and the
/// in-process fast path keeps static dispatch available.
enum Backend {
    /// Threads-as-ranks typed mailboxes (the default; loom-verified).
    InProc(Arc<Shared>),
    /// One OS process per rank over CRC-framed loopback TCP.
    #[cfg(not(loom))]
    Socket(std::sync::Arc<socket::SocketTransport>),
}

impl Backend {
    fn t(&self) -> &dyn Transport {
        match self {
            Backend::InProc(s) => &**s,
            #[cfg(not(loom))]
            Backend::Socket(s) => &**s,
        }
    }
}

impl Clone for Backend {
    fn clone(&self) -> Self {
        match self {
            Backend::InProc(s) => Backend::InProc(Arc::clone(s)),
            #[cfg(not(loom))]
            Backend::Socket(s) => Backend::Socket(std::sync::Arc::clone(s)),
        }
    }
}

/// A communicator handle owned by one rank.
///
/// Each rank's collectives must be called by all ranks of the communicator
/// in the same order (as with MPI).
pub struct Comm {
    backend: Backend,
    /// Communicator context id — isolates traffic of split communicators.
    context: u64,
    /// This rank's index *within this communicator*.
    rank: usize,
    /// Map from communicator rank to global rank.
    group: Arc<[usize]>,
}

impl Comm {
    /// The transport this communicator runs over.
    fn t(&self) -> &dyn Transport {
        self.backend.t()
    }

    /// World communicator over a connected socket transport: the
    /// multi-process counterpart of the `Comm` each rank thread gets
    /// from [`Machine::run`]. Context 0, identity rank mapping.
    #[cfg(not(loom))]
    #[must_use]
    pub fn over_socket(transport: std::sync::Arc<socket::SocketTransport>) -> Comm {
        let rank = transport.self_rank();
        let n = transport.ranks();
        Comm {
            backend: Backend::Socket(transport),
            context: 0,
            rank,
            group: (0..n).collect::<Vec<_>>().into(),
        }
    }

    /// This rank's index in the communicator.
    #[must_use] 
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[must_use] 
    pub fn size(&self) -> usize {
        self.group.len()
    }

    fn global(&self, rank: usize) -> usize {
        self.group[rank]
    }

    /// Fault-injection hook for step-structured drivers: call at the top
    /// of simulation step `step`. If the machine's [`FaultPlan`] schedules
    /// a kill for this rank at this step, the rank dies here (once).
    pub fn begin_step(&self, step: u64) {
        let me = self.global(self.rank);
        if self.t().should_kill(me, step) {
            panic!("fault injected: rank {me} killed at step {step}");
        }
    }

    /// Failure-aware replacement for [`Comm::begin_step`] on machines
    /// with a heartbeat monitor. Call collectively (on the world
    /// communicator) at the top of step `step`:
    ///
    /// - A rank scheduled to die here does **not** beat the epoch — it
    ///   goes silent and returns [`StepAdmission::Dead`] (the monitor
    ///   will detect the silence and declare it). A rank whose late
    ///   heartbeat finds itself already declared `Failed` is fenced and
    ///   also returns `Dead`. Either way the rank must drop its state
    ///   and call [`Comm::rejoin_as_replacement`].
    /// - Every other rank beats epoch `step`, then blocks until all
    ///   ranks have either reached the epoch or been declared dead, and
    ///   returns [`StepAdmission::Proceed`] with the (possibly empty)
    ///   failed set every survivor agrees on.
    #[must_use]
    pub fn admit_step(&self, step: u64) -> StepAdmission {
        let t = self.t();
        assert!(
            t.health_enabled(),
            "admit_step requires Machine::with_heartbeat"
        );
        let me = self.global(self.rank);
        if t.should_kill(me, step) {
            // Silent death: no beat, no panic — detection is the
            // monitor's job, exactly as with a real dead node.
            return StepAdmission::Dead;
        }
        match t.beat(me, step) {
            RankStatus::Failed | RankStatus::Rebuilding => StepAdmission::Dead,
            // A parked rank admitting a step is a driver bug: parked
            // ranks block in `await_activation` until a grow readmits
            // them, and a shrink only parks a rank *after* its last
            // fenced step. Fail loudly rather than wedge the epoch.
            RankStatus::Parked => panic!("parked rank {me} must await_activation, not admit_step"),
            RankStatus::Healthy | RankStatus::Suspected => match t.epoch_sync(me, step) {
                Ok(report) => StepAdmission::Proceed(report),
                Err(e) => panic!("{e}"),
            },
        }
    }

    /// A dead rank's re-entry point: block until the monitor declares
    /// this rank's death (acknowledging it, `Failed → Rebuilding`) and
    /// return the last epoch it completed. The caller then participates
    /// in the recovery collectives as a blank replacement and finishes
    /// with [`Comm::mark_recovered`].
    #[must_use]
    pub fn rejoin_as_replacement(&self) -> u64 {
        let me = self.global(self.rank);
        match self.t().await_failed(me) {
            Ok(epoch) => epoch,
            Err(e) => panic!("{e}"),
        }
    }

    /// Survivors' counterpart to [`Comm::rejoin_as_replacement`]: block
    /// until every rank in `failed` has acknowledged its death, closing
    /// the window in which a receive could misread the incoming
    /// replacement as still dead. Call before the first recovery
    /// collective.
    pub fn await_rebirth(&self, failed: &[usize]) {
        let global: Vec<usize> = failed.iter().map(|&r| self.global(r)).collect();
        let me = self.global(self.rank);
        if let Err(e) = self.t().await_rebirth(me, &global) {
            panic!("{e}");
        }
    }

    /// Reconstruction done: this (replacement) rank rejoins the healthy
    /// population at `epoch`.
    pub fn mark_recovered(&self, epoch: u64) {
        let me = self.global(self.rank);
        self.t().mark_recovered(me, epoch);
    }

    /// Every rank the detector currently considers dead (`Failed` or
    /// `Rebuilding`), as `(global rank, last completed epoch)` in rank
    /// order. A replacement calls this right after
    /// [`Comm::rejoin_as_replacement`] to learn whether other ranks died
    /// in the same epoch — the set it sees is a superset of the one the
    /// survivors agreed on, identical in the single-failure case the
    /// Tier-0 recovery path handles.
    #[must_use]
    pub fn dead_set(&self) -> Vec<(usize, u64)> {
        if !self.t().health_enabled() {
            return Vec::new();
        }
        self.t().dead_set()
    }

    /// Detector status of communicator rank `rank` (for diagnostics and
    /// tests); `Healthy` on machines without a monitor.
    #[must_use]
    pub fn rank_status(&self, rank: usize) -> RankStatus {
        if !self.t().health_enabled() {
            return RankStatus::Healthy;
        }
        self.t().rank_status(self.global(rank))
    }

    /// Deliberately retire this rank from the active world (elastic
    /// shrink). The detector parks it — exempt from suspicion, skipped
    /// by epoch waits, never in the dead set — while its process or
    /// thread stays alive as reserve capacity for a later grow. This is
    /// an administrative act, not a failure declaration: the protocol
    /// model (`protocol.rs` bug #4) proves the two cannot be confused.
    pub fn retire(&self) {
        let me = self.global(self.rank);
        self.t().retire(me);
    }

    /// Admit parked communicator rank `rank` to the active world at
    /// `epoch` (elastic grow). Called by the rank driving the resize;
    /// a no-op if `rank` is not currently parked (activation cannot
    /// resurrect a failed rank).
    pub fn activate_rank(&self, rank: usize, epoch: u64) {
        let me = self.global(self.rank);
        self.t().activate(me, self.global(rank), epoch);
    }

    /// Block while this rank is parked, until a grow readmits it via
    /// [`Comm::activate_rank`]; returns the epoch it was activated at.
    /// Parked ranks may legitimately wait out an entire run, so the
    /// detector's sync timeout is retried indefinitely — only poison
    /// (another rank panicked) breaks the wait.
    #[must_use]
    pub fn await_activation(&self) -> u64 {
        let me = self.global(self.rank);
        loop {
            match self.t().await_activation(me) {
                Ok(epoch) => return epoch,
                Err(CommError::Timeout { .. }) => {}
                Err(e) => panic!("{e}"),
            }
        }
    }

    /// Number of ranks currently in the active world (everything not
    /// `Parked` — dead ranks still count, since their replacements are
    /// world members). Equals [`Comm::size`] on machines without a
    /// monitor.
    #[must_use]
    pub fn active_count(&self) -> usize {
        if !self.t().health_enabled() {
            return self.size();
        }
        (0..self.size())
            .filter(|&r| self.t().rank_status(self.global(r)) != RankStatus::Parked)
            .count()
    }

    /// Sub-communicator over the active prefix `[0, active)` of this
    /// communicator, with a context every member derives
    /// *deterministically* from `(parent context, active, generation)` —
    /// no collective involving parked ranks is needed to construct it
    /// (the same trick as [`Comm::agree_failed`]'s survivor
    /// communicator). `generation` is the scale-generation counter,
    /// bumped on every committed resize, so traffic from a rolled-back
    /// world can never alias the one that replaced it. The caller must
    /// have rank `< active`.
    #[must_use]
    pub fn active_world(&self, active: usize, generation: u64) -> Comm {
        assert!(
            active <= self.size(),
            "active_world: {active} exceeds capacity {}",
            self.size()
        );
        assert!(
            self.rank < active,
            "active_world: caller rank {} is outside the active prefix {active}",
            self.rank
        );
        let mut h = fault::mix64(self.context ^ 0xe1a5_71c0_5ca1_e000);
        h = fault::mix64(h ^ active as u64);
        h = fault::mix64(h ^ generation);
        let members: Vec<usize> = (0..active).collect();
        self.subset(&members, h)
    }

    /// Agreement collective over the survivors of `report`: every
    /// survivor contributes its failed-set view and asserts all views
    /// are identical, returning the agreed set. Runs on a shrunken
    /// survivor communicator whose context every member derives
    /// *deterministically* from `(parent context, epoch, failed set)` —
    /// no collective with the dead ranks is needed to construct it,
    /// which is the whole point (cf. ULFM's `MPI_Comm_shrink` +
    /// `MPI_Comm_agree`). Failed ranks must not call this.
    #[must_use]
    pub fn agree_failed(&self, report: &EpochReport) -> Vec<(usize, u64)> {
        let mut h = fault::mix64(self.context ^ 0x5ec0_17ab_1e5d_a157);
        for &(r, e) in &report.failed {
            h = fault::mix64(h ^ r as u64);
            h = fault::mix64(h ^ e);
        }
        h = fault::mix64(h ^ report.epoch);
        let survivors: Vec<usize> = (0..self.size())
            .filter(|r| !report.failed.iter().any(|&(fr, _)| fr == *r))
            .collect();
        let sub = self.subset(&survivors, h);
        let mine: Vec<u64> = std::iter::once(report.epoch)
            .chain(report.failed.iter().flat_map(|&(r, e)| [r as u64, e]))
            .collect();
        let views = sub.allgather(mine.clone());
        for (peer, view) in views.iter().enumerate() {
            assert_eq!(
                view, &mine,
                "failure-agreement divergence between survivor {peer} and rank {}",
                sub.rank()
            );
        }
        report.failed.clone()
    }

    /// A sub-communicator over `members` (communicator-local ranks, in
    /// order) with an explicitly chosen context. The caller must be a
    /// member and every member must derive the same `context`.
    fn subset(&self, members: &[usize], context: u64) -> Comm {
        let group: Vec<usize> = members.iter().map(|&r| self.global(r)).collect();
        let me = self.global(self.rank);
        let new_rank = group
            .iter()
            .position(|&g| g == me)
            .expect("subset: caller must be a member");
        Comm {
            backend: self.backend.clone(),
            context,
            rank: new_rank,
            group: group.into(),
        }
    }

    /// Send `data` to communicator rank `dst` with `tag`. Buffered —
    /// returns immediately.
    pub fn send<T: WireMsg>(&self, dst: usize, tag: u64, data: Vec<T>) {
        let me = self.global(self.rank);
        let dst_global = self.global(dst);
        let bytes = (T::WIRE_SIZE * data.len()) as u64;
        let t = self.t();
        let payload = if t.is_wire() {
            WirePayload::Bytes {
                type_hash: wire::type_hash::<T>(),
                data: wire::encode_vec(&data),
            }
        } else {
            WirePayload::Boxed(Box::new(data))
        };
        t.send(me, dst_global, self.context, tag, payload, bytes);
    }

    /// Receive a message previously sent by communicator rank `src` with
    /// `tag`. Blocks until available — or, when the machine has a
    /// watchdog, panics with a diagnostic [`CommError::Timeout`] after the
    /// watchdog duration. Panics if the payload type differs from what was
    /// sent (a programming error, as in MPI).
    #[must_use]
    pub fn recv<T: WireMsg>(&self, src: usize, tag: u64) -> Vec<T> {
        match self.recv_result(src, tag) {
            Ok(v) => v,
            Err(
                e @ (CommError::Timeout { .. }
                | CommError::RankFailed { .. }
                | CommError::CorruptDetected { .. }),
            ) => panic!("{e}"),
            Err(CommError::Poisoned) => panic!("machine poisoned: another rank panicked"),
        }
    }

    /// [`Comm::recv`] with failures as values: blocks until a matching
    /// message arrives, returning [`CommError::Poisoned`] if the
    /// machine is poisoned while blocked (or [`CommError::Timeout`]
    /// when the machine has a watchdog). External drivers and the loom
    /// model suite use this to assert on shutdown behavior without
    /// routing through panics.
    pub fn recv_result<T: WireMsg>(&self, src: usize, tag: u64) -> Result<Vec<T>, CommError> {
        self.recv_impl(src, tag, self.t().watchdog())
    }

    /// Receive with an explicit deadline: a lost or missing message
    /// surfaces as [`CommError::Timeout`] naming the awaited
    /// `(context, src, tag)` instead of blocking forever.
    pub fn recv_timeout<T: WireMsg>(
        &self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<T>, CommError> {
        self.recv_impl(src, tag, Some(timeout))
    }

    fn recv_impl<T: WireMsg>(
        &self,
        src: usize,
        tag: u64,
        timeout: Option<Duration>,
    ) -> Result<Vec<T>, CommError> {
        let me = self.global(self.rank);
        let t = self.t();
        // A message this rank delayed may be the very one a peer needs
        // before it can send us anything — flush before blocking.
        t.flush_holdback(me);
        let src_global = self.global(src);
        match t.recv(me, src_global, self.context, tag, timeout) {
            Ok(WirePayload::Boxed(boxed)) => Ok(*boxed
                .downcast::<Vec<T>>()
                .expect("recv: payload type mismatch")),
            Ok(WirePayload::Bytes { type_hash, data }) => {
                assert_eq!(
                    type_hash,
                    wire::type_hash::<T>(),
                    "recv: payload type mismatch"
                );
                Ok(wire::decode_vec(&data))
            }
            // The backend reports the global source rank; the public API
            // names ranks communicator-locally.
            Err(CommError::Timeout {
                context,
                tag,
                waited,
                detail,
                ..
            }) => Err(CommError::Timeout {
                context,
                src,
                tag,
                waited,
                detail,
            }),
            Err(e) => Err(e),
        }
    }

    /// Exchange with a partner: send then receive (safe because sends are
    /// buffered).
    #[must_use]
    pub fn sendrecv<T: WireMsg>(&self, peer: usize, tag: u64, data: Vec<T>) -> Vec<T> {
        self.send(peer, tag, data);
        self.recv(peer, tag)
    }

    /// Dissemination barrier (log₂ P rounds of token exchange).
    pub fn barrier(&self) {
        match self.try_barrier() {
            Ok(()) => (),
            Err(CommError::Poisoned) => panic!("machine poisoned: another rank panicked"),
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Comm::barrier`] with failures as values: a barrier involving a
    /// dead peer returns [`CommError::RankFailed`] so a recovery driver
    /// can act instead of unwinding.
    pub fn try_barrier(&self) -> Result<(), CommError> {
        let p = self.size();
        if p == 1 {
            return Ok(());
        }
        let mut step = 1usize;
        let mut round = 0u64;
        while step < p {
            let dst = (self.rank + step) % p;
            let src = (self.rank + p - step) % p;
            self.send::<u8>(dst, TAG_BARRIER + round, Vec::new());
            let _ = self.recv_result::<u8>(src, TAG_BARRIER + round)?;
            step <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Broadcast from `root` to every rank via a binomial tree; returns the
    /// data on all ranks. Non-root ranks pass `None`.
    #[must_use] 
    pub fn broadcast<T: WireMsg + Clone>(
        &self,
        root: usize,
        data: Option<Vec<T>>,
    ) -> Vec<T> {
        let p = self.size();
        let rel = (self.rank + p - root) % p;
        let buf = if rel == 0 {
            data.expect("broadcast: root must supply data")
        } else {
            // The sender is rel with its highest set bit cleared.
            let hsb = usize::BITS - 1 - rel.leading_zeros();
            let src_rel = rel & !(1usize << hsb);
            let src = (src_rel + root) % p;
            self.recv::<T>(src, TAG_BCAST)
        };
        // Forward to children: rel + bit for bits above rel's highest bit.
        let start_bit = if rel == 0 {
            0
        } else {
            (usize::BITS - rel.leading_zeros()) as usize
        };
        let mut bit = 1usize << start_bit;
        while rel + bit < p {
            let dst = (rel + bit + root) % p;
            self.send(dst, TAG_BCAST, buf.clone());
            bit <<= 1;
        }
        buf
    }

    /// Reduce element-wise with `op` to `root`; non-roots get `None`.
    pub fn reduce<T, F>(&self, root: usize, mut data: Vec<T>, op: F) -> Option<Vec<T>>
    where
        T: WireMsg + Clone,
        F: Fn(&T, &T) -> T,
    {
        let p = self.size();
        let rel = (self.rank + p - root) % p;
        let mut mask = 1usize;
        while mask < p {
            if rel & mask != 0 {
                let dst_rel = rel & !mask;
                let dst = (dst_rel + root) % p;
                self.send(dst, TAG_REDUCE, data);
                return None;
            }
            let src_rel = rel | mask;
            if src_rel < p {
                let src = (src_rel + root) % p;
                let other = self.recv::<T>(src, TAG_REDUCE);
                assert_eq!(other.len(), data.len(), "reduce: length mismatch");
                for (a, b) in data.iter_mut().zip(other.iter()) {
                    *a = op(a, b);
                }
            }
            mask <<= 1;
        }
        Some(data)
    }

    /// Allreduce: reduce to rank 0 then broadcast.
    pub fn allreduce<T, F>(&self, data: Vec<T>, op: F) -> Vec<T>
    where
        T: WireMsg + Clone,
        F: Fn(&T, &T) -> T,
    {
        let reduced = self.reduce(0, data, op);
        self.broadcast(0, reduced)
    }

    /// Allreduce a single f64 sum.
    #[must_use] 
    pub fn allreduce_sum(&self, x: f64) -> f64 {
        self.allreduce(vec![x], |a, b| a + b)[0]
    }

    /// Allreduce a single f64 max.
    #[must_use] 
    pub fn allreduce_max(&self, x: f64) -> f64 {
        self.allreduce(vec![x], |a, b| a.max(*b))[0]
    }

    /// Gather variable-length contributions to `root` (rank order);
    /// non-roots get `None`.
    #[must_use] 
    pub fn gather<T: WireMsg + Clone>(
        &self,
        root: usize,
        data: Vec<T>,
    ) -> Option<Vec<Vec<T>>> {
        if self.rank != root {
            self.send(root, TAG_GATHER, data);
            return None;
        }
        let mut out = Vec::with_capacity(self.size());
        for r in 0..self.size() {
            if r == root {
                out.push(data.clone());
            } else {
                out.push(self.recv::<T>(r, TAG_GATHER));
            }
        }
        Some(out)
    }

    /// Allgather: every rank receives every rank's contribution (rank order).
    #[must_use] 
    pub fn allgather<T: WireMsg + Clone>(&self, data: Vec<T>) -> Vec<Vec<T>> {
        // Ring allgather: p-1 shifts.
        let p = self.size();
        let mut out: Vec<Option<Vec<T>>> = (0..p).map(|_| None).collect();
        out[self.rank] = Some(data.clone());
        let mut cur = data;
        for step in 0..p.saturating_sub(1) {
            let dst = (self.rank + 1) % p;
            let src = (self.rank + p - 1) % p;
            self.send(dst, TAG_AGATHER + step as u64, cur);
            cur = self.recv::<T>(src, TAG_AGATHER + step as u64);
            let origin = (self.rank + p - 1 - step) % p;
            out[origin] = Some(cur.clone());
        }
        out.into_iter().map(|v| v.expect("allgather slot")).collect()
    }

    /// Personalized all-to-all: `sends[r]` goes to rank `r`; returns the
    /// vector received from each rank (in rank order).
    #[must_use]
    pub fn alltoallv<T: WireMsg>(&self, sends: Vec<Vec<T>>) -> Vec<Vec<T>> {
        match self.try_alltoallv(sends) {
            Ok(v) => v,
            Err(CommError::Poisoned) => panic!("machine poisoned: another rank panicked"),
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Comm::alltoallv`] with failures as values: an exchange whose
    /// peer dies mid-collective returns [`CommError::RankFailed`] (or a
    /// timeout / corruption error) instead of unwinding, so the
    /// recovery driver can abandon the step and run reconstruction.
    pub fn try_alltoallv<T: WireMsg>(&self, mut sends: Vec<Vec<T>>) -> Result<Vec<Vec<T>>, CommError> {
        let p = self.size();
        assert_eq!(sends.len(), p, "alltoallv: need one send buffer per rank");
        let mut recvs: Vec<Option<Vec<T>>> = (0..p).map(|_| None).collect();
        recvs[self.rank] = Some(std::mem::take(&mut sends[self.rank]));
        // Rotated pairwise schedule — each step pairs disjoint rank pairs,
        // which avoids the communication hot spots the paper warns about in
        // the pencil-FFT transposes.
        for step in 1..p {
            let dst = (self.rank + step) % p;
            let src = (self.rank + p - step) % p;
            self.send(dst, TAG_A2A + step as u64, std::mem::take(&mut sends[dst]));
            recvs[src] = Some(self.recv_result::<T>(src, TAG_A2A + step as u64)?);
        }
        Ok(recvs
            .into_iter()
            .map(|r| r.expect("alltoallv slot"))
            .collect())
    }

    /// Start a chunked personalized all-to-all: `sends[c][r]` is chunk
    /// `c`'s payload for rank `r`. Every chunk's sends are posted up
    /// front — buffered sends never block on the receiver (the Transport
    /// contract), so this cannot deadlock — and the caller then drains
    /// chunks in order with [`ChunkedExchange::recv_chunk`], overlapping
    /// compute on already-received chunks with still-in-flight traffic.
    /// This is the communication shape of the pencil-FFT transposes: the
    /// paper overlaps butterfly work on received slabs with the
    /// remaining transpose exchange.
    ///
    /// Every rank must start the exchange with the same chunk count.
    /// Dropping the returned exchange without draining every chunk
    /// leaves messages queued on the communicator; a later exchange on
    /// the same communicator would then mis-deliver (as with unmatched
    /// MPI sends).
    #[must_use = "dropping the exchange without draining leaves queued messages"]
    pub fn alltoallv_chunked_start<T: WireMsg>(
        &self,
        sends: Vec<Vec<Vec<T>>>,
    ) -> ChunkedExchange<'_, T> {
        let p = self.size();
        let chunks = sends.len();
        // Chunk tags must stay inside the block reserved below TAG_A2A.
        assert!(chunks * p < 1_000_000, "chunked alltoallv: too many chunks");
        let mut self_chunks = std::collections::VecDeque::with_capacity(chunks);
        for (ci, mut bufs) in sends.into_iter().enumerate() {
            assert_eq!(
                bufs.len(),
                p,
                "chunked alltoallv: need one send buffer per rank"
            );
            self_chunks.push_back(std::mem::take(&mut bufs[self.rank]));
            for step in 1..p {
                let dst = (self.rank + step) % p;
                self.send(
                    dst,
                    TAG_A2AC + (ci * p + step) as u64,
                    std::mem::take(&mut bufs[dst]),
                );
            }
        }
        ChunkedExchange {
            comm: self,
            chunks,
            next: 0,
            self_chunks,
        }
    }

    /// Split into sub-communicators by `color`; ranks with equal color form
    /// one communicator, ordered by `key` (ties broken by parent rank).
    /// Must be called collectively.
    #[must_use] 
    pub fn split(&self, color: u64, key: u64) -> Comm {
        let info = self.allgather(vec![(color, key, self.rank)]);
        let mut mine: Vec<(u64, usize)> = info
            .iter()
            .map(|v| v[0])
            .filter(|&(c, _, _)| c == color)
            .map(|(_, k, r)| (k, r))
            .collect();
        mine.sort_unstable();
        let group: Vec<usize> = mine.iter().map(|&(_, r)| self.global(r)).collect();
        let new_rank = group
            .iter()
            .position(|&g| g == self.global(self.rank))
            .expect("split: own rank in group");
        let base = self.bump_context_base();
        Comm {
            backend: self.backend.clone(),
            context: base.wrapping_mul(1_000_003).wrapping_add(color + 1),
            rank: new_rank,
            group: group.into(),
        }
    }

    /// All ranks of this communicator agree on a fresh context base.
    fn bump_context_base(&self) -> u64 {
        // Only rank 0's allocation is used; the broadcast distributes it
        // (and provides the ordering) to every other member.
        let base = if self.rank == 0 {
            Some(vec![self.t().alloc_context_base()])
        } else {
            None
        };
        self.broadcast(0, base)[0]
    }

    /// Poison the whole machine: every rank blocked in a receive wakes
    /// with [`CommError::Poisoned`] instead of waiting forever. This is
    /// the same path [`Machine::try_run`] takes when a rank panics,
    /// exposed for external drivers (and the loom model suite) that
    /// manage rank lifecycles themselves via [`Machine::handles`].
    pub fn poison(&self) {
        self.t().poison();
    }

    /// Gracefully shut this rank's transport down: drain in-flight
    /// sends and close links so peers observe clean EOFs. Call after
    /// the last collective (typically behind a final barrier). No-op
    /// beyond holdback flushing for the in-process backend.
    pub fn shutdown(&self) {
        let me = self.global(self.rank);
        self.t().shutdown(me);
    }

    /// Snapshot of the machine-wide traffic and fault counters.
    ///
    /// Exact once every rank has finished (or been joined); *while
    /// ranks are still sending* the counts may lag in-flight increments
    /// (they are Relaxed monotonic counters — never torn, possibly
    /// stale; see the `FaultCounters` ordering audit).
    #[must_use]
    pub fn traffic_stats(&self) -> TrafficStats {
        self.t().traffic_stats()
    }

    /// Duplicate this communicator with a fresh context (no cross-talk with
    /// the original).
    #[must_use]
    pub fn duplicate(&self) -> Comm {
        let base = self.bump_context_base();
        Comm {
            backend: self.backend.clone(),
            context: base.wrapping_mul(999_983).wrapping_add(7),
            rank: self.rank,
            group: Arc::clone(&self.group),
        }
    }
}

/// An in-flight chunked all-to-all started by
/// [`Comm::alltoallv_chunked_start`]. All sends are already posted;
/// call [`ChunkedExchange::recv_chunk`] exactly `chunks` times (in
/// chunk order) to drain it.
pub struct ChunkedExchange<'a, T: WireMsg> {
    comm: &'a Comm,
    chunks: usize,
    next: usize,
    /// Own-rank payloads, delivered without touching the transport.
    self_chunks: std::collections::VecDeque<Vec<T>>,
}

impl<T: WireMsg> ChunkedExchange<'_, T> {
    /// Chunks not yet received.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.chunks - self.next
    }

    /// Receive the next chunk: the payloads every rank sent for it, in
    /// rank order. Panics on communication failure, like
    /// [`Comm::alltoallv`]; see [`ChunkedExchange::try_recv_chunk`].
    #[must_use]
    pub fn recv_chunk(&mut self) -> Vec<Vec<T>> {
        match self.try_recv_chunk() {
            Ok(v) => v,
            Err(CommError::Poisoned) => panic!("machine poisoned: another rank panicked"),
            Err(e) => panic!("{e}"),
        }
    }

    /// [`ChunkedExchange::recv_chunk`] with failures as values.
    pub fn try_recv_chunk(&mut self) -> Result<Vec<Vec<T>>, CommError> {
        assert!(
            self.next < self.chunks,
            "chunked alltoallv: all {} chunks already received",
            self.chunks
        );
        let p = self.comm.size();
        let ci = self.next;
        let mut out: Vec<Option<Vec<T>>> = (0..p).map(|_| None).collect();
        out[self.comm.rank] = Some(self.self_chunks.pop_front().expect("self chunk"));
        // Same rotated pairwise order as `try_alltoallv`: disjoint pairs
        // per step, no hot spots.
        for step in 1..p {
            let src = (self.comm.rank + p - step) % p;
            out[src] = Some(
                self.comm
                    .recv_result::<T>(src, TAG_A2AC + (ci * p + step) as u64)?,
            );
        }
        self.next += 1;
        Ok(out
            .into_iter()
            .map(|r| r.expect("chunked alltoallv slot"))
            .collect())
    }
}

const TAG_BARRIER: u64 = u64::MAX - 1_000_000;
const TAG_BCAST: u64 = u64::MAX - 2_000_000;
const TAG_REDUCE: u64 = u64::MAX - 3_000_000;
const TAG_GATHER: u64 = u64::MAX - 4_000_000;
const TAG_AGATHER: u64 = u64::MAX - 5_000_000;
const TAG_A2A: u64 = u64::MAX - 6_000_000;
/// Chunked all-to-all tags: `TAG_A2AC + chunk·p + step`, bounded below
/// `TAG_A2A` by the chunk-count assertion in `alltoallv_chunked_start`.
const TAG_A2AC: u64 = u64::MAX - 7_000_000;

/// Coarse class of a message tag, for communication-volume accounting.
///
/// The reserved tag bands above carve the tag space into three regimes:
/// everything below [`TAG_A2AC`] is a user-issued point-to-point tag,
/// the `[TAG_A2AC, TAG_AGATHER)` window carries alltoallv payloads
/// (plain steps and the chunked transpose variant), and the remaining
/// reserved bands are control-plane collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagClass {
    /// User point-to-point traffic (halo exchanges, particle refresh).
    P2p = 0,
    /// Alltoallv payload traffic (the FFT transposes live here).
    A2a = 1,
    /// Control collectives: barrier, bcast, reduce, gather, allgather.
    Control = 2,
}

/// Classify a wire tag into its [`TagClass`] band.
#[must_use]
pub fn tag_class(tag: u64) -> TagClass {
    if tag < TAG_A2AC {
        TagClass::P2p
    } else if tag < TAG_AGATHER {
        TagClass::A2a
    } else {
        TagClass::Control
    }
}

/// Atomic per-class byte/message tallies, shared by both transport
/// backends. Indexed by `TagClass as usize`.
#[derive(Default)]
pub(crate) struct ClassCounters {
    bytes: [AtomicU64; 3],
    msgs: [AtomicU64; 3],
}

impl ClassCounters {
    /// Charge one sent message to its tag's class.
    // Relaxed: monotonic accounting counters, read exactly after join
    // (same audit as the per-rank byte counters).
    pub(crate) fn count(&self, tag: u64, bytes: u64) {
        let i = tag_class(tag) as usize;
        self.bytes[i].fetch_add(bytes, Ordering::Relaxed);
        self.msgs[i].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> TagClassVolumes {
        let v = |i: usize| ClassVolume {
            bytes: self.bytes[i].load(Ordering::Relaxed),
            msgs: self.msgs[i].load(Ordering::Relaxed),
        };
        TagClassVolumes {
            p2p: v(TagClass::P2p as usize),
            a2a: v(TagClass::A2a as usize),
            control: v(TagClass::Control as usize),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_machine_runs() {
        let (res, _) = Machine::new(1).run(|c| {
            c.barrier();
            c.rank()
        });
        assert_eq!(res, vec![0]);
    }

    #[test]
    fn point_to_point_roundtrip() {
        let (res, stats) = Machine::new(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 7, vec![1.0f64, 2.0, 3.0]);
                0.0
            } else {
                c.recv::<f64>(0, 7).iter().sum()
            }
        });
        assert_eq!(res[1], 6.0);
        assert_eq!(stats.bytes_sent[0], 24);
    }

    #[test]
    fn traffic_is_classified_by_tag() {
        let (_, stats) = Machine::new(2).run(|c| {
            // One p2p message of 24 payload bytes rank 0 → 1.
            if c.rank() == 0 {
                c.send(1, 7, vec![1.0f64, 2.0, 3.0]);
            } else {
                let _ = c.recv::<f64>(0, 7);
            }
            // One alltoallv (16 bytes per off-diagonal send), then a
            // pure control-plane collective.
            let parts: Vec<Vec<f64>> = (0..2).map(|r| vec![f64::from(r), 1.0]).collect();
            let _ = c.alltoallv(parts);
            let _ = c.allreduce_sum(1.0f64);
            c.barrier();
        });
        let by = stats.by_class;
        assert_eq!(by.p2p.bytes, 24);
        assert_eq!(by.p2p.msgs, 1);
        // Each rank ships one 2-element f64 chunk to the other.
        assert_eq!(by.a2a.bytes, 32);
        assert_eq!(by.a2a.msgs, 2);
        assert!(by.control.msgs > 0);
        // The class split partitions the totals exactly.
        assert_eq!(
            by.p2p.bytes + by.a2a.bytes + by.control.bytes,
            stats.total_bytes()
        );
        assert_eq!(
            by.p2p.msgs + by.a2a.msgs + by.control.msgs,
            stats.total_msgs()
        );
        assert_eq!(tag_class(0), TagClass::P2p);
        assert_eq!(tag_class(TAG_A2AC), TagClass::A2a);
        assert_eq!(tag_class(TAG_A2A), TagClass::A2a);
        assert_eq!(tag_class(TAG_AGATHER), TagClass::Control);
        assert_eq!(tag_class(TAG_BARRIER), TagClass::Control);
    }

    #[test]
    fn messages_with_same_tag_preserve_order() {
        let (res, _) = Machine::new(2).run(|c| {
            if c.rank() == 0 {
                for i in 0..10 {
                    c.send(1, 3, vec![i64::from(i)]);
                }
                vec![]
            } else {
                (0..10).map(|_| c.recv::<i64>(0, 3)[0]).collect()
            }
        });
        assert_eq!(res[1], (0..10).collect::<Vec<i64>>());
    }

    #[test]
    fn barrier_many_ranks() {
        for p in [2, 3, 5, 8] {
            let (res, _) = Machine::new(p).run(|c| {
                for _ in 0..5 {
                    c.barrier();
                }
                c.rank()
            });
            assert_eq!(res.len(), p);
        }
    }

    #[test]
    fn broadcast_all_roots_all_sizes() {
        for p in [1, 2, 3, 4, 7, 8] {
            for root in 0..p {
                let (res, _) = Machine::new(p).run(|c| {
                    let data = if c.rank() == root {
                        Some(vec![42u32, root as u32])
                    } else {
                        None
                    };
                    c.broadcast(root, data)
                });
                for r in res {
                    assert_eq!(r, vec![42, root as u32]);
                }
            }
        }
    }

    #[test]
    fn reduce_sum_various_sizes() {
        for p in [1, 2, 3, 6, 8] {
            let (res, _) =
                Machine::new(p).run(|c| c.reduce(0, vec![c.rank() as u64, 1], |a, b| a + b));
            let expect: u64 = (0..p as u64).sum();
            assert_eq!(res[0], Some(vec![expect, p as u64]));
            for r in &res[1..] {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn reduce_nonzero_root() {
        let (res, _) = Machine::new(5).run(|c| c.reduce(3, vec![1.0f64], |a, b| a + b));
        assert_eq!(res[3], Some(vec![5.0]));
        assert!(res[0].is_none());
    }

    #[test]
    fn allreduce_max_and_sum() {
        let (res, _) = Machine::new(5).run(|c| {
            let s = c.allreduce_sum(c.rank() as f64);
            let m = c.allreduce_max(c.rank() as f64);
            (s, m)
        });
        for (s, m) in res {
            assert_eq!(s, 10.0);
            assert_eq!(m, 4.0);
        }
    }

    #[test]
    fn gather_and_allgather() {
        let (res, _) = Machine::new(4).run(|c| {
            let g = c.allgather(vec![c.rank() as u8; c.rank() + 1]);
            g.iter().map(|v| v.len()).collect::<Vec<_>>()
        });
        for r in res {
            assert_eq!(r, vec![1, 2, 3, 4]);
        }
    }

    #[test]
    fn alltoallv_power_of_two_and_odd() {
        for p in [2, 4, 3, 5] {
            let (res, _) = Machine::new(p).run(move |c| {
                let sends: Vec<Vec<u64>> = (0..p)
                    .map(|dst| vec![(c.rank() * 100 + dst) as u64])
                    .collect();
                let recvs = c.alltoallv(sends);
                recvs
                    .iter()
                    .enumerate()
                    .all(|(src, v)| v == &vec![(src * 100 + c.rank()) as u64])
            });
            assert!(res.iter().all(|&ok| ok), "p = {p}");
        }
    }

    #[test]
    fn alltoallv_variable_lengths_conserve_elements() {
        let p = 4;
        let (res, _) = Machine::new(p).run(move |c| {
            let sends: Vec<Vec<u32>> = (0..p)
                .map(|dst| vec![c.rank() as u32; (c.rank() + dst) % 3])
                .collect();
            let sent: usize = sends.iter().map(Vec::len).sum();
            let recvs = c.alltoallv(sends);
            let got: usize = recvs.iter().map(Vec::len).sum();
            (sent, got)
        });
        let total_sent: usize = res.iter().map(|&(s, _)| s).sum();
        let total_got: usize = res.iter().map(|&(_, g)| g).sum();
        assert_eq!(total_sent, total_got);
    }

    #[test]
    fn chunked_alltoallv_matches_monolithic() {
        for (p, chunks) in [(1usize, 3usize), (3, 1), (4, 3), (5, 4)] {
            let (res, _) = Machine::new(p).run(move |c| {
                // Chunk c's payload for dst: marker encoding (src, dst, chunk).
                let sends: Vec<Vec<Vec<u64>>> = (0..chunks)
                    .map(|ci| {
                        (0..p)
                            .map(|dst| vec![(c.rank() * 10_000 + dst * 100 + ci) as u64; ci + 1])
                            .collect()
                    })
                    .collect();
                let mut ex = c.alltoallv_chunked_start(sends);
                let mut ok = true;
                for ci in 0..chunks {
                    assert_eq!(ex.remaining(), chunks - ci);
                    let recvs = ex.recv_chunk();
                    ok &= recvs.iter().enumerate().all(|(src, v)| {
                        v == &vec![(src * 10_000 + c.rank() * 100 + ci) as u64; ci + 1]
                    });
                }
                assert_eq!(ex.remaining(), 0);
                ok
            });
            assert!(res.iter().all(|&ok| ok), "p={p} chunks={chunks}");
        }
    }

    #[test]
    fn chunked_alltoallv_overlaps_with_other_collectives() {
        // Chunks are drained while barriers and a second chunked exchange
        // on a split communicator are interleaved in between — tag blocks
        // and contexts must not cross-talk.
        let p = 4;
        let (res, _) = Machine::new(p).run(move |c| {
            let sub = c.split(0, c.rank() as u64);
            let sends: Vec<Vec<Vec<u32>>> = (0..2)
                .map(|ci| (0..p).map(|dst| vec![(ci * p + dst) as u32]).collect())
                .collect();
            let sub_sends: Vec<Vec<Vec<u32>>> = (0..2)
                .map(|ci| (0..p).map(|dst| vec![(90 + ci * p + dst) as u32]).collect())
                .collect();
            let mut ex = c.alltoallv_chunked_start(sends);
            let mut sex = sub.alltoallv_chunked_start(sub_sends);
            let a = ex.recv_chunk();
            c.barrier();
            let sa = sex.recv_chunk();
            let b = ex.recv_chunk();
            let sb = sex.recv_chunk();
            let me = c.rank() as u32;
            a.iter().all(|v| v == &vec![me])
                && b.iter().all(|v| v == &vec![p as u32 + me])
                && sa.iter().all(|v| v == &vec![90 + me])
                && sb.iter().all(|v| v == &vec![90 + p as u32 + me])
        });
        assert!(res.iter().all(|&ok| ok));
    }

    #[test]
    fn split_rows_and_columns() {
        let (res, _) = Machine::new(6).run(|c| {
            let row = c.rank() / 3;
            let col = c.rank() % 3;
            let row_comm = c.split(row as u64, col as u64);
            let col_comm = c.split(col as u64, row as u64);
            let s = row_comm.allreduce_sum(col as f64);
            let t = col_comm.allreduce_sum(row as f64);
            (row_comm.size(), col_comm.size(), s, t)
        });
        for (rs, cs, s, t) in res {
            assert_eq!((rs, cs), (3, 2));
            assert_eq!(s, 3.0);
            assert_eq!(t, 1.0);
        }
    }

    #[test]
    fn split_then_collectives_do_not_cross_talk() {
        let (res, _) = Machine::new(4).run(|c| {
            let half = c.split((c.rank() / 2) as u64, c.rank() as u64);
            let a = c.allreduce_sum(1.0);
            let b = half.allreduce_sum(1.0);
            (a, b)
        });
        for (a, b) in res {
            assert_eq!((a, b), (4.0, 2.0));
        }
    }

    #[test]
    fn duplicate_isolated() {
        let (res, _) = Machine::new(3).run(|c| {
            let d = c.duplicate();
            d.send((c.rank() + 1) % 3, 5, vec![c.rank() as u32]);
            let got = d.recv::<u32>((c.rank() + 2) % 3, 5);
            got[0] as usize
        });
        assert_eq!(res, vec![2, 0, 1]);
    }

    #[test]
    fn traffic_stats_accumulate() {
        let (_, stats) = Machine::new(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 1, vec![0u8; 100]);
                c.send(1, 2, vec![0u64; 10]);
            } else {
                let _ = c.recv::<u8>(0, 1);
                let _ = c.recv::<u64>(0, 2);
            }
        });
        assert_eq!(stats.bytes_sent[0], 180);
        assert_eq!(stats.msgs_sent[0], 2);
        assert_eq!(stats.total_bytes(), 180);
        assert_eq!(stats.faults, FaultStats::default());
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn recv_wrong_type_panics() {
        let _ = Machine::new(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 0, vec![1.0f32]);
            } else {
                let _ = c.recv::<f64>(0, 0);
            }
        });
    }

    // ---- fault-tolerance layer ----------------------------------------

    #[test]
    fn try_run_reports_first_panic_as_error() {
        let err = Machine::new(3)
            .try_run(|c| {
                if c.rank() == 1 {
                    panic!("boom on rank 1");
                }
                c.barrier();
            })
            .unwrap_err();
        let MachineError::RankPanicked { rank, message } = err;
        assert_eq!(rank, 1);
        assert!(message.contains("boom on rank 1"), "got: {message}");
    }

    /// Ranks blocked inside a collective must wake and abort when another
    /// rank panics — the machine shuts down instead of hanging.
    #[test]
    fn poisoned_shutdown_wakes_blocked_collectives() {
        for p in [2, 4, 5] {
            let err = Machine::new(p)
                .try_run(|c| {
                    if c.rank() == 0 {
                        // Give peers time to block inside the barrier.
                        std::thread::sleep(Duration::from_millis(20));
                        panic!("injected failure");
                    }
                    // These ranks block forever without rank 0.
                    c.barrier();
                    c.allreduce_sum(1.0)
                })
                .unwrap_err();
            let MachineError::RankPanicked { rank, message } = err;
            assert_eq!(rank, 0, "p = {p}");
            assert!(message.contains("injected failure"), "p = {p}: {message}");
        }
    }

    #[test]
    fn delayed_messages_are_reordered_transparently() {
        let plan = FaultPlan::seeded(11).delay_prob(1.0);
        let (res, stats) = Machine::new(2).with_faults(plan).run(|c| {
            if c.rank() == 0 {
                for i in 0..20 {
                    c.send(1, 4, vec![i as u32]);
                }
                vec![]
            } else {
                (0..20).map(|_| c.recv::<u32>(0, 4)[0]).collect()
            }
        });
        assert_eq!(res[1], (0..20).collect::<Vec<u32>>());
        assert!(stats.faults.delayed > 0);
    }

    #[test]
    fn duplicated_messages_are_discarded_transparently() {
        let plan = FaultPlan::seeded(5).dup_prob(1.0);
        let (res, stats) = Machine::new(2).with_faults(plan).run(|c| {
            if c.rank() == 0 {
                for i in 0..10 {
                    c.send(1, 9, vec![i as u64]);
                }
                vec![]
            } else {
                (0..10).map(|_| c.recv::<u64>(0, 9)[0]).collect()
            }
        });
        assert_eq!(res[1], (0..10).collect::<Vec<u64>>());
        assert_eq!(stats.faults.duplicated, 10);
        assert_eq!(stats.faults.dup_discarded, 10);
    }

    /// Satellite: alltoallv under injected delay + duplication must give
    /// results identical to a fault-free run.
    #[test]
    fn alltoallv_identical_under_delay_and_duplication() {
        let run = |plan: FaultPlan| {
            let p = 5;
            let (res, _) = Machine::new(p).with_faults(plan).run(move |c| {
                let mut out = Vec::new();
                for round in 0..3u64 {
                    let sends: Vec<Vec<u64>> = (0..p)
                        .map(|dst| {
                            (0..(c.rank() + dst) % 4)
                                .map(|i| round * 1000 + (c.rank() * 10 + dst) as u64 + i as u64)
                                .collect()
                        })
                        .collect();
                    out.push(c.alltoallv(sends));
                }
                out
            });
            res
        };
        let clean = run(FaultPlan::none());
        let faulty = run(FaultPlan::seeded(77).delay_prob(0.4).dup_prob(0.4));
        assert_eq!(clean, faulty);
    }

    /// Satellite: split + sub-communicator collectives under injected
    /// delay + duplication must give results identical to a fault-free run.
    #[test]
    fn split_identical_under_delay_and_duplication() {
        let run = |plan: FaultPlan| {
            let (res, _) = Machine::new(6).with_faults(plan).run(|c| {
                let row = c.rank() / 3;
                let col = c.rank() % 3;
                let row_comm = c.split(row as u64, col as u64);
                let col_comm = c.split(col as u64, row as u64);
                let s = row_comm.allreduce_sum((col + 1) as f64);
                let t = col_comm.allreduce_sum((row + 1) as f64);
                let g = row_comm.allgather(vec![c.rank() as u32]);
                (s, t, g)
            });
            res
        };
        let clean = run(FaultPlan::none());
        let faulty = run(FaultPlan::seeded(123).delay_prob(0.5).dup_prob(0.3));
        assert_eq!(clean, faulty);
    }

    /// A dropped message surfaces as a diagnostic timeout naming the
    /// awaited (context, src, tag) — not a hang.
    #[test]
    fn dropped_message_yields_diagnostic_timeout() {
        let plan = FaultPlan::seeded(3).drop_prob(1.0);
        let (res, stats) = Machine::new(2).with_faults(plan).run(|c| {
            if c.rank() == 0 {
                c.send(1, 42, vec![7u8]);
                Ok(vec![])
            } else {
                c.recv_timeout::<u8>(0, 42, Duration::from_millis(50))
            }
        });
        assert!(stats.faults.dropped >= 1);
        let err = res[1].clone().unwrap_err();
        match &err {
            CommError::Timeout {
                context, src, tag, ..
            } => {
                assert_eq!((*context, *src, *tag), (0, 0, 42));
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("context=0") && msg.contains("src=0") && msg.contains("tag=42"));
    }

    /// With a machine watchdog, a drop inside a collective aborts the whole
    /// run with a diagnostic error instead of deadlocking.
    #[test]
    fn watchdog_turns_lost_collective_message_into_error() {
        let plan = FaultPlan::seeded(8).drop_prob(1.0);
        let err = Machine::new(4)
            .with_faults(plan)
            .with_watchdog(Duration::from_millis(100))
            .try_run(|c| c.allreduce_sum(c.rank() as f64))
            .unwrap_err();
        let MachineError::RankPanicked { message, .. } = err;
        assert!(message.contains("comm timeout"), "got: {message}");
        assert!(message.contains("context="), "got: {message}");
    }

    #[test]
    fn kill_at_step_fires_once() {
        let plan = FaultPlan::seeded(0).kill_rank_at_step(1, 3);
        let machine = Machine::new(2).with_faults(plan);
        let err = machine
            .try_run(|c| {
                for step in 0..5u64 {
                    c.begin_step(step);
                    c.barrier();
                }
            })
            .unwrap_err();
        let MachineError::RankPanicked { rank, message } = err;
        assert_eq!(rank, 1);
        assert!(message.contains("killed at step 3"), "got: {message}");
        // The latch is spent: the same machine re-runs cleanly (recovery).
        let (res, _) = machine
            .try_run(|c| {
                for step in 0..5u64 {
                    c.begin_step(step);
                    c.barrier();
                }
                c.rank()
            })
            .expect("retry succeeds");
        assert_eq!(res, vec![0, 1]);
    }

    #[test]
    fn slow_rank_does_not_change_results() {
        let clean = Machine::new(3).run(|c| c.allreduce_sum(c.rank() as f64)).0;
        let slowed = Machine::new(3)
            .with_faults(FaultPlan::seeded(1).slow_rank(1, Duration::from_micros(200)))
            .run(|c| c.allreduce_sum(c.rank() as f64))
            .0;
        assert_eq!(clean, slowed);
    }

    /// An injected bit-flip is caught by the receiver's CRC and surfaces
    /// exactly like a drop: a diagnosable sequence gap that names the
    /// corruption, never silently torn data.
    #[test]
    fn corrupted_frame_is_detected_and_discarded() {
        let plan = FaultPlan::seeded(11).corrupt_prob(1.0);
        let (res, stats) = Machine::new(2).with_faults(plan).run(|c| {
            if c.rank() == 0 {
                c.send(1, 9, vec![1.5f64, 2.5]);
                Ok(vec![])
            } else {
                c.recv_timeout::<f64>(0, 9, Duration::from_millis(50))
            }
        });
        assert_eq!(stats.faults.corrupted, 1);
        assert_eq!(stats.faults.corrupt_detected, 1);
        let err = res[1].clone().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("failed CRC"), "diagnosis must name the corruption: {msg}");
    }

    /// Sub-unity corruption probability under a collective workload:
    /// every injected corruption is detected (counters agree), and with
    /// a watchdog the run errors out diagnosably rather than hanging.
    #[test]
    fn every_injected_corruption_is_detected() {
        let plan = FaultPlan::seeded(5).corrupt_prob(0.3);
        let result = Machine::new(4)
            .with_faults(plan)
            .with_watchdog(Duration::from_millis(100))
            .try_run(|c| {
                for _ in 0..4 {
                    let _ = c.allreduce_sum(c.rank() as f64);
                }
            });
        match result {
            // Corruption discards frames, so collectives stall on the gap.
            Err(MachineError::RankPanicked { message, .. }) => {
                assert!(
                    message.contains("comm timeout") || message.contains("poisoned"),
                    "got: {message}"
                );
            }
            Ok((_, stats)) => assert_eq!(stats.faults.corrupted, 0, "clean only if none injected"),
        }
    }

    /// End-to-end heartbeat detection: a rank goes silent at its kill
    /// step, the monitor declares it, survivors get the failed set from
    /// `admit_step` + `agree_failed`, the replacement rejoins, and the
    /// machine finishes with **no** poisoning.
    #[test]
    fn silent_kill_is_detected_and_survived() {
        let hb = HeartbeatConfig {
            scan_interval: Duration::from_millis(10),
            suspect_scans: 3,
            confirm_scans: 3,
            sync_timeout: Duration::from_secs(10),
        };
        let plan = FaultPlan::seeded(2).kill_rank_at_step(1, 3);
        let (res, _) = Machine::new(3)
            .with_faults(plan)
            .with_heartbeat(hb)
            .try_run(|c| {
                let mut detected = Vec::new();
                for step in 1..=5u64 {
                    match c.admit_step(step) {
                        StepAdmission::Dead => {
                            let epoch = c.rejoin_as_replacement();
                            assert_eq!(epoch, step - 1, "died after completing step-1");
                            detected.push((c.rank(), epoch));
                            // Rejoin the recovery collective the survivors run.
                            let _ = c.allreduce_sum(0.0);
                            c.mark_recovered(step);
                        }
                        StepAdmission::Proceed(report) => {
                            if !report.failed.is_empty() {
                                let agreed = c.agree_failed(&report);
                                detected.extend(agreed.iter().copied());
                                c.await_rebirth(&[agreed[0].0]);
                                let _ = c.allreduce_sum(1.0);
                            }
                        }
                    }
                    // Normal step traffic.
                    let _ = c.allreduce_sum(c.rank() as f64);
                }
                detected
            })
            .expect("machine survives the silent kill without poisoning");
        // Every rank observed exactly the one failure, with the epoch it
        // last completed (killed entering step 3 ⇒ completed epoch 2).
        for view in &res {
            assert_eq!(view, &vec![(1usize, 2u64)]);
        }
    }

    /// A recv blocked on a source that dies silently fails over to
    /// `RankFailed` once the monitor declares the death — not a hang,
    /// not a poison.
    #[test]
    fn recv_on_dead_source_reports_rank_failed() {
        let hb = HeartbeatConfig {
            scan_interval: Duration::from_millis(10),
            suspect_scans: 3,
            confirm_scans: 3,
            sync_timeout: Duration::from_secs(10),
        };
        let plan = FaultPlan::seeded(4).kill_rank_at_step(0, 1);
        let (res, _) = Machine::new(2)
            .with_faults(plan)
            .with_heartbeat(hb)
            .try_run(|c| {
                if let StepAdmission::Dead = c.admit_step(1) {
                    // Stay dead (no rejoin): models a node that never
                    // comes back, so its status remains `Failed`.
                    return Err(CommError::Poisoned); // placeholder; never asserted
                }
                // Rank 1 blocks on traffic the dead rank 0 will never send.
                c.recv_result::<u8>(0, 77)
            })
            .expect("no poisoning");
        match &res[1] {
            Err(CommError::RankFailed { rank, epoch }) => {
                assert_eq!((*rank, *epoch), (0, 0));
            }
            other => panic!("expected RankFailed, got {other:?}"),
        }
    }
}
