//! Section III timing split: "the code spends 80% of the time in the
//! highly optimized force kernel, 10% in the tree walk, and 5% in the
//! FFT, all other operations (tree build, CIC deposit) adding up to
//! another 5%" at the 16-ranks × 4-threads operating point.
//!
//! We run the full TreePM code on a clustered state and print the same
//! breakdown. Exact percentages depend on particle loading and clustering
//! (our per-cell loading is far below the paper's 2M particles/core), so
//! the check is that the kernel dominates and the spectral solver is a
//! small fraction.

use hacc_bench::{print_table, reference_power};
use hacc_core::{SimConfig, Simulation, SolverKind};
use hacc_cosmo::Cosmology;

fn main() {
    println!("Full-code timing breakdown (paper: 80% kernel / 10% walk / 5% FFT / 5% rest)");
    let np = 24usize;
    let box_len = 64.0; // dense loading → long neighbor lists, kernel-bound
    let power = reference_power();
    let cfg = SimConfig {
        cosmology: Cosmology::lcdm(),
        box_len,
        ng: np, // 1 particle per cell · small box ⇒ strong clustering
        a_init: 0.15,
        a_final: 0.5,
        steps: 8,
        subcycles: 4,
        solver: SolverKind::TreePm,
        spectral: hacc_pm::SpectralParams::default(),
        tree: hacc_short::TreeParams::default(),
        rcut_cells: 3.0,
    };
    let ics = hacc_ics::zeldovich(np, box_len, &power, cfg.a_init, 303);
    let mut sim = Simulation::from_ics(cfg, &ics);
    sim.run(|_, _| {});

    let tot = sim.stats.total();
    let t = tot.total().as_secs_f64();
    let pct = |d: std::time::Duration| format!("{:.1}", 100.0 * d.as_secs_f64() / t);
    let rows = vec![
        vec!["force kernel".into(), pct(tot.kernel), "80".into()],
        vec!["tree walk".into(), pct(tot.walk), "10".into()],
        vec!["FFT / spectral".into(), pct(tot.fft), "5".into()],
        vec!["tree build".into(), pct(tot.build), "~2".into()],
        vec!["CIC".into(), pct(tot.cic), "~3".into()],
        vec!["stream/kick/other".into(), pct(tot.other), "-".into()],
    ];
    print_table(
        &format!("Breakdown over {} steps ({:.2}s total)", sim.stats.steps.len(), t),
        &["phase", "% of time", "paper %"],
        &rows,
    );
    println!(
        "\ninteractions: {:.3e}, kernel flops: {:.3e}, time/substep/particle: {:.2e} s",
        tot.interactions as f64,
        tot.flops(),
        sim.stats
            .time_per_substep_per_particle(sim.len(), sim.config().subcycles)
    );
}
