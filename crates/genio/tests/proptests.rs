//! Property-based tests of the snapshot wire format.

use hacc_genio::{crc32, GenioError, Snapshot};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary particle payloads round-trip bit-exactly.
    #[test]
    fn roundtrip_arbitrary(
        n in 0usize..300,
        box_len in 1.0f64..1e4,
        a in 0.01f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            f32::from_bits((s as u32) & 0x7F7F_FFFF) // finite floats
        };
        let mut col = |_: usize| -> Vec<f32> { (0..n).map(|_| next()).collect() };
        let cols: Vec<Vec<f32>> = (0..6).map(&mut col).collect();
        let ids: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(seed | 1)).collect();
        let snap = Snapshot::from_particles(
            box_len,
            a,
            &cols[0],
            &cols[1],
            &cols[2],
            &cols[3],
            &cols[4],
            &cols[5],
            Some(&ids),
        );
        let back = Snapshot::from_bytes(&snap.to_bytes()).expect("roundtrip");
        prop_assert_eq!(back, snap);
    }

    /// Any single-byte corruption of the payload region is detected.
    #[test]
    fn corruption_always_detected(flip_pos in any::<usize>(), flip_bit in 0u8..8) {
        let f: Vec<f32> = (0..64).map(|i| i as f32 * 1.5).collect();
        let ids: Vec<u64> = (0..64).collect();
        let snap = Snapshot::from_particles(10.0, 0.5, &f, &f, &f, &f, &f, &f, Some(&ids));
        let mut bytes = snap.to_bytes().to_vec();
        // Only flip inside field payloads (skip the 36-byte header zone —
        // header corruption is reported as Format, also acceptable).
        let pos = 40 + flip_pos % (bytes.len() - 44);
        bytes[pos] ^= 1 << flip_bit;
        match Snapshot::from_bytes(&bytes) {
            Err(GenioError::Corrupt { .. }) | Err(GenioError::Format(_)) => {}
            Ok(parsed) => {
                // The flip may have landed in a length prefix that still
                // parses — but then the contents must differ from the
                // original, never silently equal.
                prop_assert_ne!(parsed, snap, "corruption silently accepted");
            }
            Err(GenioError::Io(_)) => prop_assert!(false, "unexpected io error"),
        }
    }

    /// Subsample(k).len() == ceil(n/k) and preserves metadata.
    #[test]
    fn subsample_length(n in 1usize..500, stride in 1usize..20) {
        let f: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let snap = Snapshot::from_particles(5.0, 0.3, &f, &f, &f, &f, &f, &f, None);
        let sub = snap.subsample(stride);
        prop_assert_eq!(sub.len(), n.div_ceil(stride));
        prop_assert_eq!(sub.box_len, 5.0);
    }

    /// CRC-32 distinguishes any two single-bit-different inputs.
    #[test]
    fn crc_detects_bit_flips(data in prop::collection::vec(any::<u8>(), 1..256), pos in any::<usize>(), bit in 0u8..8) {
        let mut flipped = data.clone();
        let p = pos % flipped.len();
        flipped[p] ^= 1 << bit;
        prop_assert_ne!(crc32(&data), crc32(&flipped));
    }

    /// Truncating a round-tripped snapshot at ANY byte offset must yield
    /// a `GenioError`, never a panic and never a silently shorter parse.
    #[test]
    fn truncation_anywhere_errors_not_panics(n in 0usize..80, cut_seed in any::<usize>()) {
        let f: Vec<f32> = (0..n).map(|i| i as f32 * 0.25).collect();
        let ids: Vec<u64> = (0..n as u64).collect();
        let mut snap = Snapshot::from_particles(32.0, 0.8, &f, &f, &f, &f, &f, &f, Some(&ids));
        snap.meta_u64.insert("step".into(), 5);
        snap.meta_f64.insert("a_next".into(), 0.9);
        let bytes = snap.to_bytes();
        let cut = cut_seed % bytes.len();
        prop_assert!(
            Snapshot::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {} of {} accepted", cut, bytes.len()
        );
    }

    /// Flipping any single byte anywhere in the file (header, metadata,
    /// block framing, payload) must never panic; if it parses, the result
    /// must differ from the original.
    #[test]
    fn byte_flip_anywhere_never_panics(n in 1usize..60, pos_seed in any::<usize>(), bit in 0u8..8) {
        let f: Vec<f32> = (0..n).map(|i| i as f32 + 0.5).collect();
        let ids: Vec<u64> = (0..n as u64).collect();
        let mut snap = Snapshot::from_particles(16.0, 0.4, &f, &f, &f, &f, &f, &f, Some(&ids));
        snap.meta_u64.insert("rank".into(), 1);
        let mut bytes = snap.to_bytes().to_vec();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= 1 << bit;
        match Snapshot::from_bytes(&bytes) {
            Err(_) => {}
            Ok(parsed) => prop_assert_ne!(parsed, snap, "flip at {} silently accepted", pos),
        }
    }
}
