//! Fig. 5 reproduction: force-kernel performance vs neighbor-list size
//! for different rank × thread configurations.
//!
//! The paper sweeps the shared-interaction-list length from 50 to 5000 for
//! eight ranks-per-node/threads configurations on a BG/Q node and reports
//! percent of node peak; the curves rise with list length and with
//! hardware threads per core, plateauing near 80% of peak at 4
//! threads/core. Here "ranks" are rayon worker partitions of the leaf
//! set and "peak" is the host FMA calibration from `hacc-machine` — the
//! shape to verify is: longer lists ⇒ higher efficiency, more threads ⇒
//! higher throughput until the physical cores saturate.

use std::time::Instant;

use hacc_bench::{fmt_flops, print_table};
use hacc_machine::calibrate_peak_flops;
use hacc_short::{ForceKernel, FLOPS_PER_INTERACTION_ACTUAL};

fn main() {
    let mut json_path: Option<String> = None;
    let mut quick = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--json" => {
                json_path = Some(argv.get(i + 1).expect("missing value after --json").clone());
                i += 2;
            }
            "--quick" => {
                quick = true;
                i += 1;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    let hw_threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4);
    println!("Fig. 5: force kernel threading performance");
    println!("host hardware threads: {hw_threads}");
    print!("calibrating host peak... ");
    let peak_1t = calibrate_peak_flops(1, 200);
    let peak_all = calibrate_peak_flops(hw_threads, 200);
    println!(
        "1 thread: {}, {hw_threads} threads: {}",
        fmt_flops(peak_1t),
        fmt_flops(peak_all)
    );

    // --quick: a reduced sweep for CI / composite benchmark runs.
    let list_sizes: Vec<usize> = if quick {
        vec![100, 500, 2500]
    } else {
        vec![50, 100, 250, 500, 1000, 2500, 5000]
    };
    let budget = if quick { 10_000_000 } else { 100_000_000 };
    let mut thread_counts = if quick { vec![1usize] } else { vec![1usize, 2] };
    let mut t = 4;
    while t <= hw_threads {
        thread_counts.push(t);
        t *= 2;
    }

    let kernel = ForceKernel::newtonian(1e9, 1e-5);
    // First pass: measure raw kernel flop rates for every configuration.
    let mut rates: Vec<(usize, Vec<f64>)> = Vec::new();
    for &threads in &thread_counts {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        let mut per_size = Vec::new();
        for &m in &list_sizes {
            // Synthetic leaf: 64 targets sharing a list of m neighbors,
            // replicated so each measurement runs ≥ ~10^8 interactions.
            let (nx, ny, nz, nm) = synth_list(m);
            let targets = 64usize;
            let leaves = (budget / (targets * m)).clamp(4, 4000);
            let reps: Vec<usize> = (0..leaves).collect();
            let t0 = Instant::now();
            let sink: f32 = pool.install(|| {
                use rayon::prelude::*;
                reps.par_iter()
                    .map(|&r| {
                        let mut acc = 0.0f32;
                        for tgt in 0..targets {
                            let x = (tgt as f32 * 0.013 + r as f32 * 1e-6) % 1.0;
                            let f = kernel.force_on(x, 0.5, 0.5, &nx, &ny, &nz, &nm);
                            acc += f[0] + f[1] + f[2];
                        }
                        acc
                    })
                    .sum()
            });
            std::hint::black_box(sink);
            let dt = t0.elapsed().as_secs_f64();
            let inter = (leaves * targets * m) as f64;
            per_size.push(inter * FLOPS_PER_INTERACTION_ACTUAL as f64 / dt);
        }
        rates.push((threads, per_size));
    }
    // Normalize: the reference "peak" is whichever is higher, the FMA
    // calibration or the best kernel rate observed at that thread count —
    // on virtualized hosts the simple calibration loop can undershoot
    // what the vectorized kernel achieves, and a >100% efficiency would
    // be meaningless.
    let mut rows = Vec::new();
    let mut pct_curves: Vec<(usize, Vec<f64>)> = Vec::new();
    for (threads, per_size) in &rates {
        let cal = calibrate_peak_flops(*threads, 100);
        let best = per_size.iter().copied().fold(0.0, f64::max);
        let peak = cal.max(best);
        let mut row = vec![format!("{threads}")];
        let mut pcts = Vec::new();
        for rate in per_size {
            let pct = 100.0 * rate / peak;
            row.push(format!("{pct:.1}"));
            pcts.push(pct);
        }
        rows.push(row);
        pct_curves.push((*threads, pcts));
    }
    let mut header = vec!["threads"];
    let labels: Vec<String> = list_sizes.iter().map(|m| format!("list={m}")).collect();
    header.extend(labels.iter().map(|s| s.as_str()));
    print_table(
        "Force kernel: % of calibrated peak vs neighbor-list size (paper Fig. 5)",
        &header,
        &rows,
    );
    println!(
        "\npaper reference: ~80% of BG/Q node peak at 4 threads/core, rising with list size;\n\
         typical production list sizes are 500-2500."
    );

    if let Some(path) = &json_path {
        let sizes = list_sizes
            .iter()
            .map(|m| m.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let curves = pct_curves
            .iter()
            .map(|(threads, pcts)| {
                let vals = pcts
                    .iter()
                    .map(|p| format!("{p:.2}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "    {{ \"threads\": {threads}, \"pct_of_peak\": [{vals}] }}"
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let json = format!(
            "{{\n  \"bench\": \"fig5_kernel_threading\",\n  \"hw_threads\": {hw_threads},\n  \
             \"peak_flops_1t\": {peak_1t:.3e},\n  \"peak_flops_all\": {peak_all:.3e},\n  \
             \"list_sizes\": [{sizes}],\n  \"curves\": [\n{curves}\n  ]\n}}"
        );
        if let Some(dir) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(dir).expect("create json dir");
        }
        std::fs::write(path, format!("{json}\n")).expect("write json");
        println!("wrote {path}");
    }
}

/// Deterministic synthetic neighbor list inside the unit sphere.
fn synth_list(m: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut s = 0x5DEECE66Du64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s as f64 / u64::MAX as f64) as f32
    };
    let mut nx = Vec::with_capacity(m);
    let mut ny = Vec::with_capacity(m);
    let mut nz = Vec::with_capacity(m);
    for _ in 0..m {
        nx.push(next() * 2.0 - 1.0);
        ny.push(next() * 2.0 - 1.0);
        nz.push(next() * 2.0 - 1.0);
    }
    (nx, ny, nz, vec![1.0; m])
}
