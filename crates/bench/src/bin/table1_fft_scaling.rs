//! Table I reproduction: pencil-FFT scaling on the BG/Q.
//!
//! The paper's table has three blocks: (a) strong scaling of a 1024³
//! transform from 256 to 8192 ranks, (b) weak scaling at ~160³ points per
//! rank up to 9216³ on 262,144 ranks, (c) weak scaling at ~200³ per rank
//! up to 10240³. We measure the same three ladders at laptop scale with
//! simulated ranks, then print the machine-model rows at the paper's
//! exact sizes for shape comparison.

use std::time::Instant;

use hacc_bench::{fmt_time, print_table};
use hacc_comm::Machine;
use hacc_fft::{Complex64, DistFft3, PencilFft};
use hacc_machine::FftModel;

fn main() {
    println!("Table I: 3-D FFT scaling (pencil decomposition)");

    // Block (a): strong scaling, fixed 64³ transform.
    let mut rows = Vec::new();
    for ranks in [1usize, 2, 4, 8] {
        let t = measure(64, ranks);
        rows.push(vec![
            "64^3".into(),
            ranks.to_string(),
            fmt_time(t),
        ]);
    }
    print_table(
        "(a) measured strong scaling, fixed grid",
        &["FFT size", "ranks", "wall-clock"],
        &rows,
    );

    // Block (b): weak scaling, fixed ~32³ points per rank.
    let mut rows = Vec::new();
    for (ranks, n) in [(1usize, 32usize), (2, 40), (4, 50), (8, 64)] {
        let t = measure(n, ranks);
        rows.push(vec![
            format!("{n}^3"),
            ranks.to_string(),
            format!("{}", (n * n * n) / ranks),
            fmt_time(t),
        ]);
    }
    print_table(
        "(b) measured weak scaling, ~constant points/rank",
        &["FFT size", "ranks", "points/rank", "wall-clock"],
        &rows,
    );

    // Machine model at the paper's sizes.
    let model = FftModel::default();
    let paper = [
        (1024usize, 256usize, 2.731),
        (1024, 512, 1.392),
        (1024, 1024, 0.713),
        (1024, 2048, 0.354),
        (1024, 4096, 0.179),
        (1024, 8192, 0.098),
        (4096, 16384, 5.254),
        (5120, 32768, 6.173),
        (6400, 65536, 6.841),
        (8192, 131072, 7.359),
        (9216, 262144, 7.238),
        (5120, 16384, 10.36),
        (6400, 32768, 12.40),
        (8192, 65536, 14.72),
        (10240, 131072, 14.24),
    ];
    let mut rows = Vec::new();
    for &(n, ranks, paper_t) in &paper {
        let r = model.transform_time(n, ranks, 8);
        rows.push(vec![
            format!("{n}^3"),
            ranks.to_string(),
            format!("{:.3}", r.time),
            format!("{paper_t:.3}"),
            format!("{:.2}", r.time / paper_t),
        ]);
    }
    print_table(
        "(c) BG/Q machine model vs paper Table I",
        &["FFT size", "ranks", "model [s]", "paper [s]", "ratio"],
        &rows,
    );
    println!(
        "\nshape check: strong-scaling block speeds up ~linearly with ranks;\n\
         weak-scaling blocks stay within a small factor as ranks grow 16x."
    );
}

fn measure(n: usize, ranks: usize) -> f64 {
    let (times, _) = Machine::new(ranks).run(|comm| {
        let fft = PencilFft::new(&comm, n);
        let rl = fft.real_layout();
        let data: Vec<Complex64> = (0..rl.len())
            .map(|i| Complex64::new((i % 97) as f64 / 97.0 - 0.5, 0.0))
            .collect();
        comm.barrier();
        let t0 = Instant::now();
        let k = fft.forward(data);
        std::hint::black_box(&k);
        t0.elapsed().as_secs_f64()
    });
    times.into_iter().fold(0.0, f64::max)
}
