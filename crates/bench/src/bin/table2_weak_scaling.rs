//! Table II / Fig. 7 reproduction: full-code weak scaling.
//!
//! The paper holds ~2M particles per core fixed and scales from 2,048 to
//! 1,572,864 cores, reporting total PFlops, % of peak, time per substep
//! per particle, `cores × time/substep` (flat = ideal weak scaling), and
//! memory per rank. We run the full distributed driver (slab domains +
//! overloading + distributed spectral solve + rank-local RCB trees) at
//! fixed particles per simulated rank, then print the calibrated machine
//! model at every core count of the paper's table.

use hacc_bench::{print_table, reference_power};
use hacc_core::{DistSimulation, SimConfig, SolverKind};
use hacc_cosmo::Cosmology;
use hacc_machine::{BgqPartition, FullCodeModel};
use hacc_short::FLOPS_PER_INTERACTION;

fn main() {
    println!("Table II / Fig. 7: full-code weak scaling (~constant particles/rank)");
    let power = reference_power();

    // Measured block: ~constant particles per rank (problem volume grows
    // with rank count, 2 cells per particle spacing throughout).
    let mut rows = Vec::new();
    let mut measured_flops_pp = 0.0f64;
    for (ranks, np_side, ng) in [(1usize, 16usize, 32usize), (2, 20, 40), (4, 25, 48), (8, 32, 64)]
    {
        let box_len = 4.0 * ng as f64; // 4 Mpc/h per cell
        let cfg = SimConfig {
            cosmology: Cosmology::lcdm(),
            box_len,
            ng,
            a_init: 0.25,
            a_final: 0.3,
            steps: 1,
            subcycles: 3,
            solver: SolverKind::TreePm,
            spectral: hacc_pm::SpectralParams::default(),
            two_level: None,
            tree: hacc_short::TreeParams::default(),
            rcut_cells: 3.0,
            skin_cells: 0.25,
            max_retries: None,
            backoff_base_ms: None,
        };
        let ics = hacc_ics::zeldovich(np_side, box_len, &power, cfg.a_init, 7 + ranks as u64);
        let np_total = ics.len();
        let (stats, _) = hacc_comm::Machine::new(ranks).run(move |comm| {
            let mut sim = DistSimulation::new(&comm, cfg, &ics);
            sim.step(0.3);
            let tot = sim.stats.total();
            (tot.total().as_secs_f64(), tot.interactions)
        });
        let wall = stats.iter().map(|&(t, _)| t).fold(0.0, f64::max);
        let inter: u64 = stats.iter().map(|&(_, i)| i).sum();
        let flops = inter as f64 * FLOPS_PER_INTERACTION as f64;
        measured_flops_pp = flops / np_total as f64 / cfg.subcycles as f64;
        let tpp = wall / cfg.subcycles as f64 / np_total as f64;
        rows.push(vec![
            ranks.to_string(),
            np_total.to_string(),
            format!("{:.1}", np_total as f64 / ranks as f64 / 1e3),
            format!("{:.3e}", tpp),
            format!("{:.3e}", tpp * ranks as f64),
            format!("{:.2e}", flops / wall),
        ]);
    }
    print_table(
        "Measured (simulated ranks; flat ranks×time/substep/particle = ideal)",
        &[
            "ranks",
            "Np",
            "kpart/rank",
            "t/substep/part [s]",
            "ranks*t/sub/part",
            "flops/s",
        ],
        &rows,
    );
    println!(
        "\nmeasured short-range flops per particle per substep: {measured_flops_pp:.0}"
    );

    // Paper-scale model block: every row of Table II.
    let model = FullCodeModel::paper_reference();
    let paper_rows: [(usize, usize, f64, f64); 12] = [
        (2_048, 1600, 0.018, 4.12e-8),
        (4_096, 2048, 0.036, 1.92e-8),
        (8_192, 2560, 0.072, 1.00e-8),
        (16_384, 3200, 0.144, 5.19e-9),
        (32_768, 4096, 0.269, 2.88e-9),
        (65_536, 5120, 0.576, 1.46e-9),
        (131_072, 6656, 1.16, 7.41e-10),
        (262_144, 8192, 2.27, 3.04e-10),
        (393_216, 9216, 3.39, 2.03e-10),
        (524_288, 10240, 4.53, 1.59e-10),
        (786_432, 12288, 7.02, 1.2e-10),
        (1_572_864, 15360, 13.94, 5.96e-11),
    ];
    let mut rows = Vec::new();
    for &(cores, np_side, paper_pf, paper_tpp) in &paper_rows {
        let part = BgqPartition::with_cores(cores);
        let np = (np_side as f64).powi(3);
        let r = model.substep(&part, np);
        let mem_mb = model.memory_per_rank(np / part.ranks() as f64) / 1e6;
        rows.push(vec![
            cores.to_string(),
            format!("{np_side}^3"),
            format!("{:.3}", r.flops_rate / 1e15),
            format!("{paper_pf:.3}"),
            format!("{:.1}", 100.0 * r.peak_fraction),
            format!("{:.2e}", r.time_per_particle()),
            format!("{paper_tpp:.2e}"),
            format!("{mem_mb:.0}"),
        ]);
    }
    print_table(
        "BG/Q model vs paper Table II",
        &[
            "cores",
            "Np",
            "model PF",
            "paper PF",
            "model %peak",
            "model t/sub/part",
            "paper t/sub/part",
            "model MB/rank",
        ],
        &rows,
    );
    println!(
        "\nshape check: PFlops grows linearly with cores at ~constant %peak (~65-70%),\n\
         time/substep/particle falls as 1/cores — the paper's 'essentially perfect'\n\
         weak scaling to 96 racks (13.94 PFlops, 69.2% peak, 0.0596 ns)."
    );
}
