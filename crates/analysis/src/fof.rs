//! Friends-of-friends (FOF) halo finder with hierarchical subhalo
//! splitting.
//!
//! Halos are equivalence classes of particles under "within a linking
//! length `b` times the mean inter-particle separation" (cosmology's
//! standard `b = 0.2` for halos). Sub-structure (the colored sub-halos of
//! Fig. 11) is extracted by re-running FOF on each halo's members at a
//! shorter linking length (`b ≈ 0.08`), which picks out the dense cores.
//!
//! The pair search uses a chaining mesh of cells ≥ the linking length and
//! a union-find structure with path compression, so the total cost is
//! near-linear in particle count.

/// One halo (or subhalo) in the catalog.
#[derive(Debug, Clone)]
pub struct Halo {
    /// Member particle indices into the input arrays.
    pub members: Vec<u32>,
    /// Periodic-aware center of mass, wrapped into the box.
    pub center: [f64; 3],
    /// Mean velocity of members.
    pub mean_velocity: [f64; 3],
}

impl Halo {
    /// Member count (mass in particle units).
    #[must_use] 
    pub fn count(&self) -> usize {
        self.members.len()
    }
}

/// FOF configuration bound to a particle population.
pub struct FofFinder {
    /// Periodic box side.
    pub box_len: f64,
    /// Linking length in absolute units (callers often use
    /// `b · box_len / n_per_side`).
    pub linking_length: f64,
    /// Smallest group reported.
    pub min_members: usize,
}

impl FofFinder {
    /// Standard configuration: linking parameter `b` (e.g. 0.2) for
    /// `np_side³` particles in a `box_len` box.
    #[must_use] 
    pub fn with_linking_param(box_len: f64, np_side: usize, b: f64, min_members: usize) -> Self {
        FofFinder {
            box_len,
            linking_length: b * box_len / np_side as f64,
            min_members,
        }
    }

    /// Run the finder; returns halos sorted by descending member count.
    #[must_use] 
    pub fn find(&self, xs: &[f32], ys: &[f32], zs: &[f32]) -> Vec<Halo> {
        self.find_with_velocities(xs, ys, zs, None)
    }

    /// Run the finder and attach mean velocities from the optional
    /// velocity arrays.
    #[must_use] 
    pub fn find_with_velocities(
        &self,
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        vel: Option<(&[f32], &[f32], &[f32])>,
    ) -> Vec<Halo> {
        let np = xs.len();
        assert!(ys.len() == np && zs.len() == np);
        if np == 0 {
            return Vec::new();
        }
        let ll = self.linking_length;
        let ll2 = (ll * ll) as f32;
        let l = self.box_len;
        // Chaining mesh with cell ≥ linking length.
        let nc = ((l / ll).floor() as usize).clamp(1, 256);
        let cell_of = |x: f32, y: f32, z: f32| -> (usize, usize, usize) {
            let w = |v: f32| -> usize {
                let m = nc as f64;
                let c = ((f64::from(v) / l) * m).floor();
                let c = if c < 0.0 { c + m } else { c };
                (c as usize).min(nc - 1)
            };
            (w(x), w(y), w(z))
        };
        let mut bins: Vec<Vec<u32>> = vec![Vec::new(); nc * nc * nc];
        for p in 0..np {
            let (cx, cy, cz) = cell_of(xs[p], ys[p], zs[p]);
            bins[(cx * nc + cy) * nc + cz].push(p as u32);
        }

        let mut uf = UnionFind::new(np);
        let half = (0.5 * l) as f32;
        let lf = l as f32;
        let min_image = |d: f32| -> f32 {
            if d > half {
                d - lf
            } else if d < -half {
                d + lf
            } else {
                d
            }
        };
        // Visit each cell and its neighbors; to avoid double work visit
        // only "forward" neighbor offsets (and all pairs within a cell).
        let fwd: Vec<[i64; 3]> = {
            let mut v = Vec::new();
            for dx in -1i64..=1 {
                for dy in -1i64..=1 {
                    for dz in -1i64..=1 {
                        if (dx, dy, dz) > (0, 0, 0) {
                            v.push([dx, dy, dz]);
                        }
                    }
                }
            }
            v
        };
        let wrap = |c: usize, d: i64| -> usize { ((c as i64 + d).rem_euclid(nc as i64)) as usize };
        let mut seen_cells: Vec<usize> = Vec::with_capacity(14);
        for cx in 0..nc {
            for cy in 0..nc {
                for cz in 0..nc {
                    let here = (cx * nc + cy) * nc + cz;
                    if bins[here].is_empty() {
                        continue;
                    }
                    // Intra-cell pairs.
                    let cell = &bins[here];
                    for i in 0..cell.len() {
                        for j in (i + 1)..cell.len() {
                            let (a, b) = (cell[i] as usize, cell[j] as usize);
                            let dx = min_image(xs[a] - xs[b]);
                            let dy = min_image(ys[a] - ys[b]);
                            let dz = min_image(zs[a] - zs[b]);
                            if dx * dx + dy * dy + dz * dz <= ll2 {
                                uf.union(a, b);
                            }
                        }
                    }
                    // Forward neighbor cells (deduplicated for tiny nc).
                    seen_cells.clear();
                    for off in &fwd {
                        let nb = (wrap(cx, off[0]) * nc + wrap(cy, off[1])) * nc + wrap(cz, off[2]);
                        if nb == here || seen_cells.contains(&nb) {
                            continue;
                        }
                        seen_cells.push(nb);
                        for &ai in cell {
                            for &bi in &bins[nb] {
                                let (a, b) = (ai as usize, bi as usize);
                                let dx = min_image(xs[a] - xs[b]);
                                let dy = min_image(ys[a] - ys[b]);
                                let dz = min_image(zs[a] - zs[b]);
                                if dx * dx + dy * dy + dz * dz <= ll2 {
                                    uf.union(a, b);
                                }
                            }
                        }
                    }
                }
            }
        }

        // Collect groups.
        let mut groups: std::collections::HashMap<usize, Vec<u32>> =
            std::collections::HashMap::new();
        for p in 0..np {
            groups.entry(uf.find(p)).or_default().push(p as u32);
        }
        let mut halos: Vec<Halo> = groups
            .into_values()
            .filter(|g| g.len() >= self.min_members)
            .map(|members| self.summarize(members, xs, ys, zs, vel))
            .collect();
        halos.sort_by_key(|h| std::cmp::Reverse(h.count()));
        halos
    }

    /// Compute periodic-aware center of mass and mean velocity.
    fn summarize(
        &self,
        members: Vec<u32>,
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        vel: Option<(&[f32], &[f32], &[f32])>,
    ) -> Halo {
        let l = self.box_len;
        let r = members[0] as usize;
        let refp = [f64::from(xs[r]), f64::from(ys[r]), f64::from(zs[r])];
        let mut acc = [0.0f64; 3];
        let mut vacc = [0.0f64; 3];
        for &m in &members {
            let m = m as usize;
            let p = [f64::from(xs[m]), f64::from(ys[m]), f64::from(zs[m])];
            for c in 0..3 {
                // Unwrap relative to the reference member.
                let mut d = p[c] - refp[c];
                if d > 0.5 * l {
                    d -= l;
                }
                if d < -0.5 * l {
                    d += l;
                }
                acc[c] += d;
            }
            if let Some((vx, vy, vz)) = vel {
                vacc[0] += f64::from(vx[m]);
                vacc[1] += f64::from(vy[m]);
                vacc[2] += f64::from(vz[m]);
            }
        }
        let n = members.len() as f64;
        let mut center = [0.0; 3];
        for c in 0..3 {
            let v = refp[c] + acc[c] / n;
            center[c] = v - (v / l).floor() * l;
        }
        Halo {
            members,
            center,
            mean_velocity: [vacc[0] / n, vacc[1] / n, vacc[2] / n],
        }
    }

    /// Split one halo into subhalos with a shorter linking length.
    ///
    /// `sub_fraction` scales the parent linking length (e.g. 0.4 turns
    /// `b = 0.2` into an effective `b = 0.08`).
    #[must_use] 
    pub fn subhalos(
        &self,
        halo: &Halo,
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        sub_fraction: f64,
        min_members: usize,
    ) -> Vec<Halo> {
        let sub_x: Vec<f32> = halo.members.iter().map(|&m| xs[m as usize]).collect();
        let sub_y: Vec<f32> = halo.members.iter().map(|&m| ys[m as usize]).collect();
        let sub_z: Vec<f32> = halo.members.iter().map(|&m| zs[m as usize]).collect();
        let finder = FofFinder {
            box_len: self.box_len,
            linking_length: self.linking_length * sub_fraction,
            min_members,
        };
        let mut subs = finder.find(&sub_x, &sub_y, &sub_z);
        // Remap member indices back to the parent arrays.
        for s in subs.iter_mut() {
            for m in s.members.iter_mut() {
                *m = halo.members[*m as usize];
            }
        }
        subs
    }
}

/// Union-find with path halving and union by size.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let gp = self.parent[self.parent[x] as usize];
            self.parent[x] = gp;
            x = gp as usize;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Place a Gaussian-ish blob of `n` particles around `c` with spread
    /// `r` using a deterministic generator.
    fn blob(
        xs: &mut Vec<f32>,
        ys: &mut Vec<f32>,
        zs: &mut Vec<f32>,
        c: [f32; 3],
        r: f32,
        n: usize,
        seed: u64,
    ) {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) as f32 - 0.5
        };
        for _ in 0..n {
            xs.push(c[0] + r * next());
            ys.push(c[1] + r * next());
            zs.push(c[2] + r * next());
        }
    }

    #[test]
    fn two_separated_clusters_found() {
        let (mut xs, mut ys, mut zs) = (Vec::new(), Vec::new(), Vec::new());
        blob(&mut xs, &mut ys, &mut zs, [10.0, 10.0, 10.0], 0.5, 100, 1);
        blob(&mut xs, &mut ys, &mut zs, [40.0, 40.0, 40.0], 0.5, 60, 2);
        let f = FofFinder {
            box_len: 64.0,
            linking_length: 0.5,
            min_members: 10,
        };
        let halos = f.find(&xs, &ys, &zs);
        assert_eq!(halos.len(), 2);
        assert_eq!(halos[0].count(), 100);
        assert_eq!(halos[1].count(), 60);
        for c in 0..3 {
            assert!((halos[0].center[c] - 10.0).abs() < 0.3);
            assert!((halos[1].center[c] - 40.0).abs() < 0.3);
        }
    }

    #[test]
    fn isolated_particles_filtered_by_min_members() {
        let (mut xs, mut ys, mut zs) = (Vec::new(), Vec::new(), Vec::new());
        blob(&mut xs, &mut ys, &mut zs, [5.0, 5.0, 5.0], 0.3, 50, 3);
        // Lone wolves far apart.
        for i in 0..20 {
            xs.push(20.0 + i as f32 * 2.0 % 40.0);
            ys.push(30.0 + i as f32 * 1.7 % 20.0);
            zs.push(50.0);
        }
        let f = FofFinder {
            box_len: 64.0,
            linking_length: 0.4,
            min_members: 5,
        };
        let halos = f.find(&xs, &ys, &zs);
        assert_eq!(halos.len(), 1);
        assert_eq!(halos[0].count(), 50);
    }

    #[test]
    fn halo_across_periodic_boundary() {
        let (mut xs, mut ys, mut zs) = (Vec::new(), Vec::new(), Vec::new());
        // Straddles x = 0/64 seam.
        blob(&mut xs, &mut ys, &mut zs, [0.2, 32.0, 32.0], 0.4, 40, 5);
        blob(&mut xs, &mut ys, &mut zs, [63.8, 32.0, 32.0], 0.4, 40, 6);
        let f = FofFinder {
            box_len: 64.0,
            linking_length: 0.6,
            min_members: 10,
        };
        let halos = f.find(&xs, &ys, &zs);
        assert_eq!(halos.len(), 1, "seam halo split: {:?}", halos.len());
        assert_eq!(halos[0].count(), 80);
        // Center should sit near the seam (x ≈ 0 or ≈ 64).
        let cx = halos[0].center[0];
        assert!(!(1.5..=62.5).contains(&cx), "center x = {cx}");
    }

    #[test]
    fn chain_links_into_one_group() {
        // A chain of particles each within the linking length of the next
        // must merge transitively.
        let xs: Vec<f32> = (0..50).map(|i| 5.0 + i as f32 * 0.45).collect();
        let ys = vec![10.0f32; 50];
        let zs = vec![10.0f32; 50];
        let f = FofFinder {
            box_len: 64.0,
            linking_length: 0.5,
            min_members: 2,
        };
        let halos = f.find(&xs, &ys, &zs);
        assert_eq!(halos.len(), 1);
        assert_eq!(halos[0].count(), 50);
    }

    #[test]
    fn subhalos_find_embedded_cores() {
        let (mut xs, mut ys, mut zs) = (Vec::new(), Vec::new(), Vec::new());
        // Diffuse envelope plus two tight cores — a Fig. 11 situation.
        blob(&mut xs, &mut ys, &mut zs, [32.0, 32.0, 32.0], 3.0, 300, 7);
        blob(&mut xs, &mut ys, &mut zs, [31.0, 32.0, 32.0], 0.08, 80, 8);
        blob(&mut xs, &mut ys, &mut zs, [33.5, 32.5, 32.0], 0.08, 50, 9);
        let f = FofFinder {
            box_len: 64.0,
            linking_length: 0.8,
            min_members: 20,
        };
        let halos = f.find(&xs, &ys, &zs);
        assert_eq!(halos.len(), 1, "envelope should link everything");
        let subs = f.subhalos(&halos[0], &xs, &ys, &zs, 0.15, 20);
        assert!(subs.len() >= 2, "found {} subhalos", subs.len());
        assert!(subs[0].count() >= 80);
        assert!(subs[1].count() >= 50);
    }

    #[test]
    fn mean_velocity_computed() {
        let (mut xs, mut ys, mut zs) = (Vec::new(), Vec::new(), Vec::new());
        blob(&mut xs, &mut ys, &mut zs, [10.0, 10.0, 10.0], 0.2, 30, 11);
        let vx = vec![2.0f32; 30];
        let vy = vec![-1.0f32; 30];
        let vz = vec![0.5f32; 30];
        let f = FofFinder {
            box_len: 64.0,
            linking_length: 0.4,
            min_members: 5,
        };
        let halos = f.find_with_velocities(&xs, &ys, &zs, Some((&vx, &vy, &vz)));
        assert_eq!(halos.len(), 1);
        assert!((halos[0].mean_velocity[0] - 2.0).abs() < 1e-6);
        assert!((halos[0].mean_velocity[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_input_gives_empty_catalog() {
        let f = FofFinder {
            box_len: 10.0,
            linking_length: 0.2,
            min_members: 1,
        };
        assert!(f.find(&[], &[], &[]).is_empty());
    }

    #[test]
    fn union_find_invariants() {
        let mut uf = UnionFind::new(10);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(1, 3);
        let root = uf.find(0);
        for i in [1, 2, 3] {
            assert_eq!(uf.find(i), root);
        }
        assert_ne!(uf.find(4), root);
    }
}
