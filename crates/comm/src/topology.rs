//! Cartesian process topologies.
//!
//! HACC decomposes space into regular (non-cubic) 3-D blocks of ranks —
//! Table II lists geometries like `192x128x64`. `dims_create` factors a rank
//! count into a near-balanced grid the same way `MPI_Dims_create` does, and
//! [`CartComm`] provides rank ↔ coordinate maps plus periodic neighbor
//! lookup for the overloading exchanges.

use crate::Comm;

/// Factor `n` ranks into `ndims` near-equal dimensions, largest first
/// (the `MPI_Dims_create` contract).
#[must_use] 
pub fn dims_create(n: usize, ndims: usize) -> Vec<usize> {
    assert!(n > 0 && ndims > 0);
    let mut dims = vec![1usize; ndims];
    let mut rem = n;
    // Repeatedly peel the smallest prime factor and multiply it into the
    // currently smallest dimension.
    let mut factors = Vec::new();
    let mut f = 2;
    while f * f <= rem {
        while rem.is_multiple_of(f) {
            factors.push(f);
            rem /= f;
        }
        f += 1;
    }
    if rem > 1 {
        factors.push(rem);
    }
    // Largest factors first so they spread across dimensions.
    factors.sort_unstable_by(|a, b| b.cmp(a));
    for f in factors {
        let i = (0..ndims).min_by_key(|&i| dims[i]).expect("ndims > 0");
        dims[i] *= f;
    }
    dims.sort_unstable_by(|a, b| b.cmp(a));
    dims
}

/// A 3-D periodic Cartesian topology laid over a communicator.
pub struct CartComm {
    /// The underlying communicator.
    pub comm: Comm,
    /// Grid dimensions (x, y, z); product equals `comm.size()`.
    pub dims: [usize; 3],
}

impl CartComm {
    /// Build a 3-D topology over `comm`. `dims` entries of 0 are filled by
    /// [`dims_create`].
    #[must_use] 
    pub fn new(comm: Comm, dims: [usize; 3]) -> Self {
        let dims = if dims.iter().all(|&d| d > 0) {
            dims
        } else {
            let d = dims_create(comm.size(), 3);
            [d[0], d[1], d[2]]
        };
        assert_eq!(
            dims[0] * dims[1] * dims[2],
            comm.size(),
            "topology does not match communicator size"
        );
        CartComm { comm, dims }
    }

    /// Coordinates of a rank (row-major: x slowest).
    #[must_use] 
    pub fn coords_of(&self, rank: usize) -> [usize; 3] {
        let [_, dy, dz] = self.dims;
        [rank / (dy * dz), (rank / dz) % dy, rank % dz]
    }

    /// Rank of given (periodic) coordinates.
    #[must_use] 
    pub fn rank_of(&self, coords: [i64; 3]) -> usize {
        let mut c = [0usize; 3];
        for i in 0..3 {
            let d = self.dims[i] as i64;
            c[i] = (coords[i].rem_euclid(d)) as usize;
        }
        (c[0] * self.dims[1] + c[1]) * self.dims[2] + c[2]
    }

    /// This rank's coordinates.
    #[must_use] 
    pub fn my_coords(&self) -> [usize; 3] {
        self.coords_of(self.comm.rank())
    }

    /// The 26 periodic neighbors (and self excluded), deduplicated — on
    /// small grids several offsets can map to the same rank.
    #[must_use] 
    pub fn neighbors(&self) -> Vec<usize> {
        let me = self.my_coords();
        let mut out = Vec::new();
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                for dz in -1i64..=1 {
                    if (dx, dy, dz) == (0, 0, 0) {
                        continue;
                    }
                    let r = self.rank_of([
                        me[0] as i64 + dx,
                        me[1] as i64 + dy,
                        me[2] as i64 + dz,
                    ]);
                    if r != self.comm.rank() && !out.contains(&r) {
                        out.push(r);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;

    #[test]
    fn dims_create_balanced() {
        assert_eq!(dims_create(8, 3), vec![2, 2, 2]);
        assert_eq!(dims_create(16, 3), vec![4, 2, 2]);
        assert_eq!(dims_create(12, 3), vec![3, 2, 2]);
        assert_eq!(dims_create(7, 3), vec![7, 1, 1]);
        assert_eq!(dims_create(1, 3), vec![1, 1, 1]);
        assert_eq!(dims_create(6, 2), vec![3, 2]);
    }

    #[test]
    fn dims_create_product_invariant() {
        for n in 1..=64 {
            let d = dims_create(n, 3);
            assert_eq!(d.iter().product::<usize>(), n, "n = {n}");
        }
    }

    #[test]
    fn coords_roundtrip() {
        let (res, _) = Machine::new(12).run(|c| {
            let cart = CartComm::new(c, [3, 2, 2]);
            let me = cart.my_coords();
            cart.rank_of([me[0] as i64, me[1] as i64, me[2] as i64]) == cart.comm.rank()
        });
        assert!(res.iter().all(|&ok| ok));
    }

    #[test]
    fn periodic_wrapping() {
        let (res, _) = Machine::new(8).run(|c| {
            let cart = CartComm::new(c, [2, 2, 2]);
            // -1 wraps to dims-1.
            cart.rank_of([-1, 0, 0]) == cart.rank_of([1, 0, 0])
        });
        assert!(res.iter().all(|&ok| ok));
    }

    #[test]
    fn neighbors_exclude_self_and_dedup() {
        let (res, _) = Machine::new(8).run(|c| {
            let me = c.rank();
            let cart = CartComm::new(c, [2, 2, 2]);
            let n = cart.neighbors();
            // On a 2x2x2 periodic grid every other rank is a neighbor.
            n.len() == 7 && !n.contains(&me)
        });
        assert!(res.iter().all(|&ok| ok));
    }

    #[test]
    fn auto_dims() {
        let (res, _) = Machine::new(6).run(|c| {
            let cart = CartComm::new(c, [0, 0, 0]);
            cart.dims
        });
        for d in res {
            assert_eq!(d.iter().product::<usize>(), 6);
        }
    }
}
