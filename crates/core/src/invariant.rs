//! Physics invariant watchdogs for the tiered recovery driver.
//!
//! Failure detection by heartbeat catches a rank that goes *silent*;
//! these monitors catch the quieter disaster of a rank that keeps
//! stepping with corrupted state. Three cheap collective checks run
//! after every long-range step (one 6-word allreduce in
//! [`crate::DistSimulation::invariant_sample`]):
//!
//! - **Non-finite scan.** Any NaN/∞ in the active phase space is
//!   unconditionally fatal to the in-memory state — NaNs propagate
//!   through the CIC deposit to the whole mesh within a step — so a
//!   single hit escalates straight to checkpoint rollback.
//! - **Momentum drift.** The symmetric short-range walk conserves
//!   momentum to round-off and the PM force is curl-free to stencil
//!   accuracy, so total momentum wanders only by accumulation noise. A
//!   drift beyond `momentum_tol` × (count × v_rms) flags either a
//!   corrupted subset of particles or a broken recovery.
//! - **Kinetic-energy blowup.** Per-step growth of Σ½v² beyond
//!   `kinetic_growth_factor` is the classic signature of a particle pair
//!   collapsing onto a singular force evaluation; legitimate gravita-
//!   tional collapse at these step sizes grows KE by percent-level
//!   factors, orders of magnitude below the gate.
//!
//! Verdicts are pure functions of the allreduced sample, so every rank
//! reaches the same verdict without further communication. The driver
//! reacts by tier: a healthy sample right after a Tier-0 reconstruction
//! earns a *proactive checkpoint* (locking in the recovered state), a
//! breach escalates to Tier-1 rollback, and a breach with no checkpoint
//! to roll back to aborts with the diagnosis (Tier 2).

use std::fmt;

/// One collective measurement of the global phase-space invariants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvariantSample {
    /// Active particles with any non-finite phase-space component.
    pub non_finite: u64,
    /// Total momentum (unit particle mass), Σv.
    pub momentum: [f64; 3],
    /// Total kinetic energy, Σ½v².
    pub kinetic: f64,
    /// Global active-particle count.
    pub count: u64,
}

/// Tuning for the invariant watchdogs.
#[derive(Debug, Clone, Copy)]
pub struct InvariantConfig {
    /// Allowed total-momentum drift from the baseline, as a fraction of
    /// `count × v_rms` (the natural momentum scale of the population).
    pub momentum_tol: f64,
    /// Allowed per-assessment kinetic-energy growth factor.
    pub kinetic_growth_factor: f64,
}

impl Default for InvariantConfig {
    fn default() -> Self {
        // Loose gates: these must never fire on healthy accumulation
        // noise (PM interpolation asymmetry drifts momentum by ~1e-6 of
        // the scale per step; collapse grows KE by percents), only on
        // state corruption.
        InvariantConfig {
            momentum_tol: 0.05,
            kinetic_growth_factor: 100.0,
        }
    }
}

/// Outcome of one watchdog assessment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantVerdict {
    /// All monitors within bounds.
    Pass,
    /// A monitor tripped; the message names it with the numbers.
    Breach(String),
}

impl fmt::Display for InvariantVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantVerdict::Pass => write!(f, "invariants ok"),
            InvariantVerdict::Breach(m) => write!(f, "invariant breach: {m}"),
        }
    }
}

/// Stateful watchdog: remembers the momentum baseline and the previous
/// kinetic energy. Feed it the allreduced sample after every step; since
/// the sample is identical on every rank, so is the verdict.
#[derive(Debug, Clone)]
pub struct InvariantMonitor {
    cfg: InvariantConfig,
    baseline_momentum: Option<[f64; 3]>,
    prev_kinetic: Option<f64>,
}

impl InvariantMonitor {
    /// A monitor with no baseline yet; the first assessment establishes
    /// it.
    #[must_use]
    pub fn new(cfg: InvariantConfig) -> Self {
        InvariantMonitor {
            cfg,
            baseline_momentum: None,
            prev_kinetic: None,
        }
    }

    /// Drop the baselines. Call after any recovery that legitimately
    /// perturbs the global state (Tier-0 reconstruction replaces lost
    /// particles with force-noise-accurate replicas; Tier-1 rollback
    /// rewinds it), so stale baselines don't charge the new trajectory
    /// with a phantom drift.
    pub fn rebaseline(&mut self) {
        self.baseline_momentum = None;
        self.prev_kinetic = None;
    }

    /// Assess one sample against the configured gates.
    pub fn assess(&mut self, s: &InvariantSample) -> InvariantVerdict {
        if s.non_finite > 0 {
            return InvariantVerdict::Breach(format!(
                "{} particle(s) with non-finite phase-space state",
                s.non_finite
            ));
        }
        // Natural momentum scale: count × v_rms = sqrt(2·KE·count).
        let scale = (2.0 * s.kinetic * s.count as f64).sqrt().max(f64::EPSILON);
        if let Some(base) = self.baseline_momentum {
            let drift = (0..3)
                .map(|a| (s.momentum[a] - base[a]).abs())
                .fold(0.0f64, f64::max);
            if drift > self.cfg.momentum_tol * scale {
                return InvariantVerdict::Breach(format!(
                    "momentum drift {drift:.3e} exceeds {} of the population scale {scale:.3e}",
                    self.cfg.momentum_tol
                ));
            }
        } else {
            self.baseline_momentum = Some(s.momentum);
        }
        if let Some(prev) = self.prev_kinetic {
            if prev > 0.0 && s.kinetic > prev * self.cfg.kinetic_growth_factor {
                return InvariantVerdict::Breach(format!(
                    "kinetic energy exploded {prev:.3e} → {:.3e} in one step",
                    s.kinetic
                ));
            }
        }
        self.prev_kinetic = Some(s.kinetic);
        InvariantVerdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(p: [f64; 3], ke: f64) -> InvariantSample {
        InvariantSample {
            non_finite: 0,
            momentum: p,
            kinetic: ke,
            count: 1000,
        }
    }

    #[test]
    fn healthy_sequence_passes() {
        let mut m = InvariantMonitor::new(InvariantConfig::default());
        // v_rms = 1 ⇒ KE = 500, scale = 1000; drift well inside 5%.
        for k in 0..10 {
            let wiggle = 1e-3 * f64::from(k);
            let v = m.assess(&sample([wiggle, -wiggle, 0.0], 500.0 + f64::from(k)));
            assert_eq!(v, InvariantVerdict::Pass, "step {k}: {v}");
        }
    }

    #[test]
    fn nan_is_fatal_immediately() {
        let mut m = InvariantMonitor::new(InvariantConfig::default());
        let mut s = sample([0.0; 3], 500.0);
        s.non_finite = 3;
        match m.assess(&s) {
            InvariantVerdict::Breach(msg) => assert!(msg.contains("non-finite"), "{msg}"),
            v => panic!("expected breach, got {v}"),
        }
    }

    #[test]
    fn momentum_drift_beyond_tolerance_breaches() {
        let mut m = InvariantMonitor::new(InvariantConfig::default());
        assert_eq!(m.assess(&sample([0.0; 3], 500.0)), InvariantVerdict::Pass);
        // scale = sqrt(2·500·1000) = 1000; 5% gate ⇒ 50 < 100 drift fires.
        match m.assess(&sample([100.0, 0.0, 0.0], 500.0)) {
            InvariantVerdict::Breach(msg) => assert!(msg.contains("momentum drift"), "{msg}"),
            v => panic!("expected breach, got {v}"),
        }
    }

    #[test]
    fn kinetic_explosion_breaches_and_rebaseline_forgives() {
        let mut m = InvariantMonitor::new(InvariantConfig::default());
        assert_eq!(m.assess(&sample([0.0; 3], 500.0)), InvariantVerdict::Pass);
        match m.assess(&sample([0.0; 3], 500.0 * 200.0)) {
            InvariantVerdict::Breach(msg) => assert!(msg.contains("kinetic"), "{msg}"),
            v => panic!("expected breach, got {v}"),
        }
        // After a rollback the monitor restarts from the restored state.
        m.rebaseline();
        assert_eq!(m.assess(&sample([0.0; 3], 500.0)), InvariantVerdict::Pass);
        assert_eq!(m.assess(&sample([1.0, 0.0, 0.0], 510.0)), InvariantVerdict::Pass);
    }
}
