//! Fig. 11 reproduction: a massive halo and its subhalos.
//!
//! The paper visualizes a ~10¹⁵ M_sun halo with its subhalos colored
//! individually, each hosting one or more galaxies. We run the science
//! box to z = 0, find FOF halos at b = 0.2, split the most massive one
//! into subhalos at a shorter linking length, and print the catalog the
//! figure would be rendered from — plus the mass function against the
//! Sheth–Tormen comparator.

use hacc_analysis::{FofFinder, MassFunctionEstimate};
use hacc_bench::{print_table, reference_power, run_science_sim};
use hacc_core::SolverKind;
use hacc_cosmo::MassFunction;

fn main() {
    println!("Fig. 11: halo and subhalo catalog");
    let np = 24usize;
    let box_len = 96.0;
    let sim = run_science_sim(np, box_len, 18, SolverKind::TreePm, &[], |_, _| {});
    let (x, y, z) = sim.positions();
    let (vx, vy, vz) = sim.momenta();

    let finder = FofFinder::with_linking_param(box_len, np, 0.2, 20);
    let halos = finder.find_with_velocities(x, y, z, Some((vx, vy, vz)));
    let particle_mass = sim.config().particle_mass(sim.len());
    println!(
        "\nfound {} halos (≥20 particles); particle mass {:.2e} M_sun/h",
        halos.len(),
        particle_mass
    );

    let rows: Vec<Vec<String>> = halos
        .iter()
        .take(10)
        .enumerate()
        .map(|(i, h)| {
            vec![
                i.to_string(),
                h.count().to_string(),
                format!("{:.2e}", h.count() as f64 * particle_mass),
                format!(
                    "({:.1}, {:.1}, {:.1})",
                    h.center[0], h.center[1], h.center[2]
                ),
            ]
        })
        .collect();
    print_table(
        "Ten most massive halos",
        &["rank", "particles", "mass [Msun/h]", "center [Mpc/h]"],
        &rows,
    );

    if let Some(big) = halos.first() {
        let subs = finder.subhalos(big, x, y, z, 0.5, 5);
        if subs.len() <= 1 {
            println!(
                "\n(sub-structure unresolved: the most massive halo holds only {} particles\n\
                 at this laptop-scale mass resolution — the paper's 10^15 M_sun halo has\n\
                 ~10^5; the splitting machinery is exercised by the unit tests instead.)",
                big.count()
            );
        }
        let rows: Vec<Vec<String>> = subs
            .iter()
            .take(10)
            .enumerate()
            .map(|(i, s)| {
                vec![
                    i.to_string(),
                    s.count().to_string(),
                    format!("{:.2e}", s.count() as f64 * particle_mass),
                    format!(
                        "({:.1}, {:.1}, {:.1})",
                        s.center[0], s.center[1], s.center[2]
                    ),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Subhalos of the most massive halo ({} particles, b_sub = 0.08)",
                big.count()
            ),
            &["sub", "particles", "mass [Msun/h]", "center [Mpc/h]"],
            &rows,
        );
        println!(
            "\npaper reference: 'The main halo (red) is in a relatively relaxed\n\
             configuration; it will host a bright central galaxy as well as tens of\n\
             dimmer galaxies. Each sub-halo, depending on its mass, can host one or\n\
             more galaxies.'"
        );
    }

    // Mass function vs Sheth–Tormen.
    let est = MassFunctionEstimate::from_catalog(&halos, particle_mass, box_len.powi(3), 6);
    let power = reference_power();
    let rows: Vec<Vec<String>> = est
        .mass
        .iter()
        .zip(est.dn_dlnm.iter().zip(&est.count))
        .map(|(m, (dn, c))| {
            let st = MassFunction::ShethTormen.dn_dlnm(&power, *m, 1.0);
            vec![
                format!("{m:.2e}"),
                format!("{dn:.2e}"),
                format!("{st:.2e}"),
                c.to_string(),
            ]
        })
        .collect();
    print_table(
        "FOF mass function vs Sheth–Tormen at z = 0",
        &["M [Msun/h]", "measured dn/dlnM", "Sheth-Tormen", "halos"],
        &rows,
    );
}
