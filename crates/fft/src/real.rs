//! Real-to-complex / complex-to-real 3-D FFT over the Hermitian
//! half-spectrum.
//!
//! A real field's spectrum obeys `F(-k) = conj(F(k))`, so only the
//! non-negative z frequencies need storing: the half-spectrum layout is
//! `[nx][ny][nzh]` with `nzh = nz/2 + 1` (row-major, z fastest) — half
//! the memory and roughly half the flops of a complex transform. This is
//! the transform PMFAST-style memory-minimal PM solvers are built on and
//! what the production HACC line uses to fit trillion-particle grids.
//!
//! The z pass uses the classic pair-packing trick, valid for any `nz`
//! (odd or even): two real lines `a`, `b` are packed as `z = a + i·b`,
//! transformed once, and untangled via
//! `A[k] = (Z[k] + conj(Z[-k]))/2`, `B[k] = -i·(Z[k] - conj(Z[-k]))/2`.
//! The y and x passes then run standard complex FFTs over the `nzh`
//! retained columns, reusing the pass machinery of [`crate::dim3`].
//!
//! Scratch comes from an internal [`BufPool`]; repeated transforms on a
//! warm plan perform zero heap allocations.

use rayon::prelude::*;

use crate::complex::Complex64;
use crate::dim3::{pass_x, pass_y, BATCH};
use crate::plan::Fft1d;
use crate::scratch::BufPool;

/// Serial (shared-memory) r2c/c2r 3-D FFT plan.
#[derive(Debug)]
pub struct RealFft3 {
    nx: usize,
    ny: usize,
    nz: usize,
    nzh: usize,
    plan_x: Fft1d,
    plan_y: Fft1d,
    plan_z: Fft1d,
    pool: BufPool,
}

impl Clone for RealFft3 {
    fn clone(&self) -> Self {
        RealFft3 {
            nx: self.nx,
            ny: self.ny,
            nz: self.nz,
            nzh: self.nzh,
            plan_x: self.plan_x.clone(),
            plan_y: self.plan_y.clone(),
            plan_z: self.plan_z.clone(),
            pool: BufPool::new(),
        }
    }
}

impl RealFft3 {
    /// Plan for a cubic `n³` grid.
    #[must_use] 
    pub fn new_cubic(n: usize) -> Self {
        Self::new(n, n, n)
    }

    /// Plan for a general `nx × ny × nz` grid.
    #[must_use] 
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0);
        RealFft3 {
            nx,
            ny,
            nz,
            nzh: nz / 2 + 1,
            plan_x: Fft1d::new(nx),
            plan_y: Fft1d::new(ny),
            plan_z: Fft1d::new(nz),
            pool: BufPool::new(),
        }
    }

    /// Real-space dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Retained z bins of the half-spectrum, `nz/2 + 1`.
    pub fn nzh(&self) -> usize {
        self.nzh
    }

    /// Number of real grid points.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// True only for a degenerate empty grid.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of retained spectral coefficients, `nx·ny·nzh`.
    pub fn spectrum_len(&self) -> usize {
        self.nx * self.ny * self.nzh
    }

    /// Unnormalized forward r2c transform: `input` (real layout, length
    /// [`RealFft3::len`]) is preserved; the half-spectrum is written to
    /// `spec` (length [`RealFft3::spectrum_len`]).
    pub fn forward(&self, input: &[f64], spec: &mut [Complex64]) {
        assert_eq!(input.len(), self.len(), "real grid size mismatch");
        assert_eq!(spec.len(), self.spectrum_len(), "spectrum size mismatch");
        let (nz, nzh) = (self.nz, self.nzh);
        // z pass: pair-packed real lines in batched bundles — up to
        // 2·BATCH real lines pack into ≤ BATCH complex lanes per kernel
        // call (an odd remainder line rides along as its own lane).
        input
            .par_chunks(2 * BATCH * nz)
            .zip(spec.par_chunks_mut(2 * BATCH * nzh))
            .for_each_init(
                || {
                    (
                        self.pool.lease(BATCH * nz),
                        self.pool.lease(self.plan_z.scratch_len_batch(BATCH)),
                    )
                },
                |(zbuf, scratch), (src, dst)| {
                    r2c_lines(&self.plan_z, src, dst, nz, nzh, zbuf, scratch);
                },
            );
        pass_y(&self.plan_y, spec, self.ny, nzh, false, &self.pool);
        pass_x(&self.plan_x, spec, self.ny, nzh, false, &self.pool);
    }

    /// Normalized backward c2r transform (divides by `nx·ny·nz`): the
    /// half-spectrum in `spec` is consumed (clobbered in place) and the
    /// real field written to `out`.
    ///
    /// Bins whose implied mirror is stored (z index 0 and, for even `nz`,
    /// the Nyquist plane) are treated as self-conjugate: only the values
    /// present in `spec` contribute, exactly as if the full Hermitian
    /// spectrum had been synthesized.
    pub fn backward(&self, spec: &mut [Complex64], out: &mut [f64]) {
        assert_eq!(spec.len(), self.spectrum_len(), "spectrum size mismatch");
        assert_eq!(out.len(), self.len(), "real grid size mismatch");
        let (nz, nzh) = (self.nz, self.nzh);
        // Unnormalized inverse x and y passes on the half-spectrum.
        pass_x(&self.plan_x, spec, self.ny, nzh, true, &self.pool);
        pass_y(&self.plan_y, spec, self.ny, nzh, true, &self.pool);
        // z pass: rebuild full conjugate-symmetric z lines in pairs and
        // inverse-transform; single global normalization on the output.
        let inv = 1.0 / self.len() as f64;
        spec.par_chunks(2 * BATCH * nzh)
            .zip(out.par_chunks_mut(2 * BATCH * nz))
            .for_each_init(
                || {
                    (
                        self.pool.lease(BATCH * nz),
                        self.pool.lease(self.plan_z.scratch_len_batch(BATCH)),
                    )
                },
                |(zbuf, scratch), (src, dst)| {
                    c2r_lines(&self.plan_z, src, dst, nz, nzh, inv, zbuf, scratch);
                },
            );
    }
}

/// Forward-transform a bundle of real z lines into half-spectrum rows.
/// `src` holds `L = src.len()/nz ≤ 2·BATCH` lines: consecutive pairs
/// pack as `a + i·b` complex lanes (an odd trailing line becomes its own
/// `a + i·0` lane), the whole bundle runs through **one** batched
/// transform, and each lane untangles into its spectrum row(s). Shared
/// by the serial and pencil r2c paths.
pub(crate) fn r2c_lines(
    plan_z: &Fft1d,
    src: &[f64],
    dst: &mut [Complex64],
    nz: usize,
    nzh: usize,
    zbuf: &mut [Complex64],
    scratch: &mut [Complex64],
) {
    debug_assert!(src.len().is_multiple_of(nz));
    let lines = src.len() / nz;
    let pairs = lines / 2;
    let b = pairs + lines % 2;
    debug_assert!((1..=BATCH).contains(&b));
    let zbuf = &mut zbuf[..nz * b];
    // Pack: lane bi < pairs carries lines (2bi, 2bi+1) as a + i·b; a
    // trailing odd line rides as lane `pairs` with zero imaginary part.
    for bi in 0..pairs {
        let a = &src[2 * bi * nz..(2 * bi + 1) * nz];
        let bl = &src[(2 * bi + 1) * nz..(2 * bi + 2) * nz];
        for j in 0..nz {
            zbuf[j * b + bi] = Complex64::new(a[j], bl[j]);
        }
    }
    if lines % 2 == 1 {
        let a = &src[(lines - 1) * nz..];
        for j in 0..nz {
            zbuf[j * b + pairs] = Complex64::new(a[j], 0.0);
        }
    }
    plan_z.transform_batch(zbuf, b, scratch, false);
    // Untangle each packed lane into its two spectrum rows.
    for bi in 0..pairs {
        let (da, db) = dst[2 * bi * nzh..(2 * bi + 2) * nzh].split_at_mut(nzh);
        for k in 0..nzh {
            let zk = zbuf[k * b + bi];
            let zm = zbuf[((nz - k) % nz) * b + bi];
            da[k] = Complex64::new(0.5 * (zk.re + zm.re), 0.5 * (zk.im - zm.im));
            db[k] = Complex64::new(0.5 * (zk.im + zm.im), 0.5 * (zm.re - zk.re));
        }
    }
    if lines % 2 == 1 {
        let d = &mut dst[(lines - 1) * nzh..];
        for k in 0..nzh {
            d[k] = zbuf[k * b + pairs];
        }
    }
}

/// Inverse of [`r2c_lines`]: synthesize full conjugate-symmetric z lanes
/// from half-spectrum rows, inverse-transform the bundle in one batched
/// call, and write the real output scaled by `inv`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn c2r_lines(
    plan_z: &Fft1d,
    src: &[Complex64],
    dst: &mut [f64],
    nz: usize,
    nzh: usize,
    inv: f64,
    zbuf: &mut [Complex64],
    scratch: &mut [Complex64],
) {
    debug_assert!(dst.len().is_multiple_of(nz));
    let lines = dst.len() / nz;
    let pairs = lines / 2;
    let b = pairs + lines % 2;
    debug_assert!((1..=BATCH).contains(&b));
    let zbuf = &mut zbuf[..nz * b];
    for bi in 0..pairs {
        let (a, bl) = src[2 * bi * nzh..(2 * bi + 2) * nzh].split_at(nzh);
        for k in 0..nzh {
            // A + i·B.
            zbuf[k * b + bi] = Complex64::new(a[k].re - bl[k].im, a[k].im + bl[k].re);
        }
        for k in nzh..nz {
            // conj(A[nz-k]) + i·conj(B[nz-k]).
            let am = a[nz - k];
            let bm = bl[nz - k];
            zbuf[k * b + bi] = Complex64::new(am.re + bm.im, bm.re - am.im);
        }
    }
    if lines % 2 == 1 {
        let s = &src[(lines - 1) * nzh..];
        for k in 0..nzh {
            zbuf[k * b + pairs] = s[k];
        }
        for k in nzh..nz {
            zbuf[k * b + pairs] = s[nz - k].conj();
        }
    }
    plan_z.transform_batch(zbuf, b, scratch, true);
    for bi in 0..pairs {
        let (da, db) = dst[2 * bi * nz..(2 * bi + 2) * nz].split_at_mut(nz);
        for j in 0..nz {
            let z = zbuf[j * b + bi];
            da[j] = z.re * inv;
            db[j] = z.im * inv;
        }
    }
    if lines % 2 == 1 {
        let d = &mut dst[(lines - 1) * nz..];
        for j in 0..nz {
            d[j] = zbuf[j * b + pairs].re * inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim3::Fft3;

    fn rand_real(len: usize, seed: u64) -> Vec<f64> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) - 0.5
        };
        (0..len).map(|_| next()).collect()
    }

    /// Full c2c spectrum of a real field, for cross-checking.
    fn c2c_spectrum(field: &[f64], nx: usize, ny: usize, nz: usize) -> Vec<Complex64> {
        let mut data: Vec<Complex64> =
            field.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        Fft3::new(nx, ny, nz).forward(&mut data);
        data
    }

    #[test]
    fn half_spectrum_matches_c2c() {
        for (nx, ny, nz) in [(4, 4, 4), (6, 5, 7), (3, 8, 9), (5, 5, 5), (2, 2, 2)] {
            let field = rand_real(nx * ny * nz, 42 + (nx * ny * nz) as u64);
            let want = c2c_spectrum(&field, nx, ny, nz);
            let plan = RealFft3::new(nx, ny, nz);
            let mut spec = vec![Complex64::ZERO; plan.spectrum_len()];
            plan.forward(&field, &mut spec);
            let nzh = plan.nzh();
            let mut err: f64 = 0.0;
            for ix in 0..nx {
                for iy in 0..ny {
                    for iz in 0..nzh {
                        let got = spec[(ix * ny + iy) * nzh + iz];
                        let w = want[(ix * ny + iy) * nz + iz];
                        err = err.max((got - w).abs());
                    }
                }
            }
            assert!(err < 1e-10, "dims {nx}x{ny}x{nz}: err {err}");
        }
    }

    #[test]
    fn roundtrip_identity_including_non_pow2() {
        for (nx, ny, nz) in [(8, 8, 8), (6, 10, 15), (7, 7, 7), (12, 9, 5), (2, 3, 2)] {
            let field = rand_real(nx * ny * nz, 7 + nz as u64);
            let plan = RealFft3::new(nx, ny, nz);
            let mut spec = vec![Complex64::ZERO; plan.spectrum_len()];
            plan.forward(&field, &mut spec);
            let mut back = vec![0.0f64; plan.len()];
            plan.backward(&mut spec, &mut back);
            let err = field
                .iter()
                .zip(&back)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-12, "dims {nx}x{ny}x{nz}: err {err}");
        }
    }

    #[test]
    fn repeated_transforms_reuse_pool() {
        let plan = RealFft3::new_cubic(8);
        let field = rand_real(512, 3);
        let mut spec = vec![Complex64::ZERO; plan.spectrum_len()];
        let mut out = vec![0.0f64; plan.len()];
        plan.forward(&field, &mut spec);
        plan.backward(&mut spec, &mut out);
        let idle = plan.pool.idle();
        assert!(idle > 0);
        for _ in 0..3 {
            plan.forward(&field, &mut spec);
            plan.backward(&mut spec, &mut out);
        }
        // Steady state: the pool neither grows nor shrinks.
        assert_eq!(plan.pool.idle(), idle);
    }

    #[test]
    fn dc_bin_is_sum_and_real() {
        let (nx, ny, nz) = (4, 3, 5);
        let field = rand_real(nx * ny * nz, 11);
        let plan = RealFft3::new(nx, ny, nz);
        let mut spec = vec![Complex64::ZERO; plan.spectrum_len()];
        plan.forward(&field, &mut spec);
        let sum: f64 = field.iter().sum();
        assert!((spec[0].re - sum).abs() < 1e-10);
        assert!(spec[0].im.abs() < 1e-10);
    }
}
