//! Binned halo mass functions from FOF catalogs.
//!
//! Converts a halo catalog into `dn/dlnM` points directly comparable to
//! the analytic Press–Schechter / Sheth–Tormen predictions in
//! `hacc-cosmo` — the "powerful cosmological probe" of Section V.

use crate::fof::Halo;

/// A measured mass function.
#[derive(Debug, Clone)]
pub struct MassFunctionEstimate {
    /// Bin-center masses, M_sun/h.
    pub mass: Vec<f64>,
    /// `dn/dlnM` in (h/Mpc)³.
    pub dn_dlnm: Vec<f64>,
    /// Halos per bin.
    pub count: Vec<u64>,
}

impl MassFunctionEstimate {
    /// Bin halos by mass.
    ///
    /// `particle_mass` converts member counts to M_sun/h; `volume` is the
    /// box volume in (Mpc/h)³; bins are logarithmic between the least and
    /// most massive halo.
    pub fn from_catalog(
        halos: &[Halo],
        particle_mass: f64,
        volume: f64,
        bins: usize,
    ) -> Self {
        assert!(bins >= 1 && volume > 0.0 && particle_mass > 0.0);
        if halos.is_empty() {
            return MassFunctionEstimate {
                mass: Vec::new(),
                dn_dlnm: Vec::new(),
                count: Vec::new(),
            };
        }
        let masses: Vec<f64> = halos
            .iter()
            .map(|h| h.count() as f64 * particle_mass)
            .collect();
        let lo = masses.iter().copied().fold(f64::INFINITY, f64::min).ln();
        let hi = masses.iter().copied().fold(0.0, f64::max).ln() * (1.0 + 1e-12) + 1e-12;
        let dln = ((hi - lo) / bins as f64).max(1e-12);
        let mut count = vec![0u64; bins];
        for m in &masses {
            let b = (((m.ln() - lo) / dln) as usize).min(bins - 1);
            count[b] += 1;
        }
        let mut out = MassFunctionEstimate {
            mass: Vec::new(),
            dn_dlnm: Vec::new(),
            count: Vec::new(),
        };
        for (b, &n) in count.iter().enumerate() {
            if n > 0 {
                out.mass.push((lo + (b as f64 + 0.5) * dln).exp());
                out.dn_dlnm.push(n as f64 / volume / dln);
                out.count.push(n);
            }
        }
        out
    }

    /// Cumulative abundance above mass `m` (per volume).
    #[must_use] 
    pub fn n_above(&self, m: f64, volume_weighted_counts: f64) -> f64 {
        let total: u64 = self
            .mass
            .iter()
            .zip(&self.count)
            .filter(|(mm, _)| **mm >= m)
            .map(|(_, c)| *c)
            .sum();
        total as f64 / volume_weighted_counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fof::Halo;

    fn halo_of(n: usize) -> Halo {
        Halo {
            members: vec![0; n],
            center: [0.0; 3],
            mean_velocity: [0.0; 3],
        }
    }

    #[test]
    fn binning_counts_everything() {
        let halos: Vec<Halo> = [10, 20, 40, 80, 160, 320].iter().map(|&n| halo_of(n)).collect();
        let est = MassFunctionEstimate::from_catalog(&halos, 1e10, 1e6, 5);
        let total: u64 = est.count.iter().sum();
        assert_eq!(total, 6);
        // Mass bins ascend.
        for w in est.mass.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn more_small_halos_means_decreasing_function() {
        let mut halos = Vec::new();
        for _ in 0..100 {
            halos.push(halo_of(10));
        }
        for _ in 0..5 {
            halos.push(halo_of(1000));
        }
        let est = MassFunctionEstimate::from_catalog(&halos, 1e10, 1e6, 4);
        assert!(est.dn_dlnm.first().expect("bins") > est.dn_dlnm.last().expect("bins"));
    }

    #[test]
    fn empty_catalog() {
        let est = MassFunctionEstimate::from_catalog(&[], 1e10, 1e6, 4);
        assert!(est.mass.is_empty());
    }

    #[test]
    fn single_halo_lands_in_one_bin() {
        let est = MassFunctionEstimate::from_catalog(&[halo_of(100)], 1e10, 1e6, 3);
        assert_eq!(est.count.iter().sum::<u64>(), 1);
    }

    #[test]
    fn n_above_cumulative() {
        let halos: Vec<Halo> = [10, 100, 1000].iter().map(|&n| halo_of(n)).collect();
        let est = MassFunctionEstimate::from_catalog(&halos, 1.0, 1.0, 3);
        assert_eq!(est.n_above(50.0, 1.0), 2.0);
        assert_eq!(est.n_above(5000.0, 1.0), 0.0);
    }
}
