//! Serial (shared-memory) spectral Poisson solver.
//!
//! Solves `∇²φ = source` on a periodic `n³` grid and returns the force
//! field `F = -∇φ`, with all HACC kernels composed in k-space: the
//! "Poisson-solve" costs one forward FFT, and each gradient component one
//! independent inverse FFT (Section II).
//!
//! The production path works on the Hermitian half-spectrum
//! (`n × n × (n/2+1)` bins) via [`RealFft3`]: the density is real, so
//! one r2c forward plus three c2r inverses does the same job as the
//! complex solve at roughly half the flops and memory traffic. The
//! influence×filter and gradient kernels are precomputed into tables at
//! construction, and a single shared spectrum feeds all three gradient
//! components — no per-component clone of ρ(k). The complex-to-complex
//! path is retained as [`PmSolver::solve_forces_c2c`] as a bit-level
//! reference for regression tests.

use std::sync::Mutex;

use hacc_fft::{Complex64, Fft3, RealFft3};
use rayon::prelude::*;

use crate::spectral::SpectralParams;

/// Reusable spectral scratch: the shared filtered spectrum and the
/// per-component gradient spectrum. Grown once, reused every solve.
#[derive(Default)]
struct PmWorkspace {
    base: Vec<Complex64>,
    comp: Vec<Complex64>,
}

/// A reusable spectral solver for a fixed grid.
pub struct PmSolver {
    n: usize,
    nzh: usize,
    box_len: f64,
    params: SpectralParams,
    /// Complex reference path (kept for regression checks).
    fft: Fft3,
    /// Production half-spectrum path.
    rfft: RealFft3,
    /// Influence×filter table over the half-spectrum, `n·n·nzh` entries
    /// in the same row-major layout as the spectrum itself.
    gs: Vec<f64>,
    /// 1-D gradient multiplier table, one entry per global index. The
    /// grid is cubic so all three components share it.
    grad: Vec<f64>,
    ws: Mutex<PmWorkspace>,
}

impl PmSolver {
    /// Create a solver for an `n³` grid over a periodic box of side
    /// `box_len` (any length units; forces come out in source·length).
    #[must_use] 
    pub fn new(n: usize, box_len: f64, params: SpectralParams) -> Self {
        assert!(n > 1, "grid too small");
        let nzh = n / 2 + 1;
        let d = box_len / n as f64;
        let mut gs = vec![0.0f64; n * n * nzh];
        gs.par_chunks_mut(n * nzh).enumerate().for_each(|(ix, pl)| {
            for iy in 0..n {
                for iz in 0..nzh {
                    let idx = [ix, iy, iz];
                    pl[iy * nzh + iz] = params.influence(idx, n, d) * params.filter(idx, n, d);
                }
            }
        });
        let mut grad: Vec<f64> = (0..n).map(|i| params.gradient(i, n, d)).collect();
        if n.is_multiple_of(2) {
            // A Hermitian-consistent odd multiplier must vanish at the
            // Nyquist index (k ≡ -k there). The c2c reference reaches the
            // same answer implicitly: a nonzero D(n/2) makes the Nyquist
            // plane of -i·D·φ purely anti-Hermitian, and truncating the
            // inverse transform to `.re` discards exactly that plane.
            grad[n / 2] = 0.0;
        }
        PmSolver {
            n,
            nzh,
            box_len,
            params,
            fft: Fft3::new_cubic(n),
            rfft: RealFft3::new_cubic(n),
            gs,
            grad,
            ws: Mutex::new(PmWorkspace::default()),
        }
    }

    /// Create a solver with caller-supplied spectral tables: `gs` is the
    /// scalar (influence×filter-like) half-spectrum table (`n·n·(n/2+1)`
    /// entries) and `grad` the 1-D gradient multiplier (`n` entries,
    /// already zeroed at Nyquist if Hermitian consistency requires it).
    /// The two-level mesh uses this to run its coarse level — a low-pass
    /// filtered, window-deconvolved variant of the standard kernel —
    /// through the identical pooled, allocation-free solve path.
    pub(crate) fn with_tables(
        n: usize,
        box_len: f64,
        params: SpectralParams,
        gs: Vec<f64>,
        grad: Vec<f64>,
    ) -> Self {
        assert!(n > 1, "grid too small");
        let nzh = n / 2 + 1;
        assert_eq!(gs.len(), n * n * nzh, "scalar table size");
        assert_eq!(grad.len(), n, "gradient table size");
        PmSolver {
            n,
            nzh,
            box_len,
            params,
            fft: Fft3::new_cubic(n),
            rfft: RealFft3::new_cubic(n),
            gs,
            grad,
            ws: Mutex::new(PmWorkspace::default()),
        }
    }

    /// Scalar (influence×filter) half-spectrum table, `n·n·(n/2+1)`
    /// row-major entries — exposed so the two-level split can verify
    /// complementarity against the exact tables the solver applies.
    #[must_use]
    pub fn scalar_table(&self) -> &[f64] {
        &self.gs
    }

    /// 1-D gradient multiplier table (`n` entries, Nyquist-zeroed for
    /// even `n`).
    #[must_use]
    pub fn gradient_table(&self) -> &[f64] {
        &self.grad
    }

    /// Grid points per side.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Cell size Δ.
    pub fn delta(&self) -> f64 {
        self.box_len / self.n as f64
    }

    /// Box side length.
    pub fn box_len(&self) -> f64 {
        self.box_len
    }

    /// Spectral parameters in use.
    pub fn params(&self) -> &SpectralParams {
        &self.params
    }

    /// Multiply the half-spectrum by the influence×filter table.
    fn apply_influence(&self, spec: &mut [Complex64]) {
        spec.par_iter_mut()
            .zip(self.gs.par_iter())
            .for_each(|(v, &g)| *v = v.scale(g));
    }

    /// Write `comp = -i·D_axis·base` over the half-spectrum.
    ///
    /// With the gradient table zeroed at DC and Nyquist the multiplier
    /// is an exactly odd function of its axis index, so the product
    /// stays Hermitian and the c2r inverse loses nothing.
    fn apply_gradient(&self, base: &[Complex64], comp: &mut [Complex64], axis: usize) {
        let (n, nzh) = (self.n, self.nzh);
        let grad = &self.grad;
        comp.par_chunks_mut(n * nzh)
            .enumerate()
            .for_each(|(ix, cp)| {
                let bp = &base[ix * n * nzh..(ix + 1) * n * nzh];
                for iy in 0..n {
                    let row = iy * nzh;
                    if axis < 2 {
                        let d = if axis == 0 { grad[ix] } else { grad[iy] };
                        for iz in 0..nzh {
                            let v = bp[row + iz];
                            cp[row + iz] = Complex64::new(v.im * d, -v.re * d);
                        }
                    } else {
                        for iz in 0..nzh {
                            let d = grad[iz];
                            let v = bp[row + iz];
                            cp[row + iz] = Complex64::new(v.im * d, -v.re * d);
                        }
                    }
                }
            });
    }

    /// Solve for the potential: `φ = FFT⁻¹[ G(k)·S(k)·FFT[source] ]`,
    /// writing into `out` (resized as needed, no allocation once warm).
    pub fn solve_potential_into(&self, source: &[f64], out: &mut Vec<f64>) {
        let mut ws = self.ws.lock().expect("pm workspace poisoned");
        let base = &mut ws.base;
        base.resize(self.rfft.spectrum_len(), Complex64::ZERO);
        self.rfft.forward(source, base);
        self.apply_influence(base);
        out.resize(self.n * self.n * self.n, 0.0);
        self.rfft.backward(base, out);
    }

    /// Solve for the potential, returning a fresh grid.
    pub fn solve_potential(&self, source: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.solve_potential_into(source, &mut out);
        out
    }

    /// Solve for the force field `F = -∇φ` where `∇²φ = source`,
    /// writing the three component grids into `out` (resized as needed;
    /// allocation-free once the buffers are warm).
    ///
    /// Cost: 1 r2c forward + 3 c2r inverses on the half-spectrum. The
    /// filtered spectrum is computed once and shared by all components.
    pub fn solve_forces_into(&self, source: &[f64], out: &mut [Vec<f64>; 3]) {
        let mut ws = self.ws.lock().expect("pm workspace poisoned");
        let PmWorkspace { base, comp } = &mut *ws;
        let slen = self.rfft.spectrum_len();
        base.resize(slen, Complex64::ZERO);
        comp.resize(slen, Complex64::ZERO);
        self.rfft.forward(source, base);
        self.apply_influence(base);
        for (c, slot) in out.iter_mut().enumerate() {
            slot.resize(self.n * self.n * self.n, 0.0);
            // F_c(k) = -i·D_c(k)·φ(k).
            self.apply_gradient(base, comp, c);
            self.rfft.backward(comp, slot);
        }
    }

    /// Solve for the force field, returning fresh component grids.
    pub fn solve_forces(&self, source: &[f64]) -> [Vec<f64>; 3] {
        let mut out = [Vec::new(), Vec::new(), Vec::new()];
        self.solve_forces_into(source, &mut out);
        out
    }

    /// Complex-to-complex reference force solve (the original
    /// implementation). Kept to pin the half-spectrum path: both must
    /// agree to ≲1e-10 on any real source.
    pub fn solve_forces_c2c(&self, source: &[f64]) -> [Vec<f64>; 3] {
        let mut rho = self.to_complex(source);
        self.fft.forward(&mut rho);
        let (n, d) = (self.n, self.delta());
        let p = self.params;
        // Common factor: φ(k) = G·S·ρ(k).
        self.apply_kernel(&mut rho, |idx| {
            Complex64::new(p.influence(idx, n, d) * p.filter(idx, n, d), 0.0)
        });
        let mut out: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (c, slot) in out.iter_mut().enumerate() {
            let mut comp = rho.clone();
            // F_c(k) = -i·D_c(k)·φ(k).
            self.apply_kernel(&mut comp, |idx| {
                Complex64::new(0.0, -p.gradient(idx[c], n, d))
            });
            self.fft.backward(&mut comp);
            *slot = comp.par_iter().map(|v| v.re).collect();
        }
        out
    }

    fn to_complex(&self, source: &[f64]) -> Vec<Complex64> {
        assert_eq!(source.len(), self.n * self.n * self.n);
        source.par_iter().map(|&v| Complex64::new(v, 0.0)).collect()
    }

    /// Apply a complex-valued k-space kernel element-wise on the full
    /// spectrum; `f` receives the global grid indices of each mode.
    fn apply_kernel<F>(&self, data: &mut [Complex64], f: F)
    where
        F: Fn([usize; 3]) -> Complex64 + Sync,
    {
        let n = self.n;
        data.par_chunks_mut(n * n)
            .enumerate()
            .for_each(|(ix, plane)| {
                for iy in 0..n {
                    for iz in 0..n {
                        let k = f([ix, iy, iz]);
                        plane[iy * n + iz] *= k;
                    }
                }
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cic::{deposit_cic, interpolate_cic};

    /// Exact-spectral variant (no filter beyond necessities) for analytic
    /// comparisons.
    fn exact_params() -> SpectralParams {
        SpectralParams {
            sigma: 0.0,
            ns: 0,
            sixth_order_influence: false,
            super_lanczos_gradient: false,
        }
    }

    fn rand_density(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed | 1;
        (0..n * n * n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s as f64 / u64::MAX as f64) - 0.5
            })
            .collect()
    }

    #[test]
    #[cfg_attr(miri, ignore = "FFT-heavy accuracy test; miri exercises the unsafe paths via the small-grid tests")]
    fn sine_density_gives_analytic_force() {
        // source = A·sin(k₀x) ⇒ φ = -A sin(k₀x)/k₀², F_x = A cos(k₀x)/k₀.
        let n = 32;
        let l = 2.0 * std::f64::consts::PI;
        let solver = PmSolver::new(n, l, exact_params());
        let k0 = 2.0 * std::f64::consts::PI / l; // fundamental
        let a = 0.7;
        let mut src = vec![0.0; n * n * n];
        for ix in 0..n {
            let x = ix as f64 * l / n as f64;
            let v = a * (k0 * x).sin();
            for e in src[ix * n * n..(ix + 1) * n * n].iter_mut() {
                *e = v;
            }
        }
        let f = solver.solve_forces(&src);
        for ix in 0..n {
            let x = ix as f64 * l / n as f64;
            let want = a * (k0 * x).cos() / k0;
            let got = f[0][(ix * n + 3) * n + 5];
            assert!((got - want).abs() < 1e-10, "ix={ix}: {got} vs {want}");
            // y and z components vanish.
            assert!(f[1][(ix * n + 3) * n + 5].abs() < 1e-10);
            assert!(f[2][(ix * n + 3) * n + 5].abs() < 1e-10);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "FFT-heavy accuracy test; miri exercises the unsafe paths via the small-grid tests")]
    fn potential_of_sine_matches() {
        let n = 16;
        let l = 1.0;
        let solver = PmSolver::new(n, l, exact_params());
        let k0 = 2.0 * std::f64::consts::PI / l;
        let mut src = vec![0.0; n * n * n];
        for iy in 0..n {
            let y = iy as f64 / n as f64;
            for ix in 0..n {
                for iz in 0..n {
                    src[(ix * n + iy) * n + iz] = (k0 * y).sin();
                }
            }
        }
        let phi = solver.solve_potential(&src);
        for iy in 0..n {
            let y = iy as f64 / n as f64;
            let want = -(k0 * y).sin() / (k0 * k0);
            let got = phi[(2 * n + iy) * n + 7];
            assert!((got - want).abs() < 1e-12, "iy={iy}");
        }
    }

    #[test]
    fn mean_mode_is_projected_out() {
        // A uniform source has no effect (G(0) = 0): forces vanish.
        let n = 8;
        let solver = PmSolver::new(n, 10.0, SpectralParams::default());
        let src = vec![5.0; n * n * n];
        let f = solver.solve_forces(&src);
        for c in &f {
            for v in c {
                assert!(v.abs() < 1e-12);
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "FFT-heavy accuracy test; miri exercises the unsafe paths via the small-grid tests")]
    fn force_field_sums_to_zero() {
        // Momentum conservation: Σ_cells F = 0 for any source.
        let n = 16;
        let solver = PmSolver::new(n, 16.0, SpectralParams::default());
        let mut src = vec![0.0; n * n * n];
        deposit_cic(
            &mut src,
            n,
            &[3.3, 9.1, 12.7],
            &[4.4, 2.2, 8.8],
            &[5.5, 11.0, 1.1],
            1.0,
        );
        let f = solver.solve_forces(&src);
        for c in &f {
            let sum: f64 = c.iter().sum();
            assert!(sum.abs() < 1e-8, "component sum {sum}");
        }
    }

    /// The half-spectrum production path must reproduce the complex
    /// reference solve on a random density field (tentpole regression).
    #[test]
    #[cfg_attr(miri, ignore = "FFT-heavy accuracy test; miri exercises the unsafe paths via the small-grid tests")]
    fn r2c_forces_match_c2c_reference_64() {
        let n = 64;
        let src = rand_density(n, 20120931);
        for (params, tag) in [
            (SpectralParams::default(), "default"),
            (exact_params(), "exact"),
        ] {
            let solver = PmSolver::new(n, 130.0, params);
            let fast = solver.solve_forces(&src);
            let reference = solver.solve_forces_c2c(&src);
            let mut max = 0.0f64;
            for c in 0..3 {
                for (a, b) in fast[c].iter().zip(&reference[c]) {
                    max = max.max((a - b).abs());
                }
            }
            assert!(max <= 1e-10, "{tag}: max abs diff {max:e}");
        }
    }

    /// Same agreement requirement for odd grids, where no Nyquist plane
    /// exists and the self-conjugate set is just the DC bin.
    #[test]
    #[cfg_attr(miri, ignore = "FFT-heavy accuracy test; miri exercises the unsafe paths via the small-grid tests")]
    fn r2c_forces_match_c2c_reference_odd_grid() {
        let n = 9;
        let src = rand_density(n, 77);
        for params in [SpectralParams::default(), exact_params()] {
            let solver = PmSolver::new(n, 9.0, params);
            let fast = solver.solve_forces(&src);
            let reference = solver.solve_forces_c2c(&src);
            for c in 0..3 {
                for (a, b) in fast[c].iter().zip(&reference[c]) {
                    assert!((a - b).abs() <= 1e-10);
                }
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "FFT-heavy accuracy test; miri exercises the unsafe paths via the small-grid tests")]
    fn solve_into_reuses_buffers_and_matches() {
        let n = 12;
        let solver = PmSolver::new(n, 24.0, SpectralParams::default());
        let src = rand_density(n, 5);
        let want = solver.solve_forces(&src);
        let mut out = [Vec::new(), Vec::new(), Vec::new()];
        // Two rounds into the same buffers; second must be identical.
        solver.solve_forces_into(&src, &mut out);
        solver.solve_forces_into(&src, &mut out);
        for c in 0..3 {
            assert_eq!(out[c], want[c]);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "FFT-heavy accuracy test; miri exercises the unsafe paths via the small-grid tests")]
    fn pair_force_attractive_and_newtonian_at_medium_range() {
        // Two particles 8 cells apart on a 32³ grid: grid force should be
        // within ~5% of Newtonian -1/r² (normalization: source = 4π·δ mass
        // ⇒ here source is raw CIC mass, so F = m/(4π r²)... we test the
        // *ratio* between two separations instead of absolute scale).
        let n = 32;
        let solver = PmSolver::new(n, n as f64, SpectralParams::default());
        let force_at = |r: f32| -> f64 {
            let mut src = vec![0.0; n * n * n];
            deposit_cic(&mut src, n, &[8.0], &[16.0], &[16.0], 1.0);
            let f = solver.solve_forces(&src);
            let fx = interpolate_cic(&f[0], n, &[8.0 + r], &[16.0], &[16.0]);
            f64::from(fx[0])
        };
        let f6 = force_at(6.0);
        let f12 = force_at(12.0);
        // Attractive: force points back toward the source (negative x).
        assert!(f6 < 0.0 && f12 < 0.0, "f6 {f6}, f12 {f12}");
        let ratio = f6 / f12;
        // Bare 1/r² gives 4; at r = 12 on a 32-cell periodic box the
        // attraction from images beyond the half-box noticeably weakens
        // the far force, pushing the ratio above 4.
        assert!(ratio > 3.2 && ratio < 6.5, "ratio {ratio}");
    }

    #[test]
    #[cfg_attr(miri, ignore = "FFT-heavy accuracy test; miri exercises the unsafe paths via the small-grid tests")]
    fn filtered_force_suppressed_below_matching_scale() {
        // Inside ~1 cell the spectrally filtered grid force falls well
        // below Newtonian — that's what the short-range kernel restores.
        let n = 32;
        let solver = PmSolver::new(n, n as f64, SpectralParams::default());
        let mut src = vec![0.0; n * n * n];
        deposit_cic(&mut src, n, &[16.0], &[16.0], &[16.0], 1.0);
        let f = solver.solve_forces(&src);
        let near = f64::from(interpolate_cic(&f[0], n, &[16.5], &[16.0], &[16.0])[0].abs());
        let far = f64::from(interpolate_cic(&f[0], n, &[22.0], &[16.0], &[16.0])[0].abs());
        // Newtonian would make near/far = (6/0.5)² = 144; the filter caps
        // the near force so the observed ratio is far smaller.
        assert!(near / far < 40.0, "near/far = {}", near / far);
    }
}
