//! Minimal double-precision complex type.
//!
//! `#[repr(C)]` layout (re, im) so slices can cross the mini-MPI boundary
//! as plain data.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

hacc_comm::impl_wire_msg!(Complex64 { re: f64, im: f64 });

impl Complex64 {
    /// Construct from rectangular components.
    #[inline(always)]
    #[must_use] 
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Zero.
    pub const ZERO: Complex64 = Complex64::new(0.0, 0.0);
    /// One.
    pub const ONE: Complex64 = Complex64::new(1.0, 0.0);
    /// The imaginary unit.
    pub const I: Complex64 = Complex64::new(0.0, 1.0);

    /// `exp(i·theta)` on the unit circle.
    #[inline]
    #[must_use] 
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex64::new(c, s)
    }

    /// Complex conjugate.
    #[inline(always)]
    #[must_use] 
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Squared magnitude.
    #[inline(always)]
    #[must_use] 
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    #[must_use] 
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiply by a real scalar.
    #[inline(always)]
    #[must_use] 
    pub fn scale(self, s: f64) -> Self {
        Complex64::new(self.re * s, self.im * s)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, o: Complex64) -> Complex64 {
        Complex64::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, o: Complex64) -> Complex64 {
        Complex64::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, o: Complex64) -> Complex64 {
        Complex64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, o: Complex64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, o: Complex64) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, o: Complex64) {
        *self = *self * o;
    }
}

impl From<f64> for Complex64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        Complex64::new(re, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert_eq!(a + b - b, a);
        assert_eq!(a * Complex64::ONE, a);
        assert_eq!(a * Complex64::ZERO, Complex64::ZERO);
        assert_eq!(-a + a, Complex64::ZERO);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!((a * a.conj()).re, 25.0);
        assert_eq!((a * a.conj()).im, 0.0);
    }

    #[test]
    fn cis_unit_circle() {
        let q = Complex64::cis(std::f64::consts::FRAC_PI_2);
        assert!((q.re).abs() < 1e-15);
        assert!((q.im - 1.0).abs() < 1e-15);
        let full = Complex64::cis(2.0 * std::f64::consts::PI);
        assert!((full.re - 1.0).abs() < 1e-15);
    }

    #[test]
    fn mul_matches_expanded_form() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(0.25, 3.0);
        let c = a * b;
        assert!((c.re - (1.5 * 0.25 - (-2.0) * 3.0)).abs() < 1e-15);
        assert!((c.im - (1.5 * 3.0 + (-2.0) * 0.25)).abs() < 1e-15);
    }
}
