#!/usr/bin/env bash
# Re-run every paper-reproduction binary and capture its output under
# out/experiments/, then append the recorded results to EXPERIMENTS.md.
# Usage: scripts/record_experiments.sh [--skip-run]
set -euo pipefail
cd "$(dirname "$0")/.."

BINS=(
  fig5_kernel_threading fig6_poisson_weak_scaling table1_fft_scaling
  table2_weak_scaling table3_strong_scaling fig9_structure_evolution
  fig10_power_spectrum fig2_dynamic_range fig11_halo_subhalos
  accuracy_p3m_vs_treepm timing_breakdown ablation_spectral
  ablation_leaf_size ablation_deposit_order ablation_subcycles
)

mkdir -p out/experiments
if [[ "${1:-}" != "--skip-run" ]]; then
  cargo build --release -p hacc-bench --bins
  for b in "${BINS[@]}"; do
    echo "== $b"
    ./target/release/"$b" | tee "out/experiments/$b.txt"
  done
fi

# Append/update the recorded block in EXPERIMENTS.md.
python3 - <<'EOF'
import re, pathlib
doc = pathlib.Path("EXPERIMENTS.md").read_text()
marker = "<!-- recorded-output -->"
head, _, _ = doc.partition(marker)
parts = [head.rstrip() + "\n\n" + marker + "\n"]
for f in sorted(pathlib.Path("out/experiments").glob("*.txt")):
    parts.append(f"\n### `{f.stem}`\n\n```text\n{f.read_text().rstrip()}\n```\n")
pathlib.Path("EXPERIMENTS.md").write_text("".join(parts))
print("EXPERIMENTS.md updated")
EOF
