//! Short/close-range force solvers — the architecture-tuned layer of HACC
//! (Sections II–III of the paper).
//!
//! Two interchangeable solvers are provided, exactly as in the paper:
//!
//! * [`P3mSolver`] — direct particle–particle interactions organized by a
//!   chaining mesh (the Roadrunner / CPU-GPU path; "P³M");
//! * [`RcbTree`] — a recursive-coordinate-bisection tree with "fat"
//!   leaves feeding the shared-interaction-list polynomial force kernel
//!   (the BG/Q path; "PPTreePM").
//!
//! Both evaluate the same pair force, paper Eq. 7:
//! `f_SR(s) = (s+ε)^{-3/2} − poly5(s)`, `s = r·r`, where `poly5` is the
//! fitted grid-force response from [`hacc_pm::GridForceFit`]. Particle
//! arithmetic is single precision (the mixed-precision design), stored as
//! structure-of-arrays for vectorization.

pub mod forest;
pub mod kernel;
pub mod p3m;
pub mod simd;
pub mod tree;

pub use forest::TreeForest;
pub use kernel::{ForceKernel, FLOPS_PER_INTERACTION, FLOPS_PER_INTERACTION_ACTUAL};
pub use p3m::{P3mScratch, P3mSolver};
pub use simd::{force_on_best, SimdLevel};
pub use tree::{RcbTree, SymmetricReport, TreeParams, TreeScratch};
