//! Pencil-decomposed distributed 3-D FFT.
//!
//! The scalable FFT of Section IV.A: data partitioned across a 2-D
//! `P1 × P2` process grid (`ranks ≤ N²`), with the transform composed of
//! interleaved transposition and sequential 1-D FFT steps where "each
//! transposition only involves a subset of all tasks" — here the row and
//! column sub-communicators obtained by `Comm::split`.
//!
//! Layout sequence (forward):
//!
//! ```text
//! z-pencils [lx][ly][N]  --z FFT-->  --row transpose-->
//! y-pencils [lx][N][lz]  --y FFT-->  --column transpose-->
//! x-pencils [N][ly'][lz] --x FFT-->  k-space (x-pencil layout)
//! ```
//!
//! Note the two different y splittings: over `P2` in real space and over
//! `P1` in k space.

use hacc_comm::{dims_create, Comm};

use crate::complex::Complex64;
use crate::layout::{block_ranges, DistFft3, DistRealFft3, Layout3};
use crate::plan::Fft1d;
use crate::real::{c2r_lines, r2c_lines};

/// Pencil FFT bound to a communicator arranged as a `P1 × P2` grid.
pub struct PencilFft<'a> {
    comm: &'a Comm,
    row_comm: Comm,
    col_comm: Comm,
    n: usize,
    p1: usize,
    p2: usize,
    /// x ranges over P1.
    x1: Vec<(usize, usize)>,
    /// y ranges over P2 (real space).
    y2: Vec<(usize, usize)>,
    /// y ranges over P1 (k space).
    y1: Vec<(usize, usize)>,
    /// z ranges over P2.
    z2: Vec<(usize, usize)>,
    plan: Fft1d,
}

impl<'a> PencilFft<'a> {
    /// Create a pencil FFT of global side `n`; the process grid is chosen
    /// by [`dims_create`]. Requires both grid dimensions ≤ `n`.
    #[must_use] 
    pub fn new(comm: &'a Comm, n: usize) -> Self {
        let d = dims_create(comm.size(), 2);
        Self::with_grid(comm, n, d[0], d[1])
    }

    /// Create with an explicit `p1 × p2` process grid (`p1·p2 = ranks`).
    #[must_use] 
    pub fn with_grid(comm: &'a Comm, n: usize, p1: usize, p2: usize) -> Self {
        assert_eq!(p1 * p2, comm.size(), "process grid must cover all ranks");
        assert!(
            p1 <= n && p2 <= n,
            "pencil decomposition requires grid dims ({p1},{p2}) <= N ({n})"
        );
        let my_p1 = comm.rank() / p2;
        let my_p2 = comm.rank() % p2;
        let row_comm = comm.split(my_p1 as u64, my_p2 as u64);
        let col_comm = comm.split(my_p2 as u64, my_p1 as u64);
        PencilFft {
            comm,
            row_comm,
            col_comm,
            n,
            p1: my_p1,
            p2: my_p2,
            x1: block_ranges(n, p1),
            y2: block_ranges(n, p2),
            y1: block_ranges(n, p1),
            z2: block_ranges(n, p2),
            plan: Fft1d::new(n),
        }
    }

    fn lx(&self) -> usize {
        self.x1[self.p1].1
    }
    fn ly2(&self) -> usize {
        self.y2[self.p2].1
    }
    fn ly1(&self) -> usize {
        self.y1[self.p1].1
    }
    fn lz2(&self) -> usize {
        self.z2[self.p2].1
    }

    fn run_line(&self, line: &mut [Complex64], scratch: &mut [Complex64], inverse: bool) {
        if inverse {
            for v in line.iter_mut() {
                *v = v.conj();
            }
            self.plan.forward(line, scratch);
            for v in line.iter_mut() {
                *v = v.conj();
            }
        } else {
            self.plan.forward(line, scratch);
        }
    }

    /// z-line FFTs in the z-pencil layout (contiguous lines).
    fn fft_z(&self, data: &mut [Complex64], inverse: bool) {
        let mut scratch = self.plan.make_scratch();
        for line in data.chunks_mut(self.n) {
            self.run_line(line, &mut scratch, inverse);
        }
    }

    /// y-line FFTs in the y-pencil layout `[lx][n][lz]` (stride `lz` —
    /// the local z extent, which differs between the c2c and r2c paths).
    fn fft_y(&self, data: &mut [Complex64], lz: usize, inverse: bool) {
        let (n, lx) = (self.n, self.lx());
        let mut scratch = self.plan.make_scratch();
        let mut line = vec![Complex64::ZERO; n];
        for ixl in 0..lx {
            let block = &mut data[ixl * n * lz..(ixl + 1) * n * lz];
            for izl in 0..lz {
                for iy in 0..n {
                    line[iy] = block[iy * lz + izl];
                }
                self.run_line(&mut line, &mut scratch, inverse);
                for iy in 0..n {
                    block[iy * lz + izl] = line[iy];
                }
            }
        }
    }

    /// x-line FFTs in the x-pencil layout `[n][ly'][lz]` (stride ly'·lz).
    fn fft_x(&self, data: &mut [Complex64], lz: usize, inverse: bool) {
        let (n, ly) = (self.n, self.ly1());
        let mut scratch = self.plan.make_scratch();
        let mut line = vec![Complex64::ZERO; n];
        let stride = ly * lz;
        for iyl in 0..ly {
            for izl in 0..lz {
                let off = iyl * lz + izl;
                for ix in 0..n {
                    line[ix] = data[ix * stride + off];
                }
                self.run_line(&mut line, &mut scratch, inverse);
                for ix in 0..n {
                    data[ix * stride + off] = line[ix];
                }
            }
        }
    }

    /// Row transpose: z-pencils `[lx][ly2][nz]` → y-pencils `[lx][n][lz]`,
    /// where `nz` is the stored z extent (`n` for c2c, `nzh` for the
    /// half-spectrum) and `z_ranges` its split over `P2`.
    fn z_to_y(
        &self,
        data: &[Complex64],
        nz: usize,
        z_ranges: &[(usize, usize)],
    ) -> Vec<Complex64> {
        let (n, lx, ly) = (self.n, self.lx(), self.ly2());
        let sends: Vec<Vec<Complex64>> = z_ranges
            .iter()
            .map(|&(z0, lzq)| {
                let mut buf = Vec::with_capacity(lx * ly * lzq);
                for ixl in 0..lx {
                    for iyl in 0..ly {
                        let row = (ixl * ly + iyl) * nz + z0;
                        buf.extend_from_slice(&data[row..row + lzq]);
                    }
                }
                buf
            })
            .collect();
        let recvs = self.row_comm.alltoallv(sends);
        let lz = z_ranges[self.p2].1;
        let mut out = vec![Complex64::ZERO; lx * n * lz];
        for (q, buf) in recvs.iter().enumerate() {
            let (y0, lyq) = self.y2[q];
            let mut it = buf.iter();
            for ixl in 0..lx {
                for iyl in 0..lyq {
                    let dst = (ixl * n + y0 + iyl) * lz;
                    for v in out[dst..dst + lz].iter_mut() {
                        *v = *it.next().expect("z_to_y payload");
                    }
                }
            }
        }
        out
    }

    /// Inverse of [`PencilFft::z_to_y`].
    fn y_to_z(
        &self,
        data: &[Complex64],
        nz: usize,
        z_ranges: &[(usize, usize)],
    ) -> Vec<Complex64> {
        let (n, lx) = (self.n, self.lx());
        let lz = z_ranges[self.p2].1;
        let sends: Vec<Vec<Complex64>> = self
            .y2
            .iter()
            .map(|&(y0, lyq)| {
                let mut buf = Vec::with_capacity(lx * lyq * lz);
                for ixl in 0..lx {
                    for iyl in 0..lyq {
                        let row = (ixl * n + y0 + iyl) * lz;
                        buf.extend_from_slice(&data[row..row + lz]);
                    }
                }
                buf
            })
            .collect();
        let recvs = self.row_comm.alltoallv(sends);
        let ly = self.ly2();
        let mut out = vec![Complex64::ZERO; lx * ly * nz];
        for (q, buf) in recvs.iter().enumerate() {
            let (z0, lzq) = z_ranges[q];
            let mut it = buf.iter();
            for ixl in 0..lx {
                for iyl in 0..ly {
                    let dst = (ixl * ly + iyl) * nz + z0;
                    for v in out[dst..dst + lzq].iter_mut() {
                        *v = *it.next().expect("y_to_z payload");
                    }
                }
            }
        }
        out
    }

    /// Column transpose: y-pencils `[lx][n][lz]` → x-pencils `[n][ly1][lz]`.
    fn y_to_x(&self, data: &[Complex64], lz: usize) -> Vec<Complex64> {
        let (n, lx) = (self.n, self.lx());
        let sends: Vec<Vec<Complex64>> = self
            .y1
            .iter()
            .map(|&(y0, lyq)| {
                let mut buf = Vec::with_capacity(lx * lyq * lz);
                for ixl in 0..lx {
                    for iyl in 0..lyq {
                        let row = (ixl * n + y0 + iyl) * lz;
                        buf.extend_from_slice(&data[row..row + lz]);
                    }
                }
                buf
            })
            .collect();
        let recvs = self.col_comm.alltoallv(sends);
        let ly = self.ly1();
        let mut out = vec![Complex64::ZERO; n * ly * lz];
        for (q, buf) in recvs.iter().enumerate() {
            let (x0, lxq) = self.x1[q];
            let mut it = buf.iter();
            for ixl in 0..lxq {
                for iyl in 0..ly {
                    let dst = ((x0 + ixl) * ly + iyl) * lz;
                    for v in out[dst..dst + lz].iter_mut() {
                        *v = *it.next().expect("y_to_x payload");
                    }
                }
            }
        }
        out
    }

    /// Inverse of [`PencilFft::y_to_x`].
    fn x_to_y(&self, data: &[Complex64], lz: usize) -> Vec<Complex64> {
        let (n, ly) = (self.n, self.ly1());
        let sends: Vec<Vec<Complex64>> = self
            .x1
            .iter()
            .map(|&(x0, lxq)| {
                let mut buf = Vec::with_capacity(lxq * ly * lz);
                for ixl in 0..lxq {
                    for iyl in 0..ly {
                        let row = ((x0 + ixl) * ly + iyl) * lz;
                        buf.extend_from_slice(&data[row..row + lz]);
                    }
                }
                buf
            })
            .collect();
        let recvs = self.col_comm.alltoallv(sends);
        let lx = self.lx();
        let mut out = vec![Complex64::ZERO; lx * n * lz];
        for (q, buf) in recvs.iter().enumerate() {
            let (y0, lyq) = self.y1[q];
            let mut it = buf.iter();
            for ixl in 0..lx {
                for iyl in 0..lyq {
                    let dst = (ixl * n + y0 + iyl) * lz;
                    for v in out[dst..dst + lz].iter_mut() {
                        *v = *it.next().expect("x_to_y payload");
                    }
                }
            }
        }
        out
    }
}

impl DistFft3 for PencilFft<'_> {
    fn n(&self) -> usize {
        self.n
    }

    fn real_layout(&self) -> Layout3 {
        Layout3 {
            n: self.n,
            origin: [self.x1[self.p1].0, self.y2[self.p2].0, 0],
            size: [self.lx(), self.ly2(), self.n],
        }
    }

    fn k_layout(&self) -> Layout3 {
        Layout3 {
            n: self.n,
            origin: [0, self.y1[self.p1].0, self.z2[self.p2].0],
            size: [self.n, self.ly1(), self.lz2()],
        }
    }

    fn forward(&self, mut data: Vec<Complex64>) -> Vec<Complex64> {
        assert_eq!(data.len(), self.real_layout().len());
        self.fft_z(&mut data, false);
        let mut y = self.z_to_y(&data, self.n, &self.z2);
        self.fft_y(&mut y, self.lz2(), false);
        let mut x = self.y_to_x(&y, self.lz2());
        self.fft_x(&mut x, self.lz2(), false);
        x
    }

    fn backward(&self, mut data: Vec<Complex64>) -> Vec<Complex64> {
        assert_eq!(data.len(), self.k_layout().len());
        self.fft_x(&mut data, self.lz2(), true);
        let mut y = self.x_to_y(&data, self.lz2());
        self.fft_y(&mut y, self.lz2(), true);
        let mut z = self.y_to_z(&y, self.n, &self.z2);
        self.fft_z(&mut z, true);
        let inv = 1.0 / (self.n * self.n * self.n) as f64;
        for v in z.iter_mut() {
            *v = v.scale(inv);
        }
        z
    }

    fn comm(&self) -> &Comm {
        self.comm
    }
}

/// Real-to-complex pencil FFT over the Hermitian half-spectrum.
///
/// Reuses the complex pencil machinery with the z extent shrunk to
/// `nzh = n/2 + 1` after the local r2c z pass: the row transpose, y/x
/// line FFTs and column transpose all operate on `nzh`-deep pencils, so
/// both the communication volume and the y/x FFT work drop by nearly
/// half relative to the c2c path — the same saving the serial
/// [`crate::real::RealFft3`] realizes.
pub struct RealPencilFft<'a> {
    inner: PencilFft<'a>,
    nzh: usize,
    /// Half-spectrum z ranges over P2.
    zh2: Vec<(usize, usize)>,
}

impl<'a> RealPencilFft<'a> {
    /// Create a real pencil FFT of global side `n`; the process grid is
    /// chosen by [`dims_create`].
    #[must_use] 
    pub fn new(comm: &'a Comm, n: usize) -> Self {
        let d = dims_create(comm.size(), 2);
        Self::with_grid(comm, n, d[0], d[1])
    }

    /// Create with an explicit `p1 × p2` process grid (`p1·p2 = ranks`).
    #[must_use] 
    pub fn with_grid(comm: &'a Comm, n: usize, p1: usize, p2: usize) -> Self {
        let nzh = n / 2 + 1;
        assert!(
            p2 <= nzh,
            "real pencil decomposition requires P2 ({p2}) <= n/2+1 ({nzh})"
        );
        RealPencilFft {
            inner: PencilFft::with_grid(comm, n, p1, p2),
            nzh,
            zh2: block_ranges(nzh, p2),
        }
    }

    /// Local half-spectrum z extent.
    fn lzh(&self) -> usize {
        self.zh2[self.inner.p2].1
    }
}

impl DistRealFft3 for RealPencilFft<'_> {
    fn n(&self) -> usize {
        self.inner.n
    }

    fn nzh(&self) -> usize {
        self.nzh
    }

    fn real_layout(&self) -> Layout3 {
        self.inner.real_layout()
    }

    fn k_layout(&self) -> Layout3 {
        let f = &self.inner;
        Layout3 {
            n: f.n,
            origin: [0, f.y1[f.p1].0, self.zh2[f.p2].0],
            size: [f.n, f.ly1(), self.lzh()],
        }
    }

    fn forward(&self, data: Vec<f64>) -> Vec<Complex64> {
        let f = &self.inner;
        assert_eq!(data.len(), self.real_layout().len());
        let (n, nzh) = (f.n, self.nzh);
        // Local r2c z pass: pair-packed real lines → half-spectrum rows.
        let rows = f.lx() * f.ly2();
        let mut spec = vec![Complex64::ZERO; rows * nzh];
        let mut zbuf = vec![Complex64::ZERO; n];
        let mut scratch = f.plan.make_scratch();
        for (src, dst) in data.chunks(2 * n).zip(spec.chunks_mut(2 * nzh)) {
            r2c_lines(&f.plan, src, dst, n, nzh, &mut zbuf, &mut scratch);
        }
        let mut y = f.z_to_y(&spec, nzh, &self.zh2);
        f.fft_y(&mut y, self.lzh(), false);
        let mut x = f.y_to_x(&y, self.lzh());
        f.fft_x(&mut x, self.lzh(), false);
        x
    }

    fn backward(&self, mut data: Vec<Complex64>) -> Vec<f64> {
        let f = &self.inner;
        assert_eq!(data.len(), self.k_layout().len());
        f.fft_x(&mut data, self.lzh(), true);
        let mut y = f.x_to_y(&data, self.lzh());
        f.fft_y(&mut y, self.lzh(), true);
        let spec = f.y_to_z(&y, self.nzh, &self.zh2);
        let (n, nzh) = (f.n, self.nzh);
        let rows = f.lx() * f.ly2();
        let mut out = vec![0.0f64; rows * n];
        let inv = 1.0 / (n * n * n) as f64;
        let mut zbuf = vec![Complex64::ZERO; n];
        let mut scratch = f.plan.make_scratch();
        for (src, dst) in spec.chunks(2 * nzh).zip(out.chunks_mut(2 * n)) {
            c2r_lines(&f.plan, src, dst, n, nzh, inv, &mut zbuf, &mut scratch);
        }
        out
    }

    fn comm(&self) -> &Comm {
        self.inner.comm
    }
}

// Not run under miri: every test here spins up a threads-as-ranks
// Machine (interpreter cost multiplies per rank thread) and the
// transpose path has no unsafe code; the serial 3-D FFT tests cover
// the unsafe strided pass under miri.
#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;
    use crate::dim3::Fft3;
    use hacc_comm::Machine;

    fn rand_grid(len: usize, seed: u64) -> Vec<Complex64> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) - 0.5
        };
        (0..len).map(|_| Complex64::new(next(), next())).collect()
    }

    fn check(n: usize, p1: usize, p2: usize) {
        let global = rand_grid(n * n * n, 1000 + n as u64);
        let mut want = global.clone();
        Fft3::new_cubic(n).forward(&mut want);

        let globals = global.clone();
        let (results, _) = Machine::new(p1 * p2).run(move |comm| {
            let fft = PencilFft::with_grid(&comm, n, p1, p2);
            let rl = fft.real_layout();
            let mut local = vec![Complex64::ZERO; rl.len()];
            for (i, v) in local.iter_mut().enumerate() {
                let g = rl.global_coords(i);
                *v = globals[(g[0] * n + g[1]) * n + g[2]];
            }
            let k = fft.forward(local);
            (fft.k_layout(), k)
        });
        for (lay, k) in &results {
            for (i, v) in k.iter().enumerate() {
                let g = lay.global_coords(i);
                let w = want[(g[0] * n + g[1]) * n + g[2]];
                assert!(
                    (*v - w).abs() < 1e-8,
                    "n={n} grid {p1}x{p2} at {g:?}: {v:?} vs {w:?}"
                );
            }
        }
    }

    #[test]
    fn single_rank() {
        check(6, 1, 1);
    }

    #[test]
    fn row_only_and_col_only() {
        check(8, 1, 4);
        check(8, 4, 1);
    }

    #[test]
    fn square_grids() {
        check(8, 2, 2);
        check(12, 3, 3);
    }

    #[test]
    fn rectangular_grid_uneven_sizes() {
        check(10, 2, 3);
        check(9, 3, 2);
    }

    #[test]
    fn more_ranks_than_n_allowed() {
        // 4x4 = 16 ranks on a 6³ grid: beyond slab's limit but fine here
        // as long as each grid dim ≤ n.
        check(6, 4, 4);
    }

    #[test]
    fn roundtrip_distributed() {
        let n = 8;
        let (ok, _) = Machine::new(6).run(|comm| {
            let fft = PencilFft::with_grid(&comm, n, 3, 2);
            let orig = rand_grid(fft.real_layout().len(), 5 + comm.rank() as u64);
            let k = fft.forward(orig.clone());
            assert_eq!(k.len(), fft.k_layout().len());
            let back = fft.backward(k);
            back.iter()
                .zip(&orig)
                .all(|(a, b)| (*a - *b).abs() < 1e-10)
        });
        assert!(ok.iter().all(|&b| b));
    }

    #[test]
    fn k_layouts_tile_the_cube() {
        let n = 8;
        let (lays, _) = Machine::new(4).run(|comm| {
            let fft = PencilFft::with_grid(&comm, n, 2, 2);
            fft.k_layout()
        });
        let total: usize = lays.iter().map(|l| l.len()).sum();
        assert_eq!(total, n * n * n);
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn oversized_grid_dim_rejected() {
        let (_, _) = Machine::new(8).run(|comm| {
            let _ = PencilFft::with_grid(&comm, 4, 8, 1);
        });
    }

    fn rand_real(len: usize, seed: u64) -> Vec<f64> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s as f64 / u64::MAX as f64) - 0.5
            })
            .collect()
    }

    fn check_real(n: usize, p1: usize, p2: usize) {
        use crate::real::RealFft3;
        let nzh = n / 2 + 1;
        let global = rand_real(n * n * n, 7000 + n as u64);
        let mut want = vec![Complex64::ZERO; n * n * nzh];
        RealFft3::new_cubic(n).forward(&global, &mut want);

        let globals = global.clone();
        let (results, _) = Machine::new(p1 * p2).run(move |comm| {
            let fft = RealPencilFft::with_grid(&comm, n, p1, p2);
            let rl = fft.real_layout();
            let mut local = vec![0.0f64; rl.len()];
            for (i, v) in local.iter_mut().enumerate() {
                let g = rl.global_coords(i);
                *v = globals[(g[0] * n + g[1]) * n + g[2]];
            }
            let k = fft.forward(local);
            assert_eq!(k.len(), fft.k_layout().len());
            (fft.k_layout(), k)
        });
        let total: usize = results.iter().map(|(l, _)| l.len()).sum();
        assert_eq!(total, n * n * nzh, "half-spectrum tiles the k box");
        for (lay, k) in &results {
            for (i, v) in k.iter().enumerate() {
                let g = lay.global_coords(i);
                let w = want[(g[0] * n + g[1]) * nzh + g[2]];
                assert!(
                    (*v - w).abs() < 1e-8,
                    "n={n} grid {p1}x{p2} at {g:?}: {v:?} vs {w:?}"
                );
            }
        }
    }

    #[test]
    fn real_matches_serial_half_spectrum() {
        check_real(8, 2, 2);
        check_real(6, 1, 2);
        check_real(8, 1, 4);
    }

    #[test]
    fn real_matches_serial_non_power_of_two_and_odd() {
        check_real(10, 2, 3);
        check_real(9, 3, 2);
        check_real(7, 2, 2);
    }

    #[test]
    fn real_roundtrip_distributed() {
        for (n, p1, p2) in [(8usize, 3usize, 2usize), (9, 2, 2), (12, 2, 3)] {
            let (ok, _) = Machine::new(p1 * p2).run(move |comm| {
                let fft = RealPencilFft::with_grid(&comm, n, p1, p2);
                let orig = rand_real(fft.real_layout().len(), 31 + comm.rank() as u64);
                let k = fft.forward(orig.clone());
                let back = fft.backward(k);
                back.iter()
                    .zip(&orig)
                    .all(|(a, b)| (*a - *b).abs() < 1e-12)
            });
            assert!(ok.iter().all(|&b| b), "roundtrip n={n} {p1}x{p2}");
        }
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn real_pencil_rejects_p2_beyond_half_spectrum() {
        // n=6 → nzh=4; P2=6 would leave ranks with no half-spectrum z bins.
        let (_, _) = Machine::new(6).run(|comm| {
            let _ = RealPencilFft::with_grid(&comm, 6, 1, 6);
        });
    }
}
