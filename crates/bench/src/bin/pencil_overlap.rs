//! Pencil-FFT transpose-overlap benchmark: the distributed r2c pencil
//! transform under the blocking schedule (monolithic alltoallv, then
//! FFT) versus the overlapped schedule (chunked exchanges with
//! butterflies running on received slabs while later chunks are still
//! in flight). Reports the wall time and the pack/comm/unpack/fft
//! breakdown from `PencilTimings` for both schedules, and asserts the
//! two spectra are **bitwise identical** — overlap is a pure scheduling
//! change, never a numerical one.
//!
//! Run with `--json PATH` to emit the machine-readable fragment that
//! `scripts/bench.sh` folds into `BENCH_pr7.json`.

use std::time::Instant;

use hacc_bench::print_table;
use hacc_comm::Machine;
use hacc_fft::{DistRealFft3, PencilTimings, RealPencilFft, TransposeSchedule};

struct Args {
    n: usize,
    ranks: usize,
    warm: usize,
    reps: usize,
    chunks: usize,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut out = Args {
        n: 128,
        ranks: 4,
        warm: 1,
        reps: 3,
        chunks: 4,
        json: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("missing value after {}", argv[i]))
                .clone()
        };
        match argv[i].as_str() {
            "--n" => out.n = need(i).parse().expect("--n"),
            "--ranks" => out.ranks = need(i).parse().expect("--ranks"),
            "--warm" => out.warm = need(i).parse().expect("--warm"),
            "--reps" => out.reps = need(i).parse().expect("--reps"),
            "--chunks" => out.chunks = need(i).parse().expect("--chunks"),
            "--json" => out.json = Some(need(i)),
            other => panic!("unknown argument {other}"),
        }
        i += 2;
    }
    out
}

/// Near-square process grid: largest divisor of `ranks` not above √ranks.
fn process_grid(ranks: usize) -> (usize, usize) {
    let mut p1 = 1;
    for d in 1..=ranks {
        if d * d > ranks {
            break;
        }
        if ranks.is_multiple_of(d) {
            p1 = d;
        }
    }
    (p1, ranks / p1)
}

/// Per-rank result of timing one schedule.
struct SchedRun {
    wall_ms: Vec<f64>,
    tm: PencilTimings,
    k: Vec<(u64, u64)>,
}

fn main() {
    let args = parse_args();
    let (n, ranks, warm, reps, chunks) = (args.n, args.ranks, args.warm, args.reps, args.chunks);
    let (p1, p2) = process_grid(ranks);
    println!("pencil overlap benchmark: {n}^3 r2c over {p1}x{p2} pencils, {chunks} chunks");

    let schedules = [
        TransposeSchedule::Blocking,
        TransposeSchedule::Overlapped { chunks },
    ];
    let (results, _) = Machine::new(ranks).run(move |comm| {
        let mut fft = RealPencilFft::with_grid(&comm, n, p1, p2);
        let rl = fft.real_layout();
        let mut local = vec![0.0f64; rl.len()];
        for (i, v) in local.iter_mut().enumerate() {
            let g = rl.global_coords(i);
            let mut s = (((g[0] * n + g[1]) * n + g[2]) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            s ^= s >> 30;
            *v = (s as f64 / u64::MAX as f64) - 0.5;
        }
        schedules
            .iter()
            .map(|&sched| {
                fft.set_schedule(sched);
                for _ in 0..warm {
                    let k = fft.forward(local.clone());
                    let _ = fft.backward(k);
                }
                let _ = fft.take_timings(); // drop warm-up accumulation
                let mut wall_ms = Vec::with_capacity(reps);
                let mut k_last = Vec::new();
                for _ in 0..reps {
                    comm.barrier();
                    let t0 = Instant::now();
                    let k = fft.forward(local.clone());
                    let _ = fft.backward(k.clone());
                    comm.barrier();
                    wall_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                    k_last = k;
                }
                SchedRun {
                    wall_ms,
                    tm: fft.take_timings(),
                    k: k_last
                        .iter()
                        .map(|c| (c.re.to_bits(), c.im.to_bits()))
                        .collect(),
                }
            })
            .collect::<Vec<_>>()
    });

    // Bitwise identity of the two schedules, on every rank.
    for (rank, runs) in results.iter().enumerate() {
        assert_eq!(
            runs[0].k, runs[1].k,
            "rank {rank}: blocking and overlapped spectra differ bitwise"
        );
    }

    // Critical path per rep = slowest rank; phase seconds = mean per rank
    // per transform pair (forward+backward), reps each.
    let stats = |si: usize| -> (f64, f64, [f64; 4]) {
        let mut per_rep = vec![0.0f64; reps];
        let mut phases = [0.0f64; 4];
        for runs in &results {
            let r = &runs[si];
            for (acc, &w) in per_rep.iter_mut().zip(&r.wall_ms) {
                *acc = acc.max(w);
            }
            phases[0] += r.tm.fft_s;
            phases[1] += r.tm.pack_s;
            phases[2] += r.tm.comm_s;
            phases[3] += r.tm.unpack_s;
        }
        let scale = 1e3 / (ranks * reps) as f64;
        for p in phases.iter_mut() {
            *p *= scale;
        }
        let mut sorted = per_rep.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[reps / 2];
        let min = sorted.first().copied().unwrap_or(0.0);
        (median, min, phases)
    };
    let (b_med, b_min, b_ph) = stats(0);
    let (o_med, o_min, o_ph) = stats(1);
    let speedup = b_med / o_med;

    let row = |name: &str, med: f64, ph: [f64; 4]| {
        vec![
            name.into(),
            format!("{med:.2}"),
            format!("{:.2}", ph[0]),
            format!("{:.2}", ph[1]),
            format!("{:.2}", ph[2]),
            format!("{:.2}", ph[3]),
        ]
    };
    print_table(
        &format!("pencil fwd+back, {n}^3 over {ranks} ranks [ms]"),
        &["schedule", "wall med", "fft", "pack", "comm", "unpack"],
        &[
            row("blocking", b_med, b_ph),
            row(&format!("overlap/{chunks}"), o_med, o_ph),
        ],
    );
    println!("overlap speedup (median wall): {speedup:.3}x, spectra bitwise identical");

    let sched_json = |med: f64, min: f64, ph: [f64; 4]| {
        format!(
            "{{\"wall_ms_median\": {med:.3}, \"wall_ms_min\": {min:.3}, \
             \"fft_ms\": {:.3}, \"pack_ms\": {:.3}, \"comm_ms\": {:.3}, \
             \"unpack_ms\": {:.3}}}",
            ph[0], ph[1], ph[2], ph[3]
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"pencil_overlap\",\n  \"n\": {n},\n  \"ranks\": {ranks},\n  \
         \"chunks\": {chunks},\n  \"reps\": {reps},\n  \
         \"blocking\": {},\n  \"overlapped\": {},\n  \
         \"overlap_speedup_median\": {speedup:.3},\n  \"bitwise_identical\": true\n}}",
        sched_json(b_med, b_min, b_ph),
        sched_json(o_med, o_min, o_ph),
    );
    println!("\n{json}");
    if let Some(path) = &args.json {
        if let Some(dir) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(dir).expect("create json dir");
        }
        std::fs::write(path, format!("{json}\n")).expect("write json");
        println!("wrote {path}");
    }
}
