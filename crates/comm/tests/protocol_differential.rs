//! Model-based differential testing: random adversarial event
//! sequences are run **twice** — once through the pure protocol
//! machines in [`hacc_comm::protocol`] (the oracle), and once against a
//! real [`SocketTransport`] talking loopback TCP to a scripted raw
//! peer that replays the same events as actual wire frames. Delivery
//! and condemnation verdicts must be identical, byte for byte and
//! error for error — if the implementation ever drifts from the
//! model-checked machines, this suite is the tripwire.
//!
//! The scripted peer is *not* a `SocketTransport`: it speaks the wire
//! format directly (preamble, CRC frames), so it can commit protocol
//! crimes a well-behaved transport cannot — skip a sequence number,
//! claim a wrong source, flip a payload bit. A minimal in-test hub
//! performs the rendezvous and injects `DECLARED` broadcasts.

use hacc_comm::protocol::{
    self, ControlEvent, FrameVerdict, LinkSession, Mutations, PeerView,
};
use hacc_comm::socket::{SocketConfig, SocketTransport};
use hacc_comm::wire::{decode_frame, encode_frame, FrameHeader, FRAME_HEADER};
use hacc_comm::{CommError, RankStatus, Transport, WirePayload};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

const CTX: u64 = 0xD1FF;
const TAG: u64 = 7;
const TYPE_HASH: u64 = 0xABCD_1234;
const DECLARED_EPOCH: u64 = 3;

/// One adversarial event at the scripted peer (or hub).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ev {
    /// A well-formed in-sequence frame carrying the next payload id.
    Good,
    /// A frame is "lost": the peer consumes a sequence number but the
    /// frame never reaches the wire (a dead connection's buffer).
    Gap,
    /// A CRC-valid frame whose header claims the wrong source rank.
    BadSrc,
    /// A frame with one payload bit flipped in flight (CRC failure).
    Tear,
    /// The hub broadcasts `DECLARED 1`.
    Declare,
}

/// The pure-machine run of a script: expected deliveries, expected
/// final verdict inputs, and the exact bytes the scripted peer writes.
struct Oracle {
    sender: LinkSession,
    receiver: LinkSession,
    view: [PeerView; 2],
    /// Condemnation detail, exactly as the transport will report it.
    condemned: Option<String>,
    /// The reader thread died at the first condemnation; later frames
    /// are never read even if a declaration lifts the flag.
    reader_dead: bool,
    expected: Vec<u8>,
    declared: bool,
    wire_bytes: Vec<u8>,
}

impl Oracle {
    fn run(events: &[Ev]) -> Oracle {
        let mut o = Oracle {
            sender: LinkSession::default(),
            receiver: LinkSession::default(),
            view: [PeerView::INITIAL; 2],
            condemned: None,
            reader_dead: false,
            expected: Vec::new(),
            declared: false,
            wire_bytes: Vec::new(),
        };
        let mut pid: u8 = 0;
        let frame = |src: u32, seq: u64, payload: &[u8]| {
            let h = FrameHeader {
                src,
                context: CTX,
                tag: TAG,
                seq,
                type_hash: TYPE_HASH,
                len: payload.len() as u64,
            };
            encode_frame(&h, payload)
        };
        let condemn = |o: &mut Oracle, detail: String| {
            o.reader_dead = true;
            if o.condemned.is_none() {
                o.condemned = Some(detail);
            }
        };
        for ev in events {
            match ev {
                Ev::Good => {
                    let seq = o.sender.next_send_seq();
                    o.sender.commit_send();
                    o.wire_bytes.extend(frame(1, seq, &[pid]));
                    if !o.reader_dead {
                        match o.receiver.accept_frame(1, 1, seq) {
                            FrameVerdict::Accept => o.expected.push(pid),
                            FrameVerdict::Condemn(r) => condemn(&mut o, r.to_string()),
                        }
                    }
                    pid += 1;
                }
                Ev::Gap => {
                    // The frame vanishes between commit and the wire.
                    o.sender.commit_send();
                }
                Ev::BadSrc => {
                    let seq = o.sender.next_send_seq();
                    o.wire_bytes.extend(frame(7, seq, &[0xEE]));
                    if !o.reader_dead {
                        match o.receiver.accept_frame(7, 1, seq) {
                            FrameVerdict::Accept => unreachable!("bad source must condemn"),
                            FrameVerdict::Condemn(r) => condemn(&mut o, r.to_string()),
                        }
                    }
                }
                Ev::Tear => {
                    let seq = o.sender.next_send_seq();
                    let mut bytes = frame(1, seq, &[0x55]);
                    bytes[FRAME_HEADER] ^= 0x01; // flip a payload bit
                    if !o.reader_dead {
                        // Differential to the core: the expected detail
                        // is whatever the real codec reports for these
                        // exact bytes.
                        let err = decode_frame(&bytes).expect_err("flipped bit must fail CRC");
                        condemn(&mut o, err.to_string());
                    }
                    o.wire_bytes.extend(bytes);
                }
                Ev::Declare => {
                    o.declared = true;
                    let fx = protocol::apply_control(
                        &mut o.view,
                        ControlEvent::Declared {
                            rank: 1,
                            failed_epoch: DECLARED_EPOCH,
                        },
                        &Mutations::NONE,
                    );
                    if matches!(fx, protocol::MirrorEffect::LiftCondemnation { .. }) {
                        o.condemned = None;
                    }
                }
            }
        }
        o
    }

    /// The verdict a post-script receive must produce, decided by the
    /// same gate the transport runs.
    fn final_verdict(&self) -> protocol::RecvVerdict {
        protocol::recv_gate(
            false,
            false,
            false,
            self.view[1].status,
            self.view[1].failed_epoch,
            self.condemned.is_some(),
            &Mutations::NONE,
        )
    }
}

/// Decode a generated event code, biased toward valid traffic
/// (codes 0..3 are `Good`; the adversarial events get one code each).
fn decode_script(codes: &[u8]) -> Vec<Ev> {
    codes
        .iter()
        .map(|c| match c {
            0..=2 => Ev::Good,
            3 => Ev::Gap,
            4 => Ev::BadSrc,
            5 => Ev::Tear,
            _ => Ev::Declare,
        })
        .collect()
}

/// Run one script through the real transport + scripted peer and
/// compare every observable against the oracle. Panics on divergence
/// (the proptest harness reports the generating script).
fn run_case(events: &[Ev]) {
    let oracle = Oracle::run(events);

    // --- fake hub -----------------------------------------------------
    let hub_listener = TcpListener::bind("127.0.0.1:0").expect("hub bind");
    let hub_addr = hub_listener.local_addr().expect("hub addr").to_string();
    let (ctrl_tx, ctrl_rx) = mpsc::channel::<TcpStream>();
    std::thread::spawn(move || {
        let mut conns: Vec<(usize, String, BufReader<TcpStream>, TcpStream)> = Vec::new();
        while conns.len() < 2 {
            let Ok((stream, _)) = hub_listener.accept() else {
                return;
            };
            let Ok(clone) = stream.try_clone() else { return };
            let mut reader = BufReader::new(clone);
            let mut hello = String::new();
            if reader.read_line(&mut hello).is_err() {
                return;
            }
            let mut it = hello.split_whitespace();
            if it.next() != Some("HELLO") {
                return;
            }
            let Some(rank) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                return;
            };
            let _inc = it.next();
            let data_addr = it.next().unwrap_or("?").to_string();
            conns.push((rank, data_addr, reader, stream));
        }
        let peer_lines: Vec<String> = conns
            .iter()
            .map(|(rank, addr, _, _)| format!("PEER {rank} 0 {addr}"))
            .collect();
        for (_, _, _, stream) in &mut conns {
            let mut w = stream.try_clone().expect("clone");
            // watchdog 2000ms, scan 60ms, sync timeout 8000ms
            let _ = writeln!(w, "WELCOME 2 2000 60 8000");
            for line in &peer_lines {
                let _ = writeln!(w, "{line}");
            }
            let _ = writeln!(w, "STATE 0 healthy 0 0");
            let _ = writeln!(w, "STATE 1 healthy 0 0");
            let _ = writeln!(w, "READY");
        }
        for (rank, _, reader, stream) in conns {
            if rank == 0 {
                let _ = ctrl_tx.send(stream.try_clone().expect("ctrl clone"));
            }
            // Drain client lines; answer BEAT so the transport's
            // heartbeat path stays unblocked if a test ever beats.
            let mut w = stream;
            std::thread::spawn(move || {
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    if line.starts_with("BEAT ") {
                        let _ = writeln!(w, "BEATACK healthy");
                    }
                }
            });
        }
    });

    // --- scripted raw-TCP rank 1 --------------------------------------
    let wire_bytes = oracle.wire_bytes.clone();
    let hub_addr_r1 = hub_addr.clone();
    let (go_tx, go_rx) = mpsc::channel::<()>();
    let (done_tx, done_rx) = mpsc::channel::<(TcpStream, TcpStream)>();
    std::thread::spawn(move || {
        // Rank 1 never accepts (rank 0 dials no higher rank), but its
        // HELLO must still carry a live address.
        let dummy = TcpListener::bind("127.0.0.1:0").expect("dummy bind");
        let mut hub = TcpStream::connect(&hub_addr_r1).expect("rank1 dials hub");
        writeln!(hub, "HELLO 1 0 {}", dummy.local_addr().expect("dummy addr"))
            .expect("rank1 hello");
        let mut reader = BufReader::new(hub.try_clone().expect("clone"));
        let mut rank0_data = None;
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                return;
            }
            let mut it = line.split_whitespace();
            match it.next() {
                Some("PEER") if it.next() == Some("0") => {
                    let _inc = it.next();
                    rank0_data = it.next().map(String::from);
                }
                Some("READY") => break,
                _ => {}
            }
        }
        let addr = rank0_data.expect("rank 0 data address in welcome");
        let mut data = TcpStream::connect(addr).expect("rank1 dials rank0 data");
        // Data preamble: magic "HACD", rank 1, incarnation 0.
        let mut pre = Vec::with_capacity(16);
        pre.extend_from_slice(b"HACD");
        pre.extend_from_slice(&1u32.to_le_bytes());
        pre.extend_from_slice(&0u64.to_le_bytes());
        data.write_all(&pre).expect("preamble");
        // The preamble alone brings the link up; hold the (possibly
        // condemning) script until the transport finishes rendezvous,
        // or a first-frame condemnation races `wait_links_up`.
        go_rx.recv().expect("go signal");
        data.write_all(&wire_bytes).expect("script frames");
        // Hand both streams to the test so they stay open until the
        // verdicts have been checked.
        let _ = done_tx.send((data, hub));
    });

    // --- the real transport under test --------------------------------
    let transport = SocketTransport::connect(SocketConfig {
        hub_addr,
        rank: 0,
        ranks: 2,
        incarnation: 0,
    })
    .expect("transport connects");
    go_tx.send(()).expect("peer thread alive");
    let _peer_stream = done_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("scripted peer finished writing");

    // --- DECLARED injection (position-independent: see recv_gate) -----
    if oracle.declared {
        let mut ctrl = ctrl_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("hub control handle");
        writeln!(ctrl, "DECLARED 1 {DECLARED_EPOCH}").expect("declare broadcast");
        let deadline = Instant::now() + Duration::from_secs(5);
        while transport.rank_status(1) != RankStatus::Failed {
            prop_assert!(Instant::now() < deadline, "DECLARED never reached the mirror");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    // --- expected deliveries, in order, byte-exact --------------------
    for &pid in &oracle.expected {
        match transport.recv(0, 1, CTX, TAG, Some(Duration::from_secs(5))) {
            Ok(WirePayload::Bytes { type_hash, data }) => {
                prop_assert_eq!(type_hash, TYPE_HASH);
                prop_assert_eq!(data, vec![pid]);
            }
            Ok(WirePayload::Boxed(_)) => prop_assert!(false, "socket backend is byte-oriented"),
            Err(e) => prop_assert!(
                false,
                "oracle expected payload {pid}, transport said {e:?} (script {events:?})"
            ),
        }
    }

    // --- final verdict must match the gate ----------------------------
    let verdict = oracle.final_verdict();
    match verdict {
        protocol::RecvVerdict::Wait => {
            // Nothing decides: the receive must time out cleanly.
            match transport.recv(0, 1, CTX, TAG, Some(Duration::from_millis(300))) {
                Err(CommError::Timeout { .. }) => {}
                Ok(_) => panic!("oracle expected Wait, transport delivered a payload"),
                Err(e) => panic!("oracle expected Wait/Timeout, got {e:?}"),
            }
        }
        protocol::RecvVerdict::RankFailed { epoch } => {
            let err = recv_until_error(&transport);
            match err {
                CommError::RankFailed { rank, epoch: got } => {
                    prop_assert_eq!(rank, 1);
                    prop_assert_eq!(got, epoch);
                }
                other => prop_assert!(false, "oracle expected RankFailed, got {other:?}"),
            }
        }
        protocol::RecvVerdict::Corrupt => {
            let want = oracle.condemned.clone().expect("corrupt verdict has detail");
            let err = recv_until_error(&transport);
            match err {
                CommError::CorruptDetected { rank, detail } => {
                    prop_assert_eq!(rank, 1);
                    prop_assert_eq!(detail, want);
                }
                other => prop_assert!(false, "oracle expected CorruptDetected, got {other:?}"),
            }
        }
        other => prop_assert!(false, "unreachable oracle verdict {other:?}"),
    }

    transport.shutdown(0);
}

/// Poll until the transport reports a non-timeout error (condemnation
/// and declaration both arrive asynchronously via reader threads).
fn recv_until_error(transport: &SocketTransport) -> CommError {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match transport.recv(0, 1, CTX, TAG, Some(Duration::from_millis(100))) {
            Ok(_) => panic!("unexpected extra payload after the script drained"),
            Err(CommError::Timeout { .. }) if Instant::now() < deadline => {}
            Err(e) => return e,
        }
    }
}

// --- canonical deterministic scenarios, for readable failures ---------

#[test]
fn clean_stream_delivers_everything() {
    run_case(&[Ev::Good, Ev::Good, Ev::Good]);
}

#[test]
fn lost_frame_condemns_with_a_gap() {
    run_case(&[Ev::Good, Ev::Gap, Ev::Good]);
}

#[test]
fn declaration_outranks_a_torn_frame() {
    run_case(&[Ev::Good, Ev::Tear, Ev::Declare]);
}

#[test]
fn wrong_source_condemns() {
    run_case(&[Ev::BadSrc, Ev::Good]);
}

proptest! {
    // Each case stands up a real hub + transport, so the case budget is
    // modest; the deterministic RNG makes failures reproduce exactly.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The differential property: pure machines and the real loopback
    /// pair agree on every delivery and every verdict.
    #[test]
    fn pure_machines_and_real_sockets_agree(codes in prop::collection::vec(0u8..7, 0..7)) {
        run_case(&decode_script(&codes));
    }
}
