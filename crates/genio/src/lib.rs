//! Self-describing, checksummed particle snapshot I/O.
//!
//! HACC ships its own I/O library (GenericIO): self-describing blocks of
//! named SoA fields with per-block checksums, designed for writing
//! trillions of particles and sub-sampled science outputs ("we stored …
//! a subset of the particles and the mass fluctuation power spectrum at
//! 10 intermediate snapshots", Section V). This crate reproduces the
//! format's essentials at file scale:
//!
//! * a fixed little-endian header (magic, version, particle count, box
//!   size, scale factor);
//! * any number of named field blocks (`f32` or `u64` SoA columns), each
//!   protected by a CRC-32 so corruption is detected at read time;
//! * writer-side sub-sampling (every k-th particle) for cheap science
//!   snapshots.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"HGIO";
const VERSION: u32 = 1;

/// A particle snapshot: metadata plus named SoA columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Periodic box side.
    pub box_len: f64,
    /// Scale factor of the snapshot.
    pub a: f64,
    /// Named `f32` columns (positions, velocities, …); all must share one
    /// length.
    pub f32_fields: BTreeMap<String, Vec<f32>>,
    /// Named `u64` columns (ids, …).
    pub u64_fields: BTreeMap<String, Vec<u64>>,
}

/// Errors arising while reading a snapshot.
#[derive(Debug)]
pub enum GenioError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Magic/version mismatch or malformed structure.
    Format(String),
    /// A block's checksum did not match its contents.
    Corrupt { field: String },
}

impl std::fmt::Display for GenioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenioError::Io(e) => write!(f, "i/o error: {e}"),
            GenioError::Format(m) => write!(f, "format error: {m}"),
            GenioError::Corrupt { field } => write!(f, "checksum mismatch in field '{field}'"),
        }
    }
}

impl std::error::Error for GenioError {}

impl From<std::io::Error> for GenioError {
    fn from(e: std::io::Error) -> Self {
        GenioError::Io(e)
    }
}

impl Snapshot {
    /// Build a snapshot from the canonical particle columns.
    #[allow(clippy::too_many_arguments)]
    pub fn from_particles(
        box_len: f64,
        a: f64,
        x: &[f32],
        y: &[f32],
        z: &[f32],
        vx: &[f32],
        vy: &[f32],
        vz: &[f32],
        id: Option<&[u64]>,
    ) -> Self {
        let mut s = Snapshot {
            box_len,
            a,
            ..Default::default()
        };
        for (name, col) in [
            ("x", x),
            ("y", y),
            ("z", z),
            ("vx", vx),
            ("vy", vy),
            ("vz", vz),
        ] {
            s.f32_fields.insert(name.to_string(), col.to_vec());
        }
        if let Some(id) = id {
            s.u64_fields.insert("id".to_string(), id.to_vec());
        }
        s
    }

    /// Number of particles (length of the columns).
    pub fn len(&self) -> usize {
        self.f32_fields
            .values()
            .next()
            .map(Vec::len)
            .or_else(|| self.u64_fields.values().next().map(Vec::len))
            .unwrap_or(0)
    }

    /// True when the snapshot holds no particles.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keep only every `stride`-th particle — the cheap science-output
    /// sub-sampling HACC used when "only a small file system was
    /// available".
    pub fn subsample(&self, stride: usize) -> Snapshot {
        assert!(stride >= 1);
        let pick = |n: usize| (0..n).step_by(stride);
        let mut out = Snapshot {
            box_len: self.box_len,
            a: self.a,
            ..Default::default()
        };
        for (k, v) in &self.f32_fields {
            out.f32_fields
                .insert(k.clone(), pick(v.len()).map(|i| v[i]).collect());
        }
        for (k, v) in &self.u64_fields {
            out.u64_fields
                .insert(k.clone(), pick(v.len()).map(|i| v[i]).collect());
        }
        out
    }

    /// Serialize to bytes.
    pub fn to_bytes(&self) -> Bytes {
        let n = self.len();
        let mut buf = BytesMut::with_capacity(64 + n * (self.f32_fields.len() * 4 + 8));
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(n as u64);
        buf.put_f64_le(self.box_len);
        buf.put_f64_le(self.a);
        buf.put_u32_le((self.f32_fields.len() + self.u64_fields.len()) as u32);
        for (name, col) in &self.f32_fields {
            put_block(&mut buf, name, 0, col.len(), |b| {
                for &v in col {
                    b.put_f32_le(v);
                }
            });
        }
        for (name, col) in &self.u64_fields {
            put_block(&mut buf, name, 1, col.len(), |b| {
                for &v in col {
                    b.put_u64_le(v);
                }
            });
        }
        buf.freeze()
    }

    /// Parse from bytes, verifying every block checksum.
    pub fn from_bytes(mut data: &[u8]) -> Result<Snapshot, GenioError> {
        if data.len() < 36 || &data[..4] != MAGIC {
            return Err(GenioError::Format("bad magic".into()));
        }
        data.advance(4);
        let version = data.get_u32_le();
        if version != VERSION {
            return Err(GenioError::Format(format!("unsupported version {version}")));
        }
        let n = data.get_u64_le() as usize;
        let box_len = data.get_f64_le();
        let a = data.get_f64_le();
        let nfields = data.get_u32_le();
        let mut out = Snapshot {
            box_len,
            a,
            ..Default::default()
        };
        for _ in 0..nfields {
            let (name, dtype, payload) = get_block(&mut data)?;
            match dtype {
                0 => {
                    if payload.len() != n * 4 {
                        return Err(GenioError::Format(format!(
                            "field '{name}': expected {} bytes, got {}",
                            n * 4,
                            payload.len()
                        )));
                    }
                    let mut col = Vec::with_capacity(n);
                    let mut p = payload;
                    while p.has_remaining() {
                        col.push(p.get_f32_le());
                    }
                    out.f32_fields.insert(name, col);
                }
                1 => {
                    if payload.len() != n * 8 {
                        return Err(GenioError::Format(format!("field '{name}': bad length")));
                    }
                    let mut col = Vec::with_capacity(n);
                    let mut p = payload;
                    while p.has_remaining() {
                        col.push(p.get_u64_le());
                    }
                    out.u64_fields.insert(name, col);
                }
                t => return Err(GenioError::Format(format!("unknown dtype {t}"))),
            }
        }
        Ok(out)
    }

    /// Write to a file.
    pub fn write_file(&self, path: &Path) -> Result<(), GenioError> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_bytes())?;
        Ok(())
    }

    /// Read from a file with full validation.
    pub fn read_file(path: &Path) -> Result<Snapshot, GenioError> {
        let mut data = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut data)?;
        Snapshot::from_bytes(&data)
    }
}

fn put_block(buf: &mut BytesMut, name: &str, dtype: u8, count: usize, fill: impl FnOnce(&mut BytesMut)) {
    buf.put_u16_le(name.len() as u16);
    buf.put_slice(name.as_bytes());
    buf.put_u8(dtype);
    let elem = if dtype == 0 { 4 } else { 8 };
    buf.put_u64_le((count * elem) as u64);
    let start = buf.len();
    fill(buf);
    let crc = crc32(&buf[start..]);
    buf.put_u32_le(crc);
}

fn get_block<'a>(data: &mut &'a [u8]) -> Result<(String, u8, &'a [u8]), GenioError> {
    if data.remaining() < 2 {
        return Err(GenioError::Format("truncated block header".into()));
    }
    let name_len = data.get_u16_le() as usize;
    if data.remaining() < name_len + 9 {
        return Err(GenioError::Format("truncated block".into()));
    }
    let name = String::from_utf8(data[..name_len].to_vec())
        .map_err(|_| GenioError::Format("field name not utf-8".into()))?;
    data.advance(name_len);
    let dtype = data.get_u8();
    let len = data.get_u64_le() as usize;
    if data.remaining() < len + 4 {
        return Err(GenioError::Format("truncated payload".into()));
    }
    let payload = &data[..len];
    data.advance(len);
    let crc_stored = data.get_u32_le();
    if crc32(payload) != crc_stored {
        return Err(GenioError::Corrupt { field: name });
    }
    Ok((name, dtype, payload))
}

/// CRC-32 (IEEE 802.3 polynomial), bytewise table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Snapshot {
        let f: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
        let ids: Vec<u64> = (0..n as u64).collect();
        Snapshot::from_particles(64.0, 0.5, &f, &f, &f, &f, &f, &f, Some(&ids))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let snap = sample(1000);
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("parse");
        assert_eq!(back, snap);
        assert_eq!(back.len(), 1000);
        assert_eq!(back.box_len, 64.0);
        assert_eq!(back.a, 0.5);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = sample(0);
        let back = Snapshot::from_bytes(&snap.to_bytes()).expect("parse");
        assert_eq!(back.len(), 0);
        assert!(back.is_empty());
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn corruption_detected() {
        let snap = sample(100);
        let mut bytes = snap.to_bytes().to_vec();
        // Flip a byte inside the first field payload.
        let idx = bytes.len() / 2;
        bytes[idx] ^= 0xFF;
        match Snapshot::from_bytes(&bytes) {
            Err(GenioError::Corrupt { .. }) | Err(GenioError::Format(_)) => {}
            other => panic!("corruption not detected: {other:?}"),
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let snap = sample(10);
        let mut bytes = snap.to_bytes().to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(GenioError::Format(_))
        ));
    }

    #[test]
    fn truncation_rejected() {
        let snap = sample(50);
        let bytes = snap.to_bytes();
        for cut in [10, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Snapshot::from_bytes(&bytes[..cut]).is_err(),
                "truncated at {cut} accepted"
            );
        }
    }

    #[test]
    fn subsample_strides() {
        let snap = sample(100);
        let sub = snap.subsample(10);
        assert_eq!(sub.len(), 10);
        assert_eq!(sub.u64_fields["id"], (0..100).step_by(10).collect::<Vec<u64>>());
        assert_eq!(sub.box_len, snap.box_len);
        // Stride 1 is the identity.
        assert_eq!(snap.subsample(1), snap);
    }

    #[test]
    fn file_roundtrip() {
        let snap = sample(256);
        let path = std::env::temp_dir().join("hacc_genio_test.gio");
        snap.write_file(&path).expect("write");
        let back = Snapshot::read_file(&path).expect("read");
        assert_eq!(back, snap);
        let _ = std::fs::remove_file(&path);
    }
}
