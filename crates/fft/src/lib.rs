//! From-scratch FFTs for the HACC reproduction.
//!
//! The paper stresses that HACC's "performance and flexibility are not
//! dependent on vendor-supplied or other high-performance libraries"; its
//! 3-D parallel FFT couples high performance with a small memory footprint.
//! This crate mirrors that: a plan-based mixed-radix (2/3/4/5, arbitrary
//! factors, Bluestein for large primes) complex 1-D FFT, a cache-aware
//! serial 3-D transform, and two distributed decompositions over
//! [`hacc_comm`]:
//!
//! * **slab** — 1-D x-split, the original Roadrunner-era decomposition,
//!   limited to `ranks ≤ N`;
//! * **pencil** — 2-D (x,y)-split with interleaved transpose / 1-D FFT
//!   steps over row and column sub-communicators, supporting
//!   `ranks ≤ N²` (the BG/P–BG/Q decomposition of Section IV.A).
//!
//! Conventions: forward transform is unnormalized
//! (`X[k] = Σ x[j]·exp(-2πi jk/N)`); `backward` divides by `N` so a
//! round-trip is the identity.

pub mod complex;
pub mod dim3;
pub mod kernels;
pub mod pencil;
pub mod plan;
pub mod real;
pub mod scratch;
pub mod slab;
pub mod wavenumber;

pub use complex::Complex64;
pub use dim3::Fft3;
pub use kernels::FftSimdLevel;
pub use pencil::{PencilFft, PencilTimings, RealPencilFft, TransposeSchedule};
pub use plan::Fft1d;
pub use real::RealFft3;
pub use scratch::BufPool;
pub use slab::SlabFft;
pub use wavenumber::{k_index, k_of_index};
pub mod layout;
pub use layout::{block_ranges, DistFft3, DistRealFft3, Layout3};
