//! Cluster cosmology workflow (paper Section V, Fig. 11): evolve a box to
//! z = 0, find FOF halos, split the most massive one into subhalos, and
//! compare the measured mass function with Sheth–Tormen.
//!
//! ```text
//! cargo run --release --example cluster_finder
//! ```

use hacc::analysis::{FofFinder, MassFunctionEstimate};
use hacc::core::{SimConfig, Simulation, SolverKind};
use hacc::cosmo::{Cosmology, LinearPower, MassFunction, Transfer};

fn main() {
    let cosmo = Cosmology::lcdm();
    let power = LinearPower::new(&cosmo, Transfer::EisensteinHuNoWiggle);
    let np = 24usize;
    let box_len = 96.0;
    let cfg = SimConfig {
        cosmology: cosmo,
        box_len,
        ng: 2 * np,
        a_init: 0.1,
        a_final: 1.0,
        steps: 16,
        subcycles: 3,
        solver: SolverKind::TreePm,
        ..SimConfig::small_lcdm()
    };
    let ics = hacc::ics::zeldovich(np, box_len, &power, cfg.a_init, 777);
    let mut sim = Simulation::from_ics(cfg, &ics);
    println!("evolving {} particles to z = 0...", sim.len());
    sim.run(|_, _| {});

    let (x, y, z) = sim.positions();
    let finder = FofFinder::with_linking_param(box_len, np, 0.2, 10);
    let halos = finder.find(x, y, z);
    let pmass = cfg.particle_mass(sim.len());
    println!(
        "\n{} halos with ≥10 particles (particle mass {:.2e} M_sun/h)",
        halos.len(),
        pmass
    );
    for (i, h) in halos.iter().take(5).enumerate() {
        println!(
            "  #{i}: {:>5} particles, M = {:.2e} M_sun/h at ({:.1}, {:.1}, {:.1})",
            h.count(),
            h.count() as f64 * pmass,
            h.center[0],
            h.center[1],
            h.center[2]
        );
    }

    if let Some(big) = halos.first() {
        let subs = finder.subhalos(big, x, y, z, 0.4, 5);
        println!(
            "\nmost massive halo hosts {} subhalos at b_sub = 0.08:",
            subs.len()
        );
        for (i, s) in subs.iter().take(8).enumerate() {
            println!("  sub {i}: {} particles", s.count());
        }
    }

    // Radial profile + NFW fit of the most massive halo (the cluster
    // profile science HACC ran on Roadrunner).
    if let Some(big) = halos.first() {
        if big.count() >= 100 {
            let profile = hacc::analysis::HaloProfile::measure(
                x,
                y,
                z,
                big.center,
                box_len,
                0.2,
                6.0,
                10,
            );
            let (rho0, rs, rms) = profile.fit_nfw();
            println!(
                "\nNFW fit of halo #0: r_s = {rs:.2} Mpc/h, ρ0 = {rho0:.2e} (log-rms {rms:.2})"
            );
        }
    }

    let est = MassFunctionEstimate::from_catalog(&halos, pmass, box_len.powi(3), 5);
    println!("\nmass function vs Sheth–Tormen:");
    println!("{:>12} {:>14} {:>14}", "M [Msun/h]", "measured", "S-T");
    for (m, dn) in est.mass.iter().zip(&est.dn_dlnm) {
        let st = MassFunction::ShethTormen.dn_dlnm(&power, *m, 1.0);
        println!("{m:>12.2e} {dn:>14.3e} {st:>14.3e}");
    }
}
