//! Runtime lock-order enforcement: the rank-annotated mutexes in
//! [`hacc_comm::sync`] must panic the moment any thread acquires
//! against the `Link → Mail → Mirror → …` order — including the exact
//! mailbox→link inversion a human review caught in PR 6 — and the
//! acquisition scripts in [`hacc_comm::protocol::locks`] must execute
//! cleanly under the same checker, tying the model-checked shapes to
//! the runtime discipline.
//!
//! The checker is compiled in only for debug builds (zero-cost in
//! release), so every test here is gated on `debug_assertions`.

#![cfg(debug_assertions)]

use hacc_comm::protocol::locks::{self, LockOp};
use hacc_comm::protocol::Mutations;
use hacc_comm::sync::{LockRank, Mutex, MutexGuard};

/// Run `f` on a fresh thread (the held-lock stack is thread-local) and
/// return the panic message if it panicked.
fn panic_message(f: impl FnOnce() + Send + 'static) -> Option<String> {
    std::thread::spawn(f).join().err().map(|e| {
        e.downcast_ref::<String>()
            .cloned()
            .or_else(|| e.downcast_ref::<&str>().map(ToString::to_string))
            .unwrap_or_else(|| "<non-string panic>".into())
    })
}

/// The acceptance-criteria scenario: a deliberately inverted
/// mailbox→link acquisition must trip the checker with a diagnostic
/// naming both ranks.
#[test]
fn inverted_mail_then_link_acquisition_trips_the_checker() {
    let msg = panic_message(|| {
        let link = Mutex::new(LockRank::Link, ());
        let mail = Mutex::new(LockRank::Mail, ());
        let _mail = mail.lock(LockRank::Mail);
        let _link = link.lock(LockRank::Link); // Link (30) under Mail (32): boom
    })
    .expect("the inversion must panic");
    assert!(msg.contains("lock-order violation"), "{msg}");
    assert!(msg.contains("Link") && msg.contains("Mail"), "{msg}");
}

/// The documented order is clean: `Link → Mail → Mirror` nests freely.
#[test]
fn documented_transport_order_is_clean() {
    let link = Mutex::new(LockRank::Link, ());
    let mail = Mutex::new(LockRank::Mail, ());
    let mirror = Mutex::new(LockRank::Mirror, ());
    let _l = link.lock(LockRank::Link);
    let _m = mail.lock(LockRank::Mail);
    let _v = mirror.lock(LockRank::Mirror);
}

/// Execute one acquisition script from [`protocol::locks`] against
/// real ranked mutexes, so the shapes the model checker explores are
/// the same shapes the runtime checker accepts.
fn run_script(ops: &[LockOp]) {
    let mut ranks: Vec<LockRank> = Vec::new();
    for op in ops {
        let (LockOp::Acquire(r) | LockOp::Release(r)) = op;
        if !ranks.contains(r) {
            ranks.push(*r);
        }
    }
    let pool: Vec<(LockRank, Mutex<()>)> =
        ranks.iter().map(|&r| (r, Mutex::new(r, ()))).collect();
    let mut held: Vec<(LockRank, MutexGuard<'_, ()>)> = Vec::new();
    for op in ops {
        match op {
            LockOp::Acquire(r) => {
                let (_, m) = pool.iter().find(|(pr, _)| pr == r).expect("rank in pool");
                held.push((*r, m.lock(*r)));
            }
            LockOp::Release(r) => {
                let (top, _guard) = held.pop().expect("release without acquire");
                assert_eq!(top, *r, "scripts release in LIFO order");
            }
        }
    }
    assert!(held.is_empty(), "script left locks held");
}

/// Every shipping script — transport and hub — runs cleanly under the
/// runtime rank checker.
#[test]
fn shipping_scripts_pass_the_runtime_checker() {
    for (name, script) in locks::transport_threads(&Mutations::NONE) {
        let result = panic_message(move || run_script(&script));
        assert!(result.is_none(), "script {name} tripped the checker: {result:?}");
    }
    for (name, script) in [
        ("hub_rpc", locks::hub_rpc()),
        ("hub_welcome_block", locks::hub_welcome_block()),
        ("condemn", locks::condemn()),
        ("register_link", locks::register_link()),
    ] {
        let result = panic_message(move || run_script(&script));
        assert!(result.is_none(), "script {name} tripped the checker: {result:?}");
    }
}

/// The PR 6 inversion, expressed as its mutated script, trips the same
/// runtime checker the model flags it with — model and runtime agree
/// on what a violation is.
#[test]
fn mutated_diagnosis_script_trips_the_runtime_checker() {
    let script = locks::recv_timeout_diagnosis(&Mutations {
        diagnose_under_mailbox: true,
        ..Mutations::NONE
    });
    let msg = panic_message(move || run_script(&script))
        .expect("the mutated diagnosis script must panic");
    assert!(msg.contains("lock-order violation"), "{msg}");
}

/// Cross-family nesting ending at the shared `Health` leaf is legal
/// from either family (it outranks everything).
#[test]
fn health_leaf_nests_under_any_family() {
    let clients = Mutex::new(LockRank::HubClients, ());
    let health = Mutex::new(LockRank::Health, ());
    {
        let _c = clients.lock(LockRank::HubClients);
        let _h = health.lock(LockRank::Health);
    }
    let mail = Mutex::new(LockRank::ChannelMail, ());
    let _m = mail.lock(LockRank::ChannelMail);
    let _h = health.lock(LockRank::Health);
}
