//! Explicit 8-lane SIMD force kernels with runtime dispatch.
//!
//! The paper's BG/Q kernel is hand-written QPX: 4-wide vectors, 2-fold
//! unrolled, with the cutoff and self-interaction tests folded into the
//! arithmetic as `fsel` selects so the inner loop is branch-free. This
//! module is the x86 analogue:
//!
//! * an AVX2+FMA path written against `core::arch::x86_64` — 8 lanes of
//!   `f32`, FMA Horner chain for the poly5, and the `fsel` idiom realized
//!   as a compare → lane-mask → bitwise-AND (zero the force factor
//!   outside `0 < s < r_cut²` without branching);
//! * a portable fallback processing 8-wide accumulator blocks in plain
//!   Rust (LLVM auto-vectorizes it for whatever the target offers).
//!
//! The path is chosen once per process by runtime feature detection
//! ([`detect`]); both paths produce results equal to the scalar
//! [`ForceKernel::force_on`] reference to f32 rounding (see the
//! `simd_matches_scalar` tests).
//!
//! Two kernel shapes are exposed:
//!
//! * [`force_on_best`] — one-sided: force on a single target from a
//!   pre-gathered source list (the shared-interaction-list shape);
//! * [`eval_pair_rows`] / [`eval_self_rows`] — symmetric: each
//!   target–source pair is evaluated **once**, accumulating `+f` on the
//!   target and scattering `−f` onto the source (Newton's third law),
//!   which is what the symmetric dual-tree walk feeds.

use crate::kernel::ForceKernel;

/// Which kernel implementation runtime detection selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// `core::arch::x86_64` AVX2 + FMA intrinsics.
    Avx2Fma,
    /// 8-lane blocked portable Rust (auto-vectorized).
    Portable,
}

/// Detect the best available kernel path (cached after the first call).
#[must_use]
pub fn detect() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::atomic::{AtomicU8, Ordering};
        static CACHED: AtomicU8 = AtomicU8::new(0);
        match CACHED.load(Ordering::Relaxed) {
            1 => SimdLevel::Avx2Fma,
            2 => SimdLevel::Portable,
            _ => {
                let level = if std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
                {
                    SimdLevel::Avx2Fma
                } else {
                    SimdLevel::Portable
                };
                CACHED.store(
                    if level == SimdLevel::Avx2Fma { 1 } else { 2 },
                    Ordering::Relaxed,
                );
                level
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdLevel::Portable
    }
}

/// One-sided force on a target from a gathered source list, via the
/// fastest available kernel. Drop-in for [`ForceKernel::force_on`].
#[inline]
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn force_on_best(
    k: &ForceKernel,
    tx: f32,
    ty: f32,
    tz: f32,
    nx: &[f32],
    ny: &[f32],
    nz: &[f32],
    nm: &[f32],
) -> [f32; 3] {
    debug_assert!(nx.len() == ny.len() && ny.len() == nz.len() && nz.len() == nm.len());
    #[cfg(target_arch = "x86_64")]
    if detect() == SimdLevel::Avx2Fma {
        // SAFETY: `detect()` confirmed AVX2 and FMA are available on this
        // CPU, which is exactly the target-feature set the callee enables.
        return unsafe { avx2::row_one_sided(k, tx, ty, tz, nx, ny, nz, nm) };
    }
    k.force_on_blocked(tx, ty, tz, nx, ny, nz, nm)
}

/// Symmetric evaluation of leaf pair (targets `t*`, sources `s*`): for
/// every (target, source) pair the kernel runs **once**; `+f` lands in
/// the target accumulators `ft*`, `−f·m_t/m_s`-equivalent (the exact
/// Newton-3 reaction) in the source accumulators `fs*`. Returns the
/// number of kernel evaluations (`targets × sources`); each carries two
/// directed interactions.
#[allow(clippy::too_many_arguments)]
pub fn eval_pair_rows(
    k: &ForceKernel,
    t: (&[f32], &[f32], &[f32], &[f32]),
    s: (&[f32], &[f32], &[f32], &[f32]),
    ft: (&mut [f32], &mut [f32], &mut [f32]),
    fs: (&mut [f32], &mut [f32], &mut [f32]),
) -> u64 {
    let (txs, tys, tzs, tms) = t;
    let (sxs, sys, szs, sms) = s;
    let (ftx, fty, ftz) = ft;
    let (fsx, fsy, fsz) = fs;
    let use_avx2 = detect() == SimdLevel::Avx2Fma;
    for i in 0..txs.len() {
        #[cfg(target_arch = "x86_64")]
        let f = if use_avx2 {
            // SAFETY: `detect()` confirmed AVX2+FMA, the callee's enabled
            // target-feature set.
            unsafe {
                avx2::row_symmetric(
                    k, txs[i], tys[i], tzs[i], tms[i], sxs, sys, szs, sms, fsx, fsy, fsz,
                )
            }
        } else {
            row_symmetric_portable(
                k, txs[i], tys[i], tzs[i], tms[i], sxs, sys, szs, sms, fsx, fsy, fsz,
            )
        };
        #[cfg(not(target_arch = "x86_64"))]
        let f = {
            let _ = use_avx2;
            row_symmetric_portable(
                k, txs[i], tys[i], tzs[i], tms[i], sxs, sys, szs, sms, fsx, fsy, fsz,
            )
        };
        ftx[i] += f[0];
        fty[i] += f[1];
        ftz[i] += f[2];
    }
    (txs.len() * sxs.len()) as u64
}

/// Symmetric evaluation *within* one leaf: the strict upper triangle
/// (`i < j`) is evaluated once per pair, `+f` on `i`, reaction on `j`.
/// Returns kernel evaluations (`n·(n−1)/2`), two directed interactions
/// each.
#[allow(clippy::too_many_arguments)] // four SoA inputs + three accumulators
pub fn eval_self_rows(
    k: &ForceKernel,
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    ms: &[f32],
    fx: &mut [f32],
    fy: &mut [f32],
    fz: &mut [f32],
) -> u64 {
    let n = xs.len();
    let use_avx2 = detect() == SimdLevel::Avx2Fma;
    for i in 0..n {
        let (sx, sy, sz, sm) = (&xs[i + 1..], &ys[i + 1..], &zs[i + 1..], &ms[i + 1..]);
        let (fxl, fxr) = fx.split_at_mut(i + 1);
        let (fyl, fyr) = fy.split_at_mut(i + 1);
        let (fzl, fzr) = fz.split_at_mut(i + 1);
        #[cfg(target_arch = "x86_64")]
        let f = if use_avx2 {
            // SAFETY: `detect()` confirmed AVX2+FMA, the callee's enabled
            // target-feature set.
            unsafe {
                avx2::row_symmetric(k, xs[i], ys[i], zs[i], ms[i], sx, sy, sz, sm, fxr, fyr, fzr)
            }
        } else {
            row_symmetric_portable(k, xs[i], ys[i], zs[i], ms[i], sx, sy, sz, sm, fxr, fyr, fzr)
        };
        #[cfg(not(target_arch = "x86_64"))]
        let f = {
            let _ = use_avx2;
            row_symmetric_portable(k, xs[i], ys[i], zs[i], ms[i], sx, sy, sz, sm, fxr, fyr, fzr)
        };
        fxl[i] += f[0];
        fyl[i] += f[1];
        fzl[i] += f[2];
    }
    (n * n.saturating_sub(1) / 2) as u64
}

/// Portable symmetric row: one target against a source slice with 8-lane
/// accumulator blocking; reaction forces are scattered into `fs*`.
#[allow(clippy::too_many_arguments)]
fn row_symmetric_portable(
    k: &ForceKernel,
    tx: f32,
    ty: f32,
    tz: f32,
    tm: f32,
    sx: &[f32],
    sy: &[f32],
    sz: &[f32],
    sm: &[f32],
    fsx: &mut [f32],
    fsy: &mut [f32],
    fsz: &mut [f32],
) -> [f32; 3] {
    const LANES: usize = 8;
    let n = sx.len();
    let mut ax = [0.0f32; LANES];
    let mut ay = [0.0f32; LANES];
    let mut az = [0.0f32; LANES];
    let blocks = n / LANES;
    for b in 0..blocks {
        let base = b * LANES;
        for l in 0..LANES {
            let j = base + l;
            let dx = sx[j] - tx;
            let dy = sy[j] - ty;
            let dz = sz[j] - tz;
            let s = dz.mul_add(dz, dy.mul_add(dy, dx * dx));
            let g = k.factor(s);
            let wt = sm[j] * g;
            ax[l] = dx.mul_add(wt, ax[l]);
            ay[l] = dy.mul_add(wt, ay[l]);
            az[l] = dz.mul_add(wt, az[l]);
            let ws = tm * g;
            fsx[j] = dx.mul_add(-ws, fsx[j]);
            fsy[j] = dy.mul_add(-ws, fsy[j]);
            fsz[j] = dz.mul_add(-ws, fsz[j]);
        }
    }
    let mut fx: f32 = ax.iter().sum();
    let mut fy: f32 = ay.iter().sum();
    let mut fz: f32 = az.iter().sum();
    for j in blocks * LANES..n {
        let dx = sx[j] - tx;
        let dy = sy[j] - ty;
        let dz = sz[j] - tz;
        let s = dz.mul_add(dz, dy.mul_add(dy, dx * dx));
        let g = k.factor(s);
        let wt = sm[j] * g;
        fx = dx.mul_add(wt, fx);
        fy = dy.mul_add(wt, fy);
        fz = dz.mul_add(wt, fz);
        let ws = tm * g;
        fsx[j] = dx.mul_add(-ws, fsx[j]);
        fsy[j] = dy.mul_add(-ws, fsy[j]);
        fsz[j] = dz.mul_add(-ws, fsz[j]);
    }
    [fx, fy, fz]
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2+FMA kernels. Every function here is `#[target_feature(enable
    //! = "avx2,fma")]`: intrinsic calls inside are safe (the feature is
    //! statically enabled for the function body), while *calling* these
    //! functions is unsafe unless the caller proves the CPU support —
    //! which [`super::detect`] does once per process.

    use core::arch::x86_64::{
        _mm256_add_ps, _mm256_and_ps, _mm256_cmp_ps, _mm256_div_ps, _mm256_fmadd_ps,
        _mm256_fnmadd_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_sqrt_ps, _mm256_storeu_ps, _mm256_sub_ps, _CMP_GT_OQ, _CMP_LT_OQ,
    };

    use crate::kernel::ForceKernel;

    const LANES: usize = 8;

    /// One-sided AVX2 row: force on one target from `n` sources.
    ///
    /// The cutoff/self-interaction select is the `fsel` idiom: two
    /// ordered compares produce lane masks, the AND of which zeroes the
    /// force factor lanes outside `0 < s < r_cut²` with no branch.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    pub fn row_one_sided(
        k: &ForceKernel,
        tx: f32,
        ty: f32,
        tz: f32,
        sx: &[f32],
        sy: &[f32],
        sz: &[f32],
        sm: &[f32],
    ) -> [f32; 3] {
        let n = sx.len();
        debug_assert!(sy.len() == n && sz.len() == n && sm.len() == n);
        let txv = _mm256_set1_ps(tx);
        let tyv = _mm256_set1_ps(ty);
        let tzv = _mm256_set1_ps(tz);
        let epsv = _mm256_set1_ps(k.eps);
        let rc2v = _mm256_set1_ps(k.rcut2);
        let zero = _mm256_setzero_ps();
        let one = _mm256_set1_ps(1.0);
        let c = k.coeffs;
        let (c0, c1, c2) = (_mm256_set1_ps(c[0]), _mm256_set1_ps(c[1]), _mm256_set1_ps(c[2]));
        let (c3, c4, c5) = (_mm256_set1_ps(c[3]), _mm256_set1_ps(c[4]), _mm256_set1_ps(c[5]));
        let mut accx = zero;
        let mut accy = zero;
        let mut accz = zero;
        let blocks = n / LANES;
        for b in 0..blocks {
            let j = b * LANES;
            // SAFETY: `j + 8 <= n` and all four slices have length `n`
            // (asserted above), so each unaligned 8-float load reads
            // in-bounds memory.
            let (sxv, syv, szv, smv) = unsafe {
                (
                    _mm256_loadu_ps(sx.as_ptr().add(j)),
                    _mm256_loadu_ps(sy.as_ptr().add(j)),
                    _mm256_loadu_ps(sz.as_ptr().add(j)),
                    _mm256_loadu_ps(sm.as_ptr().add(j)),
                )
            };
            let dx = _mm256_sub_ps(sxv, txv);
            let dy = _mm256_sub_ps(syv, tyv);
            let dz = _mm256_sub_ps(szv, tzv);
            let s = _mm256_fmadd_ps(dz, dz, _mm256_fmadd_ps(dy, dy, _mm256_mul_ps(dx, dx)));
            let inv = _mm256_div_ps(one, _mm256_sqrt_ps(_mm256_add_ps(s, epsv)));
            let inv3 = _mm256_mul_ps(_mm256_mul_ps(inv, inv), inv);
            let mut p = c5;
            p = _mm256_fmadd_ps(p, s, c4);
            p = _mm256_fmadd_ps(p, s, c3);
            p = _mm256_fmadd_ps(p, s, c2);
            p = _mm256_fmadd_ps(p, s, c1);
            p = _mm256_fmadd_ps(p, s, c0);
            let g = _mm256_sub_ps(inv3, p);
            // Branch-free `fsel`: mask lanes with s ∉ (0, rcut²) to zero.
            let mask = _mm256_and_ps(
                _mm256_cmp_ps::<_CMP_GT_OQ>(s, zero),
                _mm256_cmp_ps::<_CMP_LT_OQ>(s, rc2v),
            );
            let g = _mm256_and_ps(g, mask);
            let wt = _mm256_mul_ps(smv, g);
            accx = _mm256_fmadd_ps(dx, wt, accx);
            accy = _mm256_fmadd_ps(dy, wt, accy);
            accz = _mm256_fmadd_ps(dz, wt, accz);
        }
        let mut out = [hsum(accx), hsum(accy), hsum(accz)];
        for j in blocks * LANES..n {
            let dx = sx[j] - tx;
            let dy = sy[j] - ty;
            let dz = sz[j] - tz;
            let s = dz.mul_add(dz, dy.mul_add(dy, dx * dx));
            let w = sm[j] * k.factor(s);
            out[0] = dx.mul_add(w, out[0]);
            out[1] = dy.mul_add(w, out[1]);
            out[2] = dz.mul_add(w, out[2]);
        }
        out
    }

    /// Symmetric AVX2 row: like [`row_one_sided`] but each evaluated pair
    /// also scatters the Newton-3 reaction `−m_t·g·d` into the source
    /// accumulators `fs*` (8-lane read–modify–write).
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    pub fn row_symmetric(
        k: &ForceKernel,
        tx: f32,
        ty: f32,
        tz: f32,
        tm: f32,
        sx: &[f32],
        sy: &[f32],
        sz: &[f32],
        sm: &[f32],
        fsx: &mut [f32],
        fsy: &mut [f32],
        fsz: &mut [f32],
    ) -> [f32; 3] {
        let n = sx.len();
        debug_assert!(sy.len() == n && sz.len() == n && sm.len() == n);
        debug_assert!(fsx.len() >= n && fsy.len() >= n && fsz.len() >= n);
        let txv = _mm256_set1_ps(tx);
        let tyv = _mm256_set1_ps(ty);
        let tzv = _mm256_set1_ps(tz);
        let tmv = _mm256_set1_ps(tm);
        let epsv = _mm256_set1_ps(k.eps);
        let rc2v = _mm256_set1_ps(k.rcut2);
        let zero = _mm256_setzero_ps();
        let one = _mm256_set1_ps(1.0);
        let c = k.coeffs;
        let (c0, c1, c2) = (_mm256_set1_ps(c[0]), _mm256_set1_ps(c[1]), _mm256_set1_ps(c[2]));
        let (c3, c4, c5) = (_mm256_set1_ps(c[3]), _mm256_set1_ps(c[4]), _mm256_set1_ps(c[5]));
        let mut accx = zero;
        let mut accy = zero;
        let mut accz = zero;
        let blocks = n / LANES;
        for b in 0..blocks {
            let j = b * LANES;
            // SAFETY: `j + 8 <= n` and all source slices have length `n`
            // (asserted above), so each unaligned 8-float load reads
            // in-bounds memory.
            let (sxv, syv, szv, smv) = unsafe {
                (
                    _mm256_loadu_ps(sx.as_ptr().add(j)),
                    _mm256_loadu_ps(sy.as_ptr().add(j)),
                    _mm256_loadu_ps(sz.as_ptr().add(j)),
                    _mm256_loadu_ps(sm.as_ptr().add(j)),
                )
            };
            let dx = _mm256_sub_ps(sxv, txv);
            let dy = _mm256_sub_ps(syv, tyv);
            let dz = _mm256_sub_ps(szv, tzv);
            let s = _mm256_fmadd_ps(dz, dz, _mm256_fmadd_ps(dy, dy, _mm256_mul_ps(dx, dx)));
            let inv = _mm256_div_ps(one, _mm256_sqrt_ps(_mm256_add_ps(s, epsv)));
            let inv3 = _mm256_mul_ps(_mm256_mul_ps(inv, inv), inv);
            let mut p = c5;
            p = _mm256_fmadd_ps(p, s, c4);
            p = _mm256_fmadd_ps(p, s, c3);
            p = _mm256_fmadd_ps(p, s, c2);
            p = _mm256_fmadd_ps(p, s, c1);
            p = _mm256_fmadd_ps(p, s, c0);
            let g = _mm256_sub_ps(inv3, p);
            let mask = _mm256_and_ps(
                _mm256_cmp_ps::<_CMP_GT_OQ>(s, zero),
                _mm256_cmp_ps::<_CMP_LT_OQ>(s, rc2v),
            );
            let g = _mm256_and_ps(g, mask);
            let wt = _mm256_mul_ps(smv, g);
            accx = _mm256_fmadd_ps(dx, wt, accx);
            accy = _mm256_fmadd_ps(dy, wt, accy);
            accz = _mm256_fmadd_ps(dz, wt, accz);
            let ws = _mm256_mul_ps(tmv, g);
            // SAFETY: `j + 8 <= n ≤ fs*.len()` (asserted above), so the
            // 8-float read–modify–write stays in-bounds; `fs*` are
            // exclusive borrows so no aliasing.
            unsafe {
                let fxv = _mm256_loadu_ps(fsx.as_ptr().add(j));
                _mm256_storeu_ps(fsx.as_mut_ptr().add(j), _mm256_fnmadd_ps(dx, ws, fxv));
                let fyv = _mm256_loadu_ps(fsy.as_ptr().add(j));
                _mm256_storeu_ps(fsy.as_mut_ptr().add(j), _mm256_fnmadd_ps(dy, ws, fyv));
                let fzv = _mm256_loadu_ps(fsz.as_ptr().add(j));
                _mm256_storeu_ps(fsz.as_mut_ptr().add(j), _mm256_fnmadd_ps(dz, ws, fzv));
            }
        }
        let mut out = [hsum(accx), hsum(accy), hsum(accz)];
        for j in blocks * LANES..n {
            let dx = sx[j] - tx;
            let dy = sy[j] - ty;
            let dz = sz[j] - tz;
            let s = dz.mul_add(dz, dy.mul_add(dy, dx * dx));
            let g = k.factor(s);
            let wt = sm[j] * g;
            out[0] = dx.mul_add(wt, out[0]);
            out[1] = dy.mul_add(wt, out[1]);
            out[2] = dz.mul_add(wt, out[2]);
            let ws = tm * g;
            fsx[j] = dx.mul_add(-ws, fsx[j]);
            fsy[j] = dy.mul_add(-ws, fsy[j]);
            fsz[j] = dz.mul_add(-ws, fsz[j]);
        }
        out
    }

    /// Horizontal sum of 8 lanes in a fixed (lane-index) order, so the
    /// result is deterministic and matches the portable path's block
    /// reduction structure.
    #[target_feature(enable = "avx2,fma")]
    fn hsum(v: core::arch::x86_64::__m256) -> f32 {
        let mut lanes = [0.0f32; LANES];
        // SAFETY: `lanes` is exactly 8 f32s, matching the 256-bit store.
        unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), v) };
        lanes.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> ForceKernel {
        ForceKernel::new([0.1, -0.02, 0.003, -0.0004, 0.00005, -0.000006], 3.0, 1e-5)
    }

    fn rand_sources(n: usize, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) as f32 * 4.0 - 2.0
        };
        let xs: Vec<f32> = (0..n).map(|_| next()).collect();
        let ys: Vec<f32> = (0..n).map(|_| next()).collect();
        let zs: Vec<f32> = (0..n).map(|_| next()).collect();
        let ms: Vec<f32> = (0..n).map(|_| next().abs() + 0.5).collect();
        (xs, ys, zs, ms)
    }

    #[test]
    fn detection_is_stable() {
        assert_eq!(detect(), detect());
    }

    #[test]
    fn simd_matches_scalar_one_sided() {
        let k = kernel();
        for n in [0usize, 1, 7, 8, 9, 16, 100, 129] {
            let (xs, ys, zs, ms) = rand_sources(n, 40 + n as u64);
            let a = k.force_on(0.1, -0.2, 0.3, &xs, &ys, &zs, &ms);
            let b = force_on_best(&k, 0.1, -0.2, 0.3, &xs, &ys, &zs, &ms);
            for c in 0..3 {
                let tol = 2e-4 * (a[c].abs() + 1.0);
                assert!((a[c] - b[c]).abs() < tol, "n={n} c={c}: {} vs {}", a[c], b[c]);
            }
        }
    }

    #[test]
    fn symmetric_pair_matches_two_one_sided_passes() {
        let k = kernel();
        for (na, nb) in [(1usize, 1usize), (3, 17), (24, 24), (40, 9)] {
            let (ax, ay, az, am) = rand_sources(na, 7 + na as u64);
            let (bx, by, bz, bm) = rand_sources(nb, 1000 + nb as u64);
            let mut fa = (vec![0.0f32; na], vec![0.0f32; na], vec![0.0f32; na]);
            let mut fb = (vec![0.0f32; nb], vec![0.0f32; nb], vec![0.0f32; nb]);
            let evals = eval_pair_rows(
                &k,
                (&ax, &ay, &az, &am),
                (&bx, &by, &bz, &bm),
                (&mut fa.0, &mut fa.1, &mut fa.2),
                (&mut fb.0, &mut fb.1, &mut fb.2),
            );
            assert_eq!(evals, (na * nb) as u64);
            // Reference: two independent one-sided passes.
            for i in 0..na {
                let w = k.force_on(ax[i], ay[i], az[i], &bx, &by, &bz, &bm);
                for (c, fac) in [&fa.0, &fa.1, &fa.2].iter().enumerate() {
                    let tol = 2e-4 * (w[c].abs() + 1.0);
                    assert!((fac[i] - w[c]).abs() < tol, "target {i} c={c}");
                }
            }
            for j in 0..nb {
                let w = k.force_on(bx[j], by[j], bz[j], &ax, &ay, &az, &am);
                for (c, fbc) in [&fb.0, &fb.1, &fb.2].iter().enumerate() {
                    let tol = 2e-4 * (w[c].abs() + 1.0);
                    assert!((fbc[j] - w[c]).abs() < tol, "source {j} c={c}");
                }
            }
        }
    }

    #[test]
    fn symmetric_self_matches_one_sided_pass() {
        let k = kernel();
        for n in [0usize, 1, 2, 9, 31, 64] {
            let (xs, ys, zs, ms) = rand_sources(n, 99 + n as u64);
            let mut fx = vec![0.0f32; n];
            let mut fy = vec![0.0f32; n];
            let mut fz = vec![0.0f32; n];
            let evals = eval_self_rows(&k, &xs, &ys, &zs, &ms, &mut fx, &mut fy, &mut fz);
            assert_eq!(evals, (n * n.saturating_sub(1) / 2) as u64);
            for i in 0..n {
                let w = k.force_on(xs[i], ys[i], zs[i], &xs, &ys, &zs, &ms);
                for (c, fc) in [&fx, &fy, &fz].iter().enumerate() {
                    let tol = 3e-4 * (w[c].abs() + 1.0);
                    assert!((fc[i] - w[c]).abs() < tol, "n={n} i={i} c={c}");
                }
            }
        }
    }

    #[test]
    fn symmetric_pair_conserves_momentum_exactly_per_component() {
        // Unit masses: target accumulation and source reaction use the
        // same `g·d` products, so Σf over both sides cancels to f32
        // rounding of the summation order.
        let k = ForceKernel::newtonian(3.0, 1e-5);
        let (ax, ay, az, _) = rand_sources(33, 5);
        let (bx, by, bz, _) = rand_sources(21, 6);
        let ones_a = vec![1.0f32; 33];
        let ones_b = vec![1.0f32; 21];
        let mut fa = (vec![0.0f32; 33], vec![0.0f32; 33], vec![0.0f32; 33]);
        let mut fb = (vec![0.0f32; 21], vec![0.0f32; 21], vec![0.0f32; 21]);
        eval_pair_rows(
            &k,
            (&ax, &ay, &az, &ones_a),
            (&bx, &by, &bz, &ones_b),
            (&mut fa.0, &mut fa.1, &mut fa.2),
            (&mut fb.0, &mut fb.1, &mut fb.2),
        );
        for (c, (fac, fbc)) in [(&fa.0, &fb.0), (&fa.1, &fb.1), (&fa.2, &fb.2)]
            .iter()
            .enumerate()
        {
            let total: f64 = fac
                .iter()
                .chain(fbc.iter())
                .map(|&v| f64::from(v))
                .sum();
            let mag: f64 = fac
                .iter()
                .chain(fbc.iter())
                .map(|&v| f64::from(v.abs()))
                .sum();
            assert!(total.abs() < 1e-5 * mag.max(1.0), "c={c}: Σf = {total}");
        }
    }
}
