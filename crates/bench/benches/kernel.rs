//! Criterion microbenchmarks of the short-range force kernel (the Fig. 5
//! inner loop): throughput vs shared-interaction-list length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hacc_short::ForceKernel;

fn synth(m: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut s = 12345u64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s as f64 / u64::MAX as f64) as f32 * 2.0 - 1.0
    };
    let nx: Vec<f32> = (0..m).map(|_| next()).collect();
    let ny: Vec<f32> = (0..m).map(|_| next()).collect();
    let nz: Vec<f32> = (0..m).map(|_| next()).collect();
    (nx, ny, nz, vec![1.0; m])
}

fn bench_kernel(c: &mut Criterion) {
    let kernel = ForceKernel::new(
        [0.08, -0.01, 0.0008, -3e-5, 5e-7, -4e-9],
        3.0,
        1e-5,
    );
    let mut group = c.benchmark_group("force_kernel");
    for &m in &[64usize, 256, 1024, 4096] {
        let (nx, ny, nz, nm) = synth(m);
        group.throughput(Throughput::Elements(m as u64 * 16));
        group.bench_with_input(BenchmarkId::new("list_len", m), &m, |b, _| {
            b.iter(|| {
                let mut acc = 0.0f32;
                for t in 0..16 {
                    let f = kernel.force_on(
                        t as f32 * 0.05,
                        0.1,
                        -0.1,
                        &nx,
                        &ny,
                        &nz,
                        &nm,
                    );
                    acc += f[0] + f[1] + f[2];
                }
                std::hint::black_box(acc)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernel
}
criterion_main!(benches);
