//! Cross-crate integration tests: the full HACC reproduction pipeline
//! from initial conditions through evolution to analysis.

use hacc::analysis::{FofFinder, PowerSpectrum};
use hacc::core::{SimConfig, Simulation, SolverKind};
use hacc::cosmo::{Cosmology, LinearPower, Transfer};

fn power() -> LinearPower {
    LinearPower::new(&Cosmology::lcdm(), Transfer::EisensteinHuNoWiggle)
}

fn cfg(np: usize, box_len: f64, solver: SolverKind, a_init: f64, steps: usize) -> SimConfig {
    SimConfig {
        cosmology: Cosmology::lcdm(),
        box_len,
        ng: 2 * np,
        a_init,
        a_final: 1.0,
        steps,
        subcycles: 3,
        solver,
        ..SimConfig::small_lcdm()
    }
}

/// ICs → evolution → power spectrum → halo finding, end to end.
#[test]
fn ics_to_halos_pipeline() {
    let np = 16usize;
    let box_len = 64.0;
    let p = power();
    let ics = hacc::ics::zeldovich(np, box_len, &p, 0.1, 1);
    let mut sim = Simulation::from_ics(cfg(np, box_len, SolverKind::TreePm, 0.1, 10), &ics);
    sim.run(|_, _| {});
    assert!((sim.a - 1.0).abs() < 1e-9);

    let (x, y, z) = sim.positions();
    // Structure has formed: the density field is strongly clustered.
    let (dmax, drms, _) = hacc::analysis::density_contrast_stats(x, y, z, box_len, 32);
    assert!(dmax > 5.0, "max density contrast {dmax}");
    assert!(drms > 0.5, "rms contrast {drms}");

    // Halos exist at z = 0 in a 64 Mpc/h ΛCDM box.
    let finder = FofFinder::with_linking_param(box_len, np, 0.2, 8);
    let halos = finder.find(x, y, z);
    assert!(!halos.is_empty(), "no halos formed");
    // Most massive halo has a sensible fraction of all particles.
    let frac = halos[0].count() as f64 / sim.len() as f64;
    assert!(frac > 0.005 && frac < 0.8, "largest halo fraction {frac}");
}

/// The power spectrum grows monotonically on large scales and faster than
/// linear on small scales.
#[test]
fn power_spectrum_growth_pattern() {
    let np = 24usize;
    let box_len = 96.0;
    let p = power();
    let ics = hacc::ics::zeldovich(np, box_len, &p, 0.1, 5);
    let mut sim = Simulation::from_ics(cfg(np, box_len, SolverKind::TreePm, 0.1, 10), &ics);
    let mut early: Option<PowerSpectrum> = None;
    sim.run(|a, s| {
        if early.is_none() && a >= 0.25 {
            let (x, y, z) = s.positions();
            early = Some(PowerSpectrum::measure(x, y, z, box_len, 32, 12));
        }
    });
    let (x, y, z) = sim.positions();
    let late = PowerSpectrum::measure(x, y, z, box_len, 32, 12);
    let early = early.expect("early snapshot taken");
    // Every physically resolved scale grows (stay below the particle
    // Nyquist, where the early-time measurement is lattice/shot noise).
    let k_part_ny = std::f64::consts::PI * np as f64 / box_len;
    for ((k, pe), pl) in early.k.iter().zip(&early.p).zip(&late.p) {
        if *k < 0.7 * k_part_ny {
            assert!(pl > pe, "no growth at k = {k}");
        }
    }
    // Mildly nonlinear scales grow faster than the largest scale
    // (nonlinear enhancement — the Fig. 10 signature).
    let pick = |target: f64| -> usize {
        early
            .k
            .iter()
            .enumerate()
            .min_by(|a, b| (a.1 - target).abs().total_cmp(&(b.1 - target).abs()))
            .expect("bins")
            .0
    };
    let i_lo = 0;
    let i_hi = pick(0.55 * k_part_ny);
    let lo = late.p[i_lo] / early.p[i_lo];
    let hi = late.p[i_hi] / early.p[i_hi];
    assert!(
        hi > lo,
        "no nonlinear enhancement: lo(k={}) {lo}, hi(k={}) {hi}",
        early.k[i_lo],
        early.k[i_hi]
    );
}

/// P³M and TreePM evolve the same ICs to closely matching power spectra —
/// the paper's cross-solver validation (they quote 0.1%; we allow more
/// because our boxes are tiny and f32 effects relatively larger).
#[test]
fn p3m_treepm_cross_validation() {
    let np = 16usize;
    let box_len = 64.0;
    let p = power();
    let ics = hacc::ics::zeldovich(np, box_len, &p, 0.2, 9);
    let run = |solver| {
        let mut sim = Simulation::from_ics(cfg(np, box_len, solver, 0.2, 6), &ics);
        // Stop early (z = 1) to keep the test fast.
        sim.step(0.3);
        sim.step(0.4);
        sim.step(0.5);
        let (x, y, z) = sim.positions();
        PowerSpectrum::measure(x, y, z, box_len, 32, 10)
    };
    let a = run(SolverKind::TreePm);
    let b = run(SolverKind::P3m);
    for ((k, pa), pb) in a.k.iter().zip(&a.p).zip(&b.p) {
        let dev = (pa / pb - 1.0).abs();
        assert!(dev < 0.01, "k = {k}: TreePM/P3M deviate by {dev:.4}");
    }
}

/// Zel'dovich ICs measured immediately reproduce the linear input
/// spectrum at low k (the ICs ↔ analysis consistency loop).
#[test]
fn ics_match_linear_theory() {
    let p = power();
    let box_len = 400.0;
    let a = 0.25;
    let ics = hacc::ics::zeldovich(32, box_len, &p, a, 33);
    let ps = PowerSpectrum::measure(&ics.x, &ics.y, &ics.z, box_len, 32, 12);
    let mut checked = 0;
    for (k, pk) in ps.k.iter().zip(&ps.p) {
        if *k > 0.03 && *k < 0.15 {
            let want = p.p_of_k_a(*k, a);
            let ratio = pk / want;
            assert!(
                ratio > 0.6 && ratio < 1.6,
                "k = {k}: measured/linear = {ratio}"
            );
            checked += 1;
        }
    }
    assert!(checked >= 3);
}

/// Momentum is conserved through a multi-step TreePM run.
#[test]
fn momentum_conservation_long_run() {
    let np = 12usize;
    let box_len = 48.0;
    let p = power();
    let ics = hacc::ics::zeldovich(np, box_len, &p, 0.2, 17);
    let mut sim = Simulation::from_ics(cfg(np, box_len, SolverKind::TreePm, 0.2, 8), &ics);
    let (vx0, vy0, vz0) = {
        let (a, b, c) = sim.momenta();
        (
            a.iter().map(|&v| f64::from(v)).sum::<f64>(),
            b.iter().map(|&v| f64::from(v)).sum::<f64>(),
            c.iter().map(|&v| f64::from(v)).sum::<f64>(),
        )
    };
    sim.run(|_, _| {});
    let (vx, vy, vz) = sim.momenta();
    let scale: f64 = vx.iter().map(|&v| f64::from(v.abs())).sum::<f64>().max(1.0);
    for (p0, arr) in [(vx0, vx), (vy0, vy), (vz0, vz)] {
        let p1: f64 = arr.iter().map(|&v| f64::from(v)).sum();
        assert!(
            (p1 - p0).abs() < 5e-3 * scale,
            "momentum drift {} vs scale {scale}",
            p1 - p0
        );
    }
}

/// The measured halo mass function has the right order of magnitude
/// against Sheth–Tormen.
#[test]
fn mass_function_order_of_magnitude() {
    let np = 20usize;
    let box_len = 80.0;
    let p = power();
    let ics = hacc::ics::zeldovich(np, box_len, &p, 0.1, 21);
    let mut sim = Simulation::from_ics(cfg(np, box_len, SolverKind::TreePm, 0.1, 10), &ics);
    sim.run(|_, _| {});
    let (x, y, z) = sim.positions();
    let finder = FofFinder::with_linking_param(box_len, np, 0.2, 20);
    let halos = finder.find(x, y, z);
    assert!(!halos.is_empty());
    let pmass = sim.config().particle_mass(sim.len());
    // Cumulative abundance above the 20-particle threshold vs theory.
    let m_thresh = 20.0 * pmass;
    let n_measured = halos.len() as f64 / box_len.powi(3);
    let n_theory = hacc::cosmo::MassFunction::ShethTormen.n_above(&p, m_thresh, 1.0);
    let ratio = n_measured / n_theory;
    assert!(
        ratio > 0.1 && ratio < 10.0,
        "abundance ratio measured/theory = {ratio}"
    );
}
