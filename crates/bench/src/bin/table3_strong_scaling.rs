//! Table III / Fig. 8 reproduction: full-code strong scaling.
//!
//! The paper fixes a 1024³-particle problem and scales one rack from 512
//! to 16,384 cores, dropping per-node memory utilization from ~62% to
//! 4.5%; scaling stays near-ideal until the overloaded-region work grows
//! at the thinnest slabs. We fix a laptop-scale problem, scale simulated
//! ranks, and report the same columns, then print the model rows with
//! the overload penalty at the paper's core counts.

use hacc_bench::{print_table, reference_power};
use hacc_core::{DistSimulation, SimConfig, SolverKind};
use hacc_cosmo::Cosmology;
use hacc_machine::{BgqPartition, FullCodeModel};
use hacc_short::FLOPS_PER_INTERACTION;

fn main() {
    println!("Table III / Fig. 8: full-code strong scaling (fixed problem size)");
    let power = reference_power();

    // Fixed problem: 32³ particles on a 64³ grid; ranks 1..8 (slab widths
    // 64 → 8 cells; the 8-cell slab is already 'overload abuse' territory:
    // 4.5-cell shells on both sides exceed the slab width).
    let np_side = 32usize;
    let ng = 64usize;
    let box_len = 4.0 * ng as f64;
    let cfg_base = SimConfig {
        cosmology: Cosmology::lcdm(),
        box_len,
        ng,
        a_init: 0.25,
        a_final: 0.3,
        steps: 1,
        subcycles: 3,
        solver: SolverKind::TreePm,
        spectral: hacc_pm::SpectralParams::default(),
        two_level: None,
        tree: hacc_short::TreeParams::default(),
        rcut_cells: 3.0,
        skin_cells: 0.25,
        max_retries: None,
        backoff_base_ms: None,
    };
    let ics = hacc_ics::zeldovich(np_side, box_len, &power, cfg_base.a_init, 11);
    let np_total = ics.len();

    let mut rows = Vec::new();
    for ranks in [1usize, 2, 4, 8] {
        let cfg = cfg_base;
        let ics_copy = ics.clone();
        let (stats, _) = hacc_comm::Machine::new(ranks).run(move |comm| {
            let mut sim = DistSimulation::new(&comm, cfg, &ics_copy);
            sim.step(0.3);
            let tot = sim.stats.total();
            (
                tot.total().as_secs_f64(),
                tot.interactions,
                sim.particles().overload_fraction(),
                sim.load_imbalance(),
            )
        });
        let wall = stats.iter().map(|&(t, _, _, _)| t).fold(0.0, f64::max);
        let inter: u64 = stats.iter().map(|&(_, i, _, _)| i).sum();
        let overload = stats.iter().map(|&(_, _, o, _)| o).fold(0.0, f64::max);
        let imbalance = stats[0].3;
        let flops = inter as f64 * FLOPS_PER_INTERACTION as f64;
        rows.push(vec![
            ranks.to_string(),
            (np_total / ranks).to_string(),
            format!("{:.3}", wall),
            format!("{:.3e}", wall / cfg_base.subcycles as f64 / np_total as f64),
            format!("{:.2e}", flops / wall),
            format!("{:.2}", overload),
            format!("{imbalance:.2}"),
        ]);
    }
    print_table(
        "Measured (simulated ranks); overload column = passive/active fraction",
        &[
            "ranks",
            "parts/rank",
            "t/step [s]",
            "t/substep/part [s]",
            "flops/s",
            "overload",
            "imbalance",
        ],
        &rows,
    );

    // Paper-scale model with the strong-scaling overload penalty.
    let model_base = FullCodeModel::paper_reference();
    let paper_rows: [(usize, f64, f64, f64); 6] = [
        (512, 4.42, 67.44, 145.94),
        (1024, 8.77, 66.89, 98.01),
        (2048, 17.99, 68.67, 49.16),
        (4096, 33.06, 63.05, 21.97),
        (8192, 67.72, 64.59, 15.90),
        (16384, 131.27, 62.59, 10.01),
    ];
    let np = 1024f64.powi(3);
    let mut rows = Vec::new();
    for &(cores, paper_tf, paper_peak, paper_t) in &paper_rows {
        let part = BgqPartition::with_cores(cores);
        // Per-rank box edge in grid cells for a 1024³ grid over `ranks`
        // 3-D blocks; overload shell ~4 cells.
        let edge = 1024.0 / (part.ranks() as f64).cbrt();
        let model = FullCodeModel {
            overload_factor: FullCodeModel::overload_penalty(edge, 4.0),
            ..model_base
        };
        let r = model.substep(&part, np);
        rows.push(vec![
            cores.to_string(),
            format!("{:.2}", r.flops_rate / 1e12),
            format!("{paper_tf:.2}"),
            format!("{:.1}", 100.0 * r.peak_fraction),
            format!("{paper_peak:.1}"),
            format!("{:.1}", r.time),
            format!("{paper_t:.1}"),
        ]);
    }
    print_table(
        "BG/Q model vs paper Table III (1024³ particles)",
        &[
            "cores",
            "model TF",
            "paper TF",
            "model %peak",
            "paper %peak",
            "model t/substep",
            "paper t/substep",
        ],
        &rows,
    );
    println!(
        "\nshape check: near-linear TFlops growth; time/substep keeps falling but\n\
         the overloaded-region work grows as slabs thin out (paper: slowdown at\n\
         16,384 cores, 65,536 particles/core)."
    );
}
