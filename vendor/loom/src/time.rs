//! Modeled time: a logical clock per execution.
//!
//! `Instant::now()` reads the execution's clock, which starts at zero
//! and advances **only** when a timed condvar wait fires its timeout
//! branch (the clock jumps to that waiter's deadline). Deadline
//! arithmetic written against `std::time::Instant` therefore works
//! unchanged under the model, and every timeout either fires (clock
//! reaches the deadline) or is beaten by a notify — both explored.

use std::ops::{Add, Sub};
use std::time::Duration;

/// Modeled monotonic instant (a point on the execution's logical clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instant(Duration);

impl Instant {
    /// The current modeled time. Panics outside a model run.
    pub fn now() -> Instant {
        Instant(crate::rt::now())
    }

    /// Saturating difference (the modeled clock is monotonic, so this
    /// only saturates when comparing instants from unrelated runs).
    pub fn duration_since(&self, earlier: Instant) -> Duration {
        self.0.checked_sub(earlier.0).unwrap_or(Duration::ZERO)
    }

    pub fn elapsed(&self) -> Duration {
        Instant::now().duration_since(*self)
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0 + rhs)
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Duration) -> Instant {
        Instant(self.0.checked_sub(rhs).unwrap_or(Duration::ZERO))
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        self.duration_since(rhs)
    }
}
