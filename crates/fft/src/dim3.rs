//! Serial (shared-memory) 3-D complex FFT.
//!
//! Row-major `[nx][ny][nz]` layout (`z` fastest). Lines along each axis are
//! transformed with the 1-D plan; the y and x passes gather strided lines
//! into contiguous buffers (the same data-movement trade the paper's
//! transpose-based distributed FFT makes, in miniature). Rayon parallelizes
//! across independent lines.

use crate::complex::Complex64;
use crate::plan::Fft1d;
use crate::scratch::BufPool;
use rayon::prelude::*;

/// 3-D FFT plan for an `nx × ny × nz` grid.
///
/// Carries an internal [`BufPool`] so repeated transforms allocate no
/// scratch after the first call.
#[derive(Debug)]
pub struct Fft3 {
    nx: usize,
    ny: usize,
    nz: usize,
    plan_x: Fft1d,
    plan_y: Fft1d,
    plan_z: Fft1d,
    pool: BufPool,
}

impl Clone for Fft3 {
    fn clone(&self) -> Self {
        // The scratch pool is transient state; a clone starts cold.
        Fft3 {
            nx: self.nx,
            ny: self.ny,
            nz: self.nz,
            plan_x: self.plan_x.clone(),
            plan_y: self.plan_y.clone(),
            plan_z: self.plan_z.clone(),
            pool: BufPool::new(),
        }
    }
}

impl Fft3 {
    /// Plan for a cubic `n³` grid.
    #[must_use] 
    pub fn new_cubic(n: usize) -> Self {
        Self::new(n, n, n)
    }

    /// Plan for a general `nx × ny × nz` grid.
    #[must_use] 
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Fft3 {
            nx,
            ny,
            nz,
            plan_x: Fft1d::new(nx),
            plan_y: Fft1d::new(ny),
            plan_z: Fft1d::new(nz),
            pool: BufPool::new(),
        }
    }

    /// Grid dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// True only for a degenerate empty grid.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unnormalized forward transform in place.
    pub fn forward(&self, data: &mut [Complex64]) {
        self.transform(data, false);
    }

    /// Normalized backward transform in place (divides by `nx·ny·nz`).
    pub fn backward(&self, data: &mut [Complex64]) {
        self.transform(data, true);
        let inv = 1.0 / self.len() as f64;
        data.par_iter_mut().for_each(|v| *v = v.scale(inv));
    }

    fn transform(&self, data: &mut [Complex64], inverse: bool) {
        assert_eq!(data.len(), self.len(), "grid size mismatch");
        pass_z(&self.plan_z, data, self.nz, inverse, &self.pool);
        pass_y(&self.plan_y, data, self.ny, self.nz, inverse, &self.pool);
        pass_x(&self.plan_x, data, self.ny, self.nz, inverse, &self.pool);
    }
}

/// Run one 1-D line through the plan; `inverse` applies the unnormalized
/// inverse via conjugation (any rescale is the caller's business).
#[inline]
pub(crate) fn run_line(
    plan: &Fft1d,
    line: &mut [Complex64],
    scratch: &mut [Complex64],
    inverse: bool,
) {
    if inverse {
        conj_in(line);
        plan.forward(line, scratch);
        conj_in(line);
    } else {
        plan.forward(line, scratch);
    }
}

/// Pass 1 of the 3-D transform: contiguous z lines of length `nz`.
pub(crate) fn pass_z(
    plan: &Fft1d,
    data: &mut [Complex64],
    nz: usize,
    inverse: bool,
    pool: &BufPool,
) {
    data.par_chunks_mut(nz).for_each_init(
        || pool.lease(plan.scratch_len()),
        |scratch, line| run_line(plan, line, scratch, inverse),
    );
}

/// Pass 2: y lines of length `ny`, strided by the z-extent `nzc` within
/// each x-plane (`nzc` is `nz` for c2c, `nz/2+1` for the half-spectrum).
pub(crate) fn pass_y(
    plan: &Fft1d,
    data: &mut [Complex64],
    ny: usize,
    nzc: usize,
    inverse: bool,
    pool: &BufPool,
) {
    data.par_chunks_mut(ny * nzc).for_each_init(
        || (pool.lease(plan.scratch_len()), pool.lease(ny)),
        |(scratch, line), plane| {
            for iz in 0..nzc {
                for iy in 0..ny {
                    line[iy] = plane[iy * nzc + iz];
                }
                run_line(plan, line, scratch, inverse);
                for iy in 0..ny {
                    plane[iy * nzc + iz] = line[iy];
                }
            }
        },
    );
}

/// Pass 3: x lines strided by `ny·nzc`. Parallelizes over y so each task
/// works on disjoint (y, z) columns; uses raw indexing through a shared
/// pointer wrapper kept sound by the disjointness of columns.
pub(crate) fn pass_x(
    plan: &Fft1d,
    data: &mut [Complex64],
    ny: usize,
    nzc: usize,
    inverse: bool,
    pool: &BufPool,
) {
    let nx = plan.len();
    let plane_stride = ny * nzc;
    let ptr = SyncPtr(data.as_mut_ptr());
    (0..ny).into_par_iter().for_each_init(
        || (pool.lease(plan.scratch_len()), pool.lease(nx)),
        |(scratch, line), iy| {
            let base = ptr;
            for iz in 0..nzc {
                let off = iy * nzc + iz;
                for (ix, lv) in line.iter_mut().enumerate() {
                    // SAFETY: distinct iy tasks touch disjoint offsets.
                    *lv = unsafe { *base.0.add(ix * plane_stride + off) };
                }
                run_line(plan, line, scratch, inverse);
                for (ix, lv) in line.iter().enumerate() {
                    // SAFETY: writes the same disjoint (iy, iz) column
                    // read above; `ix·plane_stride + off` stays within
                    // the `nx·ny·nzc` allocation behind `data`.
                    unsafe { *base.0.add(ix * plane_stride + off) = *lv };
                }
            }
        },
    );
}

fn conj_in(line: &mut [Complex64]) {
    for v in line.iter_mut() {
        *v = v.conj();
    }
}

/// Pointer wrapper asserting cross-thread use is sound (columns disjoint).
#[derive(Clone, Copy)]
struct SyncPtr(*mut Complex64);
// SAFETY: the pointer names the caller's cube allocation, which outlives
// the scoped x-pass, and each parallel (y, z) task touches only its own
// strided column — distinct (y, z) pairs index disjoint elements. The
// wrapper only moves the pointer into rayon closures.
unsafe impl Send for SyncPtr {}
// SAFETY: shared references only copy the pointer; dereferences happen
// inside the unsafe blocks that prove per-column disjointness.
unsafe impl Sync for SyncPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wavenumber::k_index;

    fn rand_grid(n: usize, seed: u64) -> Vec<Complex64> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) - 0.5
        };
        (0..n).map(|_| Complex64::new(next(), next())).collect()
    }

    /// Brute-force 3-D DFT for tiny grids.
    fn dft3(x: &[Complex64], n: usize) -> Vec<Complex64> {
        let mut out = vec![Complex64::ZERO; n * n * n];
        for kx in 0..n {
            for ky in 0..n {
                for kz in 0..n {
                    let mut acc = Complex64::ZERO;
                    for jx in 0..n {
                        for jy in 0..n {
                            for jz in 0..n {
                                let phase = -2.0 * std::f64::consts::PI
                                    * ((kx * jx + ky * jy + kz * jz) % n) as f64
                                    / n as f64;
                                acc += x[(jx * n + jy) * n + jz] * Complex64::cis(phase);
                            }
                        }
                    }
                    out[(kx * n + ky) * n + kz] = acc;
                }
            }
        }
        out
    }

    #[test]
    fn matches_brute_force_small() {
        for n in [2, 3, 4] {
            let plan = Fft3::new_cubic(n);
            let sig = rand_grid(n * n * n, 7);
            let mut data = sig.clone();
            plan.forward(&mut data);
            let want = dft3(&sig, n);
            let err = data
                .iter()
                .zip(&want)
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-9, "n = {n}, err = {err}");
        }
    }

    #[test]
    fn roundtrip_cubic_and_rectangular() {
        for (nx, ny, nz) in [(8, 8, 8), (4, 6, 10), (16, 8, 4), (5, 5, 5)] {
            let plan = Fft3::new(nx, ny, nz);
            let sig = rand_grid(nx * ny * nz, 99);
            let mut data = sig.clone();
            plan.forward(&mut data);
            plan.backward(&mut data);
            let err = data
                .iter()
                .zip(&sig)
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-10, "dims {nx}x{ny}x{nz}: err {err}");
        }
    }

    #[test]
    fn plane_wave_lands_in_one_bin() {
        let n = 8;
        let plan = Fft3::new_cubic(n);
        let (mx, my, mz) = (2usize, 5usize, 1usize);
        let mut data: Vec<Complex64> = Vec::with_capacity(n * n * n);
        for jx in 0..n {
            for jy in 0..n {
                for jz in 0..n {
                    let phase = 2.0 * std::f64::consts::PI
                        * ((mx * jx + my * jy + mz * jz) % n) as f64
                        / n as f64;
                    data.push(Complex64::cis(phase));
                }
            }
        }
        plan.forward(&mut data);
        for kx in 0..n {
            for ky in 0..n {
                for kz in 0..n {
                    let v = data[(kx * n + ky) * n + kz];
                    let expect = if (kx, ky, kz) == (mx, my, mz) {
                        (n * n * n) as f64
                    } else {
                        0.0
                    };
                    assert!(
                        (v.re - expect).abs() < 1e-8 && v.im.abs() < 1e-8,
                        "bin ({kx},{ky},{kz})"
                    );
                }
            }
        }
    }

    #[test]
    fn real_input_has_hermitian_spectrum() {
        let n = 6;
        let plan = Fft3::new_cubic(n);
        let mut data: Vec<Complex64> = rand_grid(n * n * n, 3)
            .into_iter()
            .map(|c| Complex64::new(c.re, 0.0))
            .collect();
        plan.forward(&mut data);
        // X[-k] = conj(X[k]).
        for kx in 0..n {
            for ky in 0..n {
                for kz in 0..n {
                    let neg = |i: usize| (n - i) % n;
                    let a = data[(kx * n + ky) * n + kz];
                    let b = data[(neg(kx) * n + neg(ky)) * n + neg(kz)];
                    assert!((a - b.conj()).abs() < 1e-9);
                }
            }
        }
        // Suppress unused import warning in this test module.
        let _ = k_index(0, 2);
    }

    #[test]
    fn dc_bin_is_sum() {
        let n = 4;
        let plan = Fft3::new_cubic(n);
        let sig = rand_grid(n * n * n, 17);
        let sum: Complex64 = sig.iter().fold(Complex64::ZERO, |a, &b| a + b);
        let mut data = sig;
        plan.forward(&mut data);
        assert!((data[0] - sum).abs() < 1e-10);
    }
}
