//! Deterministic fault injection for the simulated machine.
//!
//! The BG/Q runs the paper describes last for many hours across 96 racks;
//! at that scale component failure is an operational certainty and HACC's
//! answer is its checkpoint/restart machinery. To exercise the equivalent
//! machinery in this reproduction, a [`FaultPlan`] threads through
//! [`crate::Machine`] into every send: each point-to-point message gets a
//! seeded, per-message fault decision — drop it, duplicate it, or delay
//! it (deliver out of order) — and a chosen rank can be slowed down or
//! killed outright (an injected panic) when the simulation reaches a
//! configured step.
//!
//! All decisions are pure functions of `(seed, context, src, dst, tag,
//! seq)`, so a failing run replays bit-identically from the same plan —
//! the property the recovery tests rely on.

use crate::sync::{Arc, AtomicBool, Ordering};
use std::time::Duration;

/// What to do with one in-flight message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    None,
    /// Lose the message (the sequence number is still consumed, so the
    /// receiver sees a gap and its watchdog can name the missing message).
    Drop,
    /// Deliver the message twice (the receiver's transport layer must
    /// discard the retransmission).
    Duplicate,
    /// Hold the message back so it arrives after later traffic (the
    /// receiver's transport layer must restore order).
    Delay,
    /// Flip one bit of the transmitted frame (the receiver's per-message
    /// CRC must detect the corruption and discard the frame).
    Corrupt,
}

/// A rank artificially slowed on every send, emulating the "one slow
/// node drags the bulk-synchronous step" failure mode.
#[derive(Debug, Clone, Copy)]
pub struct SlowRank {
    /// Global rank to slow down.
    pub rank: usize,
    /// Extra latency added to each of its sends.
    pub per_send: Duration,
}

/// Kill one rank (injected panic) when it begins a given step.
#[derive(Debug, Clone)]
struct KillSpec {
    rank: usize,
    step: u64,
    /// One-shot latch shared across clones of the plan: a re-run after
    /// recovery that passes the same step again is not killed again.
    fired: Arc<AtomicBool>,
}

/// Deterministic, seeded fault-injection plan for one [`crate::Machine`].
///
/// Cloning shares the one-shot kill latch, so a recovery driver can hand
/// the same plan to every retry attempt and the injected kill fires only
/// once.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    drop_prob: f64,
    dup_prob: f64,
    delay_prob: f64,
    corrupt_prob: f64,
    slow: Option<SlowRank>,
    kill: Option<KillSpec>,
}

impl FaultPlan {
    /// A plan that injects nothing (the default).
    #[must_use] 
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Start building a plan with a deterministic seed.
    #[must_use] 
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Probability that a message is dropped.
    #[must_use] 
    pub fn drop_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.drop_prob = p;
        self
    }

    /// Probability that a message is duplicated.
    #[must_use] 
    pub fn dup_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.dup_prob = p;
        self
    }

    /// Probability that a message is delayed (delivered out of order).
    #[must_use] 
    pub fn delay_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.delay_prob = p;
        self
    }

    /// Probability that one bit of a message's wire frame is flipped in
    /// flight. The receiver's CRC detects the damage and discards the
    /// frame, so an injected corruption surfaces exactly like a drop —
    /// a diagnosable sequence gap — never as silently torn data.
    #[must_use]
    pub fn corrupt_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.corrupt_prob = p;
        self
    }

    /// Add `per_send` latency to every send from `rank`.
    #[must_use] 
    pub fn slow_rank(mut self, rank: usize, per_send: Duration) -> Self {
        self.slow = Some(SlowRank { rank, per_send });
        self
    }

    /// Kill `rank` (panic) the first time it begins `step`. One-shot:
    /// clones share the latch, so recovery retries are not re-killed.
    #[must_use] 
    pub fn kill_rank_at_step(mut self, rank: usize, step: u64) -> Self {
        self.kill = Some(KillSpec {
            rank,
            step,
            fired: Arc::new(AtomicBool::new(false)),
        });
        self
    }

    /// True if any fault can fire (lets the transport skip the seeded
    /// decision entirely for clean runs).
    #[must_use] 
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.dup_prob > 0.0
            || self.delay_prob > 0.0
            || self.corrupt_prob > 0.0
            || self.slow.is_some()
            || self.kill.is_some()
    }

    /// The configured slow rank, if any.
    #[must_use] 
    pub fn slow(&self) -> Option<SlowRank> {
        self.slow
    }

    /// Decide the fate of message `seq` on `(context, src, dst, tag)`.
    /// Pure function of the plan seed and the message coordinates.
    #[must_use] 
    pub fn action(&self, context: u64, src: usize, dst: usize, tag: u64, seq: u64) -> FaultAction {
        if self.drop_prob == 0.0
            && self.dup_prob == 0.0
            && self.delay_prob == 0.0
            && self.corrupt_prob == 0.0
        {
            return FaultAction::None;
        }
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for word in [context, src as u64, dst as u64, tag, seq] {
            h = mix64(h ^ word);
        }
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u < self.drop_prob {
            FaultAction::Drop
        } else if u < self.drop_prob + self.dup_prob {
            FaultAction::Duplicate
        } else if u < self.drop_prob + self.dup_prob + self.delay_prob {
            FaultAction::Delay
        } else if u < self.drop_prob + self.dup_prob + self.delay_prob + self.corrupt_prob {
            FaultAction::Corrupt
        } else {
            FaultAction::None
        }
    }

    /// Which bit of the wire frame to flip for a message chosen for
    /// [`FaultAction::Corrupt`]. Seeded independently of [`Self::action`]
    /// so the flipped bit position is uniform, not correlated with the
    /// band that selected the corruption.
    #[must_use]
    pub fn corrupt_bit(&self, context: u64, src: usize, dst: usize, tag: u64, seq: u64) -> u64 {
        let mut h = self.seed ^ 0x0bad_b175_c0de_f11f;
        for word in [context, src as u64, dst as u64, tag, seq] {
            h = mix64(h ^ word);
        }
        h
    }

    /// Should `rank` die entering `step`? Latches: returns `true` exactly
    /// once per plan (including clones).
    #[must_use] 
    pub fn should_kill(&self, rank: usize, step: u64) -> bool {
        match &self.kill {
            // SeqCst swap: the latch gates control flow (exactly one
            // kill across plan clones, possibly on different machines /
            // retry attempts with no other synchronization between
            // them), so the strongest ordering keeps the one-shot
            // guarantee independent of surrounding code.
            Some(k) if k.rank == rank && k.step == step => {
                !k.fired.swap(true, Ordering::SeqCst)
            }
            _ => false,
        }
    }

    /// The configured kill target `(rank, step)`, if any.
    #[must_use] 
    pub fn kill_target(&self) -> Option<(usize, u64)> {
        self.kill.as_ref().map(|k| (k.rank, k.step))
    }
}

/// SplitMix64 finalizer — a strong 64-bit mixer.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-machine fault counters, surfaced through
/// [`crate::TrafficStats::faults`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages lost by injection.
    pub dropped: u64,
    /// Messages delivered twice by injection.
    pub duplicated: u64,
    /// Messages delivered out of order by injection.
    pub delayed: u64,
    /// Retransmissions discarded by the receiver's transport layer.
    pub dup_discarded: u64,
    /// Messages that arrived ahead of a gap and were buffered for
    /// reordering.
    pub reordered: u64,
    /// Messages whose wire frame had a bit flipped by injection.
    pub corrupted: u64,
    /// Frames the receiver's CRC rejected and discarded.
    pub corrupt_detected: u64,
}

impl FaultStats {
    /// Total injected events.
    #[must_use]
    pub fn total_injected(&self) -> u64 {
        self.dropped + self.duplicated + self.delayed + self.corrupted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::seeded(42).drop_prob(0.2).dup_prob(0.2);
        let b = FaultPlan::seeded(42).drop_prob(0.2).dup_prob(0.2);
        for seq in 0..200 {
            assert_eq!(a.action(1, 0, 1, 7, seq), b.action(1, 0, 1, 7, seq));
        }
    }

    #[test]
    fn seed_changes_decisions() {
        let a = FaultPlan::seeded(1).drop_prob(0.5);
        let b = FaultPlan::seeded(2).drop_prob(0.5);
        let differs = (0..64).any(|seq| a.action(0, 0, 1, 0, seq) != b.action(0, 0, 1, 0, seq));
        assert!(differs);
    }

    #[test]
    fn probabilities_roughly_respected() {
        let plan = FaultPlan::seeded(7).drop_prob(0.25);
        let n = 10_000u64;
        let drops = (0..n)
            .filter(|&seq| plan.action(3, 1, 2, 9, seq) == FaultAction::Drop)
            .count() as f64;
        let frac = drops / n as f64;
        assert!((frac - 0.25).abs() < 0.03, "drop fraction {frac}");
    }

    #[test]
    fn kill_fires_once_even_across_clones() {
        let plan = FaultPlan::seeded(0).kill_rank_at_step(2, 5);
        let clone = plan.clone();
        assert!(!plan.should_kill(1, 5));
        assert!(!plan.should_kill(2, 4));
        assert!(plan.should_kill(2, 5));
        assert!(!clone.should_kill(2, 5), "latch shared across clones");
    }

    #[test]
    fn inactive_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        for seq in 0..100 {
            assert_eq!(plan.action(0, 0, 1, 0, seq), FaultAction::None);
        }
    }
}
