//! Reusable scratch-buffer pool for allocation-free transforms.
//!
//! Every FFT pass needs a handful of line/scratch buffers. Allocating
//! them per call is cheap once but ruinous on the hot path: the PM solve
//! runs four 3-D transforms per step, each with per-plane scratch. The
//! pool hands out leases backed by recycled `Vec`s, so a plan reaches a
//! steady state where repeated transforms perform zero heap allocations.
//!
//! The pool is `Sync` (a mutexed free list) and leases return their
//! buffer on drop, which keeps the design correct under a real work
//! stealing thread pool as well as the serial stand-in.

use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

use crate::complex::Complex64;

/// A free list of recycled complex buffers.
#[derive(Debug, Default)]
pub struct BufPool {
    bufs: Mutex<Vec<Vec<Complex64>>>,
}

impl BufPool {
    /// An empty pool.
    #[must_use] 
    pub fn new() -> Self {
        Self::default()
    }

    /// Lease a zeroed buffer of exactly `len` elements. Prefers a
    /// recycled buffer whose capacity already fits, so after warm-up no
    /// allocation happens regardless of the mix of lengths requested.
    pub fn lease(&self, len: usize) -> Lease<'_> {
        let mut guard = self.bufs.lock().unwrap_or_else(|p| p.into_inner());
        let pos = guard.iter().position(|b| b.capacity() >= len);
        let mut buf = match pos {
            Some(i) => guard.swap_remove(i),
            None => guard.pop().unwrap_or_default(),
        };
        drop(guard);
        buf.clear();
        buf.resize(len, Complex64::ZERO);
        Lease { pool: self, buf }
    }

    fn give_back(&self, buf: Vec<Complex64>) {
        let mut guard = self.bufs.lock().unwrap_or_else(|p| p.into_inner());
        guard.push(buf);
    }

    /// Number of buffers currently parked in the free list (diagnostics).
    pub fn idle(&self) -> usize {
        self.bufs.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

/// RAII lease of a pool buffer; derefs to `[Complex64]` and returns the
/// buffer to the pool on drop.
pub struct Lease<'a> {
    pool: &'a BufPool,
    buf: Vec<Complex64>,
}

impl Deref for Lease<'_> {
    type Target = [Complex64];
    fn deref(&self) -> &[Complex64] {
        &self.buf
    }
}

impl DerefMut for Lease<'_> {
    fn deref_mut(&mut self) -> &mut [Complex64] {
        &mut self.buf
    }
}

impl Drop for Lease<'_> {
    fn drop(&mut self) {
        self.pool.give_back(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_is_zeroed_and_sized() {
        let pool = BufPool::new();
        {
            let mut l = pool.lease(8);
            assert_eq!(l.len(), 8);
            assert!(l.iter().all(|v| v.re == 0.0 && v.im == 0.0));
            l[3] = Complex64::new(1.0, 2.0);
        }
        // Recycled buffer is zeroed again.
        let l2 = pool.lease(8);
        assert!(l2.iter().all(|v| v.re == 0.0 && v.im == 0.0));
    }

    #[test]
    fn buffers_are_recycled_not_grown() {
        let pool = BufPool::new();
        drop(pool.lease(64));
        assert_eq!(pool.idle(), 1);
        {
            let _a = pool.lease(16); // reuses the 64-cap buffer
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn mixed_sizes_reach_steady_state() {
        let pool = BufPool::new();
        // Warm up with the largest size first, then cycle smaller ones.
        drop(pool.lease(100));
        drop(pool.lease(100));
        for _ in 0..10 {
            let a = pool.lease(100);
            let b = pool.lease(7);
            drop(a);
            drop(b);
        }
        assert_eq!(pool.idle(), 2);
    }
}
