//! Ablation of the RCB tree "fat leaf" size — the walk-minimization
//! trade-off of Section III: "the time spent in the force kernel goes up
//! but the walk time decreases faster. Obviously, at some point this
//! breaks down, but on many systems, tens or hundreds of particles can
//! be in each leaf node before the crossover is reached."
//!
//! We sweep the leaf size on a clustered particle set and report walk
//! time, kernel time, total time, and the interaction count (the extra
//! work fat leaves accept in exchange for fewer walks).

use std::time::Instant;

use hacc_bench::{fmt_time, print_table, reference_power};
use hacc_short::{ForceKernel, RcbTree, TreeParams};

fn main() {
    println!("RCB tree leaf-size ablation (walk minimization, Section III)");
    // A mildly clustered state from evolved ICs gives realistic lists.
    let power = reference_power();
    let np = 32usize;
    let box_len = 64.0;
    let ics = hacc_ics::zeldovich(np, box_len, &power, 0.5, 13);
    let to_grid = (np as f64 * 2.0 / box_len) as f32; // 64-cell grid units
    let xs: Vec<f32> = ics.x.iter().map(|&v| v * to_grid).collect();
    let ys: Vec<f32> = ics.y.iter().map(|&v| v * to_grid).collect();
    let zs: Vec<f32> = ics.z.iter().map(|&v| v * to_grid).collect();
    let m = vec![1.0f32; xs.len()];
    let kernel = ForceKernel::newtonian(3.0, 1e-5);

    let mut rows = Vec::new();
    for &leaf in &[8usize, 16, 32, 64, 128, 256, 512] {
        let t0 = Instant::now();
        let tree = RcbTree::build(&xs, &ys, &zs, &m, TreeParams { leaf_size: leaf });
        let t_build = t0.elapsed();
        let t1 = Instant::now();
        let (_, inter, walk, kern) = tree.forces_timed(&kernel);
        let t_force = t1.elapsed();
        rows.push(vec![
            leaf.to_string(),
            tree.leaf_count().to_string(),
            format!("{:.0}", tree.mean_neighbor_list_len(kernel.rcut2)),
            fmt_time(t_build.as_secs_f64()),
            fmt_time(walk.as_secs_f64()),
            fmt_time(kern.as_secs_f64()),
            fmt_time(t_force.as_secs_f64()),
            format!("{:.2e}", inter as f64),
        ]);
    }
    print_table(
        "Leaf-size sweep (walk/kernel are summed worker time; total is wall)",
        &[
            "leaf", "leaves", "mean list", "build", "walk", "kernel", "force wall", "interactions",
        ],
        &rows,
    );
    println!(
        "\nshape check: the walk share collapses as leaves fatten while kernel work\n\
         (interactions) grows — the trade the paper describes. In this\n\
         implementation the shared-list gather (the 'walk') is a bulk memcpy, so\n\
         its cost is far lower relative to the kernel than the BG/Q pointer-chasing\n\
         walk: the crossover sits at smaller leaves, and the fat-leaf payoff shows\n\
         up as the walk fraction collapsing rather than total time falling."
    );
}
