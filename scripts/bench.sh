#!/usr/bin/env bash
# Composite performance gates. Two stages, each with a committed baseline:
#
# PR2 — PM pipeline: end-to-end PM step benchmark plus timing-breakdown
# and kernel-threading probes → out/bench/BENCH_pr2.json. The committed
# baseline (out/bench/pm_step_baseline.json) was recorded on the
# complex-to-complex solver before the half-spectrum rework; the gate
# asserts at least MIN_SPEEDUP (default 1.3).
#
# PR4 — short-range solver: the tree_step benchmark (TreePM step
# dominated by the short-range kernel) → out/bench/BENCH_pr4.json. The
# committed baseline (out/bench/tree_step_baseline.json) was recorded on
# the one-sided scalar walk with per-subcycle rebuilds, before the
# symmetric SIMD walk and Verlet-skin reuse; the gate asserts at least
# MIN_TREE_SPEEDUP (default 1.5).
#
# PR7 — FFT microarchitecture: the same pm_step run judged against the
# pre-split-radix baseline (out/bench/pm_step_pr7_baseline.json,
# recorded on the generic mixed-radix scalar FFT with blocking pencil
# transposes), plus the pencil_overlap probe (blocking vs overlapped
# transpose schedule with pack/comm/unpack/fft breakdown) →
# out/bench/BENCH_pr7.json. The gate asserts at least MIN_PM_SPEEDUP
# (default 2.0) on both the step median and the FFT phase.
#
# PR9 — two-level mesh: the comm_volume A/B (single-level vs two-level
# distributed PM, per-tag-class transport counters) plus the socket
# pencil_overlap run → out/bench/BENCH_pr9.json. The gates assert the
# pm_step speedup held (no regression from the two-level plumbing) and
# the measured alltoallv bytes dropped at least MIN_A2A_RATIO
# (default 4) at coarsening 2.
#
# Usage: scripts/bench.sh [--quick]
#   --quick  shrink the kernel-threading sweep (CI-friendly)
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=""
if [[ "${1:-}" == "--quick" ]]; then
  QUICK="--quick"
fi
MIN_SPEEDUP="${MIN_SPEEDUP:-1.3}"
MIN_TREE_SPEEDUP="${MIN_TREE_SPEEDUP:-1.5}"
MIN_PM_SPEEDUP="${MIN_PM_SPEEDUP:-2.0}"
OUT=out/bench
BASELINE="$OUT/pm_step_baseline.json"
TREE_BASELINE="$OUT/tree_step_baseline.json"
PR7_BASELINE="$OUT/pm_step_pr7_baseline.json"
mkdir -p "$OUT"

echo "==> cargo build --release -p hacc-bench"
cargo build --release -p hacc-bench

echo "==> pm_step (end-to-end PM timestep, 128^3 grid)"
./target/release/pm_step --json "$OUT/pm_step_current.json"

echo "==> timing_breakdown (full TreePM phase split)"
./target/release/timing_breakdown --json "$OUT/timing_breakdown.json"

echo "==> fig5_kernel_threading ${QUICK}"
# shellcheck disable=SC2086
./target/release/fig5_kernel_threading $QUICK --json "$OUT/fig5_kernel_threading.json"

base_median=$(sed -n 's/.*"step_ms_median": \([0-9.]*\).*/\1/p' "$BASELINE")
cur_median=$(sed -n 's/.*"step_ms_median": \([0-9.]*\).*/\1/p' "$OUT/pm_step_current.json")
speedup=$(awk -v b="$base_median" -v c="$cur_median" 'BEGIN { printf "%.3f", b / c }')

{
  echo '{'
  echo '  "baseline":'
  sed 's/^/  /' "$BASELINE" | sed '$ s/$/,/'
  echo '  "current":'
  sed 's/^/  /' "$OUT/pm_step_current.json" | sed '$ s/$/,/'
  echo "  \"speedup_median\": $speedup,"
  echo '  "timing_breakdown":'
  sed 's/^/  /' "$OUT/timing_breakdown.json" | sed '$ s/$/,/'
  echo '  "kernel_threading":'
  sed 's/^/  /' "$OUT/fig5_kernel_threading.json"
  echo '}'
} > "$OUT/BENCH_pr2.json"

echo "==> wrote $OUT/BENCH_pr2.json"
echo "    baseline step: ${base_median} ms, current step: ${cur_median} ms, speedup: ${speedup}x"

awk -v s="$speedup" -v m="$MIN_SPEEDUP" 'BEGIN { exit !(s >= m) }' || {
  echo "FAIL: speedup ${speedup}x is below the required ${MIN_SPEEDUP}x" >&2
  exit 1
}
echo "==> PASS: speedup ${speedup}x >= ${MIN_SPEEDUP}x"

echo "==> tree_step (short-range TreePM step: symmetric SIMD walk + skin reuse)"
./target/release/tree_step --json "$OUT/tree_step_current.json"

tree_base=$(sed -n 's/.*"step_ms_median": \([0-9.]*\).*/\1/p' "$TREE_BASELINE")
tree_cur=$(sed -n 's/.*"step_ms_median": \([0-9.]*\).*/\1/p' "$OUT/tree_step_current.json")
tree_speedup=$(awk -v b="$tree_base" -v c="$tree_cur" 'BEGIN { printf "%.3f", b / c }')

{
  echo '{'
  echo '  "baseline":'
  sed 's/^/  /' "$TREE_BASELINE" | sed '$ s/$/,/'
  echo '  "current":'
  sed 's/^/  /' "$OUT/tree_step_current.json" | sed '$ s/$/,/'
  echo "  \"speedup_median\": $tree_speedup,"
  echo "  \"min_required\": $MIN_TREE_SPEEDUP"
  echo '}'
} > "$OUT/BENCH_pr4.json"

echo "==> wrote $OUT/BENCH_pr4.json"
echo "    baseline step: ${tree_base} ms, current step: ${tree_cur} ms, speedup: ${tree_speedup}x"

awk -v s="$tree_speedup" -v m="$MIN_TREE_SPEEDUP" 'BEGIN { exit !(s >= m) }' || {
  echo "FAIL: tree_step speedup ${tree_speedup}x is below the required ${MIN_TREE_SPEEDUP}x" >&2
  exit 1
}
echo "==> PASS: tree_step speedup ${tree_speedup}x >= ${MIN_TREE_SPEEDUP}x"

echo "==> pencil_overlap (blocking vs overlapped transpose schedule)"
./target/release/pencil_overlap --json "$OUT/pencil_overlap.json"

# PR7 gate: the SIMD split-radix kernels + cache-blocked transposes must
# beat the pre-rework pm_step baseline on BOTH the whole step and the
# FFT phase; the overlap probe's breakdown rides along in BENCH_pr7.json.
pr7_base_step=$(sed -n 's/.*"step_ms_median": \([0-9.]*\).*/\1/p' "$PR7_BASELINE")
pr7_base_fft=$(sed -n 's/.*"fft_ms_per_step": \([0-9.]*\).*/\1/p' "$PR7_BASELINE")
pr7_cur_step=$(sed -n 's/.*"step_ms_median": \([0-9.]*\).*/\1/p' "$OUT/pm_step_current.json")
pr7_cur_fft=$(sed -n 's/.*"fft_ms_per_step": \([0-9.]*\).*/\1/p' "$OUT/pm_step_current.json")
pr7_cur_cic=$(sed -n 's/.*"cic_ms_per_step": \([0-9.]*\).*/\1/p' "$OUT/pm_step_current.json")
pm_speedup=$(awk -v b="$pr7_base_step" -v c="$pr7_cur_step" 'BEGIN { printf "%.3f", b / c }')
fft_speedup=$(awk -v b="$pr7_base_fft" -v c="$pr7_cur_fft" 'BEGIN { printf "%.3f", b / c }')

{
  echo '{'
  echo '  "baseline":'
  sed 's/^/  /' "$PR7_BASELINE" | sed '$ s/$/,/'
  echo '  "current":'
  sed 's/^/  /' "$OUT/pm_step_current.json" | sed '$ s/$/,/'
  echo "  \"speedup_step_median\": $pm_speedup,"
  echo "  \"speedup_fft\": $fft_speedup,"
  echo "  \"cic_ms_per_step\": $pr7_cur_cic,"
  echo "  \"min_required\": $MIN_PM_SPEEDUP,"
  echo '  "pencil_overlap":'
  sed 's/^/  /' "$OUT/pencil_overlap.json"
  echo '}'
} > "$OUT/BENCH_pr7.json"

echo "==> wrote $OUT/BENCH_pr7.json"
echo "    baseline step: ${pr7_base_step} ms, current step: ${pr7_cur_step} ms, speedup: ${pm_speedup}x"
echo "    baseline fft:  ${pr7_base_fft} ms, current fft:  ${pr7_cur_fft} ms, speedup: ${fft_speedup}x"

awk -v s="$pm_speedup" -v m="$MIN_PM_SPEEDUP" 'BEGIN { exit !(s >= m) }' || {
  echo "FAIL: pm_step speedup ${pm_speedup}x is below the required ${MIN_PM_SPEEDUP}x" >&2
  exit 1
}
awk -v s="$fft_speedup" -v m="$MIN_PM_SPEEDUP" 'BEGIN { exit !(s >= m) }' || {
  echo "FAIL: FFT-phase speedup ${fft_speedup}x is below the required ${MIN_PM_SPEEDUP}x" >&2
  exit 1
}
echo "==> PASS: pm_step ${pm_speedup}x and FFT ${fft_speedup}x >= ${MIN_PM_SPEEDUP}x"

echo "==> comm_volume (two-level mesh alltoallv A/B at c=2)"
./target/release/comm_volume --json "$OUT/comm_volume.json"

echo "==> hacc-mprun pencil_overlap (socket transport, 4 OS processes)"
cargo build --release --bin hacc-mprun
./target/release/hacc-mprun --ranks 4 --scenario pencil_overlap --out "$OUT"

# PR9 gates: (a) the two-level machinery must not regress the
# single-level pm_step — judged against the same PR7 baseline and bar;
# (b) the coarse global solve must cut measured alltoallv bytes by at
# least MIN_A2A_RATIO (default 4) versus the single-level solve at the
# same ng, from the per-tag-class transport counters.
MIN_A2A_RATIO="${MIN_A2A_RATIO:-4.0}"
a2a_ratio=$(sed -n 's/.*"a2a_ratio": \([0-9.]*\).*/\1/p' "$OUT/comm_volume.json")
total_ratio=$(sed -n 's/.*"total_ratio": \([0-9.]*\).*/\1/p' "$OUT/comm_volume.json")

{
  echo '{'
  echo '  "pm_step_current":'
  sed 's/^/  /' "$OUT/pm_step_current.json" | sed '$ s/$/,/'
  echo "  \"pm_speedup_vs_pr7_baseline\": $pm_speedup,"
  echo "  \"min_pm_speedup\": $MIN_PM_SPEEDUP,"
  echo "  \"min_a2a_ratio\": $MIN_A2A_RATIO,"
  echo '  "comm_volume":'
  sed 's/^/  /' "$OUT/comm_volume.json" | sed '$ s/$/,/'
  echo '  "pencil_overlap_socket":'
  sed 's/^/  /' "$OUT/pencil_overlap_socket.json"
  echo '}'
} > "$OUT/BENCH_pr9.json"

echo "==> wrote $OUT/BENCH_pr9.json"
echo "    pm_step vs PR7 baseline: ${pm_speedup}x, alltoallv reduction: ${a2a_ratio}x (total ${total_ratio}x)"

awk -v s="$pm_speedup" -v m="$MIN_PM_SPEEDUP" 'BEGIN { exit !(s >= m) }' || {
  echo "FAIL: pm_step speedup ${pm_speedup}x regressed below ${MIN_PM_SPEEDUP}x" >&2
  exit 1
}
awk -v s="$a2a_ratio" -v m="$MIN_A2A_RATIO" 'BEGIN { exit !(s >= m) }' || {
  echo "FAIL: alltoallv reduction ${a2a_ratio}x is below the required ${MIN_A2A_RATIO}x" >&2
  exit 1
}
echo "==> PASS: pm_step ${pm_speedup}x held and alltoallv cut ${a2a_ratio}x >= ${MIN_A2A_RATIO}x"
