#!/usr/bin/env bash
# Full CI gate: release build, the complete workspace test suite, and
# lint-clean clippy. Run locally before pushing; .github/workflows/ci.yml
# runs the same three steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "==> cargo xtask verify  (lint wall, deny, loom; miri/tsan when installed)"
cargo xtask verify

echo "==> CI gate passed"
