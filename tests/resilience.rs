//! End-to-end fault-tolerance guarantees: checkpoint/restart is
//! bit-exact, injected failures are survived by the recovery driver, and
//! lost messages surface as diagnostics instead of hangs.

use std::path::{Path, PathBuf};
use std::time::Duration;

use hacc::analysis::PowerSpectrum;
use hacc::comm::{CommError, FaultPlan, HeartbeatConfig, Machine};
use hacc::core::checkpoint::{checkpoint_path, complete_sets};
use hacc::core::{
    run_resilient, write_timeline_json, DistSimulation, InvariantConfig, RecoveryEvent,
    ResilienceConfig, ResilienceError, SimConfig, SolverKind, TimelineHeader,
};
use hacc::cosmo::{Cosmology, LinearPower, Transfer};
use hacc::genio::Snapshot;

const RANKS: usize = 2;

fn cfg() -> SimConfig {
    SimConfig {
        ng: 16,
        box_len: 64.0,
        a_init: 0.2,
        a_final: 0.26,
        steps: 4,
        subcycles: 2,
        solver: SolverKind::TreePm,
        ..SimConfig::small_lcdm()
    }
}

fn ics() -> hacc::ics::IcsRealization {
    let power = LinearPower::new(&Cosmology::lcdm(), Transfer::EisensteinHuNoWiggle);
    hacc::ics::zeldovich(8, 64.0, &power, 0.2, 31)
}

/// Fresh scratch directory under the system tmpdir.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hacc_resilience_{label}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Run the full schedule on a clean machine, checkpointing every step
/// into `dir`; returns rank 0's gathered `(id, position)` list.
fn uninterrupted(dir: &Path) -> Vec<(u64, [f32; 3])> {
    let realization = ics();
    let (mut res, _) = Machine::new(RANKS).run(|comm| {
        let config = cfg();
        let mut sim = DistSimulation::new(&comm, config, &realization);
        let edges = config.step_edges();
        for k in 0..config.steps {
            sim.step(edges[k + 1]);
            sim.checkpoint_to(dir, (k + 1) as u64).expect("checkpoint");
        }
        sim.gather_positions()
    });
    res.iter_mut().find_map(Option::take).expect("rank 0")
}

/// Interrupt a run after 2 of 4 steps, restart from disk in a brand-new
/// machine, and finish: final positions and the final checkpoint files
/// must be bit-identical to the uninterrupted run's.
#[test]
fn distributed_resume_is_bit_exact() {
    let dir_a = scratch("whole");
    let dir_b = scratch("split");
    let want = uninterrupted(&dir_a);

    let realization = ics();
    // First two steps, then the "job is killed" (closure just returns).
    Machine::new(RANKS).run(|comm| {
        let config = cfg();
        let mut sim = DistSimulation::new(&comm, config, &realization);
        let edges = config.step_edges();
        for k in 0..2 {
            sim.step(edges[k + 1]);
            sim.checkpoint_to(&dir_b, (k + 1) as u64).expect("checkpoint");
        }
    });
    // A different machine, a different process-lifetime: everything the
    // restart needs must come from the files.
    let (mut res, _) = Machine::new(RANKS).run(|comm| {
        let config = cfg();
        let (mut sim, done) =
            DistSimulation::resume_from(&comm, config, &dir_b).expect("resume from disk");
        assert_eq!(done, 2);
        let edges = config.step_edges();
        for k in done as usize..config.steps {
            sim.step(edges[k + 1]);
            sim.checkpoint_to(&dir_b, (k + 1) as u64).expect("checkpoint");
        }
        sim.gather_positions()
    });
    let got = res.iter_mut().find_map(Option::take).expect("rank 0");

    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.0, w.0, "particle ids diverged");
        for c in 0..3 {
            assert_eq!(
                g.1[c].to_bits(),
                w.1[c].to_bits(),
                "position bits diverged for id {}",
                g.0
            );
        }
    }
    // Stronger still: the final checkpoint records (positions, momenta,
    // ids, metadata) agree file-for-file.
    for rank in 0..RANKS {
        let a = Snapshot::read_file(&checkpoint_path(&dir_a, 4, rank, RANKS)).unwrap();
        let b = Snapshot::read_file(&checkpoint_path(&dir_b, 4, rank, RANKS)).unwrap();
        assert_eq!(a, b, "final checkpoint differs on rank {rank}");
    }
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// The headline guarantee: a run killed mid-stream by fault injection
/// finishes via the recovery driver with a final state bit-identical to
/// a failure-free run, and the timeline records the recovery.
#[test]
fn killed_run_recovers_to_bit_exact_state() {
    let dir_clean = scratch("clean");
    let dir_faulty = scratch("faulty");
    let realization = ics();

    let clean = run_resilient(
        cfg(),
        &realization,
        &ResilienceConfig::new(RANKS, &dir_clean),
        &FaultPlan::none(),
    )
    .expect("clean run");
    assert_eq!(clean.attempts, 1);

    // Kill rank 1 the first time it begins step 3 (after the step-2
    // checkpoint set exists).
    let faulty = run_resilient(
        cfg(),
        &realization,
        &ResilienceConfig::new(RANKS, &dir_faulty),
        &FaultPlan::seeded(9).kill_rank_at_step(1, 3),
    )
    .expect("recovered run");
    assert_eq!(faulty.attempts, 2, "exactly one recovery expected");
    assert!(
        faulty.timeline.iter().any(|e| matches!(
            e,
            RecoveryEvent::Failure { rank: 1, message, .. }
                if message.contains("killed at step 3")
        )),
        "timeline must record the injected kill: {:?}",
        faulty.timeline
    );
    assert!(
        faulty.timeline.iter().any(|e| matches!(
            e,
            RecoveryEvent::AttemptStarted {
                attempt: 2,
                resume_step: Some(2),
            }
        )),
        "second attempt must restore from the step-2 set: {:?}",
        faulty.timeline
    );

    assert_eq!(clean.positions.len(), faulty.positions.len());
    for (c, f) in clean.positions.iter().zip(&faulty.positions) {
        assert_eq!(c.0, f.0);
        for k in 0..3 {
            assert_eq!(
                c.1[k].to_bits(),
                f.1[k].to_bits(),
                "recovered run diverged at id {}",
                c.0
            );
        }
    }
    for rank in 0..RANKS {
        let a = Snapshot::read_file(&checkpoint_path(&dir_clean, 4, rank, RANKS)).unwrap();
        let b = Snapshot::read_file(&checkpoint_path(&dir_faulty, 4, rank, RANKS)).unwrap();
        assert_eq!(a, b, "final checkpoint differs on rank {rank}");
    }
    let _ = std::fs::remove_dir_all(&dir_clean);
    let _ = std::fs::remove_dir_all(&dir_faulty);
}

/// A corrupted file in the newest checkpoint set must not be trusted:
/// restart falls back to the previous complete, valid set.
#[test]
fn corrupt_newest_set_falls_back_to_older() {
    let dir = scratch("corrupt");
    uninterrupted(&dir);
    assert_eq!(complete_sets(&dir, RANKS), vec![1, 2, 3, 4]);
    // Truncate rank 1's file of the newest set, and scribble over the
    // middle of rank 0's file in the step-3 set.
    let p4 = checkpoint_path(&dir, 4, 1, RANKS);
    let bytes = std::fs::read(&p4).unwrap();
    std::fs::write(&p4, &bytes[..bytes.len() / 2]).unwrap();
    let p3 = checkpoint_path(&dir, 3, 0, RANKS);
    let mut bytes = std::fs::read(&p3).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&p3, &bytes).unwrap();

    let (res, _) = Machine::new(RANKS).run(|comm| {
        let (sim, done) =
            DistSimulation::resume_from(&comm, cfg(), &dir).expect("fallback resume");
        (done, sim.particles().n_active)
    });
    for (done, n_active) in res {
        assert_eq!(done, 2, "should fall back past both damaged sets");
        assert!(n_active > 0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A lost message under a recv deadline is a diagnostic error naming the
/// missing (context, src, tag) — never a hang.
#[test]
fn lost_message_is_diagnosed_not_hung() {
    let machine = Machine::new(2).with_faults(FaultPlan::seeded(5).drop_prob(1.0));
    let (res, _) = machine.run(|comm| {
        if comm.rank() == 0 {
            comm.send(1, 7, vec![1.0f64]);
            String::new()
        } else {
            match comm.recv_timeout::<f64>(0, 7, Duration::from_millis(50)) {
                Err(e @ CommError::Timeout { .. }) => {
                    if let CommError::Timeout { context, src, tag, .. } = &e {
                        assert_eq!((*context, *src, *tag), (0, 0, 7));
                    }
                    format!("{e}")
                }
                Err(e) => panic!("expected timeout, got {e:?}"),
                Ok(v) => panic!("expected timeout, got data {v:?}"),
            }
        }
    });
    assert!(res[1].contains("src=0") && res[1].contains("tag=7"), "{}", res[1]);
}

/// When the retry budget is exhausted the driver reports the full
/// timeline instead of looping forever.
#[test]
fn retries_exhausted_reports_timeline() {
    let dir = scratch("exhausted");
    let mut rc = ResilienceConfig::new(RANKS, &dir);
    rc.max_retries = 0;
    rc.backoff = Duration::from_millis(1);
    let err = run_resilient(
        cfg(),
        &ics(),
        &rc,
        &FaultPlan::seeded(1).kill_rank_at_step(0, 1),
    )
    .expect_err("no retries allowed");
    let ResilienceError::RetriesExhausted {
        attempts,
        last,
        timeline,
    } = err;
    assert_eq!(attempts, 1);
    assert!(last.contains("killed at step 1"), "{last}");
    assert!(timeline
        .iter()
        .any(|e| matches!(e, RecoveryEvent::Failure { .. })));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A machine-wide watchdog turns a lost message inside a collective into
/// a failed attempt that the recovery driver retries to completion.
#[test]
fn watchdog_plus_recovery_survives_transient_loss() {
    // Drop exactly one message: probability 0 except via a targeted
    // plan is not expressible, so instead kill a rank under watchdog —
    // the surviving ranks' watchdogs fire (poisoned wake) and the
    // driver retries.
    let dir = scratch("watchdog");
    let mut rc = ResilienceConfig::new(RANKS, &dir);
    rc.watchdog = Some(Duration::from_secs(30));
    let run = run_resilient(
        cfg(),
        &ics(),
        &rc,
        &FaultPlan::seeded(3).kill_rank_at_step(0, 1),
    )
    .expect("recovers");
    assert_eq!(run.attempts, 2);
    assert_eq!(run.final_step, 4);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Online (heartbeat-detected, tiered) recovery
// ---------------------------------------------------------------------

/// Geometry for the online-recovery tests: a 32³ mesh so the slab width
/// per rank is controlled by the rank count. At 4 ranks each slab is 8
/// cells against a 4.5-cell overload shell — the two face shells cover
/// the whole slab, so Tier-0 reconstruction can account for every
/// particle. At 2 ranks the slab is 16 cells and the interior band is
/// beyond both shells, forcing the Tier-1 escalation path.
fn cfg32() -> SimConfig {
    SimConfig {
        ng: 32,
        box_len: 64.0,
        a_init: 0.2,
        a_final: 0.26,
        steps: 4,
        subcycles: 2,
        solver: SolverKind::TreePm,
        ..SimConfig::small_lcdm()
    }
}

fn ics32() -> hacc::ics::IcsRealization {
    let power = LinearPower::new(&Cosmology::lcdm(), Transfer::EisensteinHuNoWiggle);
    hacc::ics::zeldovich(16, 64.0, &power, 0.2, 31)
}

/// Seed for the fault plan; CI's fault-matrix job sweeps it.
fn fault_seed() -> u64 {
    std::env::var("HACC_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(9)
}

fn online_rc(ranks: usize, dir: &Path) -> ResilienceConfig {
    let mut rc = ResilienceConfig::new(ranks, dir);
    rc.heartbeat = Some(HeartbeatConfig::default());
    rc.invariants = Some(InvariantConfig::default());
    rc.retain = Some(2);
    rc
}

/// Global momentum and kinetic energy from a checkpoint set's velocity
/// columns (unit particle mass).
fn momentum_and_ke(dir: &Path, step: u64, ranks: usize) -> ([f64; 3], f64) {
    let mut p = [0.0f64; 3];
    let mut ke = 0.0f64;
    for rank in 0..ranks {
        let snap = Snapshot::read_file(&checkpoint_path(dir, step, rank, ranks)).unwrap();
        let v: Vec<&Vec<f32>> = ["vx", "vy", "vz"]
            .iter()
            .map(|c| snap.f32_fields.get(*c).expect("velocity column"))
            .collect();
        for ((&x, &y), &z) in v[0].iter().zip(v[1]).zip(v[2]) {
            let (vx, vy, vz) = (f64::from(x), f64::from(y), f64::from(z));
            p[0] += vx;
            p[1] += vy;
            p[2] += vz;
            ke += 0.5 * (vx * vx + vy * vy + vz * vz);
        }
    }
    (p, ke)
}

fn measure_pk(positions: &[(u64, [f32; 3])]) -> PowerSpectrum {
    let xs: Vec<f32> = positions.iter().map(|&(_, p)| p[0]).collect();
    let ys: Vec<f32> = positions.iter().map(|&(_, p)| p[1]).collect();
    let zs: Vec<f32> = positions.iter().map(|&(_, p)| p[2]).collect();
    PowerSpectrum::measure(&xs, &ys, &zs, 64.0, 32, 8)
}

/// Acceptance test 1: a seeded kill is *detected* by the heartbeat (not
/// relaunched), recovered at Tier 0 from the overload shells with no
/// rollback, and the post-recovery run matches the fault-free one:
/// exact global particle count, momentum and power spectrum within
/// tolerance.
#[test]
fn heartbeat_kill_recovers_online_without_rollback() {
    const R4: usize = 4;
    let seed = fault_seed();
    let dir_clean = scratch("tier0_clean");
    let dir_faulty = scratch("tier0_faulty");
    let realization = ics32();
    let expected = realization.len();

    let clean = run_resilient(
        cfg32(),
        &realization,
        &online_rc(R4, &dir_clean),
        &FaultPlan::none(),
    )
    .expect("clean online run");
    assert_eq!(clean.attempts, 1);

    let victim = (seed as usize) % R4;
    let kill_step = 3 + (seed % 2); // after the step-2 checkpoint set exists
    let run = run_resilient(
        cfg32(),
        &realization,
        &online_rc(R4, &dir_faulty),
        &FaultPlan::seeded(seed).kill_rank_at_step(victim, kill_step),
    )
    .expect("online tier-0 recovery");
    write_timeline_json(
        Path::new(&format!("out/resilience/tier0_seed{seed}.json")),
        Some(&TimelineHeader::for_config(&online_rc(R4, &dir_faulty), Some(seed))),
        &run.timeline,
    )
    .expect("timeline artifact");

    // Detected and survived online: one attempt, no rollback, no panic.
    assert_eq!(run.attempts, 1, "tier-0 must not relaunch: {:?}", run.timeline);
    assert!(
        run.timeline.iter().any(|e| matches!(
            e,
            RecoveryEvent::RankFailureDetected { step, rank, epoch }
                if *step == kill_step && *rank == victim && *epoch == kill_step - 1
        )),
        "heartbeat detection missing from timeline: {:?}",
        run.timeline
    );
    assert!(
        run.timeline
            .iter()
            .any(|e| matches!(e, RecoveryEvent::Tier0Reconstructed { count, .. } if *count == expected)),
        "tier-0 reconstruction missing: {:?}",
        run.timeline
    );
    assert!(
        run.timeline
            .iter()
            .any(|e| matches!(e, RecoveryEvent::ProactiveCheckpoint { .. })),
        "recovered state was not locked in: {:?}",
        run.timeline
    );
    assert!(
        !run.timeline.iter().any(|e| matches!(
            e,
            RecoveryEvent::Tier1Rollback { .. }
                | RecoveryEvent::Failure { .. }
                | RecoveryEvent::InvariantBreach { .. }
        )),
        "tier-0 path must not roll back or breach: {:?}",
        run.timeline
    );

    // Every particle accounted for, by id.
    assert_eq!(run.positions.len(), expected);
    for (i, &(id, _)) in run.positions.iter().enumerate() {
        assert_eq!(id, i as u64, "particle ids must be gapless after recovery");
    }

    // Momentum within tolerance of the fault-free run (replicas track
    // their lost originals to force-noise, not bit-exactly).
    let (p_clean, ke_clean) = momentum_and_ke(&dir_clean, 4, R4);
    let (p_faulty, _) = momentum_and_ke(&dir_faulty, 4, R4);
    let scale = (2.0 * ke_clean * expected as f64).sqrt();
    for a in 0..3 {
        assert!(
            (p_faulty[a] - p_clean[a]).abs() < 0.02 * scale,
            "momentum[{a}] drifted: {} vs {} (scale {scale})",
            p_faulty[a],
            p_clean[a]
        );
    }

    // Power spectrum within tolerance, bin by bin.
    let pk_clean = measure_pk(&clean.positions);
    let pk_faulty = measure_pk(&run.positions);
    for i in 0..pk_clean.p.len() {
        if pk_clean.count[i] > 0 && pk_clean.p[i] > 0.0 {
            let rel = (pk_faulty.p[i] - pk_clean.p[i]).abs() / pk_clean.p[i];
            assert!(
                rel < 0.02,
                "P(k) bin {i} off by {rel}: {} vs {}",
                pk_faulty.p[i],
                pk_clean.p[i]
            );
        }
    }

    // retain=2 kept the checkpoint directory trimmed.
    assert!(complete_sets(&dir_faulty, R4).len() <= 2);
    let _ = std::fs::remove_dir_all(&dir_clean);
    let _ = std::fs::remove_dir_all(&dir_faulty);
}

/// Acceptance test 2: at 2 ranks the 16-cell slab dwarfs the 4.5-cell
/// overload shell, so a dead rank's interior particles are beyond any
/// survivor's replicas — Tier 0 must report incomplete coverage and the
/// run must escalate cleanly to a Tier-1 checkpoint rollback, with both
/// tiers visible on the timeline. The rollback replays deterministically,
/// so the final state is bit-exact w.r.t. the fault-free run.
#[test]
fn overload_shortfall_escalates_to_tier1_rollback() {
    const R2: usize = 2;
    let seed = fault_seed();
    let dir_clean = scratch("tier1_clean");
    let dir_faulty = scratch("tier1_faulty");
    let realization = ics32();
    let expected = realization.len();

    let clean = run_resilient(
        cfg32(),
        &realization,
        &online_rc(R2, &dir_clean),
        &FaultPlan::none(),
    )
    .expect("clean online run");

    let victim = (seed as usize) % R2;
    let kill_step = 3 + (seed % 2);
    let run = run_resilient(
        cfg32(),
        &realization,
        &online_rc(R2, &dir_faulty),
        &FaultPlan::seeded(seed).kill_rank_at_step(victim, kill_step),
    )
    .expect("tier-1 recovery");
    write_timeline_json(
        Path::new(&format!("out/resilience/tier1_seed{seed}.json")),
        Some(&TimelineHeader::for_config(&online_rc(R2, &dir_faulty), Some(seed))),
        &run.timeline,
    )
    .expect("timeline artifact");

    assert_eq!(run.attempts, 1, "tier-1 recovers in-run: {:?}", run.timeline);
    assert!(
        run.timeline.iter().any(|e| matches!(
            e,
            RecoveryEvent::Tier0Incomplete { step, expected: want, got }
                if *step == kill_step && *want == expected && *got < expected
        )),
        "tier-0 shortfall missing from timeline: {:?}",
        run.timeline
    );
    assert!(
        run.timeline.iter().any(|e| matches!(
            e,
            RecoveryEvent::Tier1Rollback { step, resume_step: 2 } if *step == kill_step
        )),
        "tier-1 rollback missing from timeline: {:?}",
        run.timeline
    );

    // Replay from the checkpoint is deterministic: bit-exact final state.
    assert_eq!(run.positions.len(), expected);
    for (c, f) in clean.positions.iter().zip(&run.positions) {
        assert_eq!(c.0, f.0);
        for k in 0..3 {
            assert_eq!(
                c.1[k].to_bits(),
                f.1[k].to_bits(),
                "tier-1 replay diverged at id {}",
                c.0
            );
        }
    }
    for rank in 0..R2 {
        let a = Snapshot::read_file(&checkpoint_path(&dir_clean, 4, rank, R2)).unwrap();
        let b = Snapshot::read_file(&checkpoint_path(&dir_faulty, 4, rank, R2)).unwrap();
        assert_eq!(a, b, "final checkpoint differs on rank {rank}");
    }
    let _ = std::fs::remove_dir_all(&dir_clean);
    let _ = std::fs::remove_dir_all(&dir_faulty);
}

/// The timeline of a dropped-and-recovered machine is printable (the
/// example relies on this).
#[test]
fn timeline_renders() {
    let dir = scratch("render");
    let run = run_resilient(
        cfg(),
        &ics(),
        &ResilienceConfig::new(RANKS, &dir),
        &FaultPlan::seeded(11).kill_rank_at_step(1, 2),
    )
    .expect("recovers");
    let rendered: Vec<String> = run.timeline.iter().map(|e| format!("{e}")).collect();
    assert!(rendered.iter().any(|l| l.contains("cold start")));
    assert!(rendered.iter().any(|l| l.contains("failed")));
    assert!(rendered.iter().any(|l| l.contains("completed step 4")));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Elastic rank scaling (grow/shrink on the recovery path)
// ---------------------------------------------------------------------

use hacc::core::checkpoint::gc_checkpoints;
use hacc::core::{run_elastic, ScaleSchedule, WorldMeta};

/// Geometry for the elastic tests: a 36³ mesh divides evenly by every
/// world size the 4→6→3 schedule visits, and at 6 ranks the 6-cell slab
/// is still wider than the 5.5-cell tree halo. At 6 ranks the two
/// 4.5-cell overload shells cover the whole slab, so a mid-era kill
/// recovers at Tier 0.
fn cfg36() -> SimConfig {
    SimConfig {
        ng: 36,
        box_len: 64.0,
        a_init: 0.2,
        a_final: 0.32,
        steps: 10,
        subcycles: 2,
        solver: SolverKind::TreePm,
        ..SimConfig::small_lcdm()
    }
}

fn ics36() -> hacc::ics::IcsRealization {
    let power = LinearPower::new(&Cosmology::lcdm(), Transfer::EisensteinHuNoWiggle);
    hacc::ics::zeldovich(18, 64.0, &power, 0.2, 31)
}

/// Elastic runs keep every checkpoint set: the assertions below read
/// old-size and new-size sets back after the run.
fn elastic_rc(capacity: usize, dir: &Path) -> ResilienceConfig {
    let mut rc = ResilienceConfig::new(capacity, dir);
    rc.heartbeat = Some(HeartbeatConfig::default());
    rc.invariants = Some(InvariantConfig::default());
    rc.retain = None;
    rc
}

fn count_events(timeline: &[RecoveryEvent], pred: impl Fn(&RecoveryEvent) -> bool) -> usize {
    timeline.iter().filter(|e| pred(e)).count()
}

/// The elastic acceptance test: a 4-rank world grows to 6 and shrinks
/// to 3 mid-run (fault-free, then again while sustaining a seeded
/// SIGKILL mid-era), and both runs end with every particle id
/// accounted for and momentum + P(k) within tolerance of a fault-free
/// fixed-world reference. Scaling itself must cause no rollbacks.
#[test]
fn elastic_grow_shrink_survives_chaos() {
    const CAPACITY: usize = 6;
    let seed = fault_seed();
    let dir_ref = scratch("elastic_ref");
    let dir_clean = scratch("elastic_clean");
    let dir_chaos = scratch("elastic_chaos");
    let realization = ics36();
    let expected = realization.len();
    let schedule = ScaleSchedule::parse("6@3,3@7");

    // Fault-free fixed-world reference at the starting size.
    let reference = run_resilient(
        cfg36(),
        &realization,
        &online_rc(4, &dir_ref),
        &FaultPlan::none(),
    )
    .expect("fixed-world reference");
    let (p_ref, ke_ref) = momentum_and_ke(&dir_ref, 10, 4);
    let pk_ref = measure_pk(&reference.positions);
    let scale = (2.0 * ke_ref * expected as f64).sqrt();

    let check = |run: &hacc::core::ResilientRun, dir: &Path, label: &str| {
        assert_eq!(run.attempts, 1, "{label}: must finish in one attempt");
        assert_eq!(run.final_step, 10);
        // Both resizes committed, at the right steps and generations.
        for (step, from, to, generation) in [(3, 4, 6, 1), (7, 6, 3, 2)] {
            assert!(
                run.timeline.iter().any(|e| matches!(
                    e,
                    RecoveryEvent::ScaleCommitted { step: s, from: f, to: t, count, generation: g }
                        if *s == step && *f == from && *t == to
                            && *count == expected && *g == generation
                )),
                "{label}: missing commit {from}->{to} at step {step}: {:?}",
                run.timeline
            );
        }
        assert_eq!(
            count_events(&run.timeline, |e| matches!(e, RecoveryEvent::ScalePlanned { .. })),
            2,
            "{label}: exactly the two scheduled resizes are planned"
        );
        // Scaling itself causes no aborts and no rollbacks.
        assert_eq!(
            count_events(&run.timeline, |e| matches!(e, RecoveryEvent::ScaleAborted { .. })),
            0,
            "{label}: no resize may abort: {:?}",
            run.timeline
        );
        assert_eq!(
            count_events(&run.timeline, |e| matches!(e, RecoveryEvent::Tier1Rollback { .. })),
            0,
            "{label}: no rollback attributable to scaling: {:?}",
            run.timeline
        );
        // Gapless ids: every particle certified into the final world.
        assert_eq!(run.positions.len(), expected, "{label}: particle count");
        for (i, &(id, _)) in run.positions.iter().enumerate() {
            assert_eq!(id, i as u64, "{label}: particle ids must be gapless");
        }
        // The final world committed at 3 ranks, durably.
        let meta = WorldMeta::read(dir).expect("world meta");
        assert_eq!((meta.active, meta.generation, meta.resizing), (3, 2, None), "{label}");
        assert!(
            complete_sets(dir, 3).contains(&10),
            "{label}: final checkpoint set must be at the 3-rank size"
        );
        // Physics within tolerance of the fixed-world reference.
        let (p, _) = momentum_and_ke(dir, 10, 3);
        for a in 0..3 {
            assert!(
                (p[a] - p_ref[a]).abs() < 0.02 * scale,
                "{label}: momentum[{a}] drifted: {} vs {} (scale {scale})",
                p[a],
                p_ref[a]
            );
        }
        let pk = measure_pk(&run.positions);
        for i in 0..pk_ref.p.len() {
            if pk_ref.count[i] > 0 && pk_ref.p[i] > 0.0 {
                let rel = (pk.p[i] - pk_ref.p[i]).abs() / pk_ref.p[i];
                assert!(
                    rel < 0.02,
                    "{label}: P(k) bin {i} off by {rel}: {} vs {}",
                    pk.p[i],
                    pk_ref.p[i]
                );
            }
        }
    };

    // Fault-free elastic run.
    let clean = run_elastic(
        cfg36(),
        &realization,
        &elastic_rc(CAPACITY, &dir_clean),
        4,
        &schedule,
        &FaultPlan::none(),
    )
    .expect("fault-free elastic run");
    check(&clean, &dir_clean, "clean");

    // Chaos: a seeded kill at step 5, inside the 6-rank era. The 6-cell
    // slab is fully covered by overload shells, so recovery is Tier 0 —
    // in-run, no rollback — and both resizes still commit.
    let victim = (seed as usize) % CAPACITY;
    let chaos = run_elastic(
        cfg36(),
        &realization,
        &elastic_rc(CAPACITY, &dir_chaos),
        4,
        &schedule,
        &FaultPlan::seeded(seed).kill_rank_at_step(victim, 5),
    )
    .expect("chaos elastic run");
    write_timeline_json(
        Path::new(&format!("out/resilience/elastic_chaos_seed{seed}.json")),
        Some(&TimelineHeader::for_config(&elastic_rc(CAPACITY, &dir_chaos), Some(seed))),
        &chaos.timeline,
    )
    .expect("timeline artifact");
    check(&chaos, &dir_chaos, "chaos");
    assert!(
        chaos.timeline.iter().any(|e| matches!(
            e,
            RecoveryEvent::RankFailureDetected { step: 5, rank, .. } if *rank == victim
        )),
        "chaos: the kill must be detected at step 5: {:?}",
        chaos.timeline
    );
    assert!(
        chaos.timeline.iter().any(|e| matches!(
            e,
            RecoveryEvent::Tier0Reconstructed { count, .. } if *count == expected
        )),
        "chaos: tier-0 must rebuild the victim in-run: {:?}",
        chaos.timeline
    );

    let _ = std::fs::remove_dir_all(&dir_ref);
    let _ = std::fs::remove_dir_all(&dir_clean);
    let _ = std::fs::remove_dir_all(&dir_chaos);
}

/// A kill landing exactly on the resize fence must abort the grow —
/// cleanly, through the existing tiers: the old world rolls back to the
/// pre-resize checkpoint, the doomed resize is not retried, and the run
/// completes at the old size.
#[test]
fn kill_at_resize_fence_aborts_grow_cleanly() {
    const CAPACITY: usize = 6;
    let dir = scratch("elastic_abort");
    let realization = ics36();
    let expected = realization.len();

    // The grow after step 3 fences by admitting step 4; kill an old-world
    // member on that very beat.
    let run = run_elastic(
        cfg36(),
        &realization,
        &elastic_rc(CAPACITY, &dir),
        4,
        &ScaleSchedule::parse("6@3"),
        &FaultPlan::seeded(fault_seed()).kill_rank_at_step(1, 4),
    )
    .expect("fence-kill run completes");

    assert_eq!(run.attempts, 1, "abort resolves in-run: {:?}", run.timeline);
    assert!(
        run.timeline
            .iter()
            .any(|e| matches!(e, RecoveryEvent::ScalePlanned { step: 3, from: 4, to: 6, .. })),
        "the grow must be planned before it can abort: {:?}",
        run.timeline
    );
    assert!(
        run.timeline
            .iter()
            .any(|e| matches!(e, RecoveryEvent::ScaleAborted { step: 3, from: 4, to: 6, .. })),
        "fence kill must abort the grow: {:?}",
        run.timeline
    );
    assert_eq!(
        count_events(&run.timeline, |e| matches!(e, RecoveryEvent::ScaleCommitted { .. })),
        0,
        "nothing may commit: {:?}",
        run.timeline
    );
    // Rolled back through the ordinary tier-1 path, exactly once, to the
    // pre-resize checkpoint at step 3.
    assert_eq!(
        count_events(&run.timeline, |e| matches!(
            e,
            RecoveryEvent::Tier1Rollback { step: 4, resume_step: 3 }
        )),
        1,
        "exactly one rollback, to the pre-fence set: {:?}",
        run.timeline
    );
    // Not retried: one plan, one abort.
    assert_eq!(
        count_events(&run.timeline, |e| matches!(e, RecoveryEvent::ScalePlanned { .. })),
        1,
        "an aborted resize must not be retried: {:?}",
        run.timeline
    );
    // The run finished on the old 4-rank world with every particle.
    assert_eq!(run.positions.len(), expected);
    for (i, &(id, _)) in run.positions.iter().enumerate() {
        assert_eq!(id, i as u64, "particle ids must be gapless after the abort");
    }
    let meta = WorldMeta::read(&dir).expect("world meta");
    assert_eq!((meta.active, meta.resizing), (4, None));
    assert!(complete_sets(&dir, 4).contains(&10));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Retention must never count an in-flight checkpoint set: a failure
/// between a rank's write-temp and its rename leaves the newest set
/// incomplete, and the trim has to spare the last *complete* set (it is
/// still the only valid restart point) and leave the partial files
/// alone for the rename to finish.
#[test]
fn gc_spares_last_complete_set_when_newest_is_mid_rename() {
    let dir = scratch("gc_race");
    uninterrupted(&dir); // complete sets at steps 1..=4, RANKS ranks
    assert_eq!(complete_sets(&dir, RANKS), vec![1, 2, 3, 4]);

    // Simulate rank 1 dying between write-temp and rename: its step-4
    // file is still a temp, so the step-4 set is incomplete.
    let final_path = checkpoint_path(&dir, 4, 1, RANKS);
    let tmp_path = final_path.with_extension("gio.tmp");
    std::fs::rename(&final_path, &tmp_path).unwrap();
    assert_eq!(complete_sets(&dir, RANKS), vec![1, 2, 3]);

    // The fenced trim with keep=1 must retain step 3 (the last complete
    // set) and must not touch the partial step-4 files.
    let removed = gc_checkpoints(&dir, RANKS, 1);
    assert_eq!(removed, 2 * RANKS, "steps 1 and 2 are trimmed, per-rank");
    assert_eq!(complete_sets(&dir, RANKS), vec![3]);
    assert!(
        checkpoint_path(&dir, 4, 0, RANKS).exists(),
        "partial set's finished files must survive the trim"
    );
    assert!(tmp_path.exists(), "in-flight temp file must survive the trim");

    // The rename completes (rank recovered / replayed): step 4 becomes
    // complete, and only now may the trim retire step 3.
    std::fs::rename(&tmp_path, &final_path).unwrap();
    assert_eq!(complete_sets(&dir, RANKS), vec![3, 4]);
    assert_eq!(gc_checkpoints(&dir, RANKS, 1), RANKS);
    assert_eq!(complete_sets(&dir, RANKS), vec![4]);

    // And the spared set is genuinely restartable.
    let (res, _) = Machine::new(RANKS).run(|comm| {
        let (_, done) = DistSimulation::resume_from(&comm, cfg(), &dir).expect("resume");
        done
    });
    assert!(res.iter().all(|&d| d == 4));
    let _ = std::fs::remove_dir_all(&dir);
}
