//! Fault-tolerant recovery driver: run to completion through failures.
//!
//! Ties the three fault-tolerance layers together the way a production
//! HACC campaign does:
//!
//! 1. the stepper checkpoints every K long-range steps through
//!    [`crate::checkpoint`] (one CRC-validated file per rank);
//! 2. the simulated machine reports a dead rank as a value
//!    ([`Machine::try_run`]) instead of tearing the process down;
//! 3. [`run_resilient`] catches the failure, backs off, and relaunches —
//!    the new attempt restores itself from the newest checkpoint set
//!    every rank can validate and replays only the lost steps.
//!
//! Because a restored attempt is bit-identical to the uninterrupted
//! trajectory (see [`crate::checkpoint`]), the final state after any
//! number of mid-run failures equals the failure-free result exactly.
//! The driver records a [`RecoveryEvent`] timeline so a run can report
//! what it survived.

use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

use hacc_comm::{FaultPlan, Machine, MachineError};

use crate::checkpoint::{complete_sets, CheckpointError};
use crate::config::SimConfig;
use crate::dist::DistSimulation;

/// Policy knobs for [`run_resilient`].
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Ranks of the simulated machine.
    pub ranks: usize,
    /// Write a checkpoint set every this many completed steps (the final
    /// step is always checkpointed).
    pub checkpoint_every: u64,
    /// Relaunch attempts after the first, before giving up.
    pub max_retries: u32,
    /// Pause before the first relaunch.
    pub backoff: Duration,
    /// Multiplier applied to the pause after every failure.
    pub backoff_factor: f64,
    /// Per-receive watchdog for the relaunched machines; a lost message
    /// then surfaces as a diagnostic timeout instead of a hang.
    pub watchdog: Option<Duration>,
    /// Directory holding the checkpoint sets.
    pub dir: PathBuf,
}

impl ResilienceConfig {
    /// Sensible defaults: checkpoint every 2 steps, 3 retries, 10 ms
    /// initial backoff doubling per failure, no watchdog.
    pub fn new(ranks: usize, dir: impl Into<PathBuf>) -> Self {
        ResilienceConfig {
            ranks,
            checkpoint_every: 2,
            max_retries: 3,
            backoff: Duration::from_millis(10),
            backoff_factor: 2.0,
            watchdog: None,
            dir: dir.into(),
        }
    }

    fn pause_before_attempt(&self, attempt: u32) -> Duration {
        // attempt 2 waits `backoff`, attempt 3 waits `backoff·factor`, …
        let exp = attempt.saturating_sub(2);
        self.backoff.mul_f64(self.backoff_factor.powi(exp as i32))
    }
}

/// One entry of the recovery timeline.
#[derive(Debug, Clone)]
pub enum RecoveryEvent {
    /// An attempt launched, cold (`resume_step: None`) or restored from
    /// a checkpoint taken after `resume_step` completed steps.
    AttemptStarted {
        /// 1-based attempt number.
        attempt: u32,
        /// Steps already completed in the newest complete checkpoint set.
        resume_step: Option<u64>,
    },
    /// An attempt died: `rank` failed with `message`.
    Failure {
        /// Attempt that failed.
        attempt: u32,
        /// First rank reported failed.
        rank: usize,
        /// Its panic message (injected kill, comm timeout, …).
        message: String,
    },
    /// The driver slept before relaunching.
    BackedOff {
        /// Attempt about to launch after the pause.
        attempt: u32,
        /// Pause length (exponential in the failure count).
        pause: Duration,
    },
    /// An attempt ran to the end of the schedule.
    Completed {
        /// The successful attempt.
        attempt: u32,
        /// Total completed steps.
        final_step: u64,
    },
}

impl fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryEvent::AttemptStarted {
                attempt,
                resume_step: None,
            } => write!(f, "attempt {attempt}: cold start"),
            RecoveryEvent::AttemptStarted {
                attempt,
                resume_step: Some(s),
            } => write!(f, "attempt {attempt}: restored from checkpoint at step {s}"),
            RecoveryEvent::Failure {
                attempt,
                rank,
                message,
            } => write!(f, "attempt {attempt}: rank {rank} failed: {message}"),
            RecoveryEvent::BackedOff { attempt, pause } => {
                write!(f, "backing off {pause:?} before attempt {attempt}")
            }
            RecoveryEvent::Completed {
                attempt,
                final_step,
            } => write!(f, "attempt {attempt}: completed step {final_step}"),
        }
    }
}

/// The outcome of a successful resilient run.
#[derive(Debug)]
pub struct ResilientRun {
    /// Everything that happened, in order.
    pub timeline: Vec<RecoveryEvent>,
    /// Attempts launched (1 = no failures).
    pub attempts: u32,
    /// Completed long-range steps.
    pub final_step: u64,
    /// Final `(id, position)` of every particle, gathered to rank 0 and
    /// sorted by id — bit-exact w.r.t. an uninterrupted run.
    pub positions: Vec<(u64, [f32; 3])>,
}

/// Terminal failure of [`run_resilient`].
#[derive(Debug)]
pub enum ResilienceError {
    /// Every attempt failed; carries the timeline for post-mortems.
    RetriesExhausted {
        /// Attempts launched.
        attempts: u32,
        /// Last failure message.
        last: String,
        /// Full event history.
        timeline: Vec<RecoveryEvent>,
    },
}

impl fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResilienceError::RetriesExhausted { attempts, last, .. } => {
                write!(f, "all {attempts} attempts failed; last failure: {last}")
            }
        }
    }
}

impl std::error::Error for ResilienceError {}

/// Run `cfg`'s full schedule on a simulated machine under `plan`,
/// surviving injected failures by checkpoint/restart.
///
/// Each attempt resumes from the newest valid checkpoint set in
/// `rc.dir` (cold-starting from `ics` when none exists), checkpoints
/// every `rc.checkpoint_every` steps, and announces each step to the
/// fault plan via [`hacc_comm::Comm::begin_step`] so step-targeted kills
/// fire. A failed attempt costs an exponentially growing pause; after
/// `rc.max_retries` relaunches the driver gives up and returns the
/// timeline for diagnosis.
pub fn run_resilient(
    cfg: SimConfig,
    ics: &hacc_ics::IcsRealization,
    rc: &ResilienceConfig,
    plan: &FaultPlan,
) -> Result<ResilientRun, ResilienceError> {
    let mut timeline = Vec::new();
    let mut attempt = 1u32;
    loop {
        timeline.push(RecoveryEvent::AttemptStarted {
            attempt,
            resume_step: complete_sets(&rc.dir, rc.ranks).last().copied(),
        });
        let mut machine = Machine::new(rc.ranks).with_faults(plan.clone());
        if let Some(w) = rc.watchdog {
            machine = machine.with_watchdog(w);
        }
        let result = machine.try_run(|comm| {
            let (mut sim, done) = match DistSimulation::resume_from(&comm, cfg, &rc.dir) {
                Ok(resumed) => resumed,
                Err(CheckpointError::NoCheckpoint) => (DistSimulation::new(&comm, cfg, ics), 0),
                Err(e) => panic!("checkpoint restore failed: {e}"),
            };
            let edges = cfg.step_edges();
            for k in done as usize..cfg.steps {
                let step = (k + 1) as u64;
                comm.begin_step(step);
                sim.step(edges[k + 1]);
                if step.is_multiple_of(rc.checkpoint_every) || step == cfg.steps as u64 {
                    if let Err(e) = sim.checkpoint_to(&rc.dir, step) {
                        panic!("checkpoint write failed at step {step}: {e}");
                    }
                }
            }
            sim.gather_positions()
        });
        match result {
            Ok((mut per_rank, _stats)) => {
                let positions = per_rank
                    .iter_mut()
                    .find_map(Option::take)
                    .expect("rank 0 gathered positions");
                timeline.push(RecoveryEvent::Completed {
                    attempt,
                    final_step: cfg.steps as u64,
                });
                return Ok(ResilientRun {
                    timeline,
                    attempts: attempt,
                    final_step: cfg.steps as u64,
                    positions,
                });
            }
            Err(MachineError::RankPanicked { rank, message }) => {
                timeline.push(RecoveryEvent::Failure {
                    attempt,
                    rank,
                    message: message.clone(),
                });
                if attempt > rc.max_retries {
                    return Err(ResilienceError::RetriesExhausted {
                        attempts: attempt,
                        last: message,
                        timeline,
                    });
                }
                attempt += 1;
                let pause = rc.pause_before_attempt(attempt);
                timeline.push(RecoveryEvent::BackedOff { attempt, pause });
                std::thread::sleep(pause);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially() {
        let mut rc = ResilienceConfig::new(2, "/tmp/unused");
        rc.backoff = Duration::from_millis(8);
        rc.backoff_factor = 2.0;
        assert_eq!(rc.pause_before_attempt(2), Duration::from_millis(8));
        assert_eq!(rc.pause_before_attempt(3), Duration::from_millis(16));
        assert_eq!(rc.pause_before_attempt(4), Duration::from_millis(32));
    }

    #[test]
    fn events_render_readably() {
        let e = RecoveryEvent::Failure {
            attempt: 2,
            rank: 1,
            message: "fault injected: rank 1 killed at step 3".into(),
        };
        let s = format!("{e}");
        assert!(s.contains("attempt 2"));
        assert!(s.contains("rank 1"));
        let c = RecoveryEvent::AttemptStarted {
            attempt: 1,
            resume_step: None,
        };
        assert!(format!("{c}").contains("cold start"));
    }
}
