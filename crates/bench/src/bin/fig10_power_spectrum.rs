//! Fig. 10 reproduction: evolution of the matter fluctuation power
//! spectrum.
//!
//! The paper's science test run (10240³ particles, (9.14 Gpc)³, Mira 16
//! racks) stores P(k) at snapshots from z = 5.5 to z = 0: low-k modes
//! grow linearly (P ∝ D²) while high-k power grows much faster as
//! structure goes nonlinear. Our laptop-scale run reproduces exactly that
//! shape; the linear-theory column gives the low-k check.

use hacc_bench::{print_table, reference_power, run_science_sim, FIG10_REDSHIFTS};
use hacc_analysis::PowerSpectrum;
use hacc_core::SolverKind;

fn main() {
    println!("Fig. 10: dark matter power spectrum evolution");
    let np = 24;
    let box_len = 96.0;
    let power = reference_power();

    let mut spectra: Vec<(f64, PowerSpectrum)> = Vec::new();
    let sim = run_science_sim(
        np,
        box_len,
        18,
        SolverKind::TreePm,
        &FIG10_REDSHIFTS,
        |z, s| {
            let (x, y, zz) = s.positions();
            let ps = PowerSpectrum::measure(x, y, zz, box_len, 48, 20);
            spectra.push((z, ps));
        },
    );
    let _ = sim;

    // Table: log10 k vs log10 P per snapshot (the paper's axes).
    let mut rows = Vec::new();
    let ks: Vec<f64> = spectra
        .first()
        .map(|(_, ps)| ps.k.clone())
        .unwrap_or_default();
    for (i, k) in ks.iter().enumerate() {
        let mut row = vec![format!("{:.2}", k.log10())];
        for (_, ps) in &spectra {
            row.push(format!("{:.2}", ps.p[i].max(1e-10).log10()));
        }
        // Linear theory at z = 0 for reference.
        row.push(format!("{:.2}", power.p_of_k(*k).log10()));
        rows.push(row);
    }
    let mut header = vec!["log10 k".to_string()];
    for (z, _) in &spectra {
        header.push(format!("z={z:.1}"));
    }
    header.push("lin z=0".into());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table(
        "log10 P(k) [Mpc/h]^3 per snapshot (columns ordered early → late)",
        &header_refs,
        &rows,
    );

    // Shape checks the paper's figure encodes.
    if spectra.len() >= 2 {
        let (z_first, first) = &spectra[0];
        let (z_last, last) = &spectra[spectra.len() - 1];
        let a_first = 1.0 / (1.0 + z_first);
        let a_last = 1.0 / (1.0 + z_last);
        let g = power.growth();
        let lin_growth = (g.d_of_a(a_last) / g.d_of_a(a_first)).powi(2);
        let k_lo = first.k[1];
        let lo_growth = last.at(k_lo) / first.at(k_lo);
        // Probe the nonlinear regime *below* the particle Nyquist —
        // beyond it the early-time measurement is lattice/alias noise.
        let k_part_ny = std::f64::consts::PI * np as f64 / box_len;
        let k_hi = 0.65 * k_part_ny;
        let hi_growth = last.at(k_hi) / first.at(k_hi);
        println!(
            "\nlow-k growth  P(z={z_last:.1})/P(z={z_first:.1}) at k={k_lo:.3}: {lo_growth:.1} \
             (linear theory: {lin_growth:.1})"
        );
        println!(
            "high-k growth at k={k_hi:.3}: {hi_growth:.1}  — nonlinear enhancement factor \
             {:.1}x over linear",
            hi_growth / lin_growth
        );
        println!(
            "\npaper reference: 'At small wavenumbers, the evolution is linear, but at\n\
             large wavenumbers it is highly nonlinear, and cannot be obtained by any\n\
             method other than direct simulation.'"
        );
    }
}
