//! Section II accuracy claim: "the P³M and the PPTreePM versions agree
//! to within 0.1% for the nonlinear power spectrum test in the code
//! comparison suite."
//!
//! We evolve the same initial conditions with both short-range solvers
//! and compare the measured nonlinear P(k) bin by bin.

use hacc_analysis::PowerSpectrum;
use hacc_bench::{print_table, reference_power};
use hacc_core::{SimConfig, Simulation, SolverKind};
use hacc_cosmo::Cosmology;

fn main() {
    println!("P3M vs PPTreePM nonlinear power spectrum comparison");
    let np = 24usize;
    let box_len = 96.0;
    let power = reference_power();
    let cfg = |solver| SimConfig {
        cosmology: Cosmology::lcdm(),
        box_len,
        ng: 2 * np,
        a_init: 0.2,
        a_final: 0.5,
        steps: 10,
        subcycles: 3,
        solver,
        spectral: hacc_pm::SpectralParams::default(),
        two_level: None,
        tree: hacc_short::TreeParams::default(),
        rcut_cells: 3.0,
        skin_cells: 0.25,
        max_retries: None,
        backoff_base_ms: None,
    };
    let ics = hacc_ics::zeldovich(np, box_len, &power, 0.2, 555);

    let run = |solver: SolverKind| -> PowerSpectrum {
        let mut sim = Simulation::from_ics(cfg(solver), &ics);
        sim.run(|_, _| {});
        let (x, y, z) = sim.positions();
        PowerSpectrum::measure(x, y, z, box_len, 48, 16)
    };
    let ps_tree = run(SolverKind::TreePm);
    let ps_p3m = run(SolverKind::P3m);

    let mut rows = Vec::new();
    let mut max_dev: f64 = 0.0;
    for ((k, pt), pp) in ps_tree.k.iter().zip(&ps_tree.p).zip(&ps_p3m.p) {
        let dev = (pt / pp - 1.0).abs();
        max_dev = max_dev.max(dev);
        rows.push(vec![
            format!("{k:.3}"),
            format!("{pt:.4e}"),
            format!("{pp:.4e}"),
            format!("{:.4}", 100.0 * dev),
        ]);
    }
    print_table(
        "Nonlinear P(k) at z = 1 from identical ICs",
        &["k [h/Mpc]", "TreePM", "P3M", "|diff| %"],
        &rows,
    );
    println!(
        "\nmax deviation: {:.4}%  (paper: P3M and PPTreePM agree to within 0.1%)",
        100.0 * max_dev
    );
}
