//! Ablation: CIC + spectral filter vs higher-order (TSC) deposition.
//!
//! Section II argues the Eq. 5 filter suppresses CIC anisotropy noise
//! "without requiring complex and inflexible higher-order spatial
//! particle deposition methods". This binary puts numbers on that choice
//! by measuring the directional scatter of the PM pair force for three
//! configurations:
//!
//! 1. CIC deposit + Eq. 5 filter (the paper's design),
//! 2. CIC deposit, no filter (the raw noise the filter removes),
//! 3. TSC deposit, no filter (the "higher-order deposition" alternative).
//!
//! If the paper's argument holds, (1) should be competitive with (3)
//! while keeping the cheaper 8-point deposit.

use hacc_bench::print_table;
use hacc_pm::{deposit_cic, deposit_tsc, interpolate_cic, PmSolver, SpectralParams};

fn main() {
    println!("Deposit-order ablation: CIC+filter vs raw CIC vs TSC");
    let n = 32usize;
    let filtered = SpectralParams::default();
    let unfiltered = SpectralParams {
        sigma: 0.0,
        ns: 0,
        ..SpectralParams::default()
    };

    let radii = [1.5f64, 2.0, 3.0];
    let configs: Vec<(&str, SpectralParams, bool)> = vec![
        ("CIC + Eq.5 filter (paper)", filtered, false),
        ("CIC, no filter", unfiltered, false),
        ("TSC, no filter", unfiltered, true),
    ];
    let mut rows = Vec::new();
    for (name, params, tsc) in &configs {
        let solver = PmSolver::new(n, n as f64, *params);
        let mut row = vec![name.to_string()];
        for &r in &radii {
            row.push(format!("{:.2}", 100.0 * scatter(&solver, r, *tsc)));
        }
        rows.push(row);
    }
    print_table(
        "Directional scatter of the PM pair force (std/mean %), by separation [cells]",
        &["deposit + kernel", "r=1.5", "r=2", "r=3"],
        &rows,
    );
    println!(
        "\npaper claim (§II): the spectral filter reduces CIC anisotropy noise by\n\
         over an order of magnitude, doing the work of higher-order deposition\n\
         while keeping the cheap 8-point CIC gather/scatter."
    );
}

/// std/mean of the radial PM force over orientations at separation `r`.
fn scatter(solver: &PmSolver, r: f64, tsc: bool) -> f64 {
    let n = solver.n();
    let mut rng = 0x1234_5678u64;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng as f64 / u64::MAX as f64
    };
    let mut samples = Vec::new();
    for _ in 0..4 {
        let sx = (n as f64 * (0.3 + 0.4 * next())) as f32;
        let sy = (n as f64 * (0.3 + 0.4 * next())) as f32;
        let sz = (n as f64 * (0.3 + 0.4 * next())) as f32;
        let mut src = vec![0.0; n * n * n];
        if tsc {
            deposit_tsc(&mut src, n, &[sx], &[sy], &[sz], 1.0);
        } else {
            deposit_cic(&mut src, n, &[sx], &[sy], &[sz], 1.0);
        }
        let f = solver.solve_forces(&src);
        for _ in 0..24 {
            let u = 2.0 * next() - 1.0;
            let phi = 2.0 * std::f64::consts::PI * next();
            let q = (1.0 - u * u).sqrt();
            let (dx, dy, dz) = (q * phi.cos(), q * phi.sin(), u);
            let px = sx + (r * dx) as f32;
            let py = sy + (r * dy) as f32;
            let pz = sz + (r * dz) as f32;
            let fx = f64::from(interpolate_cic(&f[0], n, &[px], &[py], &[pz])[0]);
            let fy = f64::from(interpolate_cic(&f[1], n, &[px], &[py], &[pz])[0]);
            let fz = f64::from(interpolate_cic(&f[2], n, &[px], &[py], &[pz])[0]);
            samples.push(-(fx * dx + fy * dy + fz * dz));
        }
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
    var.sqrt() / mean.abs().max(1e-30)
}
