//! Criterion benchmarks of the RCB tree: build (3-phase SoA partition)
//! and force evaluation, across leaf sizes — the "fat leaf" trade-off of
//! Section III (walk minimization vs kernel work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hacc_short::{ForceKernel, P3mSolver, RcbTree, TreeParams};

fn particles(np: usize, side: f32) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut s = 7u64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s as f64 / u64::MAX as f64) as f32 * side
    };
    let xs: Vec<f32> = (0..np).map(|_| next()).collect();
    let ys: Vec<f32> = (0..np).map(|_| next()).collect();
    let zs: Vec<f32> = (0..np).map(|_| next()).collect();
    (xs, ys, zs, vec![1.0; np])
}

fn bench_tree(c: &mut Criterion) {
    let np = 20_000usize;
    let side = 32.0f32;
    let (xs, ys, zs, m) = particles(np, side);
    let kernel = ForceKernel::newtonian(3.0, 1e-5);

    let mut group = c.benchmark_group("rcb_tree");
    group.sample_size(10);
    group.throughput(Throughput::Elements(np as u64));
    for &leaf in &[16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("build", leaf), &leaf, |b, &leaf| {
            b.iter(|| {
                std::hint::black_box(RcbTree::build(
                    &xs,
                    &ys,
                    &zs,
                    &m,
                    TreeParams { leaf_size: leaf },
                ))
            });
        });
        let tree = RcbTree::build(&xs, &ys, &zs, &m, TreeParams { leaf_size: leaf });
        group.bench_with_input(BenchmarkId::new("forces", leaf), &leaf, |b, _| {
            b.iter(|| std::hint::black_box(tree.forces(&kernel)));
        });
    }
    // P3M comparison point.
    let p3m = P3mSolver::new(kernel, side);
    group.bench_function("p3m_forces", |b| {
        b.iter(|| std::hint::black_box(p3m.forces(&xs, &ys, &zs, &m)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tree
}
criterion_main!(benches);
