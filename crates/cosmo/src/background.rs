//! FLRW background cosmology.
//!
//! The expansion history enters the N-body problem in two places (paper
//! Eqs. 1–4): the scale factor `a(t)` multiplying the Poisson source, and the
//! kick/drift time integrals of the symplectic stepper. We parameterize dark
//! energy with the CPL form `w(a) = w0 + wa(1 - a)` so the "dark energy model
//! space" campaigns of Section V can be expressed directly.

use crate::quad::integrate;

/// Dark energy equation of state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DarkEnergy {
    /// Cosmological constant, `w = -1`.
    Lambda,
    /// Constant equation of state `w`.
    ConstantW(f64),
    /// CPL parameterization `w(a) = w0 + wa (1 - a)`.
    W0Wa { w0: f64, wa: f64 },
}

impl DarkEnergy {
    /// Density evolution factor `rho_de(a)/rho_de(1)`.
    ///
    /// For CPL this has the closed form
    /// `a^{-3(1+w0+wa)} · exp(-3 wa (1-a))`.
    #[must_use] 
    pub fn density_factor(&self, a: f64) -> f64 {
        match *self {
            DarkEnergy::Lambda => 1.0,
            DarkEnergy::ConstantW(w) => a.powf(-3.0 * (1.0 + w)),
            DarkEnergy::W0Wa { w0, wa } => {
                a.powf(-3.0 * (1.0 + w0 + wa)) * (-3.0 * wa * (1.0 - a)).exp()
            }
        }
    }

    /// Equation of state at scale factor `a`.
    #[must_use] 
    pub fn w(&self, a: f64) -> f64 {
        match *self {
            DarkEnergy::Lambda => -1.0,
            DarkEnergy::ConstantW(w) => w,
            DarkEnergy::W0Wa { w0, wa } => w0 + wa * (1.0 - a),
        }
    }
}

/// An FLRW cosmological model.
///
/// All rates are expressed relative to `H0`, so a caller using time unit
/// `1/H0` can use [`Cosmology::e_of_a`] directly as `H(a)`.
#[derive(Debug, Clone, Copy)]
pub struct Cosmology {
    /// Total matter density parameter (CDM + baryons) today.
    pub omega_m: f64,
    /// Baryon density parameter today (only used by transfer functions).
    pub omega_b: f64,
    /// Dark energy density parameter today.
    pub omega_de: f64,
    /// Curvature density parameter, fixed by closure: `1 - Ωm - Ωde`.
    pub omega_k: f64,
    /// Dimensionless Hubble parameter, `H0 = 100 h` km/s/Mpc.
    pub h: f64,
    /// Scalar spectral index of the primordial power spectrum.
    pub n_s: f64,
    /// Power spectrum normalization: rms linear fluctuation in 8 Mpc/h
    /// spheres at z = 0.
    pub sigma8: f64,
    /// Dark energy model.
    pub de: DarkEnergy,
}

impl Cosmology {
    /// The WMAP-7-like ΛCDM model used for HACC science runs of this era.
    #[must_use] 
    pub fn lcdm() -> Self {
        Cosmology {
            omega_m: 0.265,
            omega_b: 0.0448,
            omega_de: 0.735,
            omega_k: 0.0,
            h: 0.71,
            n_s: 0.963,
            sigma8: 0.8,
            de: DarkEnergy::Lambda,
        }
    }

    /// Einstein–de Sitter model (Ωm = 1). Useful for tests because the growth
    /// factor is exactly `D(a) = a` and `H(a) = H0 a^{-3/2}`.
    #[must_use] 
    pub fn eds() -> Self {
        Cosmology {
            omega_m: 1.0,
            omega_b: 0.05,
            omega_de: 0.0,
            omega_k: 0.0,
            h: 0.7,
            n_s: 1.0,
            sigma8: 0.8,
            de: DarkEnergy::Lambda,
        }
    }

    /// A wCDM variant of [`Cosmology::lcdm`] with constant `w`.
    #[must_use] 
    pub fn wcdm(w: f64) -> Self {
        Cosmology {
            de: DarkEnergy::ConstantW(w),
            ..Self::lcdm()
        }
    }

    /// Dimensionless expansion rate `E(a) = H(a)/H0`.
    #[must_use] 
    pub fn e_of_a(&self, a: f64) -> f64 {
        self.e2_of_a(a).sqrt()
    }

    /// `E²(a)` — cheaper when the square root is not needed.
    #[must_use] 
    pub fn e2_of_a(&self, a: f64) -> f64 {
        debug_assert!(a > 0.0, "scale factor must be positive");
        let a2 = a * a;
        self.omega_m / (a2 * a) + self.omega_k / a2 + self.omega_de * self.de.density_factor(a)
    }

    /// Matter density parameter at scale factor `a`:
    /// `Ωm(a) = Ωm a⁻³ / E²(a)`.
    #[must_use] 
    pub fn omega_m_of_a(&self, a: f64) -> f64 {
        self.omega_m / (a * a * a) / self.e2_of_a(a)
    }

    /// Redshift ↔ scale factor conversions.
    #[must_use] 
    pub fn a_of_z(z: f64) -> f64 {
        1.0 / (1.0 + z)
    }

    /// Scale factor to redshift.
    #[must_use] 
    pub fn z_of_a(a: f64) -> f64 {
        1.0 / a - 1.0
    }

    /// Kick factor: `∫_{a0}^{a1} da / (a² E(a))` (time unit `1/H0`).
    ///
    /// In comoving coordinates with canonical momentum `p = a² ẋ` the
    /// velocity update over a long-range "kick" multiplies the acceleration
    /// by this integral (paper Eq. 6 kick maps).
    #[must_use] 
    pub fn kick_factor(&self, a0: f64, a1: f64) -> f64 {
        integrate(|a| 1.0 / (a * a * self.e_of_a(a)), a0, a1, 1e-12)
    }

    /// Drift factor: `∫_{a0}^{a1} da / (a³ E(a))` (time unit `1/H0`).
    ///
    /// Position update factor for the stream map with `p = a² ẋ`.
    #[must_use] 
    pub fn drift_factor(&self, a0: f64, a1: f64) -> f64 {
        integrate(|a| 1.0 / (a * a * a * self.e_of_a(a)), a0, a1, 1e-12)
    }

    /// Cosmic time between scale factors in units of `1/H0`:
    /// `∫ da / (a E(a))`.
    #[must_use] 
    pub fn time_between(&self, a0: f64, a1: f64) -> f64 {
        integrate(|a| 1.0 / (a * self.e_of_a(a)), a0, a1, 1e-12)
    }

    /// Comoving distance to scale factor `a` in Mpc/h:
    /// `(c/H0) ∫_a^1 da' / (a'² E(a'))` with `c/H0 = 2997.92458 Mpc/h`.
    #[must_use] 
    pub fn comoving_distance(&self, a: f64) -> f64 {
        2997.92458 * integrate(|x| 1.0 / (x * x * self.e_of_a(x)), a, 1.0, 1e-10)
    }

    /// Poisson source prefactor in code units: the paper's
    /// `4πG a² Ωm ρc δ` becomes `(3/2) Ωm H0² δ / a` for the comoving
    /// potential; this returns `(3/2) Ωm` (the `H0²/a` is applied by the
    /// stepper which knows the current epoch).
    #[must_use] 
    pub fn poisson_prefactor(&self) -> f64 {
        1.5 * self.omega_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcdm_is_flat_and_normalized_today() {
        let c = Cosmology::lcdm();
        assert!((c.omega_m + c.omega_k + c.omega_de - 1.0).abs() < 1e-12);
        assert!((c.e_of_a(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eds_expansion_rate_closed_form() {
        let c = Cosmology::eds();
        for &a in &[0.1, 0.25, 0.5, 1.0] {
            assert!((c.e_of_a(a) - a.powf(-1.5)).abs() < 1e-12);
        }
    }

    #[test]
    fn matter_dominates_early() {
        let c = Cosmology::lcdm();
        assert!(c.omega_m_of_a(0.01) > 0.999);
        assert!((c.omega_m_of_a(1.0) - c.omega_m).abs() < 1e-12);
    }

    #[test]
    fn lambda_density_constant_and_w_density_grows_backward() {
        assert_eq!(DarkEnergy::Lambda.density_factor(0.5), 1.0);
        // w > -1 (quintessence-like) means the density was higher in the past.
        let de = DarkEnergy::ConstantW(-0.8);
        assert!(de.density_factor(0.5) > 1.0);
        // CPL with wa = 0 reduces to constant w.
        let cpl = DarkEnergy::W0Wa { w0: -0.8, wa: 0.0 };
        assert!((cpl.density_factor(0.5) - de.density_factor(0.5)).abs() < 1e-12);
    }

    #[test]
    fn cpl_w_interpolates() {
        let de = DarkEnergy::W0Wa { w0: -1.0, wa: 0.5 };
        assert!((de.w(1.0) + 1.0).abs() < 1e-12);
        assert!((de.w(0.5) - (-1.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn eds_kick_drift_closed_forms() {
        // EdS: E = a^{-3/2}; kick = ∫ a^{-1/2} da = 2(√a1-√a0);
        // drift = ∫ a^{-3/2} da = 2(1/√a0 - 1/√a1).
        let c = Cosmology::eds();
        let (a0, a1) = (0.25, 1.0);
        let kick = c.kick_factor(a0, a1);
        let drift = c.drift_factor(a0, a1);
        assert!((kick - 2.0 * (1.0 - 0.5)).abs() < 1e-10, "kick {kick}");
        assert!((drift - 2.0 * (2.0 - 1.0)).abs() < 1e-10, "drift {drift}");
    }

    #[test]
    fn eds_age_is_two_thirds_hubble() {
        let c = Cosmology::eds();
        let age = c.time_between(1e-8, 1.0);
        assert!((age - 2.0 / 3.0).abs() < 1e-4, "age {age}");
    }

    #[test]
    fn kick_drift_additive_over_subintervals() {
        let c = Cosmology::lcdm();
        let whole = c.kick_factor(0.2, 1.0);
        let parts = c.kick_factor(0.2, 0.6) + c.kick_factor(0.6, 1.0);
        assert!((whole - parts).abs() < 1e-10);
    }

    #[test]
    fn comoving_distance_monotone_in_redshift() {
        let c = Cosmology::lcdm();
        let d1 = c.comoving_distance(Cosmology::a_of_z(1.0));
        let d2 = c.comoving_distance(Cosmology::a_of_z(2.0));
        assert!(d2 > d1 && d1 > 0.0);
        // z=1 comoving distance in this flat LCDM is ~2300-2500 Mpc/h.
        assert!(d1 > 2000.0 && d1 < 2700.0, "d1 = {d1}");
    }
}
