//! Distributed spectral Poisson solver.
//!
//! Works over any [`DistFft3`] (slab or pencil): the k-space kernel
//! multiplication uses the transform's own k-layout descriptor, so the
//! same code runs on both decompositions. The weak-scaling studies of
//! Fig. 6 and the full-code driver both build on this.

use hacc_fft::{Complex64, DistFft3, DistRealFft3, Layout3};

use crate::spectral::SpectralParams;

/// Distributed Poisson solve bound to a distributed FFT.
pub struct DistPoisson<'a, F: DistFft3 + ?Sized> {
    fft: &'a F,
    params: SpectralParams,
    /// Cell size Δ (box length / n).
    delta: f64,
}

impl<'a, F: DistFft3 + ?Sized> DistPoisson<'a, F> {
    /// Create a solver; `box_len` is the periodic box side.
    pub fn new(fft: &'a F, box_len: f64, params: SpectralParams) -> Self {
        DistPoisson {
            fft,
            params,
            delta: box_len / fft.n() as f64,
        }
    }

    /// Layout of the rank-local real-space block.
    #[must_use] 
    pub fn real_layout(&self) -> Layout3 {
        self.fft.real_layout()
    }

    /// Solve for the three force component grids from the local source
    /// block (real layout in, real layout out).
    ///
    /// Cost: 1 forward + 3 inverse distributed FFTs, exactly the paper's
    /// "Poisson-solve" composition.
    #[must_use] 
    pub fn solve_forces(&self, source: &[f64]) -> [Vec<f64>; 3] {
        let rl = self.fft.real_layout();
        assert_eq!(source.len(), rl.len(), "source does not match layout");
        let data: Vec<Complex64> = source.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        let mut k_data = self.fft.forward(data);
        let kl = self.fft.k_layout();
        let (n, d) = (self.fft.n(), self.delta);
        let p = self.params;
        for (i, v) in k_data.iter_mut().enumerate() {
            let g = kl.global_coords(i);
            let scale = p.influence(g, n, d) * p.filter(g, n, d);
            *v = v.scale(scale);
        }
        let mut out: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (c, slot) in out.iter_mut().enumerate() {
            let mut comp = k_data.clone();
            for (i, v) in comp.iter_mut().enumerate() {
                let g = kl.global_coords(i);
                *v *= Complex64::new(0.0, -p.gradient(g[c], n, d));
            }
            let real = self.fft.backward(comp);
            *slot = real.iter().map(|v| v.re).collect();
        }
        out
    }

    /// Solve for the potential only (1 forward + 1 inverse FFT).
    #[must_use] 
    pub fn solve_potential(&self, source: &[f64]) -> Vec<f64> {
        let rl = self.fft.real_layout();
        assert_eq!(source.len(), rl.len());
        let data: Vec<Complex64> = source.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        let mut k_data = self.fft.forward(data);
        let kl = self.fft.k_layout();
        let (n, d) = (self.fft.n(), self.delta);
        let p = self.params;
        for (i, v) in k_data.iter_mut().enumerate() {
            let g = kl.global_coords(i);
            let scale = p.influence(g, n, d) * p.filter(g, n, d);
            *v = v.scale(scale);
        }
        self.fft
            .backward(k_data)
            .into_iter()
            .map(|v| v.re)
            .collect()
    }
}

/// Distributed Poisson solve over a real-to-complex transform
/// ([`DistRealFft3`]): the half-spectrum analogue of [`DistPoisson`],
/// with half the FFT flops and half the transpose traffic.
pub struct DistRealPoisson<'a, F: DistRealFft3 + ?Sized> {
    fft: &'a F,
    params: SpectralParams,
    delta: f64,
}

impl<'a, F: DistRealFft3 + ?Sized> DistRealPoisson<'a, F> {
    /// Create a solver; `box_len` is the periodic box side.
    pub fn new(fft: &'a F, box_len: f64, params: SpectralParams) -> Self {
        DistRealPoisson {
            fft,
            params,
            delta: box_len / fft.n() as f64,
        }
    }

    /// Layout of the rank-local real-space block.
    #[must_use] 
    pub fn real_layout(&self) -> Layout3 {
        self.fft.real_layout()
    }

    /// Gradient multiplier with the Nyquist index projected to zero so
    /// the half-spectrum product stays Hermitian (see
    /// [`crate::solver::PmSolver`] for the rationale).
    fn grad(&self, i: usize, n: usize) -> f64 {
        if n.is_multiple_of(2) && i == n / 2 {
            0.0
        } else {
            self.params.gradient(i, n, self.delta)
        }
    }

    /// Solve for the three force component grids from the local source
    /// block (real layout in, real layout out). Cost: 1 r2c forward +
    /// 3 c2r inverse distributed FFTs on the half-spectrum.
    #[must_use] 
    pub fn solve_forces(&self, source: &[f64]) -> [Vec<f64>; 3] {
        let rl = self.fft.real_layout();
        assert_eq!(source.len(), rl.len(), "source does not match layout");
        let mut k_data = self.fft.forward(source.to_vec());
        let kl = self.fft.k_layout();
        let (n, d) = (self.fft.n(), self.delta);
        let p = self.params;
        for (i, v) in k_data.iter_mut().enumerate() {
            let g = kl.global_coords(i);
            let scale = p.influence(g, n, d) * p.filter(g, n, d);
            *v = v.scale(scale);
        }
        let mut out: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (c, slot) in out.iter_mut().enumerate() {
            let mut comp = k_data.clone();
            for (i, v) in comp.iter_mut().enumerate() {
                let g = kl.global_coords(i);
                *v *= Complex64::new(0.0, -self.grad(g[c], n));
            }
            *slot = self.fft.backward(comp);
        }
        out
    }

    /// Solve for the potential only (1 r2c forward + 1 c2r inverse).
    #[must_use] 
    pub fn solve_potential(&self, source: &[f64]) -> Vec<f64> {
        let rl = self.fft.real_layout();
        assert_eq!(source.len(), rl.len());
        let mut k_data = self.fft.forward(source.to_vec());
        let kl = self.fft.k_layout();
        let (n, d) = (self.fft.n(), self.delta);
        let p = self.params;
        for (i, v) in k_data.iter_mut().enumerate() {
            let g = kl.global_coords(i);
            let scale = p.influence(g, n, d) * p.filter(g, n, d);
            *v = v.scale(scale);
        }
        self.fft.backward(k_data)
    }
}

// Not run under miri: every test here spins up a threads-as-ranks
// Machine (interpreter cost multiplies per rank thread) and the
// transpose path has no unsafe code; the serial 3-D FFT tests cover
// the unsafe strided pass under miri.
#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;
    use crate::solver::PmSolver;
    use hacc_comm::Machine;
    use hacc_fft::{PencilFft, RealPencilFft, SlabFft};

    fn rand_source(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) - 0.5
        };
        (0..n * n * n).map(|_| next()).collect()
    }

    /// Distributed (slab or pencil) force solve must equal the serial one.
    fn check_against_serial(n: usize, ranks: usize, pencil: bool) {
        let source = rand_source(n, 2 * n as u64 + 7);
        let serial = PmSolver::new(n, n as f64, SpectralParams::default());
        let want = serial.solve_forces(&source);

        let src = source.clone();
        let (results, _) = Machine::new(ranks).run(move |comm| {
            let run = |fft: &dyn DistFft3| {
                let solver_fft = fft;
                let rl = solver_fft.real_layout();
                let mut local = vec![0.0; rl.len()];
                for (i, v) in local.iter_mut().enumerate() {
                    let g = rl.global_coords(i);
                    *v = src[(g[0] * n + g[1]) * n + g[2]];
                }
                (rl, local)
            };
            if pencil {
                let fft = PencilFft::new(&comm, n);
                let (rl, local) = run(&fft);
                let solver = DistPoisson::new(&fft, n as f64, SpectralParams::default());
                (rl, solver.solve_forces(&local))
            } else {
                let fft = SlabFft::new(&comm, n);
                let (rl, local) = run(&fft);
                let solver = DistPoisson::new(&fft, n as f64, SpectralParams::default());
                (rl, solver.solve_forces(&local))
            }
        });
        for (rl, forces) in &results {
            for c in 0..3 {
                for (i, v) in forces[c].iter().enumerate() {
                    let g = rl.global_coords(i);
                    let w = want[c][(g[0] * n + g[1]) * n + g[2]];
                    assert!(
                        (v - w).abs() < 1e-9,
                        "n={n} ranks={ranks} pencil={pencil} c={c} {g:?}: {v} vs {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn slab_matches_serial() {
        check_against_serial(8, 2, false);
        check_against_serial(12, 3, false);
    }

    #[test]
    fn pencil_matches_serial() {
        check_against_serial(8, 4, true);
        check_against_serial(12, 6, true);
    }

    /// The distributed half-spectrum solve must equal the serial solver
    /// (which itself is pinned to the c2c reference).
    #[test]
    fn real_pencil_matches_serial() {
        for (n, ranks) in [(8usize, 4usize), (12, 6), (9, 4)] {
            let source = rand_source(n, 5 * n as u64 + 1);
            let serial = PmSolver::new(n, n as f64, SpectralParams::default());
            let want = serial.solve_forces(&source);
            let src = source.clone();
            let (results, _) = Machine::new(ranks).run(move |comm| {
                let fft = RealPencilFft::new(&comm, n);
                let rl = fft.real_layout();
                let mut local = vec![0.0; rl.len()];
                for (i, v) in local.iter_mut().enumerate() {
                    let g = rl.global_coords(i);
                    *v = src[(g[0] * n + g[1]) * n + g[2]];
                }
                let solver = DistRealPoisson::new(&fft, n as f64, SpectralParams::default());
                (rl, solver.solve_forces(&local))
            });
            for (rl, forces) in &results {
                for c in 0..3 {
                    for (i, v) in forces[c].iter().enumerate() {
                        let g = rl.global_coords(i);
                        let w = want[c][(g[0] * n + g[1]) * n + g[2]];
                        assert!(
                            (v - w).abs() < 1e-9,
                            "n={n} ranks={ranks} c={c} {g:?}: {v} vs {w}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn real_pencil_potential_matches_serial() {
        let n = 8;
        let source = rand_source(n, 11);
        let serial = PmSolver::new(n, n as f64, SpectralParams::default());
        let want = serial.solve_potential(&source);
        let src = source.clone();
        let (results, _) = Machine::new(4).run(move |comm| {
            let fft = RealPencilFft::new(&comm, n);
            let rl = fft.real_layout();
            let mut local = vec![0.0; rl.len()];
            for (i, v) in local.iter_mut().enumerate() {
                let g = rl.global_coords(i);
                *v = src[(g[0] * n + g[1]) * n + g[2]];
            }
            let solver = DistRealPoisson::new(&fft, n as f64, SpectralParams::default());
            (rl, solver.solve_potential(&local))
        });
        for (rl, phi) in &results {
            for (i, v) in phi.iter().enumerate() {
                let g = rl.global_coords(i);
                let w = want[(g[0] * n + g[1]) * n + g[2]];
                assert!((v - w).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn potential_matches_serial_pencil() {
        let n = 8;
        let source = rand_source(n, 3);
        let serial = PmSolver::new(n, n as f64, SpectralParams::default());
        let want = serial.solve_potential(&source);
        let src = source.clone();
        let (results, _) = Machine::new(4).run(move |comm| {
            let fft = PencilFft::new(&comm, n);
            let rl = fft.real_layout();
            let mut local = vec![0.0; rl.len()];
            for (i, v) in local.iter_mut().enumerate() {
                let g = rl.global_coords(i);
                *v = src[(g[0] * n + g[1]) * n + g[2]];
            }
            let solver = DistPoisson::new(&fft, n as f64, SpectralParams::default());
            (rl, solver.solve_potential(&local))
        });
        for (rl, phi) in &results {
            for (i, v) in phi.iter().enumerate() {
                let g = rl.global_coords(i);
                let w = want[(g[0] * n + g[1]) * n + g[2]];
                assert!((v - w).abs() < 1e-10);
            }
        }
    }
}
