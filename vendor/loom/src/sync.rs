//! Model-checked synchronization primitives.
//!
//! API shape mirrors the `parking_lot` subset used by this workspace
//! (non-poisoning `lock()`, `&mut guard` condvar waits) so the
//! `hacc-comm` `sync` shim can re-export either backend unchanged.

use crate::rt;
use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::time::Duration;

pub use std::sync::Arc;

const UNREGISTERED: usize = usize::MAX;

/// Lazily register a primitive id with the current execution.
///
/// Reads and writes of the id cell never race: only the scheduler's
/// single active thread executes at any moment.
fn lazy_id(cell: &StdAtomicUsize, register: fn() -> usize) -> usize {
    let id = cell.load(StdOrdering::Relaxed);
    if id != UNREGISTERED {
        return id;
    }
    let id = register();
    cell.store(id, StdOrdering::Relaxed);
    id
}

/// Model-checked mutex. Blocking and hand-off are driven entirely by
/// the loom scheduler; the data cell itself needs no OS lock because
/// only one loom thread runs at a time.
pub struct Mutex<T> {
    id: StdAtomicUsize,
    data: UnsafeCell<T>,
}

// SAFETY: access to `data` is serialized by the model scheduler — a
// guard exists only while its thread holds the modeled lock, and only
// one thread executes at a time. Same bounds as std::sync::Mutex.
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: as above; `T: Send` suffices because the guard hands out
// exclusive access only.
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            id: StdAtomicUsize::new(UNREGISTERED),
            data: UnsafeCell::new(value),
        }
    }

    fn lock_id(&self) -> usize {
        lazy_id(&self.id, rt::register_lock)
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        rt::lock_acquire(self.lock_id());
        MutexGuard {
            mutex: self,
            _not_send: PhantomData,
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]; releases the modeled lock on drop.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    _not_send: PhantomData<*mut ()>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: this thread holds the modeled lock (guard invariant)
        // and is the only thread the scheduler allows to run.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref`, plus the guard is borrowed mutably.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        rt::lock_release(self.mutex.lock_id());
    }
}

/// Model-checked condition variable with `parking_lot`'s `&mut guard`
/// API. A waiter with a timeout stays schedulable: the scheduler may
/// fire its timeout branch at any decision point, so both sides of
/// every notify/timeout race are explored.
#[derive(Default)]
pub struct Condvar {
    id: StdAtomicUsize,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar {
            id: StdAtomicUsize::new(UNREGISTERED),
        }
    }

    fn cv_id(&self) -> usize {
        lazy_id(&self.id, rt::register_cv)
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        rt::cv_wait(self.cv_id(), guard.mutex.lock_id(), None);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let wake = rt::cv_wait(self.cv_id(), guard.mutex.lock_id(), Some(timeout));
        WaitTimeoutResult {
            timed_out: wake == rt::Wake::TimedOut,
        }
    }

    pub fn notify_all(&self) -> usize {
        rt::cv_notify_all(self.cv_id());
        0
    }

    pub fn notify_one(&self) -> bool {
        rt::cv_notify_one(self.cv_id());
        false
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Result of a timed wait (mirrors `parking_lot`).
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

pub mod atomic {
    //! Model-checked atomics. Every operation is a scheduling decision,
    //! so all interleavings of atomic accesses are explored; the
    //! `Ordering` argument is accepted but the model is sequentially
    //! consistent (see the crate docs for the deviation note).

    use crate::rt;
    pub use std::sync::atomic::Ordering;
    use std::sync::atomic::Ordering::SeqCst;

    macro_rules! atomic {
        ($name:ident, $std:ty, $prim:ty) => {
            #[derive(Default, Debug)]
            pub struct $name($std);

            impl $name {
                pub fn new(v: $prim) -> Self {
                    Self(<$std>::new(v))
                }

                pub fn load(&self, _order: Ordering) -> $prim {
                    rt::yield_point();
                    self.0.load(SeqCst)
                }

                pub fn store(&self, v: $prim, _order: Ordering) {
                    rt::yield_point();
                    self.0.store(v, SeqCst);
                }

                pub fn swap(&self, v: $prim, _order: Ordering) -> $prim {
                    rt::yield_point();
                    self.0.swap(v, SeqCst)
                }

                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$prim, $prim> {
                    rt::yield_point();
                    self.0.compare_exchange(current, new, SeqCst, SeqCst)
                }

                pub fn into_inner(self) -> $prim {
                    self.0.into_inner()
                }
            }
        };
    }

    atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    macro_rules! atomic_arith {
        ($name:ident, $prim:ty) => {
            impl $name {
                pub fn fetch_add(&self, v: $prim, _order: Ordering) -> $prim {
                    rt::yield_point();
                    self.0.fetch_add(v, SeqCst)
                }

                pub fn fetch_sub(&self, v: $prim, _order: Ordering) -> $prim {
                    rt::yield_point();
                    self.0.fetch_sub(v, SeqCst)
                }
            }
        };
    }

    atomic_arith!(AtomicU32, u32);
    atomic_arith!(AtomicU64, u64);
    atomic_arith!(AtomicUsize, usize);
}
