//! Ablation of the sub-cycle count `nc` in the SKS stepper (paper Eq. 6;
//! "The number of sub-cycles can vary, depending on the force and mass
//! resolution of the simulation, from nc = 5−10").
//!
//! Evolving the same initial conditions with increasing `nc` at a fixed
//! long-range step count should converge *statistically*: the nonlinear
//! power spectrum against the finest sub-cycling stabilizes as the
//! short-range dynamics is resolved, while the cost grows linearly in
//! `nc`. (Pointwise positions are chaotic and never converge — only the
//! statistics carry physical meaning, which is also why the paper's
//! validation metric is the nonlinear power spectrum.)

use std::time::Instant;

use hacc_analysis::PowerSpectrum;
use hacc_bench::{fmt_time, print_table, reference_power};
use hacc_core::{SimConfig, Simulation, SolverKind};
use hacc_cosmo::Cosmology;

fn main() {
    println!("Sub-cycle ablation (SKS operator, paper Eq. 6)");
    let power = reference_power();
    let np = 20usize;
    let box_len = 60.0; // smallish box → meaningful short-range dynamics
    let a0 = 0.3;
    let a1 = 0.65;
    let ics = hacc_ics::zeldovich(np, box_len, &power, a0, 99);
    // Individual trajectories in a clustered N-body system are chaotic —
    // pointwise positions do not converge with time-step refinement, but
    // the *statistics* do. Convergence is therefore measured on the
    // nonlinear power spectrum.
    let run = |nc: usize| -> (PowerSpectrum, f64) {
        let cfg = SimConfig {
            cosmology: Cosmology::lcdm(),
            box_len,
            ng: 2 * np,
            a_init: a0,
            a_final: a1,
            steps: 2,
            subcycles: nc,
            solver: SolverKind::TreePm,
            ..SimConfig::small_lcdm()
        };
        let mut sim = Simulation::from_ics(cfg, &ics);
        let t0 = Instant::now();
        sim.run(|_, _| {});
        let dt = t0.elapsed().as_secs_f64();
        let (x, y, z) = sim.positions();
        (PowerSpectrum::measure(x, y, z, box_len, 40, 12), dt)
    };

    let reference_nc = 16;
    let (ps_ref, _) = run(reference_nc);
    let mut rows = Vec::new();
    for nc in [1usize, 2, 4, 8] {
        let (ps, dt) = run(nc);
        // Mean |ΔP/P| against the nc = 16 reference over all bins.
        let mut dev = 0.0;
        let mut n = 0;
        for (p, pr) in ps.p.iter().zip(&ps_ref.p) {
            dev += (p / pr - 1.0).abs();
            n += 1;
        }
        rows.push(vec![
            nc.to_string(),
            format!("{:.3}", 100.0 * dev / f64::from(n)),
            fmt_time(dt),
        ]);
    }
    print_table(
        &format!("P(k) convergence vs nc = {reference_nc} reference"),
        &["nc", "mean |dP/P| %", "wall-clock"],
        &rows,
    );
    println!(
        "\nshape check: the spectrum deviation decreases monotonically with nc while\n\
         cost grows ~linearly; the residual floor is set by the deliberately coarse\n\
         long-range step, which is exactly the economics Eq. 6 is built on — cheap\n\
         sub-cycles refine the short-range dynamics inside an expensive frozen kick\n\
         (pointwise trajectories are chaotic and are not expected to converge)."
    );
}
