//! Communication-volume A/B for the two-level mesh: the same distributed
//! PM run with the single-level global solve versus the two-level solver
//! (coarse global FFT + rank-local fine complements), with payload bytes
//! broken down by tag class. The point of the two-level design is that
//! the globally transposed transform shrinks from `ng³` to `(ng/c)³`, so
//! its alltoallv volume must drop by ~c³ — this bench measures that drop
//! directly from the transport counters instead of inferring it from
//! grid sizes.
//!
//! Run with `--json PATH` to emit the fragment `scripts/bench.sh` folds
//! into `BENCH_pr9.json`; the gate asserts `a2a_ratio >= 4` at c = 2.

use hacc_bench::reference_power;
use hacc_comm::Machine;
use hacc_core::{DistSimulation, SimConfig, SolverKind};
use hacc_cosmo::Cosmology;
use hacc_pm::PmLevelConfig;

struct Args {
    ng: usize,
    ranks: usize,
    steps: usize,
    coarsening: usize,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut out = Args {
        ng: 64,
        ranks: 2,
        steps: 2,
        coarsening: 2,
        json: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("missing value after {}", argv[i]))
                .clone()
        };
        match argv[i].as_str() {
            "--ng" => out.ng = need(i).parse().expect("--ng"),
            "--ranks" => out.ranks = need(i).parse().expect("--ranks"),
            "--steps" => out.steps = need(i).parse().expect("--steps"),
            "--coarsening" => out.coarsening = need(i).parse().expect("--coarsening"),
            "--json" => out.json = Some(need(i)),
            other => panic!("unknown argument {other}"),
        }
        i += 2;
    }
    out
}

/// Steady-state per-class volume of `steps` distributed PM steps,
/// excluding construction (domain decomposition, table builds). The
/// in-process machine keeps one machine-global counter set, so every
/// rank snapshots the same totals; rank 0's diff is the answer.
fn measure(two_level: Option<PmLevelConfig>, ng: usize, ranks: usize, steps: usize) -> [u64; 6] {
    let power = reference_power();
    let cfg = SimConfig {
        cosmology: Cosmology::lcdm(),
        box_len: 64.0,
        ng,
        a_init: 0.2,
        a_final: 1.0,
        steps: 1,
        subcycles: 1,
        solver: SolverKind::PmOnly,
        spectral: hacc_pm::SpectralParams::default(),
        two_level,
        tree: hacc_short::TreeParams::default(),
        rcut_cells: 3.0,
        skin_cells: 0.25,
        max_retries: None,
        backoff_base_ms: None,
    };
    let ics = hacc_ics::zeldovich(ng / 4, cfg.box_len, &power, cfg.a_init, 17);
    let (results, _) = Machine::new(ranks).run(move |comm| {
        let mut sim = DistSimulation::new(&comm, cfg, &ics);
        comm.barrier();
        let before = comm.traffic_stats().by_class;
        for s in 0..steps {
            sim.step(cfg.a_init + 0.01 * (s + 1) as f64);
        }
        comm.barrier();
        let after = comm.traffic_stats().by_class;
        [
            after.p2p.bytes - before.p2p.bytes,
            after.a2a.bytes - before.a2a.bytes,
            after.control.bytes - before.control.bytes,
            after.p2p.msgs - before.p2p.msgs,
            after.a2a.msgs - before.a2a.msgs,
            after.control.msgs - before.control.msgs,
        ]
    });
    results[0]
}

fn class_json(v: &[u64; 6]) -> String {
    format!(
        r#"{{"p2p":{{"bytes":{},"msgs":{}}},"a2a":{{"bytes":{},"msgs":{}}},"control":{{"bytes":{},"msgs":{}}}}}"#,
        v[0], v[3], v[1], v[4], v[2], v[5]
    )
}

fn main() {
    let args = parse_args();
    let (ng, ranks, steps, c) = (args.ng, args.ranks, args.steps, args.coarsening);
    println!("comm volume A/B: {ng}^3 PM over {ranks} ranks, {steps} steps, coarsening {c}");

    let single = measure(None, ng, ranks, steps);
    let two = measure(
        Some(PmLevelConfig {
            coarsening: c,
            ..PmLevelConfig::default()
        }),
        ng,
        ranks,
        steps,
    );
    assert!(two[1] > 0, "two-level run sent no alltoallv traffic");
    let a2a_ratio = single[1] as f64 / two[1] as f64;
    let total_single: u64 = single[..3].iter().sum();
    let total_two: u64 = two[..3].iter().sum();
    let total_ratio = total_single as f64 / total_two as f64;

    println!(
        "  single-level: a2a {} B, p2p {} B, control {} B",
        single[1], single[0], single[2]
    );
    println!(
        "  two-level:    a2a {} B, p2p {} B, control {} B",
        two[1], two[0], two[2]
    );
    println!("  alltoallv bytes ratio (single / two-level): {a2a_ratio:.2}x (c^3 = {})", c * c * c);
    println!("  total payload ratio: {total_ratio:.2}x");

    let json = format!(
        "{{\n  \"bench\": \"comm_volume\",\n  \"ng\": {ng},\n  \"ranks\": {ranks},\n  \
         \"steps\": {steps},\n  \"coarsening\": {c},\n  \
         \"single_level\": {},\n  \"two_level\": {},\n  \
         \"a2a_ratio\": {a2a_ratio:.3},\n  \"total_ratio\": {total_ratio:.3}\n}}",
        class_json(&single),
        class_json(&two),
    );
    println!("\n{json}");
    if let Some(path) = &args.json {
        if let Some(dir) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(dir).expect("create json dir");
        }
        std::fs::write(path, format!("{json}\n")).expect("write json");
        println!("wrote {path}");
    }
}
