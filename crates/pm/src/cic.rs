//! Cloud-In-Cell (CIC) deposit and interpolation on a periodic cubic grid.
//!
//! Positions are single precision (the paper's mixed-precision choice:
//! particles in f32, spectral arithmetic in f64); the density grid is f64.
//! Positions are in *grid units* — `[0, n)` per axis — callers convert from
//! physical coordinates by `n/L`.

use rayon::prelude::*;

/// Weights and base cell for one particle's CIC cloud.
#[inline]
fn cic_cell(x: f32, n: usize) -> (usize, f64) {
    // Periodic wrap into [0, n).
    let nf = n as f64;
    let mut xf = f64::from(x) % nf;
    if xf < 0.0 {
        xf += nf;
    }
    // Guard the x == n edge case after rounding.
    if xf >= nf {
        xf -= nf;
    }
    let i = xf.floor() as usize;
    (i.min(n - 1), xf - i as f64)
}

/// Deposit particles with `mass` each onto the `n³` grid (adds to `grid`).
///
/// `grid[(ix·n + iy)·n + iz]` accumulates mass in cell units (divide by
/// the mean to get `1 + δ`).
pub fn deposit_cic(grid: &mut [f64], n: usize, xs: &[f32], ys: &[f32], zs: &[f32], mass: f64) {
    assert_eq!(grid.len(), n * n * n);
    assert!(xs.len() == ys.len() && ys.len() == zs.len());
    for ((&x, &y), &z) in xs.iter().zip(ys).zip(zs) {
        let (i, dx) = cic_cell(x, n);
        let (j, dy) = cic_cell(y, n);
        let (k, dz) = cic_cell(z, n);
        let i1 = (i + 1) % n;
        let j1 = (j + 1) % n;
        let k1 = (k + 1) % n;
        let (tx, ty, tz) = (1.0 - dx, 1.0 - dy, 1.0 - dz);
        grid[(i * n + j) * n + k] += mass * tx * ty * tz;
        grid[(i * n + j) * n + k1] += mass * tx * ty * dz;
        grid[(i * n + j1) * n + k] += mass * tx * dy * tz;
        grid[(i * n + j1) * n + k1] += mass * tx * dy * dz;
        grid[(i1 * n + j) * n + k] += mass * dx * ty * tz;
        grid[(i1 * n + j) * n + k1] += mass * dx * ty * dz;
        grid[(i1 * n + j1) * n + k] += mass * dx * dy * tz;
        grid[(i1 * n + j1) * n + k1] += mass * dx * dy * dz;
    }
}

/// Reusable scratch for [`deposit_cic_par_with`]: the counting-sort
/// arrays that group particle indices by x-bin, plus gather buffers for
/// the odd-`n` wrap-around bin. Grown on first use, reused thereafter —
/// a steady-state deposit performs no heap allocation.
#[derive(Default)]
pub struct CicScratch {
    /// Bin start offsets (`n + 1` entries after prefix summation).
    starts: Vec<u32>,
    /// Per-bin write cursor during the scatter pass.
    cursor: Vec<u32>,
    /// Particle indices grouped by base x-cell (flat, `np` entries).
    order: Vec<u32>,
    wrap_x: Vec<f32>,
    wrap_y: Vec<f32>,
    wrap_z: Vec<f32>,
}

/// Parallel CIC deposit.
///
/// Particles are grouped by base x-cell with a counting sort into a flat
/// index array; bins are then processed in two colored passes (even x,
/// odd x) so concurrently processed bins write disjoint pairs of
/// x-planes. A special serial path handles `n < 4`, where the coloring
/// argument breaks down.
pub fn deposit_cic_par(grid: &mut [f64], n: usize, xs: &[f32], ys: &[f32], zs: &[f32], mass: f64) {
    thread_local! {
        static SCRATCH: std::cell::RefCell<CicScratch> =
            std::cell::RefCell::new(CicScratch::default());
    }
    SCRATCH.with(|s| deposit_cic_par_with(grid, n, xs, ys, zs, mass, &mut s.borrow_mut()));
}

/// [`deposit_cic_par`] with caller-owned scratch (allocation-free once
/// the scratch buffers are warm).
pub fn deposit_cic_par_with(
    grid: &mut [f64],
    n: usize,
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    mass: f64,
    scratch: &mut CicScratch,
) {
    assert_eq!(grid.len(), n * n * n);
    assert!(xs.len() == ys.len() && ys.len() == zs.len());
    if n < 4 || xs.len() < 4096 {
        deposit_cic(grid, n, xs, ys, zs, mass);
        return;
    }
    let np = xs.len();
    // Counting sort by base x-cell: starts/cursor/order replace the old
    // per-call `Vec<Vec<u32>>` bin-of-vectors.
    let CicScratch {
        starts,
        cursor,
        order,
        wrap_x,
        wrap_y,
        wrap_z,
    } = scratch;
    starts.clear();
    starts.resize(n + 1, 0);
    for &x in xs {
        let (i, _) = cic_cell(x, n);
        starts[i + 1] += 1;
    }
    for i in 0..n {
        starts[i + 1] += starts[i];
    }
    cursor.clear();
    cursor.extend_from_slice(&starts[..n]);
    order.resize(np, 0);
    for (p, &x) in xs.iter().enumerate() {
        let (i, _) = cic_cell(x, n);
        order[cursor[i] as usize] = p as u32;
        cursor[i] += 1;
    }
    let starts = &starts[..];
    let order = &order[..];
    let ptr = SyncF64Ptr(grid.as_mut_ptr());
    for parity in 0..2 {
        (0..n).into_par_iter().for_each(|ix| {
            if ix % 2 != parity || (n % 2 == 1 && ix == n - 1) {
                // Odd n: the wrap-around bin (writes planes n-1 and 0)
                // aliases both colors; it is handled serially afterwards.
                return;
            }
            let g = ptr;
            let bin = &order[starts[ix] as usize..starts[ix + 1] as usize];
            for &p in bin {
                let p = p as usize;
                let (i, dx) = cic_cell(xs[p], n);
                debug_assert_eq!(i, ix);
                let (j, dy) = cic_cell(ys[p], n);
                let (k, dz) = cic_cell(zs[p], n);
                let i1 = (i + 1) % n;
                let j1 = (j + 1) % n;
                let k1 = (k + 1) % n;
                let (tx, ty, tz) = (1.0 - dx, 1.0 - dy, 1.0 - dz);
                // SAFETY: bins of equal parity write x-planes {ix, ix+1}
                // which are disjoint between bins (and the wrap ix = n-1
                // writing plane 0 only occurs for odd parity when n is
                // even — plane 0 belongs to an even bin not active in this
                // pass; for odd n the wrap bin n-1 is even-parity and
                // plane 0's bin is also even: they could collide, so odd n
                // falls back to serial below).
                unsafe {
                    *g.0.add((i * n + j) * n + k) += mass * tx * ty * tz;
                    *g.0.add((i * n + j) * n + k1) += mass * tx * ty * dz;
                    *g.0.add((i * n + j1) * n + k) += mass * tx * dy * tz;
                    *g.0.add((i * n + j1) * n + k1) += mass * tx * dy * dz;
                    *g.0.add((i1 * n + j) * n + k) += mass * dx * ty * tz;
                    *g.0.add((i1 * n + j) * n + k1) += mass * dx * ty * dz;
                    *g.0.add((i1 * n + j1) * n + k) += mass * dx * dy * tz;
                    *g.0.add((i1 * n + j1) * n + k1) += mass * dx * dy * dz;
                }
            }
        });
        if n % 2 == 1 && parity == 1 {
            // Odd n: the wrap-around bin aliases the first plane; deposit
            // it serially, gathering into persistent scratch instead of
            // allocating fresh per-call vectors.
            let bin = &order[starts[n - 1] as usize..starts[n] as usize];
            wrap_x.clear();
            wrap_y.clear();
            wrap_z.clear();
            for &p in bin {
                let p = p as usize;
                wrap_x.push(xs[p]);
                wrap_y.push(ys[p]);
                wrap_z.push(zs[p]);
            }
            deposit_cic(grid, n, wrap_x, wrap_y, wrap_z, mass);
        }
    }
}

/// Triangular-Shaped-Cloud (TSC) deposit — the "complex and inflexible
/// higher-order spatial particle deposition" alternative the paper's
/// spectral filter makes unnecessary (Section II). Provided so the
/// ablation experiments can quantify that claim: TSC spreads each
/// particle over 27 cells with quadratic weights.
pub fn deposit_tsc(grid: &mut [f64], n: usize, xs: &[f32], ys: &[f32], zs: &[f32], mass: f64) {
    assert_eq!(grid.len(), n * n * n);
    assert!(xs.len() == ys.len() && ys.len() == zs.len());
    // Per-axis: center cell c = floor(x+1/2) (nearest), offset d = x - c,
    // weights (1/2)(1/2-d)², 3/4-d², (1/2)(1/2+d)².
    let axis = |x: f32| -> (usize, [f64; 3]) {
        let nf = n as f64;
        let mut xf = f64::from(x) % nf;
        if xf < 0.0 {
            xf += nf;
        }
        if xf >= nf {
            xf -= nf;
        }
        let c = (xf + 0.5).floor();
        let d = xf - c;
        let cu = (c as usize) % n;
        (
            cu,
            [
                0.5 * (0.5 - d) * (0.5 - d),
                0.75 - d * d,
                0.5 * (0.5 + d) * (0.5 + d),
            ],
        )
    };
    for ((&x, &y), &z) in xs.iter().zip(ys).zip(zs) {
        let (ci, wi) = axis(x);
        let (cj, wj) = axis(y);
        let (ck, wk) = axis(z);
        for (oi, &wx) in wi.iter().enumerate() {
            let i = (ci + n + oi - 1) % n;
            for (oj, &wy) in wj.iter().enumerate() {
                let j = (cj + n + oj - 1) % n;
                for (ok, &wz) in wk.iter().enumerate() {
                    let k = (ck + n + ok - 1) % n;
                    grid[(i * n + j) * n + k] += mass * wx * wy * wz;
                }
            }
        }
    }
}

/// Interpolate a grid field at particle positions (inverse CIC gather).
#[must_use] 
pub fn interpolate_cic(grid: &[f64], n: usize, xs: &[f32], ys: &[f32], zs: &[f32]) -> Vec<f32> {
    let mut out = Vec::new();
    interpolate_cic_into(grid, n, xs, ys, zs, &mut out);
    out
}

/// [`interpolate_cic`] into a caller-owned buffer (resized as needed; no
/// allocation once warm).
pub fn interpolate_cic_into(
    grid: &[f64],
    n: usize,
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    out: &mut Vec<f32>,
) {
    assert_eq!(grid.len(), n * n * n);
    out.resize(xs.len(), 0.0);
    out.par_iter_mut()
        .zip(xs.par_iter())
        .zip(ys.par_iter())
        .zip(zs.par_iter())
        .for_each(|(((o, &x), &y), &z)| {
            let (i, dx) = cic_cell(x, n);
            let (j, dy) = cic_cell(y, n);
            let (k, dz) = cic_cell(z, n);
            let i1 = (i + 1) % n;
            let j1 = (j + 1) % n;
            let k1 = (k + 1) % n;
            let (tx, ty, tz) = (1.0 - dx, 1.0 - dy, 1.0 - dz);
            *o = (grid[(i * n + j) * n + k] * tx * ty * tz
                + grid[(i * n + j) * n + k1] * tx * ty * dz
                + grid[(i * n + j1) * n + k] * tx * dy * tz
                + grid[(i * n + j1) * n + k1] * tx * dy * dz
                + grid[(i1 * n + j) * n + k] * dx * ty * tz
                + grid[(i1 * n + j) * n + k1] * dx * ty * dz
                + grid[(i1 * n + j1) * n + k] * dx * dy * tz
                + grid[(i1 * n + j1) * n + k1] * dx * dy * dz) as f32;
        });
}

#[derive(Clone, Copy)]
struct SyncF64Ptr(*mut f64);
// SAFETY: the pointer names a grid allocation that outlives the scoped
// parallel deposit, and the parity-colored sweep guarantees two threads
// never write the same x-slab concurrently (see deposit_cic_parallel).
// The wrapper only exists to move the raw pointer into rayon closures.
unsafe impl Send for SyncF64Ptr {}
// SAFETY: shared references to the wrapper only copy the pointer; all
// dereferences happen inside the unsafe block that proves disjointness.
unsafe impl Sync for SyncF64Ptr {}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_positions(count: usize, n: usize, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * n as f64
        };
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut zs = Vec::new();
        for _ in 0..count {
            xs.push(next() as f32);
            ys.push(next() as f32);
            zs.push(next() as f32);
        }
        (xs, ys, zs)
    }

    #[test]
    fn deposit_conserves_mass() {
        let n = 8;
        let (xs, ys, zs) = rand_positions(500, n, 3);
        let mut grid = vec![0.0; n * n * n];
        deposit_cic(&mut grid, n, &xs, &ys, &zs, 2.5);
        let total: f64 = grid.iter().sum();
        assert!((total - 500.0 * 2.5).abs() < 1e-9);
    }

    #[test]
    #[allow(clippy::identity_op)] // (ix*n + iy)*n + iz with ix = 1
    fn particle_at_cell_center_fills_one_cell() {
        let n = 4;
        let mut grid = vec![0.0; n * n * n];
        deposit_cic(&mut grid, n, &[1.0], &[2.0], &[3.0], 1.0);
        assert!((grid[(1 * n + 2) * n + 3] - 1.0).abs() < 1e-12);
        assert_eq!(grid.iter().filter(|&&v| v != 0.0).count(), 1);
    }

    #[test]
    #[allow(clippy::identity_op)] // (ix*n + iy)*n + iz with ix = 1
    fn half_cell_offset_splits_evenly() {
        let n = 4;
        let mut grid = vec![0.0; n * n * n];
        deposit_cic(&mut grid, n, &[1.5], &[2.0], &[3.0], 1.0);
        assert!((grid[(1 * n + 2) * n + 3] - 0.5).abs() < 1e-12);
        assert!((grid[(2 * n + 2) * n + 3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn periodic_wrap_deposits() {
        let n = 4;
        let mut grid = vec![0.0; n * n * n];
        // At x = 3.5, half goes to cell 3, half wraps to cell 0.
        deposit_cic(&mut grid, n, &[3.5], &[0.0], &[0.0], 1.0);
        assert!((grid[3 * n * n] - 0.5).abs() < 1e-12);
        assert!((grid[0] - 0.5).abs() < 1e-12);
        // Negative positions wrap too.
        let mut g2 = vec![0.0; n * n * n];
        deposit_cic(&mut g2, n, &[-0.5], &[0.0], &[0.0], 1.0);
        assert!((g2[3 * n * n] - 0.5).abs() < 1e-12, "{}", g2[3 * n * n]);
        assert!((g2[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_serial() {
        // Miri runs a reduced particle count — still above the 4096
        // threshold, so the colored unsafe deposit path is what's
        // checked.
        let np = if cfg!(miri) { 4200 } else { 10_000 };
        for n in [8usize, 9] {
            let (xs, ys, zs) = rand_positions(np, n, 17);
            let mut serial = vec![0.0; n * n * n];
            deposit_cic(&mut serial, n, &xs, &ys, &zs, 1.0);
            let mut par = vec![0.0; n * n * n];
            deposit_cic_par(&mut par, n, &xs, &ys, &zs, 1.0);
            let err = serial
                .iter()
                .zip(&par)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-9, "n = {n}, err = {err}");
        }
    }

    // Satellite: the parallel deposit must agree with the serial one per
    // cell on odd grid sizes, where the wrap-around x-bin takes the
    // serial fallback path (and must reuse scratch rather than allocate).
    // Skipped under miri (8 cases at up to 33³ — the single-case tests
    // above cover the same unsafe path).
    #[cfg(not(miri))]
    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]
        #[test]
        fn par_matches_serial_on_odd_grids(seed in proptest::prelude::any::<u64>(), pick in 0usize..3) {
            let n = [5usize, 7, 33][pick];
            // Above the 4096-particle threshold so the parallel path runs.
            let (xs, ys, zs) = rand_positions(6000, n, seed);
            let mut serial = vec![0.0; n * n * n];
            deposit_cic(&mut serial, n, &xs, &ys, &zs, 1.0);
            let mut scratch = CicScratch::default();
            let mut par = vec![0.0; n * n * n];
            deposit_cic_par_with(&mut par, n, &xs, &ys, &zs, 1.0, &mut scratch);
            for (c, (a, b)) in serial.iter().zip(&par).enumerate() {
                proptest::prop_assert!((a - b).abs() < 1e-12, "n={} cell {}: {} vs {}", n, c, a, b);
            }
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh() {
        // Same scratch across grids of different size and particle count:
        // results must be identical to fresh-scratch runs. Miri runs a
        // trimmed sweep (drops the 33³ grid).
        let sweep: &[(usize, usize, u64)] = if cfg!(miri) {
            &[(8, 4500, 1), (5, 4500, 3), (8, 4200, 4)]
        } else {
            &[(8, 5000, 1), (33, 6000, 2), (5, 4500, 3), (8, 4200, 4)]
        };
        let mut scratch = CicScratch::default();
        for &(n, np, seed) in sweep {
            let (xs, ys, zs) = rand_positions(np, n, seed);
            let mut reused = vec![0.0; n * n * n];
            deposit_cic_par_with(&mut reused, n, &xs, &ys, &zs, 1.0, &mut scratch);
            let mut fresh = vec![0.0; n * n * n];
            deposit_cic_par_with(&mut fresh, n, &xs, &ys, &zs, 1.0, &mut CicScratch::default());
            assert_eq!(reused, fresh, "n={n} np={np}");
        }
    }

    #[test]
    fn interpolation_is_adjoint_partition_of_unity() {
        // Interpolating a constant field returns the constant exactly.
        let n = 6;
        let grid = vec![3.25; n * n * n];
        let (xs, ys, zs) = rand_positions(100, n, 5);
        let vals = interpolate_cic(&grid, n, &xs, &ys, &zs);
        for v in vals {
            assert!((v - 3.25).abs() < 1e-5);
        }
    }

    #[test]
    fn interpolation_linear_field_exact() {
        // CIC reproduces linear variation exactly between cell centers.
        let n = 8;
        let mut grid = vec![0.0; n * n * n];
        for ix in 0..n {
            for iy in 0..n {
                for iz in 0..n {
                    grid[(ix * n + iy) * n + iz] = iz as f64;
                }
            }
        }
        let vals = interpolate_cic(&grid, n, &[2.0, 2.0], &[3.0, 3.0], &[2.25, 4.75]);
        assert!((vals[0] - 2.25).abs() < 1e-5);
        assert!((vals[1] - 4.75).abs() < 1e-5);
    }

    #[test]
    fn tsc_conserves_mass() {
        let n = 8;
        let (xs, ys, zs) = rand_positions(400, n, 9);
        let mut grid = vec![0.0; n * n * n];
        deposit_tsc(&mut grid, n, &xs, &ys, &zs, 1.5);
        let total: f64 = grid.iter().sum();
        assert!((total - 600.0).abs() < 1e-8, "total {total}");
        assert!(grid.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn tsc_centered_particle_weights() {
        // Particle exactly at a cell center: weights (1/8? no —) per axis
        // are [1/8? ...] → center weight (3/4)³ and faces (1/2·1/4)·…
        let n = 5;
        let mut grid = vec![0.0; n * n * n];
        deposit_tsc(&mut grid, n, &[2.5], &[2.5], &[2.5], 1.0);
        // x = 2.5 ⇒ c = 3? floor(3.0) = 3, d = -0.5: weights (1/2, 1/2, 0)
        // — i.e. exactly between cells 2 and 3, like CIC at a boundary.
        let w: f64 = grid.iter().sum();
        assert!((w - 1.0).abs() < 1e-12);
        // Centered in the cell (x = 2.0): c = 2, d = 0 → weights
        // (1/8, 3/4, 1/8) per axis; center cell gets (3/4)³.
        let mut g2 = vec![0.0; n * n * n];
        deposit_tsc(&mut g2, n, &[2.0], &[2.0], &[2.0], 1.0);
        let center = g2[(2 * n + 2) * n + 2];
        assert!((center - 0.75f64.powi(3)).abs() < 1e-12, "center {center}");
    }

    #[test]
    fn tsc_periodic_wrap() {
        let n = 4;
        let mut grid = vec![0.0; n * n * n];
        deposit_tsc(&mut grid, n, &[0.0], &[0.0], &[0.0], 1.0);
        let total: f64 = grid.iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "wrap lost mass: {total}");
        // Mass is shared across the x = 0 seam: plane n-1 gets some.
        let plane_last: f64 = grid[(n - 1) * n * n..].iter().sum();
        assert!(plane_last > 0.0);
    }

    #[test]
    fn tsc_smoother_than_cic() {
        // A particle mid-cell: TSC spreads over 27 cells, CIC over 8.
        let n = 6;
        let mut cic = vec![0.0; n * n * n];
        deposit_cic(&mut cic, n, &[2.3], &[3.1], &[1.7], 1.0);
        let mut tsc = vec![0.0; n * n * n];
        deposit_tsc(&mut tsc, n, &[2.3], &[3.1], &[1.7], 1.0);
        let nz = |g: &[f64]| g.iter().filter(|&&v| v > 1e-14).count();
        assert!(nz(&tsc) > nz(&cic));
        // And its maximum cell weight is lower.
        let mx = |g: &[f64]| g.iter().copied().fold(0.0, f64::max);
        assert!(mx(&tsc) < mx(&cic));
    }

    #[test]
    fn deposit_then_interpolate_roundtrip_at_centers() {
        // A particle exactly at a cell center sees exactly its own cloud.
        let n = 5;
        let mut grid = vec![0.0; n * n * n];
        deposit_cic(&mut grid, n, &[2.0], &[2.0], &[2.0], 1.0);
        let v = interpolate_cic(&grid, n, &[2.0], &[2.0], &[2.0]);
        assert!((v[0] - 1.0).abs() < 1e-6);
    }
}
