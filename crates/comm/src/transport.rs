//! The pluggable transport seam under [`crate::Comm`].
//!
//! Every typed operation on a communicator — point-to-point send/recv,
//! the collectives built on them, and the health-layer beat/epoch
//! protocol — bottoms out in this object-safe trait. Two backends
//! implement it:
//!
//! - the **in-process** backend (`Shared` in `lib.rs`): threads as
//!   ranks, typed `Box<dyn Any>` mailboxes, injectable faults. This is
//!   the default and the only backend the loom model suite verifies —
//!   all of its blocking paths are built from `crate::sync` primitives.
//! - the **socket** backend ([`crate::socket`], `cfg(not(loom))`):
//!   one OS process per rank, length-prefixed CRC-framed messages over
//!   loopback TCP, a hub process ([`crate::hub`]) holding the
//!   authoritative failure detector.
//!
//! The contract both must honor (DESIGN.md §12):
//!
//! - **Ordering**: messages on one `(context, src, tag)` slot are
//!   delivered in send order; distinct slots are independent.
//! - **Buffered sends**: `send` never blocks on the receiver.
//! - **Failure semantics**: a receive that can never be satisfied must
//!   end in an error — [`CommError::Timeout`] (deadline),
//!   [`CommError::RankFailed`] (peer declared dead by the detector),
//!   [`CommError::CorruptDetected`] (link condemned after a torn or
//!   corrupt frame), or [`CommError::Poisoned`] — never a hang and
//!   never silently wrong data.

use crate::{CommError, EpochReport, RankStatus, TrafficStats};
use std::any::Any;
use std::time::Duration;

/// A payload crossing the transport, in whichever representation the
/// backend moves natively: in-process mailboxes pass the typed value
/// itself, byte-oriented backends pass its wire encoding tagged with
/// the element [`crate::wire::type_hash`].
pub enum WirePayload {
    /// Typed in-process payload (a `Vec<T>` behind `dyn Any`).
    Boxed(Box<dyn Any + Send>),
    /// Serialized payload with the element type's hash for the
    /// receive-side type check.
    Bytes {
        /// [`crate::wire::type_hash`] of the element type.
        type_hash: u64,
        /// Little-endian encoding of the `Vec<T>` (see [`crate::wire`]).
        data: Vec<u8>,
    },
}

/// Object-safe transport backend. All rank arguments are **global**
/// ranks; communicator-local numbering (and the collectives) live above
/// this seam in [`crate::Comm`].
pub trait Transport: Send + Sync {
    /// Number of ranks in the world.
    fn world_size(&self) -> usize;

    /// Does this backend move bytes (so senders must encode via
    /// [`crate::wire`]) rather than typed boxes?
    fn is_wire(&self) -> bool;

    /// Default receive deadline for plain `recv` (`None` blocks
    /// forever). Byte transports always report one so a broken peer
    /// surfaces as a diagnostic timeout instead of a hang.
    fn watchdog(&self) -> Option<Duration>;

    /// Send `payload` from global rank `src` to global rank `dst` on
    /// `(context, tag)`. `bytes` is the payload-byte accounting charge.
    /// Buffered: must not block on the receiver.
    fn send(&self, src: usize, dst: usize, context: u64, tag: u64, payload: WirePayload, bytes: u64);

    /// Receive the next message for `(context, src, tag)` at rank `me`,
    /// blocking up to `timeout` (forever if `None`). Errors per the
    /// module-level failure contract.
    fn recv(
        &self,
        me: usize,
        src: usize,
        context: u64,
        tag: u64,
        timeout: Option<Duration>,
    ) -> Result<WirePayload, CommError>;

    /// Release any delay-injected messages rank `me` still holds (no-op
    /// for backends without fault injection).
    fn flush_holdback(&self, me: usize);

    /// Graceful shutdown for rank `me`: drain in-flight sends and close
    /// links cleanly so peers read EOF, not a torn frame.
    fn shutdown(&self, me: usize);

    /// Allocate a fresh base for deriving split/duplicate contexts.
    /// Only rank 0's allocation is used (it is broadcast), so backends
    /// must keep it unique per allocation *within one rank's lifetime*
    /// and across that rank's respawns.
    fn alloc_context_base(&self) -> u64;

    /// Poison the world: every blocked receive wakes with
    /// [`CommError::Poisoned`].
    fn poison(&self);

    /// Snapshot of traffic, fault, and wire counters. Socket backends
    /// can only account their own rank's sends; other slots read zero.
    fn traffic_stats(&self) -> TrafficStats;

    // ---- health / failure-detector plumbing ---------------------------

    /// Is a heartbeat failure detector attached?
    fn health_enabled(&self) -> bool;

    /// Does the fault plan schedule rank `rank` to die at `step`?
    /// Backends whose kills are external (the hub SIGKILLs the child)
    /// always answer `false`.
    fn should_kill(&self, rank: usize, step: u64) -> bool;

    /// Record rank `me` entering epoch `epoch`; returns the detector's
    /// verdict (a fenced rank sees `Failed`/`Rebuilding` and must not
    /// proceed).
    fn beat(&self, me: usize, epoch: u64) -> RankStatus;

    /// Block until every rank has reached `epoch` or been declared
    /// dead; returns the failed set every survivor agrees on.
    fn epoch_sync(&self, me: usize, epoch: u64) -> Result<EpochReport, CommError>;

    /// Dead rank's re-entry: block until the detector acknowledges this
    /// rank's death (`Failed → Rebuilding`), returning the last epoch it
    /// completed.
    fn await_failed(&self, me: usize) -> Result<u64, CommError>;

    /// Survivor's counterpart: block until every rank in `failed`
    /// (global ranks) has acknowledged its death and its replacement is
    /// reachable.
    fn await_rebirth(&self, me: usize, failed: &[usize]) -> Result<(), CommError>;

    /// Replacement finished reconstruction: rejoin the healthy
    /// population at `epoch`.
    fn mark_recovered(&self, me: usize, epoch: u64);

    /// Every rank currently `Failed` or `Rebuilding`, with its last
    /// completed epoch, in rank order.
    fn dead_set(&self) -> Vec<(usize, u64)>;

    /// Detector status of global rank `rank`.
    fn rank_status(&self, rank: usize) -> RankStatus;

    // ---- elastic world plumbing ---------------------------------------

    /// Deliberately retire rank `me` from the active world (elastic
    /// shrink): the detector parks it — exempt from suspicion, skipped
    /// by epoch waits, never in the dead set. Its process/thread stays
    /// alive for a later grow. This is an administrative act, NOT a
    /// failure declaration.
    fn retire(&self, me: usize);

    /// Admit parked global rank `rank` to the active world at `epoch`
    /// (elastic grow), called by the rank driving the resize.
    fn activate(&self, me: usize, rank: usize, epoch: u64);

    /// Block at parked rank `me` until a grow admits it; returns the
    /// epoch it was activated at.
    fn await_activation(&self, me: usize) -> Result<u64, CommError>;
}
