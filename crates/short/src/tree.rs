//! Recursive coordinate bisection (RCB) tree.
//!
//! The BG/Q short-range solver of Section III, built on two principles the
//! paper calls out:
//!
//! * **Spatial locality** — the tree is built by recursively splitting the
//!   particle set at the center-of-mass coordinate perpendicular to the
//!   longest box side, *partitioning the SoA buffers so each subtree
//!   occupies disjoint contiguous memory*. The partition runs in the
//!   paper's three phases: (1) scan the split coordinate recording swaps,
//!   (2) apply the recorded swaps to the position arrays, (3) apply them
//!   to the remaining arrays (mass, permutation) — letting the hardware
//!   prefetcher hide latency.
//! * **Walk minimization** — "fat" leaves keep tens to hundreds of
//!   particles; one *shared interaction list* is gathered per leaf
//!   (contiguous SoA) and handed to the vectorized force kernel, trading
//!   slow pointer-chasing walks for fast kernel flops.
//!
//! Forces have finite range `r_cut` (everything longer-range belongs to
//! the PM solver), so interaction lists are exact: all particles in leaves
//! intersecting the target leaf's bounding box inflated by `r_cut`.
//!
//! Two evaluation strategies are provided:
//!
//! * [`RcbTree::forces_into`] — the original one-sided walk: every leaf
//!   gathers its shared interaction list and each of its particles is
//!   evaluated against the full list. Kept as the reference path.
//! * [`RcbTree::forces_symmetric_into`] — the symmetric dual-tree walk:
//!   each interacting *leaf pair* is emitted once and evaluated with a
//!   pair kernel that accumulates `+f` on targets and the Newton-3
//!   reaction `−f` on sources, halving kernel evaluations. Accumulation
//!   uses a fixed set of chunk-owned force buffers reduced in a fixed
//!   order, so results are race-free and bit-reproducible regardless of
//!   how rayon schedules the chunks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rayon::prelude::*;

use crate::kernel::ForceKernel;
use crate::simd;

/// Fixed number of pair-list chunks for the symmetric walk. Each chunk
/// owns its own full-length force accumulator and processes a contiguous,
/// cost-balanced range of the pair list; the serial reduction over chunks
/// runs in index order. Chunk→buffer assignment is positional (not
/// per-thread), which is what makes the result independent of rayon's
/// work-stealing schedule.
const PAIR_CHUNKS: usize = 16;

/// Per-worker gather buffers for one interaction-list walk.
#[derive(Default)]
struct Gather {
    nx: Vec<f32>,
    ny: Vec<f32>,
    nz: Vec<f32>,
    nm: Vec<f32>,
    stack: Vec<usize>,
}

/// Pool of [`Gather`] buffers, leased per worker during a force pass and
/// returned on drop, so repeated passes reuse the same allocations.
#[derive(Default)]
struct GatherPool {
    bufs: Mutex<Vec<Gather>>,
}

impl GatherPool {
    fn lease(&self) -> GatherLease<'_> {
        let buf = self
            .bufs
            .lock()
            .expect("gather pool poisoned")
            .pop()
            .unwrap_or_default();
        GatherLease { pool: self, buf }
    }
}

struct GatherLease<'a> {
    pool: &'a GatherPool,
    buf: Gather,
}

impl Drop for GatherLease<'_> {
    fn drop(&mut self) {
        // `if let`: during unwind the lock may be poisoned; dropping the
        // buffer then is fine, aborting on a double panic is not.
        if let Ok(mut bufs) = self.pool.bufs.lock() {
            bufs.push(std::mem::take(&mut self.buf));
        }
    }
}

/// Reusable scratch for [`RcbTree::rebuild`] and [`RcbTree::forces_into`]:
/// partition swap records, per-worker gather buffers, and the tree-order
/// force accumulators. Steady-state rebuild + force evaluation performs
/// no heap allocation.
#[derive(Default)]
pub struct TreeScratch {
    /// Swap pairs recorded by the three-phase partition.
    swaps: Vec<(u32, u32)>,
    /// Interaction-list gather buffers, one lease per worker.
    pool: GatherPool,
    /// Forces in tree (permuted) order, scattered to input order at the
    /// end of a pass.
    ftree: [Vec<f32>; 3],
    /// Symmetric walk: interacting leaf-pair list (node indices, first ≤
    /// second in tree order).
    pairs: Vec<(u32, u32)>,
    /// Symmetric walk: contiguous pair-index ranges, one per chunk.
    chunk_ranges: Vec<(u32, u32)>,
    /// Symmetric walk: chunk-owned force accumulators (tree order).
    chunk_bufs: Vec<[Vec<f32>; 3]>,
    /// Symmetric walk: node stack for pair generation.
    stack: Vec<usize>,
}

/// Tree tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum particles per leaf (paper: up to ~hundreds; default 128).
    pub leaf_size: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams { leaf_size: 128 }
    }
}

#[derive(Debug, Clone)]
struct Node {
    /// Start index into the (permuted) particle arrays.
    start: usize,
    /// One past the last particle.
    end: usize,
    /// Axis-aligned bounding box of the particles.
    lo: [f32; 3],
    hi: [f32; 3],
    /// Children indices; `usize::MAX` marks a leaf.
    left: usize,
    right: usize,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.left == usize::MAX
    }
}

/// An RCB tree over a rank-local particle set (no periodic wrapping — the
/// overloading scheme guarantees all interaction partners are present
/// locally; for serial full-box use, callers append ghost images).
pub struct RcbTree {
    nodes: Vec<Node>,
    /// Permuted SoA particle data.
    xs: Vec<f32>,
    ys: Vec<f32>,
    zs: Vec<f32>,
    mass: Vec<f32>,
    /// `perm[i]` = original index of permuted slot `i`.
    perm: Vec<u32>,
    leaves: Vec<usize>,
    params: TreeParams,
    /// Incremented by every [`RcbTree::rebuild`] (not by position
    /// refreshes), so callers can tell whether a cached companion
    /// structure still matches this tree's topology.
    generation: u64,
}

impl RcbTree {
    /// Build the tree (copies the particle data into tree-local SoA
    /// buffers, then partitions them in place).
    #[must_use] 
    pub fn build(
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        mass: &[f32],
        params: TreeParams,
    ) -> Self {
        let mut tree = Self::new_empty(params);
        tree.rebuild(xs, ys, zs, mass, &mut TreeScratch::default());
        tree
    }

    /// An empty tree ready for [`RcbTree::rebuild`].
    #[must_use] 
    pub fn new_empty(params: TreeParams) -> Self {
        RcbTree {
            nodes: Vec::new(),
            xs: Vec::new(),
            ys: Vec::new(),
            zs: Vec::new(),
            mass: Vec::new(),
            perm: Vec::new(),
            leaves: Vec::new(),
            params,
            generation: 0,
        }
    }

    /// Rebuild the tree over a new particle set, reusing every internal
    /// buffer (and the partition scratch) — allocation-free once the
    /// capacities are warm.
    pub fn rebuild(
        &mut self,
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        mass: &[f32],
        scratch: &mut TreeScratch,
    ) {
        let np = xs.len();
        assert!(ys.len() == np && zs.len() == np && mass.len() == np);
        self.nodes.clear();
        self.leaves.clear();
        self.xs.clear();
        self.xs.extend_from_slice(xs);
        self.ys.clear();
        self.ys.extend_from_slice(ys);
        self.zs.clear();
        self.zs.extend_from_slice(zs);
        self.mass.clear();
        self.mass.extend_from_slice(mass);
        self.perm.clear();
        self.perm.extend(0..np as u32);
        self.generation += 1;
        if np > 0 {
            let root = self.make_node(0, np);
            self.split(root, &mut scratch.swaps);
        }
    }

    /// Rebuild counter — bumped by [`RcbTree::rebuild`] only, never by
    /// [`RcbTree::refresh_positions`].
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Update the permuted particle coordinates *without* re-partitioning
    /// or recomputing bounding boxes — the Verlet-skin refresh.
    ///
    /// The topology (leaf membership, node boxes) stays frozen at its
    /// build-time state, so interaction lists generated with a `slack`
    /// margin remain a superset of the true `r_cut` neighborhood as long
    /// as no particle has moved more than `slack / 2` since the build
    /// (the kernel's own cutoff select keeps the evaluated forces exact
    /// regardless). Callers must track drift and rebuild once that bound
    /// is exceeded.
    pub fn refresh_positions(&mut self, xs: &[f32], ys: &[f32], zs: &[f32]) {
        let np = self.perm.len();
        assert!(xs.len() == np && ys.len() == np && zs.len() == np);
        for (i, &orig) in self.perm.iter().enumerate() {
            let o = orig as usize;
            self.xs[i] = xs[o];
            self.ys[i] = ys[o];
            self.zs[i] = zs[o];
        }
    }

    /// Number of tree nodes.
    #[must_use] 
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    #[must_use] 
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// The permutation from tree order to original order.
    #[must_use] 
    pub fn permutation(&self) -> &[u32] {
        &self.perm
    }

    fn make_node(&mut self, start: usize, end: usize) -> usize {
        let mut lo = [f32::INFINITY; 3];
        let mut hi = [f32::NEG_INFINITY; 3];
        for i in start..end {
            let p = [self.xs[i], self.ys[i], self.zs[i]];
            for c in 0..3 {
                lo[c] = lo[c].min(p[c]);
                hi[c] = hi[c].max(p[c]);
            }
        }
        self.nodes.push(Node {
            start,
            end,
            lo,
            hi,
            left: usize::MAX,
            right: usize::MAX,
        });
        self.nodes.len() - 1
    }

    fn split(&mut self, node: usize, swaps: &mut Vec<(u32, u32)>) {
        let (start, end) = (self.nodes[node].start, self.nodes[node].end);
        if end - start <= self.params.leaf_size {
            self.leaves.push(node);
            return;
        }
        // Longest side of the bounding box.
        let (lo, hi) = (self.nodes[node].lo, self.nodes[node].hi);
        let axis = (0..3)
            .max_by(|&a, &b| (hi[a] - lo[a]).total_cmp(&(hi[b] - lo[b])))
            .expect("three axes");
        // Center-of-mass coordinate along the split axis.
        let coord: &[f32] = match axis {
            0 => &self.xs,
            1 => &self.ys,
            _ => &self.zs,
        };
        let mut msum = 0.0f64;
        let mut wsum = 0.0f64;
        for (m, x) in self.mass[start..end].iter().zip(&coord[start..end]) {
            msum += f64::from(*m);
            wsum += f64::from(m * x);
        }
        let pivot = (wsum / msum) as f32;

        let mid = self.partition(start, end, axis, pivot, swaps);
        // Degenerate split (all particles on one side — e.g. identical
        // coordinates): fall back to a median split by index.
        let mid = if mid == start || mid == end {
            (start + end) / 2
        } else {
            mid
        };
        let left = self.make_node(start, mid);
        let right = self.make_node(mid, end);
        self.nodes[node].left = left;
        self.nodes[node].right = right;
        self.split(left, swaps);
        self.split(right, swaps);
    }

    /// Three-phase SoA partition around `pivot` on `axis`; returns the
    /// split point. Phase 1 records swaps scanning only the split
    /// coordinate; phases 2 and 3 replay them over the other arrays.
    fn partition(
        &mut self,
        start: usize,
        end: usize,
        axis: usize,
        pivot: f32,
        swaps: &mut Vec<(u32, u32)>,
    ) -> usize {
        let coord: &mut Vec<f32> = match axis {
            0 => &mut self.xs,
            1 => &mut self.ys,
            _ => &mut self.zs,
        };
        // Phase 1: two-pointer scan over the split coordinate, recording
        // the swap pairs and applying them to the scanned array itself.
        swaps.clear();
        let mut i = start;
        let mut j = end;
        loop {
            while i < j && coord[i] < pivot {
                i += 1;
            }
            while i < j && coord[j - 1] >= pivot {
                j -= 1;
            }
            if i + 1 >= j {
                break;
            }
            coord.swap(i, j - 1);
            swaps.push((i as u32, (j - 1) as u32));
            i += 1;
            j -= 1;
        }
        let mid = i;
        // Phase 2: replay on the remaining position arrays.
        for c in 0..3usize {
            if c == axis {
                continue;
            }
            let arr: &mut Vec<f32> = match c {
                0 => &mut self.xs,
                1 => &mut self.ys,
                _ => &mut self.zs,
            };
            for &(a, b) in swaps.iter() {
                arr.swap(a as usize, b as usize);
            }
        }
        // Phase 3: replay on mass and permutation.
        for &(a, b) in swaps.iter() {
            self.mass.swap(a as usize, b as usize);
            self.perm.swap(a as usize, b as usize);
        }
        mid
    }

    /// Squared distance between a point's box and a node's bounding box.
    fn box_dist2(lo_a: &[f32; 3], hi_a: &[f32; 3], lo_b: &[f32; 3], hi_b: &[f32; 3]) -> f32 {
        let mut d2 = 0.0f32;
        for c in 0..3 {
            let d = if hi_a[c] < lo_b[c] {
                lo_b[c] - hi_a[c]
            } else if hi_b[c] < lo_a[c] {
                lo_a[c] - hi_b[c]
            } else {
                0.0
            };
            d2 += d * d;
        }
        d2
    }

    /// Gather the shared interaction list for a leaf: every particle in a
    /// leaf whose box is within `r_cut` of this leaf's box.
    fn gather_neighbors(&self, leaf: usize, rcut2: f32, g: &mut Gather) {
        let Gather {
            nx,
            ny,
            nz,
            nm,
            stack,
        } = g;
        nx.clear();
        ny.clear();
        nz.clear();
        nm.clear();
        let (tlo, thi) = (self.nodes[leaf].lo, self.nodes[leaf].hi);
        // Iterative walk with an explicit stack ("walk minimization": the
        // walk only prunes boxes; all fine-grained work happens in the
        // kernel afterwards).
        stack.clear();
        stack.push(0);
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            if Self::box_dist2(&tlo, &thi, &node.lo, &node.hi) > rcut2 {
                continue;
            }
            if node.is_leaf() {
                nx.extend_from_slice(&self.xs[node.start..node.end]);
                ny.extend_from_slice(&self.ys[node.start..node.end]);
                nz.extend_from_slice(&self.zs[node.start..node.end]);
                nm.extend_from_slice(&self.mass[node.start..node.end]);
            } else {
                stack.push(node.left);
                stack.push(node.right);
            }
        }
    }

    /// Evaluate short-range forces for every particle.
    ///
    /// Returns forces *in the original input ordering* plus the total
    /// interaction count (for the flops accounting of Figs. 5/7).
    #[must_use] 
    pub fn forces(&self, kernel: &ForceKernel) -> ([Vec<f32>; 3], u64) {
        let (f, inter, _, _) = self.forces_timed(kernel);
        (f, inter)
    }

    /// Like [`RcbTree::forces`] but also reports aggregate walk
    /// (interaction-list gathering) and kernel time across workers — the
    /// 80%/10% split of the paper's Section III timing budget.
    #[must_use] 
    pub fn forces_timed(
        &self,
        kernel: &ForceKernel,
    ) -> ([Vec<f32>; 3], u64, std::time::Duration, std::time::Duration) {
        let mut scratch = TreeScratch::default();
        let mut out = [Vec::new(), Vec::new(), Vec::new()];
        let (inter, walk, kern) = self.forces_into(kernel, &mut scratch, &mut out);
        (out, inter, walk, kern)
    }

    /// Evaluate short-range forces into caller-owned buffers, reusing
    /// `scratch` — allocation-free once everything is warm. Forces land
    /// in the original input ordering; returns (interaction count, walk
    /// time, kernel time).
    pub fn forces_into(
        &self,
        kernel: &ForceKernel,
        scratch: &mut TreeScratch,
        out: &mut [Vec<f32>; 3],
    ) -> (u64, std::time::Duration, std::time::Duration) {
        let np = self.xs.len();
        let TreeScratch { pool, ftree, .. } = scratch;
        for f in ftree.iter_mut() {
            f.resize(np, 0.0);
        }
        let inter = AtomicU64::new(0);
        let walk_ns = AtomicU64::new(0);
        let kernel_ns = AtomicU64::new(0);
        // Each leaf owns the disjoint tree-order range [start, end), so
        // concurrent leaves write disjoint slices of the accumulators.
        let fp = [
            SyncF32Ptr(ftree[0].as_mut_ptr()),
            SyncF32Ptr(ftree[1].as_mut_ptr()),
            SyncF32Ptr(ftree[2].as_mut_ptr()),
        ];
        self.leaves.par_iter().for_each_init(
            || pool.lease(),
            |lease, &leaf| {
                let g = &mut lease.buf;
                let node = &self.nodes[leaf];
                let t0 = std::time::Instant::now();
                self.gather_neighbors(leaf, kernel.rcut2, g);
                walk_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                let t1 = std::time::Instant::now();
                let mut count = 0u64;
                for t in node.start..node.end {
                    let f = simd::force_on_best(
                        kernel,
                        self.xs[t],
                        self.ys[t],
                        self.zs[t],
                        &g.nx,
                        &g.ny,
                        &g.nz,
                        &g.nm,
                    );
                    count += g.nx.len() as u64;
                    // SAFETY: distinct leaves cover disjoint [start, end).
                    unsafe {
                        *fp[0].0.add(t) = f[0];
                        *fp[1].0.add(t) = f[1];
                        *fp[2].0.add(t) = f[2];
                    }
                }
                kernel_ns.fetch_add(t1.elapsed().as_nanos() as u64, Ordering::Relaxed);
                inter.fetch_add(count, Ordering::Relaxed);
            },
        );
        // Scatter from tree order back to the original input ordering.
        for c in 0..3 {
            out[c].resize(np, 0.0);
            for (i, &orig) in self.perm.iter().enumerate() {
                out[c][orig as usize] = ftree[c][i];
            }
        }
        (
            inter.load(Ordering::Relaxed),
            std::time::Duration::from_nanos(walk_ns.load(Ordering::Relaxed)),
            std::time::Duration::from_nanos(kernel_ns.load(Ordering::Relaxed)),
        )
    }

    /// Convenience wrapper over [`RcbTree::forces_symmetric_into`] with
    /// fresh scratch and no skin slack; returns (forces in input order,
    /// directed interaction count).
    #[must_use]
    pub fn forces_symmetric(&self, kernel: &ForceKernel) -> ([Vec<f32>; 3], u64) {
        let mut scratch = TreeScratch::default();
        let mut out = [Vec::new(), Vec::new(), Vec::new()];
        let rep = self.forces_symmetric_into(kernel, 0.0, &mut scratch, &mut out);
        (out, rep.directed)
    }

    /// Symmetric dual-tree force evaluation.
    ///
    /// Emits each interacting leaf pair **once** (including each leaf's
    /// self pair), then evaluates every pair with a kernel that
    /// accumulates `+f` on the targets and the Newton-3 reaction `−f` on
    /// the sources — one kernel evaluation per particle pair instead of
    /// the one-sided walk's two. Within a leaf only the strict upper
    /// triangle is evaluated.
    ///
    /// `slack` widens the leaf-pair acceptance test to
    /// `(r_cut + slack)²` at *build-time* bounding boxes. With `slack =
    /// 0` and unmoved particles this selects exactly the one-sided walk's
    /// pair coverage; a positive slack makes the pair list a valid
    /// superset for any particle configuration in which no particle has
    /// drifted more than `slack / 2` from its build-time position (see
    /// [`RcbTree::refresh_positions`]) — the kernel's own cutoff select
    /// zeroes pairs beyond `r_cut`, so forces stay exact.
    ///
    /// Race-freedom and reproducibility: the pair list is split into at
    /// most [`PAIR_CHUNKS`] contiguous cost-balanced ranges; chunk `i`
    /// always accumulates into scratch buffer `i`, and the final
    /// reduction sums buffers in index order. The result is bit-identical
    /// for a given tree no matter how rayon schedules the chunks.
    ///
    /// Forces land in `out` in the original input ordering.
    pub fn forces_symmetric_into(
        &self,
        kernel: &ForceKernel,
        slack: f32,
        scratch: &mut TreeScratch,
        out: &mut [Vec<f32>; 3],
    ) -> SymmetricReport {
        let np = self.xs.len();
        let TreeScratch {
            ftree,
            pairs,
            chunk_ranges,
            chunk_bufs,
            stack,
            ..
        } = scratch;

        // Phase 1 (walk): emit interacting leaf pairs, deterministically
        // ordered by the first leaf's tree rank. For leaf `a`, partner
        // subtrees lying entirely before `a` are pruned (`end ≤ a.start`);
        // the pair (earlier, later) is therefore emitted exactly once,
        // from the earlier side.
        let t0 = Instant::now();
        // With no slack, use the kernel's rcut² verbatim so the pair set
        // is bit-for-bit the one-sided walk's coverage.
        let reach2 = if slack > 0.0 {
            let reach = kernel.rcut2.sqrt() + slack;
            reach * reach
        } else {
            kernel.rcut2
        };
        pairs.clear();
        for &leaf in &self.leaves {
            let la = &self.nodes[leaf];
            stack.clear();
            if !self.nodes.is_empty() {
                stack.push(0);
            }
            while let Some(n) = stack.pop() {
                let node = &self.nodes[n];
                if node.end <= la.start
                    || Self::box_dist2(&la.lo, &la.hi, &node.lo, &node.hi) > reach2
                {
                    continue;
                }
                if node.is_leaf() {
                    pairs.push((leaf as u32, n as u32));
                } else {
                    stack.push(node.left);
                    stack.push(node.right);
                }
            }
        }

        // Cost-balanced contiguous chunking of the pair list. Pair cost =
        // kernel evaluations it performs.
        let cost = |&(a, b): &(u32, u32)| -> u64 {
            let na = (self.nodes[a as usize].end - self.nodes[a as usize].start) as u64;
            if a == b {
                na * na.saturating_sub(1) / 2
            } else {
                let nb = (self.nodes[b as usize].end - self.nodes[b as usize].start) as u64;
                na * nb
            }
        };
        let mut evals = 0u64;
        let mut directed = 0u64;
        for p in pairs.iter() {
            let c = cost(p);
            evals += c;
            directed += 2 * c;
        }
        let nchunks = PAIR_CHUNKS.min(pairs.len()).max(1);
        let target = evals / nchunks as u64 + 1;
        chunk_ranges.clear();
        let mut acc = 0u64;
        let mut start = 0usize;
        for (i, p) in pairs.iter().enumerate() {
            acc += cost(p);
            if acc >= target && chunk_ranges.len() + 1 < nchunks {
                chunk_ranges.push((start as u32, (i + 1) as u32));
                start = i + 1;
                acc = 0;
            }
        }
        chunk_ranges.push((start as u32, pairs.len() as u32));
        let walk = t0.elapsed();

        // Phase 2 (kernel): each chunk accumulates into its own
        // full-length buffer; disjoint buffers make the writes race-free.
        if chunk_bufs.len() < chunk_ranges.len() {
            chunk_bufs.resize_with(chunk_ranges.len(), Default::default);
        }
        let used = chunk_ranges.len();
        for buf in chunk_bufs[..used].iter_mut() {
            for c in buf.iter_mut() {
                c.clear();
                c.resize(np, 0.0);
            }
        }
        let kernel_ns = AtomicU64::new(0);
        chunk_bufs[..used]
            .par_iter_mut()
            .zip(chunk_ranges.par_iter())
            .for_each(|(buf, &(p0, p1))| {
                let tk = Instant::now();
                for &(la, lb) in &pairs[p0 as usize..p1 as usize] {
                    self.eval_pair(kernel, la as usize, lb as usize, buf);
                }
                kernel_ns.fetch_add(tk.elapsed().as_nanos() as u64, Ordering::Relaxed);
            });

        // Deterministic reduction in fixed chunk order, then scatter from
        // tree order back to the original input ordering.
        for f in ftree.iter_mut() {
            f.clear();
            f.resize(np, 0.0);
        }
        for buf in chunk_bufs[..used].iter() {
            for (acc, part) in ftree.iter_mut().zip(buf.iter()) {
                for (a, &p) in acc.iter_mut().zip(part.iter()) {
                    *a += p;
                }
            }
        }
        for c in 0..3 {
            out[c].resize(np, 0.0);
            for (i, &orig) in self.perm.iter().enumerate() {
                out[c][orig as usize] = ftree[c][i];
            }
        }
        SymmetricReport {
            evals,
            directed,
            walk,
            kernel: Duration::from_nanos(kernel_ns.load(Ordering::Relaxed)),
        }
    }

    /// Evaluate one leaf pair symmetrically into a chunk buffer (tree
    /// order). For a cross pair the earlier leaf's particles are the
    /// targets and the later leaf's the sources; a self pair runs the
    /// strict upper triangle.
    fn eval_pair(&self, kernel: &ForceKernel, la: usize, lb: usize, buf: &mut [Vec<f32>; 3]) {
        let a = &self.nodes[la];
        let t = (
            &self.xs[a.start..a.end],
            &self.ys[a.start..a.end],
            &self.zs[a.start..a.end],
            &self.mass[a.start..a.end],
        );
        let [bx, by, bz] = buf;
        if la == lb {
            simd::eval_self_rows(
                kernel,
                t.0,
                t.1,
                t.2,
                t.3,
                &mut bx[a.start..a.end],
                &mut by[a.start..a.end],
                &mut bz[a.start..a.end],
            );
            return;
        }
        let b = &self.nodes[lb];
        debug_assert!(a.end <= b.start, "pairs must be tree-ordered");
        let s = (
            &self.xs[b.start..b.end],
            &self.ys[b.start..b.end],
            &self.zs[b.start..b.end],
            &self.mass[b.start..b.end],
        );
        let nb = b.end - b.start;
        let (fx0, fx1) = bx.split_at_mut(b.start);
        let (fy0, fy1) = by.split_at_mut(b.start);
        let (fz0, fz1) = bz.split_at_mut(b.start);
        simd::eval_pair_rows(
            kernel,
            (t.0, t.1, t.2, t.3),
            (s.0, s.1, s.2, s.3),
            (
                &mut fx0[a.start..a.end],
                &mut fy0[a.start..a.end],
                &mut fz0[a.start..a.end],
            ),
            (&mut fx1[..nb], &mut fy1[..nb], &mut fz1[..nb]),
        );
    }

    /// Mean shared-interaction-list length over leaves (the x-axis of
    /// Fig. 5).
    #[must_use] 
    pub fn mean_neighbor_list_len(&self, rcut2: f32) -> f64 {
        let mut total = 0usize;
        let mut g = Gather::default();
        for &leaf in &self.leaves {
            self.gather_neighbors(leaf, rcut2, &mut g);
            total += g.nx.len();
        }
        total as f64 / self.leaves.len().max(1) as f64
    }
}

/// What a symmetric force pass did: kernel evaluations executed, directed
/// interactions they delivered (two per evaluation), and the walk/kernel
/// time split.
#[derive(Debug, Clone, Copy, Default)]
pub struct SymmetricReport {
    /// Kernel evaluations actually executed (pair evaluations).
    pub evals: u64,
    /// Directed (target, source) interactions applied — `2 × evals`.
    pub directed: u64,
    /// Pair-list generation time.
    pub walk: Duration,
    /// Force evaluation time (summed across workers).
    pub kernel: Duration,
}

/// Pointer wrapper asserting cross-thread use is sound (leaf ranges are
/// disjoint).
#[derive(Clone, Copy)]
struct SyncF32Ptr(*mut f32);
// SAFETY: the pointer names the caller's acceleration buffers, which
// outlive the scoped leaf walk, and each parallel task writes only its
// leaf's disjoint [start, end) index range (leaves partition the
// particle permutation). The wrapper only moves the pointer into rayon
// closures.
unsafe impl Send for SyncF32Ptr {}
// SAFETY: shared references only copy the pointer; dereferences happen
// inside the unsafe block that proves per-leaf disjointness.
unsafe impl Sync for SyncF32Ptr {}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_particles(np: usize, side: f32, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) as f32 * side
        };
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut zs = Vec::new();
        for _ in 0..np {
            xs.push(next());
            ys.push(next());
            zs.push(next());
        }
        (xs, ys, zs, vec![1.0; np])
    }

    /// Brute force without periodicity (the tree is non-periodic).
    fn brute(
        kernel: &ForceKernel,
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        m: &[f32],
    ) -> [Vec<f32>; 3] {
        let np = xs.len();
        let mut f = [vec![0.0f32; np], vec![0.0f32; np], vec![0.0f32; np]];
        for t in 0..np {
            for q in 0..np {
                let dx = xs[q] - xs[t];
                let dy = ys[q] - ys[t];
                let dz = zs[q] - zs[t];
                let s = dx * dx + dy * dy + dz * dz;
                let w = m[q] * kernel.factor(s);
                f[0][t] += dx * w;
                f[1][t] += dy * w;
                f[2][t] += dz * w;
            }
        }
        f
    }

    #[test]
    fn partition_is_a_permutation() {
        let (xs, ys, zs, m) = rand_particles(1000, 10.0, 3);
        let tree = RcbTree::build(&xs, &ys, &zs, &m, TreeParams { leaf_size: 16 });
        let mut seen = vec![false; 1000];
        for &p in tree.permutation() {
            assert!(!seen[p as usize], "duplicate {p}");
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
        // Permuted data matches originals.
        for i in 0..1000 {
            let orig = tree.perm[i] as usize;
            assert_eq!(tree.xs[i], xs[orig]);
            assert_eq!(tree.ys[i], ys[orig]);
            assert_eq!(tree.zs[i], zs[orig]);
        }
    }

    #[test]
    fn leaves_respect_size_bound_and_cover_all() {
        let (xs, ys, zs, m) = rand_particles(500, 8.0, 7);
        let params = TreeParams { leaf_size: 32 };
        let tree = RcbTree::build(&xs, &ys, &zs, &m, params);
        let mut covered = 0;
        for &l in &tree.leaves {
            let n = &tree.nodes[l];
            assert!(n.end - n.start <= 32);
            covered += n.end - n.start;
        }
        assert_eq!(covered, 500);
    }

    #[test]
    fn forces_match_brute_force() {
        let kernel = ForceKernel::newtonian(2.0, 1e-4);
        // Miri: fewer particles (O(np²) reference) but still several
        // leaves, so the parallel unsafe leaf walk is exercised.
        let np = if cfg!(miri) { 64 } else { 400 };
        let (xs, ys, zs, m) = rand_particles(np, 10.0, 11);
        let tree = RcbTree::build(&xs, &ys, &zs, &m, TreeParams { leaf_size: 24 });
        let (f, inter) = tree.forces(&kernel);
        assert!(inter > 0);
        let want = brute(&kernel, &xs, &ys, &zs, &m);
        for c in 0..3 {
            for p in 0..xs.len() {
                let scale = want[c][p].abs().max(1e-2);
                assert!(
                    (f[c][p] - want[c][p]).abs() < 2e-3 * scale,
                    "c={c} p={p}: {} vs {}",
                    f[c][p],
                    want[c][p]
                );
            }
        }
    }

    #[test]
    fn fat_leaves_reduce_node_count() {
        let (xs, ys, zs, m) = rand_particles(2000, 16.0, 13);
        let fat = RcbTree::build(&xs, &ys, &zs, &m, TreeParams { leaf_size: 256 });
        let thin = RcbTree::build(&xs, &ys, &zs, &m, TreeParams { leaf_size: 8 });
        assert!(fat.node_count() * 4 < thin.node_count());
    }

    #[test]
    fn identical_positions_do_not_hang() {
        // Degenerate input: everything at one point; the median fallback
        // must terminate the recursion.
        let np = if cfg!(miri) { 100 } else { 300 };
        let xs = vec![1.0f32; np];
        let tree = RcbTree::build(&xs, &xs, &xs, &vec![1.0; np], TreeParams { leaf_size: 8 });
        assert!(tree.leaf_count() >= np / 8);
        let kernel = ForceKernel::newtonian(1.0, 1e-4);
        let (f, _) = tree.forces(&kernel);
        // All self-interactions masked: zero forces.
        assert!(f[0].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_and_single_particle() {
        let kernel = ForceKernel::newtonian(1.0, 1e-4);
        let empty = RcbTree::build(&[], &[], &[], &[], TreeParams::default());
        let (f, i) = empty.forces(&kernel);
        assert_eq!(i, 0);
        assert!(f[0].is_empty());
        let one = RcbTree::build(&[1.0], &[2.0], &[3.0], &[1.0], TreeParams::default());
        let (f1, _) = one.forces(&kernel);
        assert_eq!(f1[0][0], 0.0);
    }

    #[test]
    fn cutoff_limits_interactions() {
        // Two distant clusters: no cross-cluster interactions.
        let mut xs = vec![0.0f32; 50];
        xs.extend(vec![100.0f32; 50]);
        let ys = vec![0.0f32; 100];
        let zs = vec![0.0f32; 100];
        let m = vec![1.0f32; 100];
        // Spread each cluster slightly so forces are nonzero within.
        let mut xs2 = xs.clone();
        for (i, v) in xs2.iter_mut().enumerate() {
            *v += (i % 50) as f32 * 0.01;
        }
        let tree = RcbTree::build(&xs2, &ys, &zs, &m, TreeParams { leaf_size: 16 });
        let kernel = ForceKernel::newtonian(2.0, 1e-5);
        let (_, inter) = tree.forces(&kernel);
        // Each cluster of 50 interacts only internally: ≤ 50·50 each.
        assert!(inter <= 2 * 50 * 50, "interactions {inter}");
    }

    #[test]
    fn rebuild_reuses_buffers_and_matches_build() {
        let kernel = ForceKernel::newtonian(2.0, 1e-4);
        let mut scratch = TreeScratch::default();
        let mut tree = RcbTree::new_empty(TreeParams { leaf_size: 24 });
        let mut out = [Vec::new(), Vec::new(), Vec::new()];
        // Rebuild across particle sets of varying size; each pass must
        // match a from-scratch build + forces exactly (miri: smaller
        // sets, same grow/shrink/grow capacity sequence).
        let sweep: &[(usize, u64)] = if cfg!(miri) {
            &[(90, 11), (150, 21), (60, 31)]
        } else {
            &[(400, 11), (700, 21), (300, 31)]
        };
        for &(np, seed) in sweep {
            let (xs, ys, zs, m) = rand_particles(np, 10.0, seed);
            tree.rebuild(&xs, &ys, &zs, &m, &mut scratch);
            let (inter, _, _) = tree.forces_into(&kernel, &mut scratch, &mut out);
            let fresh = RcbTree::build(&xs, &ys, &zs, &m, TreeParams { leaf_size: 24 });
            let (want, winter) = fresh.forces(&kernel);
            assert_eq!(inter, winter, "np={np}");
            for c in 0..3 {
                assert_eq!(out[c], want[c], "np={np} c={c}");
            }
        }
    }

    #[test]
    fn symmetric_matches_per_leaf_walk() {
        let kernel = ForceKernel::newtonian(2.0, 1e-4);
        let np = if cfg!(miri) { 80 } else { 600 };
        let (xs, ys, zs, m) = rand_particles(np, 10.0, 17);
        let tree = RcbTree::build(&xs, &ys, &zs, &m, TreeParams { leaf_size: 24 });
        let (want, one_sided) = tree.forces(&kernel);
        let (got, directed) = tree.forces_symmetric(&kernel);
        // Directed counts: one-sided includes each target against its own
        // leaf's full list (np self terms, masked to zero force); the
        // symmetric triangle skips them.
        assert_eq!(directed + np as u64, one_sided);
        for c in 0..3 {
            for p in 0..np {
                let scale = want[c][p].abs().max(1e-2);
                assert!(
                    (got[c][p] - want[c][p]).abs() < 2e-3 * scale,
                    "c={c} p={p}: {} vs {}",
                    got[c][p],
                    want[c][p]
                );
            }
        }
    }

    #[test]
    fn symmetric_total_momentum_vanishes() {
        // Newton-3 pairing: every kernel evaluation applies equal and
        // opposite contributions, so ΣF over all particles must vanish to
        // f32 accumulation rounding — the one-sided walk only achieves
        // this to kernel-symmetry tolerance.
        let kernel = ForceKernel::newtonian(3.0, 1e-5);
        let np = if cfg!(miri) { 80 } else { 2000 };
        let (xs, ys, zs, m) = rand_particles(np, 8.0, 29);
        let tree = RcbTree::build(&xs, &ys, &zs, &m, TreeParams { leaf_size: 32 });
        let (f, _) = tree.forces_symmetric(&kernel);
        for (c, comp) in f.iter().enumerate() {
            let total: f64 = comp.iter().map(|&v| f64::from(v)).sum();
            let mag: f64 = comp.iter().map(|&v| f64::from(v.abs())).sum();
            assert!(
                total.abs() < 1e-5 * mag.max(1.0),
                "c={c}: ΣF = {total:.3e} vs Σ|F| = {mag:.3e}"
            );
        }
    }

    #[test]
    fn symmetric_deterministic_across_runs() {
        let kernel = ForceKernel::newtonian(2.0, 1e-4);
        let np = if cfg!(miri) { 60 } else { 500 };
        let (xs, ys, zs, m) = rand_particles(np, 10.0, 41);
        let tree = RcbTree::build(&xs, &ys, &zs, &m, TreeParams { leaf_size: 16 });
        let (a, _) = tree.forces_symmetric(&kernel);
        let (b, _) = tree.forces_symmetric(&kernel);
        for c in 0..3 {
            assert_eq!(a[c], b[c], "component {c} not bit-reproducible");
        }
    }

    #[test]
    fn skin_refresh_matches_fresh_build() {
        // Drift every particle by less than slack/2, refresh positions in
        // the stale tree, and evaluate with the slack-widened pair list:
        // forces must match a from-scratch tree at the new positions.
        let kernel = ForceKernel::newtonian(2.0, 1e-4);
        let np = if cfg!(miri) { 70 } else { 500 };
        let (xs, ys, zs, m) = rand_particles(np, 10.0, 53);
        let slack = 0.3f32;
        let mut scratch = TreeScratch::default();
        let mut tree = RcbTree::new_empty(TreeParams { leaf_size: 24 });
        tree.rebuild(&xs, &ys, &zs, &m, &mut scratch);
        let gen0 = tree.generation();
        let mut out = [Vec::new(), Vec::new(), Vec::new()];
        // Two refresh rounds against the same build.
        let mut s = 97u64;
        let mut jitter = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s as f64 / u64::MAX as f64) as f32 - 0.5) * slack * 0.9
        };
        let (mut cx, mut cy, mut cz) = (xs.clone(), ys.clone(), zs.clone());
        for round in 0..2 {
            for i in 0..np {
                cx[i] += jitter();
                cy[i] += jitter();
                cz[i] += jitter();
            }
            tree.refresh_positions(&cx, &cy, &cz);
            let rep = tree.forces_symmetric_into(&kernel, slack, &mut scratch, &mut out);
            assert_eq!(rep.directed, 2 * rep.evals);
            let fresh = RcbTree::build(&cx, &cy, &cz, &m, TreeParams { leaf_size: 24 });
            let (want, _) = fresh.forces_symmetric(&kernel);
            for c in 0..3 {
                for p in 0..np {
                    let scale = want[c][p].abs().max(1e-2);
                    assert!(
                        (out[c][p] - want[c][p]).abs() < 2e-3 * scale,
                        "round={round} c={c} p={p}: {} vs {}",
                        out[c][p],
                        want[c][p]
                    );
                }
            }
        }
        assert_eq!(tree.generation(), gen0, "refresh must not rebuild");
    }

    #[test]
    fn generation_counts_rebuilds() {
        let (xs, ys, zs, m) = rand_particles(100, 5.0, 61);
        let mut scratch = TreeScratch::default();
        let mut tree = RcbTree::new_empty(TreeParams::default());
        assert_eq!(tree.generation(), 0);
        tree.rebuild(&xs, &ys, &zs, &m, &mut scratch);
        assert_eq!(tree.generation(), 1);
        tree.refresh_positions(&xs, &ys, &zs);
        assert_eq!(tree.generation(), 1);
        tree.rebuild(&xs, &ys, &zs, &m, &mut scratch);
        assert_eq!(tree.generation(), 2);
    }

    #[test]
    fn symmetric_empty_and_single() {
        let kernel = ForceKernel::newtonian(1.0, 1e-4);
        let empty = RcbTree::build(&[], &[], &[], &[], TreeParams::default());
        let (f, d) = empty.forces_symmetric(&kernel);
        assert_eq!(d, 0);
        assert!(f[0].is_empty());
        let one = RcbTree::build(&[1.0], &[2.0], &[3.0], &[1.0], TreeParams::default());
        let (f1, d1) = one.forces_symmetric(&kernel);
        assert_eq!(d1, 0);
        assert_eq!(f1[0][0], 0.0);
    }

    #[test]
    fn mean_neighbor_list_scales_with_cutoff() {
        let (xs, ys, zs, m) = rand_particles(3000, 10.0, 23);
        let tree = RcbTree::build(&xs, &ys, &zs, &m, TreeParams { leaf_size: 32 });
        let small = tree.mean_neighbor_list_len(1.0);
        let large = tree.mean_neighbor_list_len(9.0);
        assert!(large > small, "small {small}, large {large}");
    }
}
