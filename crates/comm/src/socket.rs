//! Multi-process socket transport: one OS process per rank, CRC-framed
//! messages over loopback TCP, wired up through a hub rendezvous.
//!
//! # Topology
//!
//! A [`crate::hub::Hub`] (the launcher process) binds a control
//! listener and spawns one child process per rank. Each child:
//!
//! 1. binds its own **data listener** on `127.0.0.1:0`,
//! 2. dials the hub, sends `HELLO <rank> <incarnation> <data_addr>`,
//!    and blocks until the hub's `WELCOME … READY` reply (the hub
//!    answers the initial generation only once all ranks have arrived —
//!    the rank-zero rendezvous),
//! 3. dials every lower-ranked peer's data address (a **replacement**
//!    process dials *every* peer) and accepts the rest, so each
//!    unordered pair shares exactly one TCP stream,
//! 4. spawns one reader thread per link plus a control reader and a
//!    tick thread, then hands an `Arc<SocketTransport>` to
//!    [`crate::Comm::over_socket`].
//!
//! # Hardening
//!
//! - Dials retry with exponential backoff plus deterministic jitter.
//! - Every frame is length-prefixed and CRC-protected ([`crate::wire`]);
//!   a torn, truncated, or bit-flipped frame **condemns the link** —
//!   receives from that peer fail with [`CommError::CorruptDetected`],
//!   never silently resync.
//! - Per-link sequence numbers are monotonic across same-incarnation
//!   reconnects (reset only when a replacement incarnation takes over),
//!   so frame loss across a disconnect — including frames the kernel
//!   accepted but the dead connection never delivered — surfaces as a
//!   sequence gap and condemns the link, never a silent skip.
//! - Readers poll with short OS read timeouts so shutdown never blocks
//!   on a dead peer; the *receive* deadline feeding
//!   [`crate::Comm::recv_timeout`] is enforced at the byte mailbox.
//! - A broken pipe marks the link down and queues outbound frames; they
//!   are drained if the same peer incarnation reconnects (the sequence
//!   check above re-validates the stream — any in-flight loss condemns
//!   it loudly) and dropped if a replacement (new incarnation) takes
//!   over.
//! - Peer death is **never** inferred from a socket error — only the
//!   hub's failure detector declares ranks dead (broadcast to every
//!   child and mirrored here), so transient disconnects cannot
//!   masquerade as rank failure. The hub's declaration also *outranks*
//!   link-level condemnation: a probe of a declared-dead rank yields
//!   [`CommError::RankFailed`], even if its death tore a frame first.
//!
//! # Lock order (machine-enforced invariant)
//!
//! Every mutex in this transport carries a [`LockRank`]; a thread may
//! acquire a mutex only while everything it already holds has a
//! strictly smaller rank (checked at runtime in debug/test builds by
//! [`crate::sync`], and statically by `cargo xtask lockorder`, which
//! rejects any `.lock(` site without a rank annotation). Sequential,
//! non-overlapping acquisitions in any order are always fine — the
//! discipline constrains *nested* holds only.
//!
//! | mutex | rank | role |
//! |---|---|---|
//! | `links[peer].state` | `Link` (30) | one peer link's send half + sequence state |
//! | `mail.state` | `Mail` (32) | the byte mailbox (delivery, condemnation flags) |
//! | `mirror.state` | `Mirror` (34) | local replica of the hub's failure detector |
//! | `control.rpc` | `ControlRpc` (36) | the one-slot hub RPC (`BEAT`, `AWAITFAILED`) |
//! | `control.writer` | `ControlWriter` (38) | control-stream write half |
//!
//! Functions that hold more than one at once — the complete list:
//!
//! - [`SocketTransport::register_link`]: `Link → Mail` (purges the
//!   mailbox of a dead incarnation's frames while the link lock pins
//!   the registration).
//! - [`SocketTransport::recv`]: `Mail → Mirror` (the precedence check
//!   consults the detector mirror while the mailbox lock pins the
//!   verdict to a consistent queue snapshot).
//! - [`SocketTransport::hub_rpc`]: `ControlRpc → ControlWriter` (the
//!   request line goes out while the RPC slot is held so a reply can
//!   never race the reset).
//!
//! Everything else takes one lock at a time. Two historical corollaries
//! are now theorems of the rank order: the receive-timeout diagnosis
//! must release `Mail` *before* taking `Link` (30 < 32 — the inverted
//! nesting panics in any debug build, and the lock-order model in
//! `tests/protocol_models.rs` shows the schedule that deadlocks against
//! `register_link`); and `apply_control_event` must drop `Mirror`
//! before touching `Mail` (its two acquisitions are sequential, never
//! nested).
//!
//! The protocol *decisions* made under these locks — frame acceptance,
//! purge rules, receive precedence, mirror transitions — live in
//! [`crate::protocol`] as pure state machines; this module only wires
//! them to sockets, threads, and the locks above.

use crate::protocol::{
    self, ClientLine, ControlEvent, ControlLine, EpochGate, FrameVerdict, MirrorEffect, Mutations,
    PeerView, RecvVerdict, SendRoute,
};
use crate::stats::WireStats;
use crate::sync::{Condvar, LockRank, Mutex};
use crate::transport::{Transport, WirePayload};
use crate::wire::{self, FrameHeader, FRAME_HEADER, FRAME_TRAILER};
use crate::{fault, ClassCounters, CommError, EpochReport, FaultStats, RankStatus, TrafficStats};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Mailbox key: (communicator context, global source rank, user tag).
type Key = (u64, usize, u64);

/// How a child process finds and identifies itself to the world.
#[derive(Debug, Clone)]
pub struct SocketConfig {
    /// Hub control address, e.g. `127.0.0.1:45123`.
    pub hub_addr: String,
    /// This process's global rank.
    pub rank: usize,
    /// World size.
    pub ranks: usize,
    /// 0 for an original process; hub-incremented for each respawn of
    /// this rank. Peers use it to tell a reconnect from a replacement.
    pub incarnation: u64,
}

impl SocketConfig {
    /// Read the configuration the launcher passed via environment
    /// (`HACC_HUB`, `HACC_RANK`, `HACC_RANKS`, `HACC_INCARNATION`).
    pub fn from_env() -> Result<Self, String> {
        let get = |k: &str| std::env::var(k).map_err(|_| format!("missing env {k}"));
        Ok(SocketConfig {
            hub_addr: get("HACC_HUB")?,
            rank: get("HACC_RANK")?.parse().map_err(|e| format!("HACC_RANK: {e}"))?,
            ranks: get("HACC_RANKS")?.parse().map_err(|e| format!("HACC_RANKS: {e}"))?,
            incarnation: std::env::var("HACC_INCARNATION")
                .ok()
                .map_or(Ok(0), |v| v.parse().map_err(|e| format!("HACC_INCARNATION: {e}")))?,
        })
    }

    /// Is this process a respawned blank replacement?
    #[must_use]
    pub fn is_replacement(&self) -> bool {
        self.incarnation > 0
    }
}

/// Timing parameters the hub hands every child in its `WELCOME` line.
#[derive(Debug, Clone, Copy)]
struct WireTiming {
    /// Default receive deadline (the transport watchdog).
    recv_deadline: Duration,
    /// Hub scan interval; ticks are sent at a fraction of this.
    scan_interval: Duration,
    /// Deadline for detector-level waits (epoch sync, rebirth).
    sync_timeout: Duration,
}

/// An outbound message not yet on the wire (link down): framed lazily
/// so sequence numbers are assigned at write time, after any reset.
struct PendingMsg {
    context: u64,
    tag: u64,
    type_hash: u64,
    payload: Vec<u8>,
    /// Peer incarnation the message was addressed to; a replacement
    /// (different incarnation) must not receive a dead rank's backlog.
    incarnation: u64,
}

/// Send side of one peer link.
struct LinkState {
    writer: Option<TcpStream>,
    up: bool,
    ever_up: bool,
    /// Bumped on every (re)registration; readers for older generations
    /// exit instead of marking the fresh link down.
    generation: u64,
    /// The pure sequence/incarnation machine (see [`crate::protocol`]):
    /// monotonic seqs across same-incarnation reconnects, reset only
    /// for a replacement, shared by the link's successive reader
    /// threads so a reconnect cannot silently swallow frames.
    session: protocol::LinkSession,
    pending: VecDeque<PendingMsg>,
}

struct Link {
    state: Mutex<LinkState>,
    signal: Condvar,
}

impl Default for Link {
    fn default() -> Self {
        Link {
            state: Mutex::new(
                LockRank::Link,
                LinkState {
                    writer: None,
                    up: false,
                    ever_up: false,
                    generation: 0,
                    session: protocol::LinkSession::default(),
                    pending: VecDeque::new(),
                },
            ),
            signal: Condvar::new(),
        }
    }
}

/// Receive side: every inbound payload lands here, keyed like the
/// in-process mailboxes.
struct MailInner {
    ready: HashMap<Key, VecDeque<(u64, Vec<u8>)>>,
    /// Per-source condemnation: set once a link delivers a bad frame.
    corrupt: Vec<Option<String>>,
    /// Per-source count of rejected frames (diagnostics).
    rejected: Vec<u64>,
}

struct ByteMail {
    state: Mutex<MailInner>,
    signal: Condvar,
}

/// Child-side replica of the hub's authoritative failure detector,
/// updated by control-stream broadcasts (`EPOCH`, `DECLARED`,
/// `REBUILDING`, `RECOVERED`) through [`protocol::apply_control`].
struct Mirror {
    state: Mutex<Vec<PeerView>>,
    signal: Condvar,
}

/// One-slot synchronous RPC to the hub (`BEAT` → `BEATACK`,
/// `AWAITFAILED` → `FAILEDEPOCH`). A rank runs one app thread, so one
/// outstanding request suffices.
#[derive(Default)]
struct RpcSlot {
    beat_ack: Option<RankStatus>,
    failed_epoch: Option<u64>,
}

struct ControlChannel {
    writer: Mutex<TcpStream>,
    rpc: Mutex<RpcSlot>,
    rpc_signal: Condvar,
}

/// Wire-health counters (Relaxed monotonic tallies, same audit as the
/// in-process `FaultCounters`).
#[derive(Default)]
struct WireCounters {
    connect_attempts: AtomicU64,
    reconnects: AtomicU64,
    frames_sent: AtomicU64,
    frames_retried: AtomicU64,
    frames_dropped_dead: AtomicU64,
    bytes_on_wire: AtomicU64,
    crc_rejects: AtomicU64,
}

impl WireCounters {
    fn snapshot(&self) -> WireStats {
        WireStats {
            connect_attempts: self.connect_attempts.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_retried: self.frames_retried.load(Ordering::Relaxed),
            frames_dropped_dead: self.frames_dropped_dead.load(Ordering::Relaxed),
            bytes_on_wire: self.bytes_on_wire.load(Ordering::Relaxed),
            crc_rejects: self.crc_rejects.load(Ordering::Relaxed),
        }
    }
}

/// The inter-process backend behind [`crate::Comm::over_socket`].
pub struct SocketTransport {
    cfg: SocketConfig,
    timing: WireTiming,
    mail: ByteMail,
    links: Vec<Link>,
    mirror: Mirror,
    control: ControlChannel,
    poisoned: AtomicBool,
    closing: AtomicBool,
    counters: WireCounters,
    payload_bytes: AtomicU64,
    msgs_sent: AtomicU64,
    class: ClassCounters,
    next_context: AtomicU64,
}

/// OS-read poll granularity: how often a blocked reader re-checks the
/// shutdown/generation flags. The *user-visible* deadline is enforced
/// at the mailbox, not here.
const READ_POLL: Duration = Duration::from_millis(200);
/// Base delay of the dial backoff schedule.
const DIAL_BACKOFF_BASE: Duration = Duration::from_millis(10);
/// Dial attempts before giving up (~20 s worst case with backoff).
const DIAL_ATTEMPTS: u32 = 11;
/// Magic preamble word opening every data stream ("HACD").
const DATA_PREAMBLE_MAGIC: u32 = 0x4443_4148;
/// The protocol machines' shipping configuration: every test-only
/// mutation hook off. The live transport passes this everywhere; only
/// the model suite ever constructs anything else.
const LIVE: &Mutations = &Mutations::NONE;

/// Exponential backoff with deterministic jitter for dial attempt
/// `attempt` (0-based) from rank `rank`.
fn dial_delay(rank: usize, incarnation: u64, attempt: u32) -> Duration {
    let base = DIAL_BACKOFF_BASE.as_millis() as u64;
    let expo = base << attempt.min(7);
    let jitter = fault::mix64(
        (rank as u64) ^ (incarnation << 16) ^ (u64::from(attempt) << 32) ^ 0x6a09_e667_f3bc_c908,
    ) % base.max(1);
    Duration::from_millis(expo + jitter)
}

fn io_err<E: std::fmt::Display>(what: &str, e: E) -> std::io::Error {
    std::io::Error::other(format!("{what}: {e}"))
}

/// Fill `buf` from a stream whose read timeout is [`READ_POLL`],
/// retrying timeouts while `alive()` holds. `Ok(false)` means clean EOF
/// before the first byte.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    alive: &dyn Fn() -> bool,
) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        if !alive() {
            return Err(io_err("read aborted", "transport closing"));
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(io_err("read", "EOF mid-frame"));
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Read deadline tick: re-check liveness, keep polling.
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

impl SocketTransport {
    /// Connect this process to the world: hub handshake, data mesh,
    /// reader/control/tick threads. Blocks until every peer link is up.
    pub fn connect(cfg: SocketConfig) -> std::io::Result<Arc<SocketTransport>> {
        assert!(cfg.rank < cfg.ranks, "rank out of range");
        // 1. Own data listener first, so the HELLO can carry its address.
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let data_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        // 2. Hub handshake (with dial retry — the hub may still be
        //    binding when early children start).
        let counters = WireCounters::default();
        let mut control_stream =
            dial_retry(&cfg.hub_addr, cfg.rank, cfg.incarnation, &counters)?;
        control_stream.set_nodelay(true).ok();
        writeln!(
            control_stream,
            "HELLO {} {} {}",
            cfg.rank, cfg.incarnation, data_addr
        )?;
        let mut control_reader = BufReader::new(control_stream.try_clone()?);
        let (timing, peers, mirror_seed) = read_welcome(&mut control_reader, cfg.ranks)?;

        let transport = Arc::new(SocketTransport {
            links: (0..cfg.ranks).map(|_| Link::default()).collect(),
            mail: ByteMail {
                state: Mutex::new(
                    LockRank::Mail,
                    MailInner {
                        ready: HashMap::new(),
                        corrupt: vec![None; cfg.ranks],
                        rejected: vec![0; cfg.ranks],
                    },
                ),
                signal: Condvar::new(),
            },
            mirror: Mirror {
                state: Mutex::new(LockRank::Mirror, mirror_seed),
                signal: Condvar::new(),
            },
            control: ControlChannel {
                writer: Mutex::new(LockRank::ControlWriter, control_stream),
                rpc: Mutex::new(LockRank::ControlRpc, RpcSlot::default()),
                rpc_signal: Condvar::new(),
            },
            poisoned: AtomicBool::new(false),
            closing: AtomicBool::new(false),
            counters,
            payload_bytes: AtomicU64::new(0),
            msgs_sent: AtomicU64::new(0),
            class: ClassCounters::default(),
            // Unlike the in-process backend (one shared counter), every
            // process allocates context bases locally — and any rank can
            // be the allocating root of a sub-communicator after split().
            // Incarnation in the high bits keeps a respawned rank's
            // bases disjoint from its predecessor's; the global rank in
            // the middle bits keeps roots of sibling sub-communicators
            // disjoint from each other (2^28 allocations per rank, 4096
            // ranks before the fields overlap).
            next_context: AtomicU64::new(
                (cfg.incarnation.wrapping_add(1) << 40)
                    | ((cfg.rank as u64 & 0xFFF) << 28)
                    | 1,
            ),
            timing,
            cfg,
        });

        // 3. Accept thread for inbound dials.
        {
            let t = Arc::clone(&transport);
            std::thread::spawn(move || t.accept_loop(&listener));
        }
        // 4. Outbound dials: lower ranks for the initial generation,
        //    everyone for a replacement (survivors only accept).
        for (peer, info) in peers.iter().enumerate() {
            if peer == transport.cfg.rank {
                continue;
            }
            let dial = if transport.cfg.is_replacement() {
                true
            } else {
                peer < transport.cfg.rank
            };
            if !dial {
                continue;
            }
            let addr = info
                .as_ref()
                .ok_or_else(|| io_err("peer address", format!("rank {peer} unknown")))?;
            let stream = dial_retry(
                &addr.1,
                transport.cfg.rank,
                transport.cfg.incarnation,
                &transport.counters,
            )?;
            transport.send_data_preamble(&stream)?;
            transport.register_link(peer, stream, addr.0)?;
        }
        // 5. Control reader + tick threads.
        {
            let t = Arc::clone(&transport);
            std::thread::spawn(move || t.control_loop(control_reader));
        }
        {
            let t = Arc::clone(&transport);
            std::thread::spawn(move || t.tick_loop());
        }
        // 6. Rendezvous complete only when the mesh is fully up.
        transport.wait_links_up()?;
        Ok(transport)
    }

    /// This process's global rank.
    #[must_use]
    pub fn self_rank(&self) -> usize {
        self.cfg.rank
    }

    /// World size.
    #[must_use]
    pub fn ranks(&self) -> usize {
        self.cfg.ranks
    }

    /// Is this process a respawned blank replacement?
    #[must_use]
    pub fn is_replacement(&self) -> bool {
        self.cfg.is_replacement()
    }

    fn send_data_preamble(&self, mut stream: &TcpStream) -> std::io::Result<()> {
        let mut pre = Vec::with_capacity(16);
        pre.extend_from_slice(&DATA_PREAMBLE_MAGIC.to_le_bytes());
        pre.extend_from_slice(&(self.cfg.rank as u32).to_le_bytes());
        pre.extend_from_slice(&self.cfg.incarnation.to_le_bytes());
        stream.write_all(&pre)
    }

    /// Install `stream` as the live link to `peer` (either direction),
    /// drain any same-incarnation backlog, and spawn its reader.
    fn register_link(
        self: &Arc<Self>,
        peer: usize,
        stream: TcpStream,
        peer_incarnation: u64,
    ) -> std::io::Result<()> {
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(READ_POLL))?;
        let reader_stream = stream.try_clone()?;
        let generation;
        {
            let link = &self.links[peer];
            let mut st = link.state.lock(LockRank::Link);
            st.generation += 1;
            generation = st.generation;
            if st.ever_up {
                self.counters.reconnects.fetch_add(1, Ordering::Relaxed);
            }
            let plan = st.session.register(peer_incarnation, LIVE);
            // Lock order: Link → Mail (see module docs).
            let mut mail = self.mail.state.lock(LockRank::Mail);
            if plan.replacement {
                // A replacement process: the dead incarnation's backlog
                // and stale inbound frames must not leak into it (the
                // session machine already reset the sequence state).
                st.pending.retain(|m| m.incarnation == peer_incarnation);
                mail.ready.retain(|k, _| k.1 != peer);
            }
            if plan.lift_condemnation {
                // If frames were really lost across the disconnect, the
                // receiver's sequence check re-condemns on the very next
                // frame, so this can only heal a link whose stream state
                // is actually intact.
                mail.corrupt[peer] = None;
            }
            drop(mail);
            st.writer = Some(stream);
            st.up = true;
            st.ever_up = true;
            let backlog: Vec<PendingMsg> = st.pending.drain(..).collect();
            for msg in backlog {
                if self.write_frame(&mut st, msg) {
                    self.counters.frames_retried.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.links[peer].signal.notify_all();
        let t = Arc::clone(self);
        std::thread::spawn(move || t.reader_loop(reader_stream, peer, generation));
        Ok(())
    }

    /// Frame and write one message under the link lock. Returns whether
    /// it went out; on failure the link is marked down and the message
    /// requeued.
    fn write_frame(&self, st: &mut LinkState, msg: PendingMsg) -> bool {
        let header = FrameHeader {
            src: self.cfg.rank as u32,
            context: msg.context,
            tag: msg.tag,
            seq: st.session.next_send_seq(),
            type_hash: msg.type_hash,
            len: msg.payload.len() as u64,
        };
        let frame = wire::encode_frame(&header, &msg.payload);
        let Some(writer) = st.writer.as_mut() else {
            st.pending.push_back(msg);
            return false;
        };
        match writer.write_all(&frame) {
            Ok(()) => {
                st.session.commit_send();
                self.counters.frames_sent.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .bytes_on_wire
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
                true
            }
            Err(_) => {
                // Broken pipe / reset: down the link, keep the message
                // for a same-incarnation reconnect. Failure semantics
                // stay with the hub's detector — a socket error is
                // never itself a death certificate.
                st.up = false;
                st.writer = None;
                st.pending.push_back(msg);
                false
            }
        }
    }

    fn accept_loop(self: &Arc<Self>, listener: &TcpListener) {
        while !self.closing.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    if let Err(e) = stream.set_read_timeout(Some(READ_POLL)) {
                        drop(e);
                        continue;
                    }
                    let mut pre = [0u8; 16];
                    let alive = || !self.closing.load(Ordering::SeqCst);
                    match read_full(&mut stream, &mut pre, &alive) {
                        Ok(true) => {}
                        _ => continue,
                    }
                    let magic = u32::from_le_bytes(pre[0..4].try_into().expect("preamble"));
                    if magic != DATA_PREAMBLE_MAGIC {
                        continue;
                    }
                    let peer =
                        u32::from_le_bytes(pre[4..8].try_into().expect("preamble")) as usize;
                    let inc = u64::from_le_bytes(pre[8..16].try_into().expect("preamble"));
                    if peer >= self.cfg.ranks || peer == self.cfg.rank {
                        continue;
                    }
                    let _ = self.register_link(peer, stream, inc);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Per-link inbound pump: validate every frame, deliver to the byte
    /// mailbox, condemn the link on the first structural failure.
    fn reader_loop(self: &Arc<Self>, mut stream: TcpStream, src: usize, generation: u64) {
        let alive = || {
            !self.closing.load(Ordering::SeqCst)
                && self.links[src].state.lock(LockRank::Link).generation == generation
        };
        loop {
            let mut buf = vec![0u8; FRAME_HEADER];
            match read_full(&mut stream, &mut buf, &alive) {
                Ok(true) => {}
                Ok(false) => {
                    // Clean EOF between frames: the peer closed (exit or
                    // death). Down the link; the detector decides what
                    // it means.
                    self.link_down(src, generation);
                    return;
                }
                Err(_) => {
                    if self.closing.load(Ordering::SeqCst) {
                        return;
                    }
                    self.link_down(src, generation);
                    return;
                }
            }
            let header = match wire::parse_header(&buf) {
                Ok(h) => h,
                Err(e) => {
                    self.condemn(src, generation, &format!("{e}"));
                    return;
                }
            };
            let body = usize::try_from(header.len).expect("frame length fits usize");
            buf.resize(FRAME_HEADER + body + FRAME_TRAILER, 0);
            if !matches!(
                read_full(&mut stream, &mut buf[FRAME_HEADER..], &alive),
                Ok(true)
            ) {
                self.condemn(src, generation, "torn frame: stream ended mid-payload");
                return;
            }
            let (header, payload) = match wire::decode_frame(&buf) {
                Ok(ok) => ok,
                Err(e) => {
                    self.condemn(src, generation, &format!("{e}"));
                    return;
                }
            };
            {
                // Source + sequence check against the link's persistent
                // session machine: it survives same-incarnation
                // reconnects, so frames lost in a dead connection's
                // buffers surface as a gap here instead of being
                // silently skipped.
                let mut st = self.links[src].state.lock(LockRank::Link);
                if st.generation != generation {
                    return; // superseded mid-frame by a fresh registration
                }
                match st.session.accept_frame(header.src, src, header.seq) {
                    FrameVerdict::Accept => {}
                    FrameVerdict::Condemn(reason) => {
                        drop(st);
                        self.condemn(src, generation, &reason.to_string());
                        return;
                    }
                }
            }
            let key = (header.context, src, header.tag);
            let mut mail = self.mail.state.lock(LockRank::Mail);
            mail.ready
                .entry(key)
                .or_default()
                .push_back((header.type_hash, payload.to_vec()));
            drop(mail);
            self.mail.signal.notify_all();
        }
    }

    /// Mark the link down (transient: no error surfaced to receivers).
    fn link_down(&self, src: usize, generation: u64) {
        {
            let mut st = self.links[src].state.lock(LockRank::Link);
            if st.generation != generation {
                return; // superseded by a fresh registration
            }
            st.up = false;
            st.writer = None;
        }
        self.links[src].signal.notify_all();
        // Receivers re-evaluate (the detector may have declared the peer).
        let _guard = self.mail.state.lock(LockRank::Mail);
        self.mail.signal.notify_all();
    }

    /// Condemn the link: everything after a bad frame is untrusted, so
    /// receives from `src` fail loudly from now on (until a replacement
    /// incarnation re-registers the link).
    fn condemn(&self, src: usize, generation: u64, detail: &str) {
        self.counters.crc_rejects.fetch_add(1, Ordering::Relaxed);
        {
            let mut st = self.links[src].state.lock(LockRank::Link);
            if st.generation == generation {
                st.up = false;
                st.writer = None;
            }
        }
        {
            let mut mail = self.mail.state.lock(LockRank::Mail);
            mail.rejected[src] += 1;
            if mail.corrupt[src].is_none() {
                mail.corrupt[src] = Some(detail.to_string());
            }
        }
        self.mail.signal.notify_all();
        self.links[src].signal.notify_all();
    }

    /// Block until every peer link is up (initial rendezvous).
    fn wait_links_up(&self) -> std::io::Result<()> {
        let deadline = Instant::now() + self.timing.sync_timeout;
        for peer in 0..self.cfg.ranks {
            if peer == self.cfg.rank {
                continue;
            }
            let link = &self.links[peer];
            let mut st = link.state.lock(LockRank::Link);
            while !st.up {
                let now = Instant::now();
                if now >= deadline {
                    return Err(io_err(
                        "rendezvous",
                        format!("link to rank {peer} never came up"),
                    ));
                }
                let _ = link.signal.wait_for(&mut st, deadline - now);
            }
        }
        Ok(())
    }

    // ---- control plane ------------------------------------------------

    fn control_send(&self, line: &str) -> bool {
        let mut w = self.control.writer.lock(LockRank::ControlWriter);
        writeln!(w, "{line}").is_ok()
    }

    fn tick_loop(&self) {
        let interval = self.timing.scan_interval.as_secs_f64() / 3.0;
        let interval = Duration::from_secs_f64(interval.max(0.005));
        while !self.closing.load(Ordering::SeqCst) && !self.poisoned.load(Ordering::SeqCst) {
            std::thread::sleep(interval);
            if self.closing.load(Ordering::SeqCst) {
                return;
            }
            if !self.control_send(&ClientLine::Tick.render()) {
                return; // control reader handles the poisoning
            }
        }
    }

    /// Apply hub broadcasts to the local mirror and answer RPC waits.
    fn control_loop(self: &Arc<Self>, reader: BufReader<TcpStream>) {
        for line in reader.lines() {
            let Ok(line) = line else { break };
            match ControlLine::parse(&line) {
                Some(ControlLine::BeatAck(status)) => {
                    let mut slot = self.control.rpc.lock(LockRank::ControlRpc);
                    slot.beat_ack = Some(status);
                    drop(slot);
                    self.control.rpc_signal.notify_all();
                }
                Some(ControlLine::FailedEpoch(epoch)) => {
                    let mut slot = self.control.rpc.lock(LockRank::ControlRpc);
                    slot.failed_epoch = Some(epoch);
                    drop(slot);
                    self.control.rpc_signal.notify_all();
                }
                Some(ControlLine::Event(ev)) => self.apply_control_event(ev),
                Some(ControlLine::Poison) => self.poison_self(),
                None => {}
            }
        }
        // Hub gone. If we are not deliberately shutting down, the world
        // is over: fail every blocked wait instead of hanging.
        if !self.closing.load(Ordering::SeqCst) {
            self.poison_self();
        }
    }

    /// Drive one detector broadcast through the pure mirror machine
    /// ([`protocol::apply_control`]) and perform its side effect. The
    /// `Mirror` and `Mail` acquisitions are sequential, never nested.
    fn apply_control_event(&self, ev: ControlEvent) {
        let effect;
        {
            let mut st = self.mirror.state.lock(LockRank::Mirror);
            effect = protocol::apply_control(&mut st, ev, LIVE);
        }
        self.mirror.signal.notify_all();
        if let MirrorEffect::LiftCondemnation { rank } = effect {
            // The declaration outranks any condemnation the death's
            // torn streams caused: survivors probing the corpse must
            // get `RankFailed`, and the replacement must not inherit
            // the flag.
            let mut mail = self.mail.state.lock(LockRank::Mail);
            if let Some(slot) = mail.corrupt.get_mut(rank) {
                *slot = None;
            }
        }
        // Receives blocked on a now-dead source must re-evaluate.
        let _guard = self.mail.state.lock(LockRank::Mail);
        self.mail.signal.notify_all();
    }

    fn poison_self(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        {
            let _guard = self.mail.state.lock(LockRank::Mail);
            self.mail.signal.notify_all();
        }
        self.mirror.signal.notify_all();
        self.control.rpc_signal.notify_all();
        for link in &self.links {
            link.signal.notify_all();
        }
    }

    /// Send an RPC line and wait for `extract` to yield the reply.
    /// Panics on hub loss — the machine cannot continue without its
    /// detector, exactly like a poisoned in-process run.
    fn hub_rpc<R>(&self, line: &str, extract: impl Fn(&mut RpcSlot) -> Option<R>) -> R {
        // Lock order: ControlRpc → ControlWriter (control_send nests
        // inside the held slot; see module docs).
        let mut slot = self.control.rpc.lock(LockRank::ControlRpc);
        *slot = RpcSlot::default();
        if !self.control_send(line) {
            self.poison_self();
            panic!("hub connection lost during {line}");
        }
        let deadline = Instant::now() + self.timing.sync_timeout;
        loop {
            if let Some(r) = extract(&mut slot) {
                return r;
            }
            if self.poisoned.load(Ordering::SeqCst) {
                panic!("machine poisoned: hub connection lost");
            }
            let now = Instant::now();
            assert!(now < deadline, "hub did not answer {line} in time");
            let _ = self.control.rpc_signal.wait_for(&mut slot, deadline - now);
        }
    }

    /// Build the timeout diagnosis for `src`. Takes the link lock, so
    /// the caller must **not** hold the mailbox lock (`Link` ranks
    /// *below* `Mail` — the rank checker panics on the inversion);
    /// `rejected` is the mailbox's CRC-reject count for `src`,
    /// snapshotted before that lock was released. The lock-order model
    /// checks this exact shape as `recv_timeout_diagnosis`.
    fn mail_diagnose(&self, src: usize, rejected: u64) -> String {
        let up = self.links[src].state.lock(LockRank::Link).up;
        let mut msg = format!(
            "no traffic pending from rank {src} (link {})",
            if up { "up" } else { "down" }
        );
        if rejected > 0 {
            msg.push_str(&format!(
                "; {rejected} frame(s) on this link failed CRC and were discarded \
                 (payload corrupted in flight)"
            ));
        }
        msg
    }
}

fn parse_arg(v: Option<&str>) -> Option<u64> {
    v.and_then(|s| s.parse().ok())
}

/// Dial with exponential backoff + jitter, counting every attempt.
fn dial_retry(
    addr: &str,
    rank: usize,
    incarnation: u64,
    counters: &WireCounters,
) -> std::io::Result<TcpStream> {
    let mut last = None;
    for attempt in 0..DIAL_ATTEMPTS {
        counters.connect_attempts.fetch_add(1, Ordering::Relaxed);
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
        std::thread::sleep(dial_delay(rank, incarnation, attempt));
    }
    Err(last.unwrap_or_else(|| io_err("dial", "no attempts made")))
}

/// Parse the hub's `WELCOME … READY` block: timing, peer addresses,
/// and the detector snapshot seeding the mirror.
#[allow(clippy::type_complexity)]
fn read_welcome(
    reader: &mut BufReader<TcpStream>,
    ranks: usize,
) -> std::io::Result<(WireTiming, Vec<Option<(u64, String)>>, Vec<PeerView>)> {
    let mut timing = None;
    let mut peers: Vec<Option<(u64, String)>> = vec![None; ranks];
    let mut mirror = vec![PeerView::INITIAL; ranks];
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io_err("hub handshake", "EOF before READY"));
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("WELCOME") => {
                let n: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| io_err("WELCOME", "missing ranks"))?;
                if n != ranks {
                    return Err(io_err("WELCOME", format!("world size {n}, expected {ranks}")));
                }
                let ms = |v: Option<&str>, what: &str| -> std::io::Result<Duration> {
                    v.and_then(|s| s.parse::<u64>().ok())
                        .map(Duration::from_millis)
                        .ok_or_else(|| io_err("WELCOME", format!("missing {what}")))
                };
                timing = Some(WireTiming {
                    recv_deadline: ms(it.next(), "watchdog")?,
                    scan_interval: ms(it.next(), "scan interval")?,
                    sync_timeout: ms(it.next(), "sync timeout")?,
                });
            }
            Some("PEER") => {
                let r = parse_arg(it.next())
                    .ok_or_else(|| io_err("PEER", "missing rank"))? as usize;
                let inc = parse_arg(it.next()).ok_or_else(|| io_err("PEER", "missing inc"))?;
                let addr = it
                    .next()
                    .ok_or_else(|| io_err("PEER", "missing addr"))?
                    .to_string();
                if r < ranks {
                    peers[r] = Some((inc, addr));
                }
            }
            Some("STATE") => {
                let r = parse_arg(it.next())
                    .ok_or_else(|| io_err("STATE", "missing rank"))? as usize;
                let status = protocol::parse_status(it.next().unwrap_or(""));
                let epoch = parse_arg(it.next()).unwrap_or(0);
                let failed_epoch = parse_arg(it.next()).unwrap_or(0);
                if r < ranks {
                    mirror[r] = PeerView {
                        status,
                        epoch,
                        failed_epoch,
                    };
                }
            }
            Some("READY") => break,
            _ => {}
        }
    }
    let timing = timing.ok_or_else(|| io_err("hub handshake", "no WELCOME before READY"))?;
    Ok((timing, peers, mirror))
}

impl Transport for SocketTransport {
    fn world_size(&self) -> usize {
        self.cfg.ranks
    }

    fn is_wire(&self) -> bool {
        true
    }

    fn watchdog(&self) -> Option<Duration> {
        Some(self.timing.recv_deadline)
    }

    fn send(
        &self,
        src: usize,
        dst: usize,
        context: u64,
        tag: u64,
        payload: WirePayload,
        bytes: u64,
    ) {
        debug_assert_eq!(src, self.cfg.rank, "socket transport sends only as itself");
        let (type_hash, data) = match payload {
            WirePayload::Bytes { type_hash, data } => (type_hash, data),
            WirePayload::Boxed(_) => unreachable!("socket transport is byte-oriented"),
        };
        self.payload_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.class.count(tag, bytes);
        let dst_status = { self.mirror.state.lock(LockRank::Mirror)[dst].status };
        match protocol::send_route(src, dst, dst_status) {
            SendRoute::SelfDeliver => {
                // Self-sends skip the wire entirely (as MPI does).
                let mut mail = self.mail.state.lock(LockRank::Mail);
                mail.ready
                    .entry((context, src, tag))
                    .or_default()
                    .push_back((type_hash, data));
                drop(mail);
                self.mail.signal.notify_all();
            }
            SendRoute::DropDead => {
                // A peer the detector declared dead gets no traffic: its
                // backlog would only leak into the replacement.
                // `Rebuilding` is NOT dead — the replacement is already
                // registered and the recovery collectives must reach it
                // (it is marked recovered only after they complete, so
                // holding traffic until then would deadlock the very
                // collective that rebuilds it).
                self.counters
                    .frames_dropped_dead
                    .fetch_add(1, Ordering::Relaxed);
            }
            SendRoute::Link => {
                let link = &self.links[dst];
                let mut st = link.state.lock(LockRank::Link);
                let msg = PendingMsg {
                    context,
                    tag,
                    type_hash,
                    payload: data,
                    incarnation: st.session.peer_incarnation,
                };
                if st.up {
                    let _ = self.write_frame(&mut st, msg);
                } else {
                    // Link down: buffer until reconnect (drained or
                    // dropped by `register_link` depending on the
                    // peer's incarnation).
                    st.pending.push_back(msg);
                }
            }
        }
    }

    fn recv(
        &self,
        me: usize,
        src: usize,
        context: u64,
        tag: u64,
        timeout: Option<Duration>,
    ) -> Result<WirePayload, CommError> {
        debug_assert_eq!(me, self.cfg.rank, "socket transport receives only as itself");
        let key = (context, src, tag);
        let start = Instant::now();
        let deadline = timeout.map(|t| start + t);
        let mut mail = self.mail.state.lock(LockRank::Mail);
        loop {
            // One consistent snapshot of everything the verdict needs,
            // then the single decision point: protocol::recv_gate owns
            // the precedence order (queued → poison → declaration →
            // condemnation → wait); this loop only executes it.
            let queued = mail.ready.get(&key).is_some_and(|q| !q.is_empty());
            let (status, failed_epoch) = if src == me {
                (RankStatus::Healthy, 0)
            } else {
                // Lock order: Mail → Mirror (see module docs). Only the
                // hub's declaration — never a socket error — turns a
                // silent peer into `RankFailed`.
                let mirror = self.mirror.state.lock(LockRank::Mirror);
                (mirror[src].status, mirror[src].failed_epoch)
            };
            let verdict = protocol::recv_gate(
                queued,
                self.poisoned.load(Ordering::SeqCst),
                src == me,
                status,
                failed_epoch,
                mail.corrupt[src].is_some(),
                LIVE,
            );
            match verdict {
                RecvVerdict::Deliver => {
                    let (type_hash, data) = mail
                        .ready
                        .get_mut(&key)
                        .and_then(VecDeque::pop_front)
                        .expect("gate saw a queued payload");
                    return Ok(WirePayload::Bytes { type_hash, data });
                }
                RecvVerdict::Poisoned => return Err(CommError::Poisoned),
                RecvVerdict::RankFailed { epoch } => {
                    return Err(CommError::RankFailed { rank: src, epoch });
                }
                RecvVerdict::Corrupt => {
                    let detail = mail.corrupt[src].clone().unwrap_or_default();
                    return Err(CommError::CorruptDetected { rank: src, detail });
                }
                RecvVerdict::Wait => match deadline {
                    None => self.mail.signal.wait(&mut mail),
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            // Lock order: the diagnosis takes the link
                            // lock, which ranks *below* the mailbox lock
                            // (`register_link` nests them the other way)
                            // — release the mailbox first.
                            let rejected = mail.rejected[src];
                            drop(mail);
                            let detail = self.mail_diagnose(src, rejected);
                            return Err(CommError::Timeout {
                                context,
                                src,
                                tag,
                                waited: now - start,
                                detail,
                            });
                        }
                        let _ = self.mail.signal.wait_for(&mut mail, d - now);
                    }
                },
            }
        }
    }

    fn flush_holdback(&self, _me: usize) {
        // No fault injector on this backend; nothing is ever held back.
    }

    fn shutdown(&self, _me: usize) {
        self.closing.store(true, Ordering::SeqCst);
        // `write_all` is synchronous, so every accepted send is already
        // in the kernel buffer; half-close each link so peers read a
        // clean EOF after draining it.
        for link in &self.links {
            let mut st = link.state.lock(LockRank::Link);
            if let Some(w) = st.writer.take() {
                let _ = w.shutdown(Shutdown::Write);
            }
            st.up = false;
        }
        let _ = self.control_send(&ClientLine::Goodbye.render());
        let w = self.control.writer.lock(LockRank::ControlWriter);
        let _ = w.shutdown(Shutdown::Write);
    }

    fn alloc_context_base(&self) -> u64 {
        self.next_context.fetch_add(1, Ordering::Relaxed)
    }

    fn poison(&self) {
        let _ = self.control_send(&ClientLine::Poisoned.render());
        self.poison_self();
    }

    fn traffic_stats(&self) -> TrafficStats {
        let mut bytes_sent = vec![0u64; self.cfg.ranks];
        let mut msgs_sent = vec![0u64; self.cfg.ranks];
        bytes_sent[self.cfg.rank] = self.payload_bytes.load(Ordering::Relaxed);
        msgs_sent[self.cfg.rank] = self.msgs_sent.load(Ordering::Relaxed);
        TrafficStats {
            bytes_sent,
            msgs_sent,
            by_class: self.class.snapshot(),
            faults: FaultStats::default(),
            wire: self.counters.snapshot(),
        }
    }

    fn health_enabled(&self) -> bool {
        // The hub always runs a detector for a socket world.
        true
    }

    fn should_kill(&self, _rank: usize, _step: u64) -> bool {
        // Kills are real here: the hub SIGKILLs the child at its beat.
        false
    }

    fn beat(&self, me: usize, epoch: u64) -> RankStatus {
        debug_assert_eq!(me, self.cfg.rank);
        // Synchronous: a rank scheduled to die at this step is SIGKILLed
        // by the hub *instead of* an ack, so it can never proceed into
        // the step — its recorded epoch stays one behind, exactly like
        // the in-process silent kill.
        self.hub_rpc(&ClientLine::Beat { epoch }.render(), |slot| {
            slot.beat_ack.take()
        })
    }

    fn epoch_sync(&self, me: usize, epoch: u64) -> Result<EpochReport, CommError> {
        let start = Instant::now();
        let deadline = start + self.timing.sync_timeout;
        let mut st = self.mirror.state.lock(LockRank::Mirror);
        loop {
            if self.poisoned.load(Ordering::SeqCst) {
                return Err(CommError::Poisoned);
            }
            match protocol::epoch_gate(&st, me, epoch) {
                EpochGate::Ready { failed } => return Ok(EpochReport { epoch, failed }),
                EpochGate::Waiting { rank: waiting_on } => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(CommError::Timeout {
                            context: 0,
                            src: waiting_on,
                            tag: 0,
                            waited: now - start,
                            detail: format!(
                                "epoch sync stalled: rank {waiting_on} has neither beaten epoch \
                                 {epoch} nor been declared failed"
                            ),
                        });
                    }
                    let _ = self.mirror.signal.wait_for(&mut st, deadline - now);
                }
            }
        }
    }

    fn await_failed(&self, me: usize) -> Result<u64, CommError> {
        debug_assert_eq!(me, self.cfg.rank);
        // The hub acknowledges the death (`Failed → Rebuilding`),
        // broadcasts REBUILDING to the survivors, and returns the last
        // epoch the dead incarnation completed.
        Ok(self.hub_rpc(&ClientLine::AwaitFailed.render(), |slot| {
            slot.failed_epoch.take()
        }))
    }

    fn await_rebirth(&self, _me: usize, failed: &[usize]) -> Result<(), CommError> {
        let start = Instant::now();
        let deadline = start + self.timing.sync_timeout;
        {
            let mut st = self.mirror.state.lock(LockRank::Mirror);
            loop {
                if self.poisoned.load(Ordering::SeqCst) {
                    return Err(CommError::Poisoned);
                }
                match protocol::rebirth_gate(&st, failed) {
                    None => break,
                    Some(waiting_on) => {
                        let now = Instant::now();
                        if now >= deadline {
                            return Err(CommError::Timeout {
                                context: 0,
                                src: waiting_on,
                                tag: 0,
                                waited: now - start,
                                detail: format!(
                                    "failed rank {waiting_on} never acknowledged its death"
                                ),
                            });
                        }
                        let _ = self.mirror.signal.wait_for(&mut st, deadline - now);
                    }
                }
            }
        }
        // Belt and braces: the replacement dials the mesh *before* its
        // AWAITFAILED, so by the time REBUILDING reached us its link is
        // normally already up — but wait for it explicitly anyway.
        for &r in failed {
            if r == self.cfg.rank {
                continue;
            }
            let link = &self.links[r];
            let mut st = link.state.lock(LockRank::Link);
            while !st.up {
                if self.poisoned.load(Ordering::SeqCst) {
                    return Err(CommError::Poisoned);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(CommError::Timeout {
                        context: 0,
                        src: r,
                        tag: 0,
                        waited: now - start,
                        detail: format!("replacement for rank {r} never connected"),
                    });
                }
                let _ = link.signal.wait_for(&mut st, deadline - now);
            }
        }
        Ok(())
    }

    fn mark_recovered(&self, me: usize, epoch: u64) {
        debug_assert_eq!(me, self.cfg.rank);
        // Optimistic local apply; the hub's RECOVERED broadcast confirms
        // it on everyone (including us — idempotent).
        self.apply_control_event(ControlEvent::Recovered { rank: me, epoch });
        let _ = self.control_send(&ClientLine::Recovered { epoch }.render());
    }

    fn dead_set(&self) -> Vec<(usize, u64)> {
        protocol::dead_set(&self.mirror.state.lock(LockRank::Mirror))
    }

    fn rank_status(&self, rank: usize) -> RankStatus {
        self.mirror.state.lock(LockRank::Mirror)[rank].status
    }

    fn retire(&self, me: usize) {
        debug_assert_eq!(me, self.cfg.rank);
        // Optimistic local apply; the hub parks us in its authoritative
        // ledger and broadcasts PARKED to everyone (idempotent on us).
        self.apply_control_event(ControlEvent::Parked { rank: me });
        let _ = self.control_send(&ClientLine::Retire.render());
    }

    fn activate(&self, _me: usize, rank: usize, epoch: u64) {
        // No optimistic apply here: the admission frontier must come
        // from the hub's ledger, so wait for the ACTIVATED broadcast.
        let _ = self.control_send(&ClientLine::Activate { rank, epoch }.render());
    }

    fn await_activation(&self, me: usize) -> Result<u64, CommError> {
        debug_assert_eq!(me, self.cfg.rank);
        let start = Instant::now();
        let deadline = start + self.timing.sync_timeout;
        let mut st = self.mirror.state.lock(LockRank::Mirror);
        loop {
            if self.poisoned.load(Ordering::SeqCst) {
                return Err(CommError::Poisoned);
            }
            if let Some(epoch) = protocol::activation_gate(&st, me) {
                return Ok(epoch);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(CommError::Timeout {
                    context: 0,
                    src: me,
                    tag: 0,
                    waited: now - start,
                    detail: format!("parked rank {me} was never activated"),
                });
            }
            let _ = self.mirror.signal.wait_for(&mut st, deadline - now);
        }
    }
}
