//! Ablation study of the spectral solver design choices (DESIGN.md §4).
//!
//! Section II motivates each ingredient of the Poisson-solve kernel:
//!
//! * the Eq. 5 filter "reduces the anisotropy 'noise' of the CIC scheme
//!   by over an order of magnitude", which is what "allows matching the
//!   short and longer-range forces at a spacing of 3 grid cells";
//! * the 6th-order influence function and 4th-order Super-Lanczos
//!   differencing control the radial force error.
//!
//! This binary measures both claims directly: for particle pairs at fixed
//! separation but many orientations/offsets, it reports the directional
//! scatter (anisotropy) and the mean radial error of the PM force, for
//! the full kernel and with each ingredient ablated.

use hacc_bench::print_table;
use hacc_pm::{deposit_cic, interpolate_cic, PmSolver, SpectralParams};

fn main() {
    println!("Spectral-solver ablation: force anisotropy and radial accuracy");
    let configs: Vec<(&str, SpectralParams)> = vec![
        ("full (paper)", SpectralParams::default()),
        (
            "no filter",
            SpectralParams {
                sigma: 0.0,
                ns: 0,
                ..SpectralParams::default()
            },
        ),
        (
            "naive 1/k^2 influence",
            SpectralParams {
                sixth_order_influence: false,
                ..SpectralParams::default()
            },
        ),
        (
            "exact-k gradient",
            SpectralParams {
                super_lanczos_gradient: false,
                ..SpectralParams::default()
            },
        ),
    ];

    let n = 32usize;
    let radii = [2.0f64, 3.0, 4.0];
    let mut rows = Vec::new();
    for (name, params) in &configs {
        let solver = PmSolver::new(n, n as f64, *params);
        let mut row = vec![name.to_string()];
        for &r in &radii {
            let (aniso, _mean) = anisotropy(&solver, r);
            row.push(format!("{:.2}", 100.0 * aniso));
        }
        rows.push(row);
    }
    print_table(
        "Directional force scatter (std/mean %) at separations of 2, 3, 4 cells",
        &["configuration", "r=2", "r=3", "r=4"],
        &rows,
    );
    println!(
        "\nshape check: removing the Eq. 5 filter should raise the scatter by\n\
         roughly an order of magnitude at the matching radius (paper: the filter\n\
         cuts CIC anisotropy noise >10x, enabling the 3-cell force matching)."
    );
}

/// Measure the PM pair-force over many orientations at separation `r`
/// (grid cells). Returns (std/mean of radial force, mean radial force).
fn anisotropy(solver: &PmSolver, r: f64) -> (f64, f64) {
    let n = solver.n();
    let mut rng = 0xA5A5_5A5Au64;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng as f64 / u64::MAX as f64
    };
    let mut samples = Vec::new();
    for _ in 0..4 {
        let sx = (n as f64 * (0.3 + 0.4 * next())) as f32;
        let sy = (n as f64 * (0.3 + 0.4 * next())) as f32;
        let sz = (n as f64 * (0.3 + 0.4 * next())) as f32;
        let mut src = vec![0.0; n * n * n];
        deposit_cic(&mut src, n, &[sx], &[sy], &[sz], 1.0);
        let f = solver.solve_forces(&src);
        for _ in 0..24 {
            let u = 2.0 * next() - 1.0;
            let phi = 2.0 * std::f64::consts::PI * next();
            let q = (1.0 - u * u).sqrt();
            let (dx, dy, dz) = (q * phi.cos(), q * phi.sin(), u);
            let px = sx + (r * dx) as f32;
            let py = sy + (r * dy) as f32;
            let pz = sz + (r * dz) as f32;
            let fx = f64::from(interpolate_cic(&f[0], n, &[px], &[py], &[pz])[0]);
            let fy = f64::from(interpolate_cic(&f[1], n, &[px], &[py], &[pz])[0]);
            let fz = f64::from(interpolate_cic(&f[2], n, &[px], &[py], &[pz])[0]);
            samples.push(-(fx * dx + fy * dy + fz * dz));
        }
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var =
        samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
    (var.sqrt() / mean.abs().max(1e-30), mean)
}
