//! Matter power spectrum estimator.
//!
//! CIC-deposits the particles on a measurement mesh, Fourier transforms
//! the density contrast, deconvolves the CIC window, and bins `|δ(k)|²`
//! in shells of `|k|`:
//!
//! `P(k) = ⟨|δ(k)|²⟩ · V / N⁶` with `k` in h/Mpc and `P` in (Mpc/h)³.

use hacc_fft::{k_of_index, Complex64, Fft3};
use hacc_pm::deposit_cic_par;
use hacc_pm::spectral::sinc;

/// A binned power spectrum measurement.
#[derive(Debug, Clone)]
pub struct PowerSpectrum {
    /// Bin-averaged wavenumbers, h/Mpc.
    pub k: Vec<f64>,
    /// Power in (Mpc/h)³.
    pub p: Vec<f64>,
    /// Modes per bin.
    pub count: Vec<u64>,
}

impl PowerSpectrum {
    /// Measure `P(k)` from particle positions in a periodic box.
    ///
    /// `mesh` is the FFT mesh per side (sets the maximum `k ≈ π·mesh/L`);
    /// `bins` the number of linear k-shells up to the Nyquist frequency.
    #[must_use] 
    pub fn measure(
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        box_len: f64,
        mesh: usize,
        bins: usize,
    ) -> Self {
        assert!(mesh >= 2 && bins >= 1);
        let np = xs.len();
        assert!(np > 0, "no particles");
        let n3 = mesh * mesh * mesh;

        // Density contrast on the mesh (positions → grid units).
        let to_grid = mesh as f64 / box_len;
        let gx: Vec<f32> = xs.iter().map(|&v| (f64::from(v) * to_grid) as f32).collect();
        let gy: Vec<f32> = ys.iter().map(|&v| (f64::from(v) * to_grid) as f32).collect();
        let gz: Vec<f32> = zs.iter().map(|&v| (f64::from(v) * to_grid) as f32).collect();
        let mut grid = vec![0.0f64; n3];
        deposit_cic_par(&mut grid, mesh, &gx, &gy, &gz, 1.0);
        let mean = np as f64 / n3 as f64;
        let mut field: Vec<Complex64> = grid
            .iter()
            .map(|&v| Complex64::new(v / mean - 1.0, 0.0))
            .collect();
        Fft3::new_cubic(mesh).forward(&mut field);

        // Bin the deconvolved mode powers.
        let volume = box_len * box_len * box_len;
        let norm = volume / (n3 as f64 * n3 as f64);
        let k_nyquist = std::f64::consts::PI * mesh as f64 / box_len;
        let dk = k_nyquist / bins as f64;
        let delta_cell = box_len / mesh as f64;
        let mut k_sum = vec![0.0; bins];
        let mut p_sum = vec![0.0; bins];
        let mut count = vec![0u64; bins];
        for ix in 0..mesh {
            let kx = k_of_index(ix, mesh, box_len);
            for iy in 0..mesh {
                let ky = k_of_index(iy, mesh, box_len);
                for iz in 0..mesh {
                    let kz = k_of_index(iz, mesh, box_len);
                    if ix == 0 && iy == 0 && iz == 0 {
                        continue;
                    }
                    let kk = (kx * kx + ky * ky + kz * kz).sqrt();
                    let bin = (kk / dk) as usize;
                    if bin >= bins {
                        continue;
                    }
                    // CIC window: sinc²(k_iΔ/2) per axis.
                    let w = sinc(0.5 * kx * delta_cell)
                        * sinc(0.5 * ky * delta_cell)
                        * sinc(0.5 * kz * delta_cell);
                    let w2 = (w * w).max(1e-12);
                    let pk = field[(ix * mesh + iy) * mesh + iz].norm_sqr() * norm / (w2 * w2);
                    k_sum[bin] += kk;
                    p_sum[bin] += pk;
                    count[bin] += 1;
                }
            }
        }
        let mut out = PowerSpectrum {
            k: Vec::new(),
            p: Vec::new(),
            count: Vec::new(),
        };
        for b in 0..bins {
            if count[b] > 0 {
                out.k.push(k_sum[b] / count[b] as f64);
                out.p.push(p_sum[b] / count[b] as f64);
                out.count.push(count[b]);
            }
        }
        out
    }

    /// Shot-noise level `V/N` for `n_particles`.
    #[must_use] 
    pub fn shot_noise(box_len: f64, n_particles: usize) -> f64 {
        box_len.powi(3) / n_particles as f64
    }

    /// Interpolate the measured spectrum at wavenumber `k` (linear in the
    /// bin table; clamps outside).
    #[must_use] 
    pub fn at(&self, k: f64) -> f64 {
        if self.k.is_empty() {
            return 0.0;
        }
        match self.k.iter().position(|&kb| kb >= k) {
            None => *self.p.last().expect("non-empty"),
            Some(0) => self.p[0],
            Some(i) => {
                let t = (k - self.k[i - 1]) / (self.k[i] - self.k[i - 1]);
                self.p[i - 1] * (1.0 - t) + self.p[i] * t
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hacc_cosmo::{Cosmology, LinearPower, Transfer};
    use hacc_ics::zeldovich;

    #[test]
    fn uniform_grid_has_no_power() {
        // Perfectly regular particles: zero power below the Nyquist alias.
        let n = 8;
        let l = 64.0;
        let g = hacc_ics::uniform_grid(n, l);
        let ps = PowerSpectrum::measure(&g.x, &g.y, &g.z, l, 16, 8);
        for (k, p) in ps.k.iter().zip(&ps.p) {
            if *k < std::f64::consts::PI * n as f64 / l * 0.9 {
                assert!(p.abs() < 1e-12, "P({k}) = {p}");
            }
        }
    }

    #[test]
    fn single_plane_wave_recovered() {
        // Particles displaced by a single sine mode produce power in
        // exactly that bin (leading order).
        let n = 16;
        let l = 100.0;
        let mut g = hacc_ics::uniform_grid(n, l);
        let k0 = 2.0 * std::f64::consts::PI / l * 2.0; // mode 2
        let amp = 0.5;
        for x in g.x.iter_mut() {
            *x += (amp * (k0 * f64::from(*x)).sin()) as f32;
        }
        let ps = PowerSpectrum::measure(&g.x, &g.y, &g.z, l, 16, 16);
        // δ ≈ -dψ/dx = -amp·k0·cos(k0 x): P at mode 2 = (amp·k0)²/2·V/...
        // Just check the peak bin dominates.
        let imax = ps
            .p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("bins")
            .0;
        let k_peak = ps.k[imax];
        // Shell-averaged bin centers are slightly offset from the mode;
        // require the peak bin to be the one containing k0 (±1 bin).
        assert!(
            (k_peak - k0).abs() < 0.3 * k0,
            "peak at {k_peak}, expect {k0}"
        );
    }

    #[test]
    fn zeldovich_ics_reproduce_linear_power() {
        // The headline validation: a Zel'dovich realization at a_init
        // must measure P(k) ≈ D²(a) P_lin(k) at low k.
        let cosmo = Cosmology::lcdm();
        let power = LinearPower::new(&cosmo, Transfer::EisensteinHuNoWiggle);
        let n = 32;
        let l = 500.0;
        let a = 0.1;
        let ics = zeldovich(n, l, &power, a, 2024);
        let ps = PowerSpectrum::measure(&ics.x, &ics.y, &ics.z, l, 32, 16);
        let mut checked = 0;
        let mut log_ratio_sum: f64 = 0.0;
        for (k, p) in ps.k.iter().zip(&ps.p) {
            // Low-k bins only (well below Nyquist, above fundamental).
            if *k > 0.02 && *k < 0.12 {
                let want = power.p_of_k_a(*k, a);
                log_ratio_sum += (p / want).ln();
                checked += 1;
            }
        }
        assert!(checked >= 3, "too few bins checked");
        let mean_ratio = (log_ratio_sum / f64::from(checked)).exp();
        // Cosmic variance on a handful of modes: allow 30%.
        assert!(
            (mean_ratio - 1.0).abs() < 0.3,
            "measured/linear = {mean_ratio}"
        );
    }

    #[test]
    fn shot_noise_value() {
        assert_eq!(PowerSpectrum::shot_noise(100.0, 1000), 1000.0);
    }

    #[test]
    fn interpolation_clamps_and_interpolates() {
        let ps = PowerSpectrum {
            k: vec![0.1, 0.2, 0.4],
            p: vec![10.0, 20.0, 5.0],
            count: vec![1, 1, 1],
        };
        assert_eq!(ps.at(0.05), 10.0);
        assert_eq!(ps.at(1.0), 5.0);
        assert!((ps.at(0.15) - 15.0).abs() < 1e-12);
    }
}
