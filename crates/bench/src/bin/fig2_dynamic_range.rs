//! Fig. 2 reproduction: spatial dynamic range of a simulation.
//!
//! The paper's Fig. 2 zooms from the full (9.14 Gpc)³ box down to a
//! (7 Mpc)³ halo, a factor ~10⁶ in scale when the force resolution is
//! included. We run the laptop-scale science box, find the densest
//! region, and print the nested-zoom contrast series plus the formal
//! dynamic range of the configuration (box size / force resolution).

use hacc_analysis::zoom_series;
use hacc_bench::{print_table, run_science_sim};
use hacc_core::SolverKind;

fn main() {
    println!("Fig. 2: zoom-in dynamic range");
    let np = 24;
    let box_len = 96.0;
    let sim = run_science_sim(np, box_len, 18, SolverKind::TreePm, &[], |_, _| {});
    let (x, y, z) = sim.positions();

    let series = zoom_series(x, y, z, box_len, 4, 128);
    let rows: Vec<Vec<String>> = series
        .iter()
        .enumerate()
        .map(|(i, (ext, contrast))| {
            vec![
                i.to_string(),
                format!("{ext:.1}"),
                format!("{:.0}", box_len / ext),
                format!("{contrast:.1}"),
            ]
        })
        .collect();
    print_table(
        "Nested zooms centered on the densest projected region",
        &["level", "window [Mpc/h]", "zoom factor", "max/mean contrast"],
        &rows,
    );

    // Formal dynamic range: box / (grid cell / ~50 for the short-range
    // force softening scale in the matching units the paper quotes).
    let cfg = sim.config();
    let cell = cfg.box_len / cfg.ng as f64;
    println!(
        "\nbox = {:.0} Mpc/h, PM cell = {cell:.2} Mpc/h, short-range matching at \
         {:.1} cells;",
        cfg.box_len, cfg.rcut_cells
    );
    println!(
        "formal dynamic range (box/cell) = {:.0}; the paper's production config reaches\n\
         ~10^6 (9.14 Gpc box at 0.007 Mpc force resolution) by scaling the same code\n\
         to a 10240³ grid — dynamic range here is bounded only by the mesh we can\n\
         afford, not by the algorithm.",
        cfg.ng as f64
    );
}
