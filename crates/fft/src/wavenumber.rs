//! Wavenumber bookkeeping for FFT grids.

/// Signed integer wavenumber for FFT bin `i` of an `n`-point transform:
/// `0, 1, …, n/2, -(n-1)/2, …, -1` (the usual fftfreq convention).
#[inline]
#[must_use] 
pub fn k_index(i: usize, n: usize) -> i64 {
    debug_assert!(i < n);
    if i <= n / 2 {
        i as i64
    } else {
        i as i64 - n as i64
    }
}

/// Physical wavenumber of bin `i` for a periodic domain of length `l`:
/// `k = 2π·k_index/l`.
#[inline]
#[must_use] 
pub fn k_of_index(i: usize, n: usize, l: f64) -> f64 {
    2.0 * std::f64::consts::PI * k_index(i, n) as f64 / l
}

/// Squared magnitude of the wavevector for bins `(i, j, k)` of an `n³`
/// grid with box length `l`.
#[inline]
#[must_use] 
pub fn k_squared(idx: [usize; 3], n: usize, l: f64) -> f64 {
    let kx = k_of_index(idx[0], n, l);
    let ky = k_of_index(idx[1], n, l);
    let kz = k_of_index(idx[2], n, l);
    kx * kx + ky * ky + kz * kz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_index_even_grid() {
        let n = 8;
        let got: Vec<i64> = (0..n).map(|i| k_index(i, n)).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4, -3, -2, -1]);
    }

    #[test]
    fn k_index_odd_grid() {
        let n = 5;
        let got: Vec<i64> = (0..n).map(|i| k_index(i, n)).collect();
        assert_eq!(got, vec![0, 1, 2, -2, -1]);
    }

    #[test]
    fn physical_k_fundamental() {
        let k1 = k_of_index(1, 64, 100.0);
        assert!((k1 - 2.0 * std::f64::consts::PI / 100.0).abs() < 1e-15);
        assert_eq!(k_of_index(0, 64, 100.0), 0.0);
    }

    #[test]
    fn k_squared_symmetric() {
        let n = 16;
        // bin n-1 is k = -1; same |k|² as bin 1.
        assert!((k_squared([1, 0, 0], n, 1.0) - k_squared([n - 1, 0, 0], n, 1.0)).abs() < 1e-12);
    }
}
