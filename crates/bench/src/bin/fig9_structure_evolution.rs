//! Fig. 9 reproduction: time evolution of structure formation.
//!
//! The paper shows density zoom frames at decreasing redshift: the
//! particle distribution transitions from essentially uniform to
//! extremely clustered, with the local density contrast growing by about
//! five orders of magnitude — while the wall-clock per step stays
//! roughly constant. We emit the same series as density-slice statistics
//! plus PGM frames under `out/fig9/`, and print the per-step wall-clock
//! to verify its flatness.

use hacc_analysis::{density_contrast_stats, DensitySlice};
use hacc_bench::{print_table, run_science_sim, FIG10_REDSHIFTS};
use hacc_core::SolverKind;

fn main() {
    println!("Fig. 9: structure growth frames (density slices)");
    let np = 24;
    let box_len = 96.0;
    let out_dir = std::path::Path::new("out/fig9");
    std::fs::create_dir_all(out_dir).expect("create output dir");

    let mut rows = Vec::new();
    let sim = run_science_sim(
        np,
        box_len,
        18,
        SolverKind::TreePm,
        &FIG10_REDSHIFTS,
        |z, s| {
            let (x, y, zz) = s.positions();
            let (dmax, drms, empty) = density_contrast_stats(x, y, zz, box_len, 64);
            let slice = DensitySlice::project(
                x,
                y,
                zz,
                box_len,
                (0.0, box_len / 8.0),
                (0.0, 0.0, box_len),
                256,
            );
            let path = out_dir.join(format!("frame_z{z:.1}.pgm"));
            slice.write_pgm(&path).expect("write frame");
            rows.push(vec![
                format!("{z:.1}"),
                format!("{dmax:.1}"),
                format!("{drms:.3}"),
                format!("{:.1}", 100.0 * empty),
                path.display().to_string(),
            ]);
        },
    );

    print_table(
        "Density contrast growth across snapshots (64³ measurement mesh)",
        &["z", "max δ", "rms δ", "empty cells %", "frame"],
        &rows,
    );

    // Wall-clock flatness across steps (the paper: "the wall-clock per
    // time step does not change much over the entire simulation").
    let times: Vec<f64> = sim
        .stats
        .steps
        .iter()
        .map(|s| s.total().as_secs_f64())
        .collect();
    let early: f64 = times[..times.len() / 3].iter().sum::<f64>() / (times.len() / 3) as f64;
    let late: f64 =
        times[2 * times.len() / 3..].iter().sum::<f64>() / (times.len() - 2 * times.len() / 3) as f64;
    println!(
        "\nwall-clock per step: early mean {:.3}s, late mean {:.3}s (ratio {:.2}) — \n\
         clustering grows the neighbor lists but fat-leaf trees keep the cost bounded.",
        early,
        late,
        late / early
    );
}
