//! Property-based tests (proptest) over the core numerical invariants.

use hacc::fft::{Complex64, Fft1d, Fft3};
use hacc::pm::{deposit_cic, interpolate_cic};
use hacc::short::{ForceKernel, RcbTree, TreeParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FFT round-trip is the identity for arbitrary lengths and data —
    /// including primes (Bluestein) and mixed-radix composites.
    #[test]
    fn fft1d_roundtrip(
        n in 1usize..200,
        seed in any::<u64>(),
    ) {
        let plan = Fft1d::new(n);
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s as f64 / u64::MAX as f64) - 0.5
        };
        let orig: Vec<Complex64> = (0..n).map(|_| Complex64::new(next(), next())).collect();
        let mut data = orig.clone();
        let mut scratch = plan.make_scratch();
        plan.forward(&mut data, &mut scratch);
        plan.backward(&mut data, &mut scratch);
        for (a, b) in data.iter().zip(&orig) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    /// Parseval's theorem holds for arbitrary signals.
    #[test]
    fn fft1d_parseval(n in 2usize..128, seed in any::<u64>()) {
        let plan = Fft1d::new(n);
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s as f64 / u64::MAX as f64) - 0.5
        };
        let orig: Vec<Complex64> = (0..n).map(|_| Complex64::new(next(), next())).collect();
        let mut data = orig.clone();
        let mut scratch = plan.make_scratch();
        plan.forward(&mut data, &mut scratch);
        let t: f64 = orig.iter().map(|v| v.norm_sqr()).sum();
        let f: f64 = data.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((t - f).abs() < 1e-8 * t.max(1.0));
    }

    /// 3-D FFT linearity: F(a·x + y) = a·F(x) + F(y).
    #[test]
    fn fft3_linearity(seed in any::<u64>(), scale in -3.0f64..3.0) {
        let n = 6;
        let plan = Fft3::new_cubic(n);
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s as f64 / u64::MAX as f64) - 0.5
        };
        let a: Vec<Complex64> = (0..n*n*n).map(|_| Complex64::new(next(), next())).collect();
        let b: Vec<Complex64> = (0..n*n*n).map(|_| Complex64::new(next(), next())).collect();
        let mut fa = a.clone();
        plan.forward(&mut fa);
        let mut fb = b.clone();
        plan.forward(&mut fb);
        let mut combo: Vec<Complex64> = a.iter().zip(&b)
            .map(|(x, y)| x.scale(scale) + *y).collect();
        plan.forward(&mut combo);
        for ((x, y), z) in fa.iter().zip(&fb).zip(&combo) {
            prop_assert!((x.scale(scale) + *y - *z).abs() < 1e-8);
        }
    }

    /// CIC deposit conserves total mass for any particle placement
    /// (including out-of-box positions that must wrap).
    #[test]
    fn cic_mass_conservation(
        positions in prop::collection::vec((-20.0f32..40.0, -20.0f32..40.0, -20.0f32..40.0), 1..200),
        mass in 0.1f64..10.0,
    ) {
        let n = 8;
        let xs: Vec<f32> = positions.iter().map(|p| p.0).collect();
        let ys: Vec<f32> = positions.iter().map(|p| p.1).collect();
        let zs: Vec<f32> = positions.iter().map(|p| p.2).collect();
        let mut grid = vec![0.0; n * n * n];
        deposit_cic(&mut grid, n, &xs, &ys, &zs, mass);
        let total: f64 = grid.iter().sum();
        prop_assert!((total - mass * xs.len() as f64).abs() < 1e-6 * total.max(1.0));
        prop_assert!(grid.iter().all(|&v| v >= 0.0));
    }

    /// CIC interpolation of a constant field returns the constant at any
    /// sampling position (partition of unity).
    #[test]
    fn cic_partition_of_unity(
        x in -5.0f32..15.0, y in -5.0f32..15.0, z in -5.0f32..15.0, c in -10.0f64..10.0,
    ) {
        let n = 6;
        let grid = vec![c; n * n * n];
        let v = interpolate_cic(&grid, n, &[x], &[y], &[z]);
        prop_assert!((f64::from(v[0]) - c).abs() < 1e-4 * c.abs().max(1.0));
    }

    /// The RCB tree's particle reordering is always a permutation, for
    /// any particle distribution and leaf size.
    #[test]
    fn rcb_partition_is_permutation(
        positions in prop::collection::vec((0.0f32..10.0, 0.0f32..10.0, 0.0f32..10.0), 1..300),
        leaf_size in 1usize..64,
    ) {
        let xs: Vec<f32> = positions.iter().map(|p| p.0).collect();
        let ys: Vec<f32> = positions.iter().map(|p| p.1).collect();
        let zs: Vec<f32> = positions.iter().map(|p| p.2).collect();
        let m = vec![1.0f32; xs.len()];
        let tree = RcbTree::build(&xs, &ys, &zs, &m, TreeParams { leaf_size });
        let mut seen = vec![false; xs.len()];
        for &p in tree.permutation() {
            prop_assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    /// Tree forces obey Newton's third law in aggregate (net force ~ 0)
    /// for arbitrary clustered distributions.
    #[test]
    fn tree_forces_sum_to_zero(
        positions in prop::collection::vec((0.0f32..8.0, 0.0f32..8.0, 0.0f32..8.0), 2..150),
    ) {
        let xs: Vec<f32> = positions.iter().map(|p| p.0).collect();
        let ys: Vec<f32> = positions.iter().map(|p| p.1).collect();
        let zs: Vec<f32> = positions.iter().map(|p| p.2).collect();
        let m = vec![1.0f32; xs.len()];
        let tree = RcbTree::build(&xs, &ys, &zs, &m, TreeParams { leaf_size: 16 });
        let kernel = ForceKernel::newtonian(3.0, 1e-4);
        let (f, _) = tree.forces(&kernel);
        for (c, comp) in f.iter().enumerate() {
            let sum: f64 = comp.iter().map(|&v| f64::from(v)).sum();
            let mag: f64 = comp.iter().map(|&v| f64::from(v.abs())).sum::<f64>().max(1e-6);
            prop_assert!(sum.abs() < 1e-3 * mag.max(1.0), "component {} sum {}", c, sum);
        }
    }

    /// Kernel cutoff: the force factor is exactly zero at and beyond the
    /// cutoff, and finite below it.
    #[test]
    fn kernel_cutoff_respected(s in 0.0f32..20.0) {
        let k = ForceKernel::new([0.05, -0.01, 0.001, 0.0, 0.0, 0.0], 2.5, 1e-5);
        let f = k.factor(s);
        if s >= 2.5 * 2.5 || s == 0.0 {
            prop_assert_eq!(f, 0.0);
        } else {
            prop_assert!(f.is_finite());
        }
    }
}
