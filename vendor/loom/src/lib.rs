//! Offline stand-in for the `loom` permutation tester (see
//! `vendor/README.md` for the full deviation list).
//!
//! Like the real crate, this provides drop-in replacements for the
//! synchronization primitives a concurrent module uses (`Mutex`,
//! `Condvar`, atomics, threads) plus a [`model`] entry point that runs a
//! closure under *every* schedule of its threads: each execution is
//! driven by a cooperative scheduler that permits exactly one thread to
//! run at a time and treats every synchronization operation as a
//! scheduling decision; a depth-first search over those decisions
//! replays the closure until the space of interleavings is exhausted.
//! A panic, a deadlock, or a failed assertion under *any* schedule
//! fails the test and reports the schedule that produced it.
//!
//! Deviations from the real `loom` (all documented in
//! `vendor/README.md`):
//!
//! - **Sequentially consistent memory model.** Atomic operations are
//!   explored under every thread interleaving, but weak-ordering
//!   reorderings (`Relaxed`/`Acquire`/`Release` visibility anomalies)
//!   are not modeled; the `Ordering` argument is accepted and ignored.
//! - **Modeled time.** [`time::Instant`] reads a logical clock that
//!   only advances when a timed wait ([`sync::Condvar::wait_for`])
//!   fires its timeout branch. A timed wait is schedulable both as
//!   "woken by notify" and as "timed out", so both outcomes of every
//!   timeout race are explored deterministically.
//! - **API shape.** `Mutex`/`Condvar` mirror the `parking_lot` subset
//!   this workspace uses (non-poisoning `lock()`, `&mut guard` waits)
//!   rather than the std-shaped API of the real crate, so the
//!   `hacc-comm` `sync` shim is a pure re-export in both
//!   configurations.
//! - No spurious wakeups, no `UnsafeCell` access checking, no leak
//!   detection.

pub mod rt;
pub mod sync;
pub mod thread;
pub mod time;

/// Run `f` under every exhaustively explored thread schedule.
///
/// Panics (failing the enclosing test) if any schedule panics,
/// deadlocks, or exceeds the execution budget
/// (`LOOM_MAX_EXECUTIONS`, default 1,000,000).
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    rt::model(f);
}

/// Configurable model entry point (mirrors `loom::model::Builder`).
pub mod model {
    /// Builds a model run with explicit search bounds.
    ///
    /// `preemption_bound` mirrors the real loom option of the same
    /// name: with `Some(n)`, the search is exhaustive over every
    /// schedule containing at most `n` *preemptions* — switches away
    /// from a thread that could have kept running. Context switches at
    /// natural blocking points (lock handoff, condvar waits including
    /// their timeout branches) are always free. This is the CHESS
    /// result: almost all concurrency bugs manifest within two or
    /// three preemptions, and the bounded space is polynomial where
    /// the unbounded one is exponential — which is what makes long
    /// protocols (a full barrier round, a collective) checkable.
    #[derive(Debug, Clone, Default)]
    pub struct Builder {
        /// Max preemptions per execution (`None` = unbounded search).
        pub preemption_bound: Option<usize>,
        /// Max executions before the run aborts (`None` = the
        /// `LOOM_MAX_EXECUTIONS` env default).
        pub max_executions: Option<usize>,
    }

    impl Builder {
        /// A builder with an unbounded, fully exhaustive search.
        #[must_use]
        pub fn new() -> Self {
            Self::default()
        }

        /// Run `f` under every schedule within the configured bounds.
        pub fn check<F>(&self, f: F)
        where
            F: Fn() + Send + Sync + 'static,
        {
            crate::rt::run_model(f, self.preemption_bound, self.max_executions);
        }
    }
}
