//! Model-checked threads: each loom thread runs on a real OS thread
//! but proceeds only when the scheduler hands it the baton.

use crate::rt;
use std::sync::{Arc, Mutex as OsMutex};

/// Handle to a spawned loom thread.
pub struct JoinHandle<T> {
    tid: usize,
    slot: Arc<OsMutex<Option<T>>>,
}

/// Spawn a loom thread. The closure starts parked and runs only when
/// scheduled; all its synchronization operations become scheduling
/// decisions of the enclosing [`crate::model`] run.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let slot = Arc::new(OsMutex::new(None));
    let slot2 = Arc::clone(&slot);
    let tid = rt::spawn_thread(move || {
        let v = f();
        *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
    });
    JoinHandle { tid, slot }
}

impl<T> JoinHandle<T> {
    /// Wait (as a scheduling decision) for the thread to finish.
    ///
    /// A panic in the target thread aborts the whole model execution
    /// with the target's panic as the reported failure, so unlike
    /// `std`, the error arm is never observable inside a model.
    pub fn join(self) -> std::thread::Result<T> {
        rt::join_thread(self.tid);
        match self.slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
            Some(v) => Ok(v),
            // Target finished without a result: it panicked and the
            // failure is already recorded — unwind out of the model.
            None => panic!("loom execution aborted"),
        }
    }
}

/// Hand the baton back to the scheduler without blocking.
pub fn yield_now() {
    rt::yield_point();
}
