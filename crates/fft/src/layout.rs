//! Distributed grid layouts.

use hacc_comm::Comm;

use crate::complex::Complex64;

/// A rank-local box of a global `n³` grid, stored row-major over `size`
/// (`z` fastest): `idx = (ix·size[1] + iy)·size[2] + iz` with `i?` local.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout3 {
    /// Global grid points per side.
    pub n: usize,
    /// Global coordinates of the local origin.
    pub origin: [usize; 3],
    /// Local box size.
    pub size: [usize; 3],
}

impl Layout3 {
    /// Number of locally stored elements.
    #[must_use] 
    pub fn len(&self) -> usize {
        self.size[0] * self.size[1] * self.size[2]
    }

    /// True when the local box is empty.
    #[must_use] 
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Local index of global coordinates (must lie inside the box).
    #[inline]
    #[must_use] 
    pub fn local_index(&self, g: [usize; 3]) -> usize {
        debug_assert!(self.contains(g), "{g:?} outside {self:?}");
        let l = [
            g[0] - self.origin[0],
            g[1] - self.origin[1],
            g[2] - self.origin[2],
        ];
        (l[0] * self.size[1] + l[1]) * self.size[2] + l[2]
    }

    /// Whether the box contains the global coordinates.
    #[inline]
    #[must_use] 
    pub fn contains(&self, g: [usize; 3]) -> bool {
        (0..3).all(|d| g[d] >= self.origin[d] && g[d] < self.origin[d] + self.size[d])
    }

    /// Global coordinates of local linear index `idx`.
    #[inline]
    #[must_use] 
    pub fn global_coords(&self, idx: usize) -> [usize; 3] {
        let iz = idx % self.size[2];
        let iy = (idx / self.size[2]) % self.size[1];
        let ix = idx / (self.size[1] * self.size[2]);
        [
            self.origin[0] + ix,
            self.origin[1] + iy,
            self.origin[2] + iz,
        ]
    }
}

/// Split `n` into `p` contiguous near-equal ranges `(start, len)`.
#[must_use] 
pub fn block_ranges(n: usize, p: usize) -> Vec<(usize, usize)> {
    let base = n / p;
    let rem = n % p;
    let mut out = Vec::with_capacity(p);
    let mut start = 0;
    for r in 0..p {
        let len = base + usize::from(r < rem);
        out.push((start, len));
        start += len;
    }
    out
}

/// A distributed 3-D FFT: forward maps the real-space layout to the
/// k-space layout (possibly different decompositions, as with pencils).
pub trait DistFft3 {
    /// Global grid side.
    fn n(&self) -> usize;
    /// Layout of real-space data on this rank.
    fn real_layout(&self) -> Layout3;
    /// Layout of k-space data on this rank after `forward`.
    fn k_layout(&self) -> Layout3;
    /// Unnormalized forward transform; consumes real-layout data, returns
    /// k-layout data.
    fn forward(&self, data: Vec<Complex64>) -> Vec<Complex64>;
    /// Normalized inverse transform; consumes k-layout data, returns
    /// real-layout data.
    fn backward(&self, data: Vec<Complex64>) -> Vec<Complex64>;
    /// The communicator the transform runs on.
    fn comm(&self) -> &Comm;
}

/// A distributed real-to-complex 3-D FFT over the Hermitian
/// half-spectrum: forward maps real-layout `f64` data to half-spectrum
/// k-layout data (`nzh = n/2 + 1` retained z bins — `Layout3::size[2]`
/// of the k layout is `nzh`-bounded while `n` stays the global real
/// side).
pub trait DistRealFft3 {
    /// Global grid side.
    fn n(&self) -> usize;
    /// Retained z bins, `n/2 + 1`.
    fn nzh(&self) -> usize;
    /// Layout of real-space data on this rank.
    fn real_layout(&self) -> Layout3;
    /// Layout of half-spectrum data on this rank after `forward` (z
    /// coordinates run over `0..nzh`).
    fn k_layout(&self) -> Layout3;
    /// Unnormalized forward r2c transform.
    fn forward(&self, data: Vec<f64>) -> Vec<Complex64>;
    /// Normalized inverse c2r transform.
    fn backward(&self, data: Vec<Complex64>) -> Vec<f64>;
    /// The communicator the transform runs on.
    fn comm(&self) -> &Comm;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_cover_exactly() {
        for n in [1, 7, 16, 100] {
            for p in [1, 2, 3, 7, 8] {
                let r = block_ranges(n, p);
                assert_eq!(r.len(), p);
                let total: usize = r.iter().map(|&(_, l)| l).sum();
                assert_eq!(total, n, "n={n} p={p}");
                // Contiguity.
                let mut next = 0;
                for &(s, l) in &r {
                    assert_eq!(s, next);
                    next += l;
                }
                // Balance: lengths differ by at most 1.
                let min = r.iter().map(|&(_, l)| l).min().unwrap();
                let max = r.iter().map(|&(_, l)| l).max().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn layout_index_roundtrip() {
        let l = Layout3 {
            n: 16,
            origin: [4, 0, 8],
            size: [4, 16, 8],
        };
        for idx in 0..l.len() {
            let g = l.global_coords(idx);
            assert!(l.contains(g));
            assert_eq!(l.local_index(g), idx);
        }
        assert!(!l.contains([0, 0, 0]));
        assert!(!l.contains([8, 0, 8]));
    }
}
