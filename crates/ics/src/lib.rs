//! Initial conditions: Gaussian random fields and the Zel'dovich
//! approximation.
//!
//! HACC science runs start from a realization of the linear matter power
//! spectrum at high redshift (the paper's test run starts at z = 25,
//! production at z ≈ 200) with particles displaced from a uniform grid by
//! the Zel'dovich approximation. The pipeline here:
//!
//! 1. draw a unit white-noise field on the `n³` grid (deterministic from a
//!    seed), FFT it — Hermitian symmetry comes for free;
//! 2. scale each mode by `√(P(k)·n³/V)` to obtain `δ₀(k)` (the *linear*
//!    field normalized to z = 0);
//! 3. displacement field `ψ₀(k) = i·(k/k²)·δ₀(k)` so `δ₀ = -∇·ψ₀`;
//! 4. particles: `x = q + D(a)·ψ₀(q)`, momentum `p = a²·Ḋ(a)·ψ₀(q)` in
//!    box-length/`1/H0` units, matching the driver's kick/drift maps.

use hacc_cosmo::LinearPower;
use hacc_fft::{k_of_index, Complex64, Fft3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A particle realization ready for the simulation driver.
#[derive(Debug, Clone)]
pub struct IcsRealization {
    /// Grid/particle count per side.
    pub n: usize,
    /// Box side in Mpc/h.
    pub box_len: f64,
    /// Starting scale factor.
    pub a_init: f64,
    /// Positions, Mpc/h, wrapped into `[0, box_len)`.
    pub x: Vec<f32>,
    /// Position y.
    pub y: Vec<f32>,
    /// Position z.
    pub z: Vec<f32>,
    /// Momenta `p = a²ẋ` in (Mpc/h)·H0.
    pub vx: Vec<f32>,
    /// Momentum y.
    pub vy: Vec<f32>,
    /// Momentum z.
    pub vz: Vec<f32>,
    /// Linear density contrast at `a_init` (diagnostics/tests).
    pub delta: Vec<f64>,
    /// rms Zel'dovich displacement at `a_init`, Mpc/h.
    pub rms_displacement: f64,
}

impl IcsRealization {
    /// Number of particles.
    #[must_use] 
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when empty (never, for valid construction).
    #[must_use] 
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// Generate a Zel'dovich realization with one particle per grid cell.
///
/// `n` is both the IC grid and particle count per side (`n³` particles).
/// Deterministic in `seed`.
#[must_use] 
pub fn zeldovich(
    n: usize,
    box_len: f64,
    power: &LinearPower,
    a_init: f64,
    seed: u64,
) -> IcsRealization {
    assert!(n >= 2 && box_len > 0.0 && a_init > 0.0 && a_init <= 1.0);
    let fft = Fft3::new_cubic(n);
    let volume = box_len * box_len * box_len;
    let n3 = n * n * n;

    // 1. White noise field, unit variance, deterministic.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut field: Vec<Complex64> = (0..n3)
        .map(|_| Complex64::new(gaussian(&mut rng), 0.0))
        .collect();
    fft.forward(&mut field);

    // 2. Scale to δ₀(k): ⟨|W(k)|²⟩ = n³, want ⟨|δ(k)|²⟩ = n⁶ P(k)/V.
    let delta_k: Vec<Complex64> = {
        let mut d = field;
        for ix in 0..n {
            for iy in 0..n {
                for iz in 0..n {
                    let idx = (ix * n + iy) * n + iz;
                    let k2 = k_sq([ix, iy, iz], n, box_len);
                    let scale = if k2 == 0.0 {
                        0.0
                    } else {
                        (power.p_of_k(k2.sqrt()) * n3 as f64 / volume).sqrt()
                    };
                    d[idx] = d[idx].scale(scale);
                }
            }
        }
        d
    };

    // Diagnostics: δ at a_init in real space.
    let growth = power.growth();
    let d_a = growth.d_of_a(a_init);
    let mut delta_real = delta_k.clone();
    fft.backward(&mut delta_real);
    let delta: Vec<f64> = delta_real.iter().map(|c| c.re * d_a).collect();

    // 3. Displacement components ψ₀_c(k) = i k_c/k² δ₀(k).
    let mut psi = [Vec::new(), Vec::new(), Vec::new()];
    for (c, slot) in psi.iter_mut().enumerate() {
        let mut comp = delta_k.clone();
        for ix in 0..n {
            for iy in 0..n {
                for iz in 0..n {
                    let idx = (ix * n + iy) * n + iz;
                    let kvec = [
                        k_of_index(ix, n, box_len),
                        k_of_index(iy, n, box_len),
                        k_of_index(iz, n, box_len),
                    ];
                    let k2 = kvec[0] * kvec[0] + kvec[1] * kvec[1] + kvec[2] * kvec[2];
                    comp[idx] = if k2 == 0.0 {
                        Complex64::ZERO
                    } else {
                        // i·k_c/k² δ.
                        Complex64::new(0.0, kvec[c] / k2) * comp[idx]
                    };
                }
            }
        }
        fft.backward(&mut comp);
        *slot = comp.iter().map(|v| v.re).collect::<Vec<f64>>();
    }

    // 4. Displace particles from the uniform grid.
    let d_dot = growth.d_dot(a_init);
    let p_factor = a_init * a_init * d_dot;
    let cell = box_len / n as f64;
    let mut out = IcsRealization {
        n,
        box_len,
        a_init,
        x: Vec::with_capacity(n3),
        y: Vec::with_capacity(n3),
        z: Vec::with_capacity(n3),
        vx: Vec::with_capacity(n3),
        vy: Vec::with_capacity(n3),
        vz: Vec::with_capacity(n3),
        delta,
        rms_displacement: 0.0,
    };
    let mut disp2 = 0.0f64;
    let wrap = |v: f64| -> f64 {
        let w = v - (v / box_len).floor() * box_len;
        if w >= box_len {
            0.0
        } else {
            w
        }
    };
    for ix in 0..n {
        for iy in 0..n {
            for iz in 0..n {
                let idx = (ix * n + iy) * n + iz;
                let q = [
                    (ix as f64 + 0.5) * cell,
                    (iy as f64 + 0.5) * cell,
                    (iz as f64 + 0.5) * cell,
                ];
                let d = [psi[0][idx] * d_a, psi[1][idx] * d_a, psi[2][idx] * d_a];
                disp2 += d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                out.x.push(wrap(q[0] + d[0]) as f32);
                out.y.push(wrap(q[1] + d[1]) as f32);
                out.z.push(wrap(q[2] + d[2]) as f32);
                out.vx.push((psi[0][idx] * p_factor) as f32);
                out.vy.push((psi[1][idx] * p_factor) as f32);
                out.vz.push((psi[2][idx] * p_factor) as f32);
            }
        }
    }
    out.rms_displacement = (disp2 / n3 as f64).sqrt();
    out
}

/// Generate a second-order Lagrangian perturbation theory (2LPT)
/// realization.
///
/// Zel'dovich (1LPT) starts develop transients that decay only as `1/a`;
/// production codes therefore add the second-order displacement
///
/// ```text
/// ∇²φ⁽²⁾ = Σ_{i<j} [ φ,ii φ,jj − (φ,ij)² ],   x = q + D ψ⁽¹⁾ + D₂ ψ⁽²⁾
/// ```
///
/// with `D₂ ≈ -3/7 · D² · Ωm(a)^(-1/143)` and momenta carrying the
/// corresponding `f₂ ≈ 2 Ωm^(6/11)` growth rate. All second derivatives
/// of the first-order potential are computed spectrally.
#[must_use] 
pub fn zeldovich_2lpt(
    n: usize,
    box_len: f64,
    power: &LinearPower,
    a_init: f64,
    seed: u64,
) -> IcsRealization {
    assert!(n >= 2 && box_len > 0.0 && a_init > 0.0 && a_init <= 1.0);
    let fft = Fft3::new_cubic(n);
    let volume = box_len * box_len * box_len;
    let n3 = n * n * n;

    // First-order δ₀(k), identical pipeline (and seed convention) to
    // `zeldovich` so the two can be compared mode by mode.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut field: Vec<Complex64> = (0..n3)
        .map(|_| Complex64::new(gaussian(&mut rng), 0.0))
        .collect();
    fft.forward(&mut field);
    let mut delta_k = field;
    for ix in 0..n {
        for iy in 0..n {
            for iz in 0..n {
                let idx = (ix * n + iy) * n + iz;
                let k2 = k_sq([ix, iy, iz], n, box_len);
                let scale = if k2 == 0.0 {
                    0.0
                } else {
                    (power.p_of_k(k2.sqrt()) * n3 as f64 / volume).sqrt()
                };
                delta_k[idx] = delta_k[idx].scale(scale);
            }
        }
    }

    let kvec = |i: usize| k_of_index(i, n, box_len);

    // Second derivatives φ,ij of the first-order potential
    // (φ(k) = -δ(k)/k²  ⇒  φ,ij(k) = k_i k_j δ(k)/k²).
    let second = |ci: usize, cj: usize| -> Vec<f64> {
        let mut comp = delta_k.clone();
        for ix in 0..n {
            for iy in 0..n {
                for iz in 0..n {
                    let idx = (ix * n + iy) * n + iz;
                    let kv = [kvec(ix), kvec(iy), kvec(iz)];
                    let k2 = kv[0] * kv[0] + kv[1] * kv[1] + kv[2] * kv[2];
                    comp[idx] = if k2 == 0.0 {
                        Complex64::ZERO
                    } else {
                        comp[idx].scale(kv[ci] * kv[cj] / k2)
                    };
                }
            }
        }
        fft.backward(&mut comp);
        comp.iter().map(|v| v.re).collect()
    };
    let pxx = second(0, 0);
    let pyy = second(1, 1);
    let pzz = second(2, 2);
    let pxy = second(0, 1);
    let pxz = second(0, 2);
    let pyz = second(1, 2);

    // Source of the second-order potential.
    let mut src2: Vec<Complex64> = (0..n3)
        .map(|i| {
            let s = pxx[i] * pyy[i] + pxx[i] * pzz[i] + pyy[i] * pzz[i]
                - pxy[i] * pxy[i]
                - pxz[i] * pxz[i]
                - pyz[i] * pyz[i];
            Complex64::new(s, 0.0)
        })
        .collect();
    fft.forward(&mut src2);

    // ψ⁽²⁾(k) = i k/k² · δ⁽²⁾(k) where δ⁽²⁾ = src2 (already the RHS of
    // the Poisson-like equation for φ⁽²⁾ whose gradient is ψ⁽²⁾).
    let displacement = |dk: &[Complex64], c: usize| -> Vec<f64> {
        let mut comp = dk.to_vec();
        for ix in 0..n {
            for iy in 0..n {
                for iz in 0..n {
                    let idx = (ix * n + iy) * n + iz;
                    let kv = [kvec(ix), kvec(iy), kvec(iz)];
                    let k2 = kv[0] * kv[0] + kv[1] * kv[1] + kv[2] * kv[2];
                    comp[idx] = if k2 == 0.0 {
                        Complex64::ZERO
                    } else {
                        Complex64::new(0.0, kv[c] / k2) * comp[idx]
                    };
                }
            }
        }
        fft.backward(&mut comp);
        comp.iter().map(|v| v.re).collect()
    };
    let psi1: [Vec<f64>; 3] = [
        displacement(&delta_k, 0),
        displacement(&delta_k, 1),
        displacement(&delta_k, 2),
    ];
    let psi2: [Vec<f64>; 3] = [
        displacement(&src2, 0),
        displacement(&src2, 1),
        displacement(&src2, 2),
    ];

    // Growth factors: D, Ḋ from the table; the standard 2LPT fits for D₂.
    let growth = power.growth();
    let cosmo = power.cosmology();
    let d = growth.d_of_a(a_init);
    let om_a = cosmo.omega_m_of_a(a_init);
    let d2 = -3.0 / 7.0 * d * d * om_a.powf(-1.0 / 143.0);
    let e = cosmo.e_of_a(a_init);
    let f1 = growth.f_of_a(a_init);
    let f2 = 2.0 * om_a.powf(6.0 / 11.0);
    let p1_factor = a_init * a_init * d * f1 * e;
    let p2_factor = a_init * a_init * d2 * f2 * e;

    let cell = box_len / n as f64;
    let mut out = IcsRealization {
        n,
        box_len,
        a_init,
        x: Vec::with_capacity(n3),
        y: Vec::with_capacity(n3),
        z: Vec::with_capacity(n3),
        vx: Vec::with_capacity(n3),
        vy: Vec::with_capacity(n3),
        vz: Vec::with_capacity(n3),
        delta: {
            let mut dr = delta_k.clone();
            fft.backward(&mut dr);
            dr.iter().map(|c| c.re * d).collect()
        },
        rms_displacement: 0.0,
    };
    let wrap = |v: f64| -> f64 {
        let w = v - (v / box_len).floor() * box_len;
        if w >= box_len {
            0.0
        } else {
            w
        }
    };
    let mut disp2 = 0.0;
    for ix in 0..n {
        for iy in 0..n {
            for iz in 0..n {
                let idx = (ix * n + iy) * n + iz;
                let q = [
                    (ix as f64 + 0.5) * cell,
                    (iy as f64 + 0.5) * cell,
                    (iz as f64 + 0.5) * cell,
                ];
                let mut pos = [0.0; 3];
                let mut mom = [0.0; 3];
                for c in 0..3 {
                    let dsp = d * psi1[c][idx] + d2 * psi2[c][idx];
                    disp2 += dsp * dsp;
                    pos[c] = wrap(q[c] + dsp);
                    mom[c] = p1_factor * psi1[c][idx] + p2_factor * psi2[c][idx];
                }
                out.x.push(pos[0] as f32);
                out.y.push(pos[1] as f32);
                out.z.push(pos[2] as f32);
                out.vx.push(mom[0] as f32);
                out.vy.push(mom[1] as f32);
                out.vz.push(mom[2] as f32);
            }
        }
    }
    out.rms_displacement = (disp2 / n3 as f64).sqrt();
    out
}

/// Regular (undisplaced) grid load — useful for force tests and as a
/// "cold" start.
#[must_use] 
pub fn uniform_grid(n: usize, box_len: f64) -> IcsRealization {
    let cell = box_len / n as f64;
    let n3 = n * n * n;
    let mut out = IcsRealization {
        n,
        box_len,
        a_init: 1.0,
        x: Vec::with_capacity(n3),
        y: Vec::with_capacity(n3),
        z: Vec::with_capacity(n3),
        vx: vec![0.0; n3],
        vy: vec![0.0; n3],
        vz: vec![0.0; n3],
        delta: vec![0.0; n3],
        rms_displacement: 0.0,
    };
    for ix in 0..n {
        for iy in 0..n {
            for iz in 0..n {
                out.x.push(((ix as f64 + 0.5) * cell) as f32);
                out.y.push(((iy as f64 + 0.5) * cell) as f32);
                out.z.push(((iz as f64 + 0.5) * cell) as f32);
            }
        }
    }
    out
}

fn k_sq(idx: [usize; 3], n: usize, l: f64) -> f64 {
    let kx = k_of_index(idx[0], n, l);
    let ky = k_of_index(idx[1], n, l);
    let kz = k_of_index(idx[2], n, l);
    kx * kx + ky * ky + kz * kz
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hacc_cosmo::{Cosmology, Transfer};

    fn power() -> LinearPower {
        LinearPower::new(&Cosmology::lcdm(), Transfer::EisensteinHuNoWiggle)
    }

    #[test]
    fn deterministic_in_seed() {
        let p = power();
        let a = zeldovich(8, 100.0, &p, 0.05, 42);
        let b = zeldovich(8, 100.0, &p, 0.05, 42);
        assert_eq!(a.x, b.x);
        assert_eq!(a.vz, b.vz);
        let c = zeldovich(8, 100.0, &p, 0.05, 43);
        assert_ne!(a.x, c.x);
    }

    #[test]
    fn particle_count_and_bounds() {
        let p = power();
        let ics = zeldovich(16, 200.0, &p, 0.04, 1);
        assert_eq!(ics.len(), 16 * 16 * 16);
        for &v in ics.x.iter().chain(&ics.y).chain(&ics.z) {
            assert!((0.0..200.0).contains(&f64::from(v)), "position {v}");
        }
    }

    #[test]
    fn delta_field_has_linear_amplitude() {
        // The rms of δ at a_init should be near D(a)·σ(grid smoothing) —
        // just check it is small, positive, and grows with a.
        let p = power();
        let early = zeldovich(16, 400.0, &p, 0.02, 9);
        let later = zeldovich(16, 400.0, &p, 0.2, 9);
        let rms = |d: &[f64]| (d.iter().map(|v| v * v).sum::<f64>() / d.len() as f64).sqrt();
        let r_early = rms(&early.delta);
        let r_late = rms(&later.delta);
        assert!(r_early > 0.0 && r_early < 0.3, "rms {r_early}");
        let growth_ratio = p.growth().d_of_a(0.2) / p.growth().d_of_a(0.02);
        assert!(
            (r_late / r_early - growth_ratio).abs() < 0.01 * growth_ratio,
            "{} vs {growth_ratio}",
            r_late / r_early
        );
    }

    #[test]
    fn delta_field_has_zero_mean() {
        let p = power();
        let ics = zeldovich(16, 300.0, &p, 0.05, 3);
        let mean: f64 = ics.delta.iter().sum::<f64>() / ics.delta.len() as f64;
        assert!(mean.abs() < 1e-10, "mean {mean}");
    }

    #[test]
    fn displacements_small_at_high_z() {
        // At z = 25 (a ≈ 0.038), rms displacement ≪ mean inter-particle
        // spacing for a production-like configuration.
        let p = power();
        let ics = zeldovich(16, 128.0, &p, 1.0 / 26.0, 5);
        let spacing = 128.0 / 16.0;
        assert!(
            ics.rms_displacement < 0.5 * spacing,
            "rms displacement {} vs spacing {spacing}",
            ics.rms_displacement
        );
        assert!(ics.rms_displacement > 0.0);
    }

    #[test]
    fn momenta_scale_with_p_factor() {
        // Same seed, different epoch: momentum ratio = (a²Ḋ) ratio.
        let p = power();
        let a1 = zeldovich(8, 100.0, &p, 0.05, 77);
        let a2 = zeldovich(8, 100.0, &p, 0.1, 77);
        let g = p.growth();
        let f1 = 0.05f64.powi(2) * g.d_dot(0.05);
        let f2 = 0.1f64.powi(2) * g.d_dot(0.1);
        let want = (f2 / f1) as f32;
        for i in (0..a1.len()).step_by(97) {
            if a1.vx[i].abs() > 1e-6 {
                let r = a2.vx[i] / a1.vx[i];
                assert!((r - want).abs() < 0.02 * want.abs(), "{r} vs {want}");
            }
        }
    }

    #[test]
    fn continuity_relation_velocity_displacement() {
        // Zel'dovich: momentum ∝ displacement per particle
        // (p = a²Ḋψ, Δx = Dψ): check proportionality constant.
        let p = power();
        let a = 0.08;
        let ics = zeldovich(8, 100.0, &p, a, 11);
        let grid = uniform_grid(8, 100.0);
        let g = p.growth();
        let c = (a * a * g.d_dot(a) / g.d_of_a(a)) as f32;
        for i in 0..ics.len() {
            let mut dx = ics.x[i] - grid.x[i];
            // Undo periodic wrapping.
            if dx > 50.0 {
                dx -= 100.0;
            }
            if dx < -50.0 {
                dx += 100.0;
            }
            let want = c * dx;
            assert!(
                (ics.vx[i] - want).abs() < 5e-3 * want.abs().max(0.05),
                "i={i}: {} vs {want}",
                ics.vx[i]
            );
        }
    }

    #[test]
    fn two_lpt_close_to_zeldovich_at_high_z() {
        // The 2LPT correction scales as D² — tiny at early times.
        let p = power();
        let a = 0.02;
        let z1 = zeldovich(12, 150.0, &p, a, 8);
        let z2 = zeldovich_2lpt(12, 150.0, &p, a, 8);
        let mut max_d = 0.0f32;
        let l = 150.0f32;
        for i in 0..z1.len() {
            let mut d = (z1.x[i] - z2.x[i]).abs();
            d = d.min(l - d);
            max_d = max_d.max(d);
        }
        // Displacements at a=0.02 are ~0.1 Mpc/h; the 2nd-order piece is
        // suppressed by another factor D·(3/7) ≈ 0.01.
        assert!(max_d < 0.05, "max 1LPT vs 2LPT diff {max_d}");
        assert!(max_d > 0.0, "2LPT identical to 1LPT — correction missing");
    }

    #[test]
    fn two_lpt_correction_grows_with_d_squared() {
        let p = power();
        let seed = 4;
        let diff_at = |a: f64| -> f64 {
            let z1 = zeldovich(12, 150.0, &p, a, seed);
            let z2 = zeldovich_2lpt(12, 150.0, &p, a, seed);
            let l = 150.0f32;
            (0..z1.len())
                .map(|i| {
                    let mut d = (z1.x[i] - z2.x[i]).abs();
                    d = d.min(l - d);
                    f64::from(d * d)
                })
                .sum::<f64>()
                .sqrt()
        };
        let d_early = diff_at(0.05);
        let d_late = diff_at(0.2);
        let g = p.growth();
        let want = (g.d_of_a(0.2) / g.d_of_a(0.05)).powi(2);
        let got = d_late / d_early;
        assert!(
            (got / want - 1.0).abs() < 0.15,
            "2LPT correction growth {got}, D² ratio {want}"
        );
    }

    #[test]
    fn two_lpt_deterministic_and_in_box() {
        let p = power();
        let a = zeldovich_2lpt(8, 100.0, &p, 0.1, 5);
        let b = zeldovich_2lpt(8, 100.0, &p, 0.1, 5);
        assert_eq!(a.x, b.x);
        for &v in a.x.iter().chain(&a.y).chain(&a.z) {
            assert!((0.0..100.0).contains(&f64::from(v)));
        }
        assert!(a.vx.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn uniform_grid_is_uniform() {
        let g = uniform_grid(4, 8.0);
        assert_eq!(g.len(), 64);
        assert_eq!(g.x[0], 1.0);
        assert!(g.vx.iter().all(|&v| v == 0.0));
    }
}
