//! Section III timing split: "the code spends 80% of the time in the
//! highly optimized force kernel, 10% in the tree walk, and 5% in the
//! FFT, all other operations (tree build, CIC deposit) adding up to
//! another 5%" at the 16-ranks × 4-threads operating point.
//!
//! We run the full TreePM code on a clustered state and print the same
//! breakdown. Exact percentages depend on particle loading and clustering
//! (our per-cell loading is far below the paper's 2M particles/core), so
//! the check is that the kernel dominates and the spectral solver is a
//! small fraction.

use hacc_bench::{print_table, reference_power};
use hacc_core::{SimConfig, Simulation, SolverKind};
use hacc_cosmo::Cosmology;

fn main() {
    let mut json_path: Option<String> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--json" => {
                json_path = Some(argv.get(i + 1).expect("missing value after --json").clone());
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    println!("Full-code timing breakdown (paper: 80% kernel / 10% walk / 5% FFT / 5% rest)");
    let np = 24usize;
    let box_len = 64.0; // dense loading → long neighbor lists, kernel-bound
    let power = reference_power();
    let cfg = SimConfig {
        cosmology: Cosmology::lcdm(),
        box_len,
        ng: np, // 1 particle per cell · small box ⇒ strong clustering
        a_init: 0.15,
        a_final: 0.5,
        steps: 8,
        subcycles: 4,
        solver: SolverKind::TreePm,
        spectral: hacc_pm::SpectralParams::default(),
        two_level: None,
        tree: hacc_short::TreeParams::default(),
        rcut_cells: 3.0,
        skin_cells: 0.25,
        max_retries: None,
        backoff_base_ms: None,
    };
    let ics = hacc_ics::zeldovich(np, box_len, &power, cfg.a_init, 303);
    let mut sim = Simulation::from_ics(cfg, &ics);
    sim.run(|_, _| {});

    let tot = sim.stats.total();
    let t = tot.total().as_secs_f64();
    let pct = |d: std::time::Duration| format!("{:.1}", 100.0 * d.as_secs_f64() / t);
    let rows = vec![
        vec!["force kernel".into(), pct(tot.kernel), "80".into()],
        vec!["tree walk".into(), pct(tot.walk), "10".into()],
        vec!["FFT / spectral".into(), pct(tot.fft), "5".into()],
        vec!["tree build".into(), pct(tot.build), "~2".into()],
        vec!["CIC".into(), pct(tot.cic), "~3".into()],
        vec!["stream/kick/other".into(), pct(tot.other), "-".into()],
    ];
    print_table(
        &format!("Breakdown over {} steps ({:.2}s total)", sim.stats.steps.len(), t),
        &["phase", "% of time", "paper %"],
        &rows,
    );
    let tsp = sim
        .stats
        .time_per_substep_per_particle(sim.len(), sim.config().subcycles);
    println!(
        "\ninteractions: {:.3e} directed ({:.3e} kernel evals, N3 symmetry {:.2}×), \
         kernel flops: {:.3e}, time/substep/particle: {:.2e} s",
        tot.interactions as f64,
        tot.pair_interactions as f64,
        tot.symmetry_factor(),
        tot.flops(),
        tsp
    );
    // Communication accounting: the same workload across a 2-rank
    // in-process machine, with payload volume split by tag class so
    // the FFT's alltoallv share is a measured number.
    let dist_ics = hacc_ics::zeldovich(np, box_len, &power, cfg.a_init, 303);
    let (_, traffic) = hacc_comm::Machine::new(2).run(move |comm| {
        let mut sim = hacc_core::DistSimulation::new(&comm, cfg, &dist_ics);
        sim.step(0.2);
    });
    let by = traffic.by_class;
    println!(
        "\ncomm volume by tag class (2 ranks, 1 step): \
         p2p {} B / {} msgs, a2a {} B / {} msgs, control {} B / {} msgs",
        by.p2p.bytes, by.p2p.msgs, by.a2a.bytes, by.a2a.msgs, by.control.bytes, by.control.msgs
    );
    if let Some(path) = &json_path {
        let p = |d: std::time::Duration| 100.0 * d.as_secs_f64() / t;
        let json = format!(
            "{{\n  \"bench\": \"timing_breakdown\",\n  \"steps\": {},\n  \
             \"total_s\": {t:.3},\n  \"kernel_pct\": {:.2},\n  \"walk_pct\": {:.2},\n  \
             \"fft_pct\": {:.2},\n  \"build_pct\": {:.2},\n  \"cic_pct\": {:.2},\n  \
             \"other_pct\": {:.2},\n  \"interactions\": {},\n  \
             \"pair_interactions\": {},\n  \"symmetry_factor\": {:.3},\n  \
             \"time_per_substep_per_particle_s\": {tsp:.6e},\n  \
             \"traffic\": {}\n}}",
            sim.stats.steps.len(),
            p(tot.kernel),
            p(tot.walk),
            p(tot.fft),
            p(tot.build),
            p(tot.cic),
            p(tot.other),
            tot.interactions,
            tot.pair_interactions,
            tot.symmetry_factor(),
            traffic.to_json(),
        );
        if let Some(dir) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(dir).expect("create json dir");
        }
        std::fs::write(path, format!("{json}\n")).expect("write json");
        println!("wrote {path}");
    }
}
