//! Criterion benchmark of one full SKS long-range step (the unit behind
//! all of Tables II/III): TreePM vs P3M vs PM-only on the same state.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hacc_bench::reference_power;
use hacc_core::{SimConfig, Simulation, SolverKind};
use hacc_cosmo::Cosmology;

fn bench_step(c: &mut Criterion) {
    let power = reference_power();
    let np = 16usize;
    let box_len = 64.0;
    let ics = hacc_ics::zeldovich(np, box_len, &power, 0.3, 1);
    let mut group = c.benchmark_group("full_step");
    group.sample_size(10);
    for solver in [SolverKind::PmOnly, SolverKind::TreePm, SolverKind::P3m] {
        let cfg = SimConfig {
            cosmology: Cosmology::lcdm(),
            box_len,
            ng: 2 * np,
            a_init: 0.3,
            a_final: 0.5,
            steps: 4,
            subcycles: 3,
            solver,
            ..SimConfig::small_lcdm()
        };
        group.bench_with_input(
            BenchmarkId::new("solver", format!("{solver:?}")),
            &solver,
            |b, _| {
                b.iter_batched(
                    || Simulation::from_ics(cfg, &ics),
                    |mut sim| {
                        sim.step(0.31);
                        sim
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_step
}
criterion_main!(benches);
