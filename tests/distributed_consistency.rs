//! Cross-crate integration tests for the distributed substrates: the
//! threads-as-ranks machine, distributed FFT/Poisson stack, and the
//! overloaded domain driver must reproduce the serial results.

use hacc::comm::Machine;
use hacc::core::{DistSimulation, SimConfig, Simulation, SolverKind};
use hacc::cosmo::{Cosmology, LinearPower, Transfer};
use hacc::fft::{Complex64, DistFft3, Fft3, PencilFft, SlabFft};

fn rand_field(len: usize, seed: u64) -> Vec<f64> {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s as f64 / u64::MAX as f64) - 0.5
    };
    (0..len).map(|_| next()).collect()
}

/// Slab and pencil FFTs agree with the serial transform on the same data
/// — the core guarantee behind Fig. 6 / Table I.
#[test]
fn distributed_ffts_match_serial() {
    let n = 12;
    let field = rand_field(n * n * n, 77);
    let mut want: Vec<Complex64> = field.iter().map(|&v| Complex64::new(v, 0.0)).collect();
    Fft3::new_cubic(n).forward(&mut want);

    for (ranks, pencil) in [(3usize, false), (4, true), (6, true)] {
        let f = field.clone();
        let (res, _) = Machine::new(ranks).run(move |comm| {
            let check = |fft: &dyn DistFft3| -> (hacc::fft::Layout3, Vec<Complex64>) {
                let rl = fft.real_layout();
                let mut local = vec![Complex64::ZERO; rl.len()];
                for (i, v) in local.iter_mut().enumerate() {
                    let g = rl.global_coords(i);
                    *v = Complex64::new(f[(g[0] * n + g[1]) * n + g[2]], 0.0);
                }
                (fft.k_layout(), fft.forward(local))
            };
            if pencil {
                check(&PencilFft::new(&comm, n))
            } else {
                check(&SlabFft::new(&comm, n))
            }
        });
        for (kl, data) in &res {
            for (i, v) in data.iter().enumerate() {
                let g = kl.global_coords(i);
                let w = want[(g[0] * n + g[1]) * n + g[2]];
                assert!(
                    (*v - w).abs() < 1e-8,
                    "ranks={ranks} pencil={pencil} {g:?}"
                );
            }
        }
    }
}

/// The distributed overloaded driver reproduces the serial driver's
/// trajectory (the Table II/III workhorse).
#[test]
fn distributed_driver_tracks_serial() {
    let power = LinearPower::new(&Cosmology::lcdm(), Transfer::EisensteinHuNoWiggle);
    let np = 16usize;
    let cfg = SimConfig {
        cosmology: Cosmology::lcdm(),
        box_len: 64.0,
        ng: 32,
        a_init: 0.25,
        a_final: 0.3,
        steps: 2,
        subcycles: 2,
        solver: SolverKind::TreePm,
        ..SimConfig::small_lcdm()
    };
    let ics = hacc::ics::zeldovich(np, 64.0, &power, cfg.a_init, 2024);

    let mut serial = Simulation::from_ics(cfg, &ics);
    serial.run(|_, _| {});
    let (sx, sy, sz) = serial.positions();

    let ics2 = ics.clone();
    let (res, stats) = Machine::new(4).run(move |comm| {
        let mut sim = DistSimulation::new(&comm, cfg, &ics2);
        for &a in &cfg.step_edges()[1..] {
            sim.step(a);
        }
        sim.gather_positions()
    });
    // Real communication happened.
    assert!(stats.total_bytes() > 0);
    let gathered = res[0].as_ref().expect("rank 0");
    assert_eq!(gathered.len(), ics.len());
    let l = 64.0f32;
    for &(id, p) in gathered {
        let i = id as usize;
        for (got, want) in [(p[0], sx[i]), (p[1], sy[i]), (p[2], sz[i])] {
            let mut d = (got - want).abs();
            d = d.min(l - d);
            assert!(d < 0.05, "id {id}: {got} vs {want}");
        }
    }
}

/// Overload bookkeeping invariants across repeated refreshes during a run.
#[test]
fn distributed_particle_conservation() {
    let power = LinearPower::new(&Cosmology::lcdm(), Transfer::EisensteinHuNoWiggle);
    let cfg = SimConfig {
        cosmology: Cosmology::lcdm(),
        box_len: 64.0,
        ng: 32,
        a_init: 0.3,
        a_final: 0.36,
        steps: 3,
        subcycles: 2,
        solver: SolverKind::PmOnly,
        ..SimConfig::small_lcdm()
    };
    let ics = hacc::ics::zeldovich(16, 64.0, &power, cfg.a_init, 5);
    let total = ics.len();
    let (res, _) = Machine::new(2).run(move |comm| {
        let mut sim = DistSimulation::new(&comm, cfg, &ics);
        let mut counts = Vec::new();
        for &a in &cfg.step_edges()[1..] {
            sim.step(a);
            counts.push(sim.global_count());
        }
        counts
    });
    for counts in res {
        for c in counts {
            assert_eq!(c, total);
        }
    }
}
