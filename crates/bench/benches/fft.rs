//! Criterion benchmarks of the FFT stack: 1-D plans (radix mix vs
//! Bluestein), serial 3-D transforms, and one Poisson-solve composition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hacc_fft::{Complex64, Fft1d, Fft3};
use hacc_pm::{PmSolver, SpectralParams};

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| Complex64::new(((i * 37) % 101) as f64 / 50.0 - 1.0, 0.0))
        .collect()
}

fn bench_fft1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft1d");
    // Power of two, mixed radix, and prime (Bluestein) sizes.
    for &n in &[256usize, 240, 251, 1024, 1000] {
        let plan = Fft1d::new(n);
        let data = signal(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            let mut scratch = plan.make_scratch();
            b.iter_batched(
                || data.clone(),
                |mut d| {
                    plan.forward(&mut d, &mut scratch);
                    d
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_fft3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft3");
    for &n in &[32usize, 48] {
        let plan = Fft3::new_cubic(n);
        let data = signal(n * n * n);
        group.throughput(Throughput::Elements((n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter_batched(
                || data.clone(),
                |mut d| {
                    plan.forward(&mut d);
                    d
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_poisson(c: &mut Criterion) {
    let mut group = c.benchmark_group("poisson_solve");
    group.sample_size(10);
    for &n in &[32usize, 48] {
        let solver = PmSolver::new(n, n as f64, SpectralParams::default());
        let src: Vec<f64> = (0..n * n * n)
            .map(|i| ((i * 13) % 29) as f64 / 14.5 - 1.0)
            .collect();
        group.bench_with_input(BenchmarkId::new("forces", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(solver.solve_forces(&src)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fft1d, bench_fft3, bench_poisson
}
criterion_main!(benches);
