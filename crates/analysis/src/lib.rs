//! Analysis tools for simulation outputs: the quantities Section V of the
//! paper extracts from its science test run.
//!
//! * [`power`] — matter fluctuation power spectrum `P(k)` (Fig. 10);
//! * [`fof`] — friends-of-friends halo finder with hierarchical subhalo
//!   splitting (Fig. 11, cluster statistics);
//! * [`slices`] — density slices / projections and zoom statistics
//!   (Figs. 2 and 9);
//! * [`massfn`] — binned halo mass functions to compare against the
//!   Press–Schechter / Sheth–Tormen comparators in `hacc-cosmo`.

pub mod correlation;
pub mod fof;
pub mod massfn;
pub mod power;
pub mod profile;
pub mod slices;

pub use correlation::CorrelationFunction;
pub use fof::{FofFinder, Halo};
pub use massfn::MassFunctionEstimate;
pub use power::PowerSpectrum;
pub use profile::HaloProfile;
pub use slices::{density_contrast_stats, zoom_series, DensitySlice};
