//! Density slices, projections, and zoom statistics.
//!
//! Produces the data behind Figs. 2 and 9: 2-D projected density maps of
//! slabs of the simulation volume, nested zoom views, and summary
//! statistics of the density contrast (whose growth by ~five orders of
//! magnitude over the run is quoted in Section V).

use hacc_pm::deposit_cic_par;

/// A 2-D projected density map.
#[derive(Debug, Clone)]
pub struct DensitySlice {
    /// Pixels per side.
    pub res: usize,
    /// Projected mass per pixel, row-major `[x][y]`.
    pub pixels: Vec<f64>,
    /// Region covered: `(x0, y0, extent)` in box units.
    pub window: (f64, f64, f64),
}

impl DensitySlice {
    /// Project particles with `z ∈ [z0, z1)` onto an `res × res` map of
    /// the sub-window `(x0, y0) .. (x0+extent, y0+extent)` (periodic).
    #[allow(clippy::too_many_arguments)]
    #[must_use] 
    pub fn project(
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        box_len: f64,
        z_range: (f64, f64),
        window: (f64, f64, f64),
        res: usize,
    ) -> Self {
        assert!(res >= 1);
        let (x0, y0, ext) = window;
        let mut pixels = vec![0.0f64; res * res];
        let scale = res as f64 / ext;
        for i in 0..xs.len() {
            let z = f64::from(zs[i]);
            if z < z_range.0 || z >= z_range.1 {
                continue;
            }
            // Position relative to the window, periodic-aware.
            let rel = |v: f32, o: f64| -> f64 {
                let mut d = f64::from(v) - o;
                d -= (d / box_len).floor() * box_len;
                d
            };
            let dx = rel(xs[i], x0);
            let dy = rel(ys[i], y0);
            if dx >= ext || dy >= ext {
                continue;
            }
            let px = ((dx * scale) as usize).min(res - 1);
            let py = ((dy * scale) as usize).min(res - 1);
            pixels[px * res + py] += 1.0;
        }
        DensitySlice {
            res,
            pixels,
            window,
        }
    }

    /// Maximum pixel value.
    pub fn max(&self) -> f64 {
        self.pixels.iter().copied().fold(0.0, f64::max)
    }

    /// Mean pixel value.
    #[must_use] 
    pub fn mean(&self) -> f64 {
        self.pixels.iter().sum::<f64>() / self.pixels.len() as f64
    }

    /// Maximum density contrast `max/mean` (∞-safe: 0 when empty).
    #[must_use] 
    pub fn max_contrast(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.max() / m
        }
    }

    /// Write as a plain-text PGM image (log-scaled) for quick inspection.
    pub fn write_pgm(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write;
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(f, "P2\n{} {}\n255", self.res, self.res)?;
        let max = self.max().max(1.0);
        for px in 0..self.res {
            for py in 0..self.res {
                let v = self.pixels[px * self.res + py];
                let g = ((1.0 + v).ln() / (1.0 + max).ln() * 255.0) as u32;
                write!(f, "{g} ")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }

    /// Write a binary PPM with a dark-violet → orange → white colormap
    /// (log-scaled density), approximating the paper's Fig. 2/9 renders.
    pub fn write_ppm(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write;
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(f, "P6\n{} {}\n255", self.res, self.res)?;
        let max = self.max().max(1.0);
        let mut buf = Vec::with_capacity(self.res * self.res * 3);
        for px in 0..self.res {
            for py in 0..self.res {
                let v = self.pixels[px * self.res + py];
                let t = (1.0 + v).ln() / (1.0 + max).ln();
                let [r, g, b] = colormap(t);
                buf.extend_from_slice(&[r, g, b]);
            }
        }
        f.write_all(&buf)
    }
}

/// Piecewise-linear density colormap: black → violet → orange → white.
fn colormap(t: f64) -> [u8; 3] {
    let t = t.clamp(0.0, 1.0);
    // Control points (t, r, g, b).
    const STOPS: [(f64, f64, f64, f64); 4] = [
        (0.0, 0.02, 0.0, 0.08),
        (0.4, 0.35, 0.05, 0.55),
        (0.75, 0.95, 0.55, 0.15),
        (1.0, 1.0, 1.0, 0.95),
    ];
    let mut lo = STOPS[0];
    let mut hi = STOPS[STOPS.len() - 1];
    for w in STOPS.windows(2) {
        if t >= w[0].0 && t <= w[1].0 {
            lo = w[0];
            hi = w[1];
            break;
        }
    }
    let f = if hi.0 > lo.0 { (t - lo.0) / (hi.0 - lo.0) } else { 0.0 };
    let lerp = |a: f64, b: f64| ((a + f * (b - a)) * 255.0) as u8;
    [lerp(lo.1, hi.1), lerp(lo.2, hi.2), lerp(lo.3, hi.3)]
}

/// 3-D density-contrast statistics on a grid: returns
/// `(max δ, rms δ, fraction of empty cells)`.
#[must_use] 
pub fn density_contrast_stats(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    box_len: f64,
    mesh: usize,
) -> (f64, f64, f64) {
    let to_grid = mesh as f64 / box_len;
    let gx: Vec<f32> = xs.iter().map(|&v| (f64::from(v) * to_grid) as f32).collect();
    let gy: Vec<f32> = ys.iter().map(|&v| (f64::from(v) * to_grid) as f32).collect();
    let gz: Vec<f32> = zs.iter().map(|&v| (f64::from(v) * to_grid) as f32).collect();
    let mut grid = vec![0.0f64; mesh * mesh * mesh];
    deposit_cic_par(&mut grid, mesh, &gx, &gy, &gz, 1.0);
    let mean = xs.len() as f64 / grid.len() as f64;
    let mut max_delta: f64 = 0.0;
    let mut sum2 = 0.0;
    let mut empty = 0usize;
    for &v in &grid {
        let d = v / mean - 1.0;
        max_delta = max_delta.max(d);
        sum2 += d * d;
        if v == 0.0 {
            empty += 1;
        }
    }
    (
        max_delta,
        (sum2 / grid.len() as f64).sqrt(),
        empty as f64 / grid.len() as f64,
    )
}

/// Nested zoom levels: density contrast of progressively smaller windows
/// centered on the densest region (the Fig. 2 "zoom-in" series).
#[must_use] 
pub fn zoom_series(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    box_len: f64,
    levels: usize,
    res: usize,
) -> Vec<(f64, f64)> {
    // Find the densest pixel of the full-box projection.
    let full = DensitySlice::project(
        xs,
        ys,
        zs,
        box_len,
        (0.0, box_len),
        (0.0, 0.0, box_len),
        res,
    );
    let imax = full
        .pixels
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let cx = (imax / res) as f64 / res as f64 * box_len;
    let cy = (imax % res) as f64 / res as f64 * box_len;
    let mut out = Vec::new();
    let mut ext = box_len;
    for _ in 0..levels {
        let slice = DensitySlice::project(
            xs,
            ys,
            zs,
            box_len,
            (0.0, box_len),
            (cx - ext / 2.0, cy - ext / 2.0, ext),
            res,
        );
        out.push((ext, slice.max_contrast()));
        ext /= 4.0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_counts_all_in_range() {
        let xs = vec![1.0f32, 5.0, 9.0];
        let ys = vec![1.0f32, 5.0, 9.0];
        let zs = vec![2.0f32, 5.0, 9.5];
        let s = DensitySlice::project(
            &xs,
            &ys,
            &zs,
            10.0,
            (0.0, 6.0),
            (0.0, 0.0, 10.0),
            4,
        );
        let total: f64 = s.pixels.iter().sum();
        assert_eq!(total, 2.0, "only z<6 particles counted");
    }

    #[test]
    fn window_respects_periodicity() {
        // Window starting near the box edge must wrap.
        let xs = vec![0.5f32];
        let ys = vec![0.5f32];
        let zs = vec![5.0f32];
        let s = DensitySlice::project(
            &xs,
            &ys,
            &zs,
            10.0,
            (0.0, 10.0),
            (9.0, 9.0, 2.0),
            2,
        );
        let total: f64 = s.pixels.iter().sum();
        assert_eq!(total, 1.0, "wrapped particle missed");
    }

    #[test]
    fn contrast_of_clustered_vs_uniform() {
        // Uniform lattice: contrast ~1. One clump: much larger.
        let mut ux = Vec::new();
        let mut uy = Vec::new();
        let mut uz = Vec::new();
        for i in 0..16 {
            for j in 0..16 {
                for k in 0..16 {
                    ux.push(i as f32 * 0.5 + 0.25);
                    uy.push(j as f32 * 0.5 + 0.25);
                    uz.push(k as f32 * 0.5 + 0.25);
                }
            }
        }
        let (dmax_u, _, _) = density_contrast_stats(&ux, &uy, &uz, 8.0, 8);
        assert!(dmax_u.abs() < 0.01, "uniform contrast {dmax_u}");
        let cx = vec![4.0f32; 4096];
        let (dmax_c, _, empty) = density_contrast_stats(&cx, &cx, &cx, 8.0, 8);
        assert!(dmax_c > 100.0, "clustered contrast {dmax_c}");
        assert!(empty > 0.9);
    }

    #[test]
    fn zoom_series_contrast_grows() {
        // A point clump: zooming in raises max/mean contrast until the
        // window contains mostly clump.
        let mut xs = vec![];
        let mut ys = vec![];
        let mut zs = vec![];
        // Background lattice.
        for i in 0..10 {
            for j in 0..10 {
                xs.push(i as f32 + 0.5);
                ys.push(j as f32 + 0.5);
                zs.push(5.0);
            }
        }
        // Tight clump.
        for _ in 0..500 {
            xs.push(3.3);
            ys.push(7.7);
            zs.push(5.0);
        }
        let series = zoom_series(&xs, &ys, &zs, 10.0, 3, 32);
        assert_eq!(series.len(), 3);
        assert!(series[0].0 > series[2].0);
        assert!(series[0].1 > 1.0);
    }

    #[test]
    fn pgm_output_wellformed() {
        let s = DensitySlice::project(
            &[1.0],
            &[1.0],
            &[1.0],
            4.0,
            (0.0, 4.0),
            (0.0, 0.0, 4.0),
            4,
        );
        let dir = std::env::temp_dir().join("hacc_slice_test.pgm");
        s.write_pgm(&dir).expect("write pgm");
        let content = std::fs::read_to_string(&dir).expect("read back");
        assert!(content.starts_with("P2\n4 4\n255"));
        let _ = std::fs::remove_file(&dir);
    }
}
