//! Two-point correlation function ξ(r).
//!
//! The configuration-space partner of the power spectrum: the other
//! "statistical measurement of the matter distribution" Section V lists
//! among the cosmological probes (galaxy correlation functions). For a
//! periodic box the natural estimator needs no random catalog:
//!
//! `ξ(r) = DD(r) / (N·n̄·dV(r)) − 1`,
//!
//! where `DD(r)` counts ordered pairs in the shell of volume `dV(r)` and
//! `n̄ = N/V`. Pair counting uses a chaining mesh, so the cost is
//! `O(N · n̄ · r_max³)`.

use rayon::prelude::*;

/// A binned correlation-function measurement.
#[derive(Debug, Clone)]
pub struct CorrelationFunction {
    /// Bin-center separations.
    pub r: Vec<f64>,
    /// ξ(r) per bin.
    pub xi: Vec<f64>,
    /// Ordered pair counts per bin.
    pub pairs: Vec<u64>,
}

impl CorrelationFunction {
    /// Measure ξ(r) for separations in `(0, r_max]` with `bins` linear
    /// shells, on a periodic box of side `box_len`.
    #[must_use] 
    pub fn measure(
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        box_len: f64,
        r_max: f64,
        bins: usize,
    ) -> Self {
        let np = xs.len();
        assert!(np > 1 && bins >= 1 && r_max > 0.0 && r_max <= box_len / 2.0);
        let nc = ((box_len / r_max).floor() as usize).clamp(1, 128);
        let cell_of = |x: f32, y: f32, z: f32| -> usize {
            let w = |v: f32| -> usize {
                let m = nc as f64;
                let c = ((f64::from(v) / box_len) * m).floor();
                let c = if c < 0.0 { c + m } else { c };
                (c as usize).min(nc - 1)
            };
            (w(x) * nc + w(y)) * nc + w(z)
        };
        let mut bins_idx: Vec<Vec<u32>> = vec![Vec::new(); nc * nc * nc];
        for p in 0..np {
            bins_idx[cell_of(xs[p], ys[p], zs[p])].push(p as u32);
        }
        let half = (box_len / 2.0) as f32;
        let lf = box_len as f32;
        let r_max2 = (r_max * r_max) as f32;
        let dr = r_max / bins as f64;

        // Parallel over cells; count ordered pairs (i ≠ j) to keep the
        // normalization simple.
        let counts: Vec<u64> = (0..bins_idx.len())
            .into_par_iter()
            .map(|cell| {
                let mut local = vec![0u64; bins];
                let targets = &bins_idx[cell];
                if targets.is_empty() {
                    return local;
                }
                let cz = cell % nc;
                let cy = (cell / nc) % nc;
                let cx = cell / (nc * nc);
                let mut seen = Vec::with_capacity(27);
                for dx in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dz in -1i64..=1 {
                            let w = |c: usize, d: i64| -> usize {
                                ((c as i64 + d).rem_euclid(nc as i64)) as usize
                            };
                            let nb = (w(cx, dx) * nc + w(cy, dy)) * nc + w(cz, dz);
                            if seen.contains(&nb) {
                                continue;
                            }
                            seen.push(nb);
                            for &a in targets {
                                for &b in &bins_idx[nb] {
                                    if a == b {
                                        continue;
                                    }
                                    let (a, b) = (a as usize, b as usize);
                                    let mi = |d: f32| -> f32 {
                                        if d > half {
                                            d - lf
                                        } else if d < -half {
                                            d + lf
                                        } else {
                                            d
                                        }
                                    };
                                    let ddx = mi(xs[a] - xs[b]);
                                    let ddy = mi(ys[a] - ys[b]);
                                    let ddz = mi(zs[a] - zs[b]);
                                    let s = ddx * ddx + ddy * ddy + ddz * ddz;
                                    if s < r_max2 && s > 0.0 {
                                        let r = f64::from(s).sqrt();
                                        let bin = ((r / dr) as usize).min(bins - 1);
                                        local[bin] += 1;
                                    }
                                }
                            }
                        }
                    }
                }
                local
            })
            .reduce(
                || vec![0u64; bins],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += y;
                    }
                    a
                },
            );

        let volume = box_len.powi(3);
        let nbar = np as f64 / volume;
        let mut out = CorrelationFunction {
            r: Vec::with_capacity(bins),
            xi: Vec::with_capacity(bins),
            pairs: counts.clone(),
        };
        for (b, &n_pairs) in counts.iter().enumerate() {
            let r0 = b as f64 * dr;
            let r1 = (b + 1) as f64 * dr;
            let shell = 4.0 / 3.0 * std::f64::consts::PI * (r1.powi(3) - r0.powi(3));
            let expected = np as f64 * nbar * shell;
            out.r.push(0.5 * (r0 + r1));
            out.xi.push(n_pairs as f64 / expected - 1.0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson_points(np: usize, l: f32, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) as f32 * l
        };
        let xs: Vec<f32> = (0..np).map(|_| next()).collect();
        let ys: Vec<f32> = (0..np).map(|_| next()).collect();
        let zs: Vec<f32> = (0..np).map(|_| next()).collect();
        (xs, ys, zs)
    }

    #[test]
    fn poisson_points_uncorrelated() {
        let (xs, ys, zs) = poisson_points(8000, 64.0, 3);
        let xi = CorrelationFunction::measure(&xs, &ys, &zs, 64.0, 8.0, 6);
        for (r, x) in xi.r.iter().zip(&xi.xi) {
            assert!(x.abs() < 0.15, "ξ({r}) = {x} for random points");
        }
    }

    #[test]
    fn pair_clumps_correlate_at_their_separation() {
        // Particles in tight pairs separated by ~3: ξ spikes in that bin.
        let mut s = 17u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) as f32
        };
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut zs = Vec::new();
        for _ in 0..1000 {
            let (x, y, z) = (next() * 64.0, next() * 64.0, next() * 64.0);
            xs.push(x);
            ys.push(y);
            zs.push(z);
            xs.push((x + 3.0) % 64.0);
            ys.push(y);
            zs.push(z);
        }
        let xi = CorrelationFunction::measure(&xs, &ys, &zs, 64.0, 5.0, 10);
        // Pairs at exactly r = 3 land in bin [3.0, 3.5) — index 6.
        let spike = xi.xi[6];
        assert!(spike > 1.0, "expected spike at r=3, got ξ = {spike}");
        // Neighboring-but-distant bin much lower.
        assert!(xi.xi[9] < spike / 3.0, "far bin {} vs spike {spike}", xi.xi[9]);
    }

    #[test]
    fn pair_counts_symmetric_total() {
        // Ordered pair counts must be even (each unordered pair twice).
        let (xs, ys, zs) = poisson_points(500, 32.0, 7);
        let xi = CorrelationFunction::measure(&xs, &ys, &zs, 32.0, 5.0, 5);
        let total: u64 = xi.pairs.iter().sum();
        assert_eq!(total % 2, 0);
        assert!(total > 0);
    }

    #[test]
    #[should_panic(expected = "r_max")]
    fn oversized_rmax_rejected() {
        let (xs, ys, zs) = poisson_points(10, 10.0, 1);
        let _ = CorrelationFunction::measure(&xs, &ys, &zs, 10.0, 8.0, 4);
    }
}
