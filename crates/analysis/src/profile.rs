//! Radial halo density profiles and NFW fits.
//!
//! The HACC program's cluster science (the paper cites a "high-statistics
//! study of galaxy cluster halo profiles" among its Roadrunner results)
//! needs stacked radial profiles of FOF halos and Navarro–Frenk–White
//! fits; this module provides both.

/// A binned spherical density profile around a halo center.
#[derive(Debug, Clone)]
pub struct HaloProfile {
    /// Geometric bin-center radii (same units as input positions).
    pub r: Vec<f64>,
    /// Number density per shell (particles per unit volume).
    pub density: Vec<f64>,
    /// Particles per shell.
    pub count: Vec<u64>,
}

impl HaloProfile {
    /// Measure the profile of particles around `center` out to `r_max`
    /// using `bins` logarithmic shells starting at `r_min` (periodic box
    /// of side `box_len`).
    #[allow(clippy::too_many_arguments)]
    #[must_use] 
    pub fn measure(
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        center: [f64; 3],
        box_len: f64,
        r_min: f64,
        r_max: f64,
        bins: usize,
    ) -> Self {
        assert!(bins >= 2 && r_min > 0.0 && r_max > r_min);
        let log_lo = r_min.ln();
        let dlog = (r_max.ln() - log_lo) / bins as f64;
        let half = 0.5 * box_len;
        let mut count = vec![0u64; bins];
        for i in 0..xs.len() {
            let mut d2 = 0.0f64;
            for (p, c) in [
                (f64::from(xs[i]), center[0]),
                (f64::from(ys[i]), center[1]),
                (f64::from(zs[i]), center[2]),
            ] {
                let mut d = p - c;
                if d > half {
                    d -= box_len;
                }
                if d < -half {
                    d += box_len;
                }
                d2 += d * d;
            }
            let r = d2.sqrt();
            if r < r_min || r >= r_max {
                continue;
            }
            let b = ((r.ln() - log_lo) / dlog) as usize;
            count[b.min(bins - 1)] += 1;
        }
        let mut out = HaloProfile {
            r: Vec::with_capacity(bins),
            density: Vec::with_capacity(bins),
            count,
        };
        for b in 0..bins {
            let r0 = (log_lo + b as f64 * dlog).exp();
            let r1 = (log_lo + (b + 1) as f64 * dlog).exp();
            let vol = 4.0 / 3.0 * std::f64::consts::PI * (r1.powi(3) - r0.powi(3));
            out.r.push((r0 * r1).sqrt());
            out.density.push(out.count[b] as f64 / vol);
        }
        out
    }

    /// Fit an NFW profile `ρ(r) = ρ₀ / [(r/r_s)(1 + r/r_s)²]` by
    /// least squares in log density over non-empty bins. Returns
    /// `(rho0, r_s, rms log residual)`.
    #[must_use] 
    pub fn fit_nfw(&self) -> (f64, f64, f64) {
        let pts: Vec<(f64, f64)> = self
            .r
            .iter()
            .zip(&self.density)
            .filter(|&(_, &d)| d > 0.0)
            .map(|(&r, &d)| (r, d.ln()))
            .collect();
        assert!(pts.len() >= 3, "too few populated bins for an NFW fit");
        let r_lo = pts.first().expect("pts").0;
        let r_hi = pts.last().expect("pts").0;
        // Grid search over r_s (log-spaced), analytic ρ₀ at each r_s.
        let mut best = (0.0, r_lo, f64::INFINITY);
        for i in 0..160 {
            let rs = r_lo * (r_hi * 4.0 / r_lo).powf(f64::from(i) / 159.0);
            // ln ρ = ln ρ₀ + ln shape; least squares ⇒ ln ρ₀ = mean residual.
            let shapes: Vec<f64> = pts
                .iter()
                .map(|&(r, _)| {
                    let x = r / rs;
                    -(x.ln() + 2.0 * (1.0 + x).ln())
                })
                .collect();
            let ln_rho0 = pts
                .iter()
                .zip(&shapes)
                .map(|(&(_, ld), &s)| ld - s)
                .sum::<f64>()
                / pts.len() as f64;
            let ss: f64 = pts
                .iter()
                .zip(&shapes)
                .map(|(&(_, ld), &s)| (ld - s - ln_rho0).powi(2))
                .sum();
            let rms = (ss / pts.len() as f64).sqrt();
            if rms < best.2 {
                best = (ln_rho0.exp(), rs, rms);
            }
        }
        best
    }

    /// Enclosed particle count within radius `r` (sums whole shells).
    #[must_use] 
    pub fn enclosed(&self, r: f64) -> u64 {
        self.r
            .iter()
            .zip(&self.count)
            .filter(|&(&rb, _)| rb <= r)
            .map(|(_, &c)| c)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sample particles from an NFW profile by inverse-transform-ish
    /// rejection sampling (deterministic).
    fn nfw_cloud(rs: f64, n: usize, r_max: f64) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut s = 987654321u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s as f64 / u64::MAX as f64
        };
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut zs = Vec::new();
        let rho = |r: f64| 1.0 / ((r / rs) * (1.0 + r / rs).powi(2));
        let f_max = rho(0.01 * rs) * (0.01 * rs) * (0.01 * rs);
        while xs.len() < n {
            let r = next() * r_max;
            // p(r) ∝ r² ρ(r)
            let p = rho(r.max(1e-6)) * r * r;
            if next() * f_max * 4.0 > p {
                continue;
            }
            let u = 2.0 * next() - 1.0;
            let phi = 2.0 * std::f64::consts::PI * next();
            let q = (1.0 - u * u).sqrt();
            xs.push((32.0 + r * q * phi.cos()) as f32);
            ys.push((32.0 + r * q * phi.sin()) as f32);
            zs.push((32.0 + r * u) as f32);
        }
        (xs, ys, zs)
    }

    #[test]
    fn uniform_cloud_flat_profile() {
        // Particles uniform in a ball: density ~ constant across shells.
        let mut s = 5u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s as f64 / u64::MAX as f64
        };
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut zs = Vec::new();
        while xs.len() < 20000 {
            let (a, b, c) = (next() * 2.0 - 1.0, next() * 2.0 - 1.0, next() * 2.0 - 1.0);
            if a * a + b * b + c * c > 1.0 {
                continue;
            }
            xs.push((32.0 + 5.0 * a) as f32);
            ys.push((32.0 + 5.0 * b) as f32);
            zs.push((32.0 + 5.0 * c) as f32);
        }
        let p = HaloProfile::measure(&xs, &ys, &zs, [32.0; 3], 64.0, 1.0, 5.0, 6);
        let mean = p.density.iter().sum::<f64>() / p.density.len() as f64;
        for (r, d) in p.r.iter().zip(&p.density) {
            assert!((d / mean - 1.0).abs() < 0.25, "r={r}: {d} vs mean {mean}");
        }
    }

    #[test]
    fn nfw_fit_recovers_scale_radius() {
        let rs = 2.0;
        let (xs, ys, zs) = nfw_cloud(rs, 30000, 12.0);
        let p = HaloProfile::measure(&xs, &ys, &zs, [32.0; 3], 64.0, 0.3, 10.0, 12);
        let (rho0, rs_fit, rms) = p.fit_nfw();
        assert!(rho0 > 0.0);
        assert!(rms < 0.3, "poor fit, rms {rms}");
        assert!(
            (rs_fit / rs - 1.0).abs() < 0.5,
            "rs fit {rs_fit} vs truth {rs}"
        );
    }

    #[test]
    fn profile_counts_total() {
        let (xs, ys, zs) = nfw_cloud(1.5, 5000, 8.0);
        let p = HaloProfile::measure(&xs, &ys, &zs, [32.0; 3], 64.0, 0.1, 10.0, 10);
        let total: u64 = p.count.iter().sum();
        assert!(total > 4500, "lost particles: {total}");
        assert_eq!(p.enclosed(10.0), total);
        assert!(p.enclosed(1.0) < total);
    }

    #[test]
    fn periodic_center_near_edge() {
        // A cloud centered at the box corner must still profile correctly.
        let xs = vec![0.5f32, 63.5, 0.2, 63.8];
        let ys = vec![0.0f32; 4];
        let zs = vec![0.0f32; 4];
        let p = HaloProfile::measure(&xs, &ys, &zs, [0.0, 0.0, 0.0], 64.0, 0.05, 2.0, 4);
        let total: u64 = p.count.iter().sum();
        assert_eq!(total, 4, "periodic wrap missed particles");
    }
}
