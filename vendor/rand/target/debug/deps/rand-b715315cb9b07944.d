/root/repo/vendor/rand/target/debug/deps/rand-b715315cb9b07944.d: src/lib.rs

/root/repo/vendor/rand/target/debug/deps/librand-b715315cb9b07944.rlib: src/lib.rs

/root/repo/vendor/rand/target/debug/deps/librand-b715315cb9b07944.rmeta: src/lib.rs

src/lib.rs:
