//! Synchronization shim: every primitive the comm runtime uses, behind
//! one seam that swaps in the `loom` model checker under `cfg(loom)` —
//! now with **rank-annotated mutexes** enforcing the crate's lock-order
//! discipline mechanically.
//!
//! The rest of this crate imports *only* from this module (never from
//! `parking_lot` / `std::sync` / `std::time::Instant` directly), so
//! `RUSTFLAGS="--cfg loom" cargo test -p hacc-comm --release` rebuilds
//! the identical protocol code on top of model-checked primitives and
//! the loom suite in `tests/loom.rs` explores every interleaving of the
//! mailbox and collective paths. See DESIGN.md §9 for which orderings
//! protect what, and §14 for the lock-rank discipline.
//!
//! # Lock ranks
//!
//! Every [`Mutex`] is constructed with a [`LockRank`] and every call
//! site re-states that rank: `m.lock(LockRank::Mail)`. Two machine
//! checks hang off the annotation:
//!
//! - **Runtime** (tests and any `debug_assertions` build): a
//!   thread-local stack records the ranks this thread currently holds;
//!   acquiring a mutex whose rank is not *strictly greater* than every
//!   held rank panics with both ranks named. Since a total order admits
//!   no cycle, a clean run of the wall-clock socket suite is a proof
//!   that no execution it exercised could deadlock on these mutexes.
//!   The checks compile to nothing in release builds (the socket hot
//!   path pays zero cost) and under `cfg(loom)`, where the loom
//!   scheduler's own deadlock detection covers the same ground.
//! - **Static** (`cargo xtask lockorder`): a source pass over this
//!   crate verifies every `.lock(` call names a `LockRank::` — an
//!   unannotated acquisition cannot merge.
//!
//! The rank values define the **only** permitted nesting order. They
//! come in per-process families (a hub never holds a child-transport
//! lock and vice versa); [`HealthState`](crate::health) is the shared
//! leaf — every family may take it last. Sequential (non-overlapping)
//! acquisitions in any order are always fine; the stack only constrains
//! *nested* holds. Same-rank nesting is forbidden too (the strict `<`),
//! which is what rules out holding two different per-peer link locks at
//! once.
//!
//! Two rules keep the loom swap sound:
//!
//! - **No raw `Instant::now()`** — deadlines must use [`Instant`] from
//!   here, which under loom reads the modeled clock (advanced only by
//!   timeout branches), keeping timed-out waits explorable and
//!   deterministic.
//! - **No direct `std::sync` types** in runtime state — `Mutex`,
//!   `Condvar`, atomics, and `Arc` all come from here.

#[cfg(loom)]
pub use loom::{
    sync::{
        atomic::{AtomicBool, AtomicU64, Ordering},
        Arc,
    },
    time::Instant,
};

#[cfg(loom)]
use loom::sync::{
    Condvar as RawCondvar, Mutex as RawMutex, MutexGuard as RawMutexGuard, WaitTimeoutResult,
};

#[cfg(not(loom))]
pub use std::{
    sync::{
        atomic::{AtomicBool, AtomicU64, Ordering},
        Arc,
    },
    time::Instant,
};

#[cfg(not(loom))]
use parking_lot::{
    Condvar as RawCondvar, Mutex as RawMutex, MutexGuard as RawMutexGuard, WaitTimeoutResult,
};

use std::time::Duration;

/// Acquisition rank of every mutex in this crate, one variant per
/// mutex role. A thread may acquire a mutex only while every lock it
/// already holds has a **strictly smaller** rank. The discriminant
/// gaps leave room to slot a new lock into a family without renumbering.
///
/// | family | ranks (in required acquisition order) |
/// |---|---|
/// | hub (launcher process) | `HubChildren` → `HubLedger` → `HubClients` → `HubReport` → `HubSpawn` |
/// | socket child (transport) | `Link` → `Mail` → `Mirror` → `ControlRpc` → `ControlWriter` |
/// | in-process channel backend | `Holdback` → `ChannelMail` → `FirstFailure` |
/// | shared leaf | `Health` (any family may take it last) |
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum LockRank {
    // -- hub (launcher process) family --------------------------------
    /// `HubState.children`: child process handles and exit ledger.
    HubChildren = 10,
    /// `HubState.ledger`: per-rank (epoch, failed_epoch) snapshot source.
    HubLedger = 12,
    /// `HubState.clients[r]`: one child's control stream. Nested inside
    /// `HubLedger` by `welcome_block`.
    HubClients = 14,
    /// `HubState.report`: what-happened ledger (kills, declarations).
    HubReport = 16,
    /// The respawn closure cell in `hub::run`.
    HubSpawn = 18,
    // -- socket child (transport) family ------------------------------
    /// `SocketTransport.links[peer].state`: one peer link's send half.
    Link = 30,
    /// `SocketTransport.mail.state`: the byte mailbox. Nested inside
    /// `Link` by `register_link`'s purge.
    Mail = 32,
    /// `SocketTransport.mirror.state`: the local failure-detector
    /// mirror. Nested inside `Mail` by `recv`'s precedence check.
    Mirror = 34,
    /// `ControlChannel.rpc`: the one-slot hub RPC.
    ControlRpc = 36,
    /// `ControlChannel.writer`: the control-stream write half. Nested
    /// inside `ControlRpc` by `hub_rpc`'s send.
    ControlWriter = 38,
    // -- in-process channel backend family ----------------------------
    /// `Shared.holdback[r]`: delay-injected messages awaiting reorder.
    Holdback = 50,
    /// `Mailbox.state`: one rank's typed in-process mailbox.
    ChannelMail = 52,
    /// `Machine::run`'s first-panic slot.
    FirstFailure = 54,
    // -- shared leaf ---------------------------------------------------
    /// `HealthState.state`: the failure detector. Leaf lock: taken under
    /// `ChannelMail` (recv's failed-source check) and `HubClients`
    /// (`welcome_block`'s status snapshot); must never take another
    /// crate lock while held.
    Health = 250,
}

/// Runtime lock-order enforcement is compiled in only for debug /
/// test builds of the real (non-loom) runtime.
#[cfg(all(not(loom), debug_assertions))]
mod held {
    use super::LockRank;
    use std::cell::RefCell;

    thread_local! {
        static STACK: RefCell<Vec<LockRank>> = const { RefCell::new(Vec::new()) };
    }

    pub fn acquire(rank: LockRank) {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(&worst) = stack.iter().max() {
                assert!(
                    worst < rank,
                    "lock-order violation: acquiring {rank:?} while holding {worst:?} \
                     (held: {stack:?}); the permitted nesting order is strictly \
                     increasing LockRank — see crate::sync docs"
                );
            }
            stack.push(rank);
        });
    }

    pub fn release(rank: LockRank) {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let pos = stack
                .iter()
                .rposition(|&r| r == rank)
                .expect("releasing a lock rank this thread does not hold");
            stack.remove(pos);
        });
    }
}

/// Rank-annotated mutex. The annotation is re-stated at every `lock`
/// call so the xtask source pass can verify coverage textually, and
/// cross-checked against the construction rank at runtime (debug).
pub struct Mutex<T> {
    rank: LockRank,
    inner: RawMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(rank: LockRank, value: T) -> Self {
        Mutex {
            rank,
            inner: RawMutex::new(value),
        }
    }

    /// Acquire, asserting (debug builds) that `rank` matches the
    /// construction rank and exceeds every rank this thread holds.
    pub fn lock(&self, rank: LockRank) -> MutexGuard<'_, T> {
        debug_assert_eq!(
            rank, self.rank,
            "lock site annotates {rank:?} but the mutex was built as {:?}",
            self.rank
        );
        #[cfg(all(not(loom), debug_assertions))]
        held::acquire(rank);
        #[cfg(any(loom, not(debug_assertions)))]
        let _ = rank;
        MutexGuard {
            inner: Some(self.inner.lock()),
            rank: self.rank,
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

/// Guard for [`Mutex`]; pops the rank from the thread's held stack on
/// release.
pub struct MutexGuard<'a, T> {
    /// `Some` until drop; `Option` so `Drop` can release the raw guard
    /// *before* popping the rank (never a moment where the rank is
    /// popped while the lock is still held).
    inner: Option<RawMutexGuard<'a, T>>,
    rank: LockRank,
}

impl<'a, T> MutexGuard<'a, T> {
    fn raw(&mut self) -> &mut RawMutexGuard<'a, T> {
        self.inner.as_mut().expect("guard accessed after drop")
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        #[cfg(all(not(loom), debug_assertions))]
        held::release(self.rank);
        #[cfg(any(loom, not(debug_assertions)))]
        let _ = self.rank;
    }
}

/// Condition variable over [`Mutex`] (parking_lot-style `&mut guard`
/// API, forwarded to the active backend). Waiting releases the mutex
/// but deliberately keeps its rank on the held stack: the blocked
/// thread cannot acquire anything else anyway, and keeping the rank
/// means the re-acquisition on wake needs no re-check.
pub struct Condvar(RawCondvar);

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    #[must_use]
    pub fn new() -> Self {
        Condvar(RawCondvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.0.wait(guard.raw());
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        self.0.wait_for(guard.raw(), timeout)
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all()
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::{Condvar, LockRank, Mutex};

    #[test]
    fn in_order_nesting_is_fine() {
        let link = Mutex::new(LockRank::Link, 1u32);
        let mail = Mutex::new(LockRank::Mail, 2u32);
        let mirror = Mutex::new(LockRank::Mirror, 3u32);
        let a = link.lock(LockRank::Link);
        let b = mail.lock(LockRank::Mail);
        let c = mirror.lock(LockRank::Mirror);
        assert_eq!(*a + *b + *c, 6);
    }

    #[test]
    fn sequential_reacquire_any_order() {
        let link = Mutex::new(LockRank::Link, ());
        let mail = Mutex::new(LockRank::Mail, ());
        drop(mail.lock(LockRank::Mail));
        drop(link.lock(LockRank::Link)); // lower rank, but nothing held
        drop(mail.lock(LockRank::Mail));
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "rank checking is debug-only")]
    fn out_of_order_nesting_panics() {
        let link = Mutex::new(LockRank::Link, ());
        let mail = Mutex::new(LockRank::Mail, ());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _m = mail.lock(LockRank::Mail);
            let _l = link.lock(LockRank::Link); // Mail → Link: inversion
        }));
        let msg = *result
            .expect_err("inverted acquisition must panic")
            .downcast::<String>()
            .expect("panic carries a message");
        assert!(msg.contains("lock-order violation"), "got: {msg}");
        // The unwound guards must have cleaned the held stack.
        drop(link.lock(LockRank::Link));
        drop(mail.lock(LockRank::Mail));
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "rank checking is debug-only")]
    fn same_rank_nesting_panics() {
        let a = Mutex::new(LockRank::Link, ());
        let b = Mutex::new(LockRank::Link, ());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _a = a.lock(LockRank::Link);
            let _b = b.lock(LockRank::Link);
        }));
        assert!(result.is_err(), "two links at once must panic");
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "rank checking is debug-only")]
    fn wrong_annotation_panics() {
        let mail = Mutex::new(LockRank::Mail, ());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = mail.lock(LockRank::Link);
        }));
        assert!(result.is_err(), "mis-annotated site must panic");
    }

    #[test]
    fn condvar_wait_keeps_rank() {
        let mail = Mutex::new(LockRank::Mail, false);
        let cv = Condvar::new();
        let mut guard = mail.lock(LockRank::Mail);
        let _ = cv.wait_for(&mut guard, std::time::Duration::from_millis(1));
        // Still held after the timed-out wait; release is clean.
        *guard = true;
        drop(guard);
        assert!(*mail.lock(LockRank::Mail));
    }
}
